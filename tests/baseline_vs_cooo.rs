//! Cross-engine integration tests: the qualitative claims of the paper hold
//! on the synthetic suite — out-of-order commit with small queues beats a
//! same-sized conventional machine and approaches the unbuildable large one.

use koc_sim::{run_trace, run_workloads, ProcessorConfig};
use koc_workloads::{kernels, spec2000fp_like_suite, Workload};

#[test]
fn cooo_with_small_queues_beats_the_same_size_baseline_on_memory_bound_code() {
    let w = Workload::generate("stream_add", kernels::stream_add(), 8_000);
    let baseline = run_trace(ProcessorConfig::baseline(128, 1000), &w.trace);
    let cooo = run_trace(ProcessorConfig::cooo(128, 2048, 1000), &w.trace);
    assert!(
        cooo.ipc() > baseline.ipc() * 1.5,
        "out-of-order commit should clearly beat the 128-entry baseline: {} vs {}",
        cooo.ipc(),
        baseline.ipc()
    );
}

#[test]
fn cooo_supports_far_more_inflight_instructions_than_its_queue_size() {
    let w = Workload::generate("stream_add", kernels::stream_add(), 8_000);
    let cooo = run_trace(ProcessorConfig::cooo(64, 2048, 1000), &w.trace);
    assert!(
        cooo.avg_inflight() > 256.0,
        "with 64-entry queues the checkpointed machine should still hold hundreds of \
         instructions in flight, got {}",
        cooo.avg_inflight()
    );
}

#[test]
fn cooo_approaches_the_unrealistic_large_baseline() {
    let workloads = spec2000fp_like_suite(6_000);
    let limit = run_workloads(ProcessorConfig::baseline(4096, 1000), &workloads);
    let cooo = run_workloads(ProcessorConfig::cooo(128, 2048, 1000), &workloads);
    let ratio = cooo.mean_ipc() / limit.mean_ipc();
    assert!(
        ratio > 0.6,
        "the paper reports ~10% degradation; allow generous slack but require the same shape \
         (got {:.0}% of the limit)",
        ratio * 100.0
    );
}

#[test]
fn bigger_sliq_never_hurts() {
    let w = Workload::generate("stream_add", kernels::stream_add(), 6_000);
    let small = run_trace(ProcessorConfig::cooo(64, 512, 1000), &w.trace);
    let large = run_trace(ProcessorConfig::cooo(64, 2048, 1000), &w.trace);
    assert!(
        large.ipc() >= small.ipc() * 0.95,
        "SLIQ growth should not hurt: 512 -> {} vs 2048 -> {}",
        small.ipc(),
        large.ipc()
    );
}

#[test]
fn more_checkpoints_never_hurt() {
    let w = Workload::generate("stencil27", kernels::stencil27(), 6_000);
    let few = run_trace(ProcessorConfig::cooo(128, 2048, 1000).with_checkpoints(4), &w.trace);
    let many = run_trace(ProcessorConfig::cooo(128, 2048, 1000).with_checkpoints(64), &w.trace);
    assert!(
        many.ipc() >= few.ipc() * 0.95,
        "checkpoint growth should not hurt: 4 -> {} vs 64 -> {}",
        few.ipc(),
        many.ipc()
    );
}

#[test]
fn reinsert_delay_has_only_a_small_effect() {
    // Figure 10's claim: even a 12-cycle re-insertion delay costs ~1%.
    let w = Workload::generate("stream_add", kernels::stream_add(), 6_000);
    let fast = run_trace(ProcessorConfig::cooo(64, 1024, 1000).with_reinsert_delay(1), &w.trace);
    let slow = run_trace(ProcessorConfig::cooo(64, 1024, 1000).with_reinsert_delay(12), &w.trace);
    let degradation = 1.0 - slow.ipc() / fast.ipc();
    assert!(
        degradation < 0.10,
        "re-insertion delay sensitivity should be small, got {:.1}%",
        degradation * 100.0
    );
}

#[test]
fn both_engines_commit_identical_instruction_counts() {
    for w in spec2000fp_like_suite(3_000) {
        let baseline = run_trace(ProcessorConfig::baseline(256, 500), &w.trace);
        let cooo = run_trace(ProcessorConfig::cooo(64, 1024, 500), &w.trace);
        assert_eq!(
            baseline.committed_instructions, cooo.committed_instructions,
            "{}: both engines execute the same program",
            w.name
        );
    }
}

#[test]
fn ipc_is_deterministic_across_runs() {
    let w = Workload::generate("gather", kernels::gather(), 4_000);
    let a = run_trace(ProcessorConfig::cooo(64, 1024, 500), &w.trace);
    let b = run_trace(ProcessorConfig::cooo(64, 1024, 500), &w.trace);
    assert_eq!(a.cycles, b.cycles, "the simulator must be deterministic");
    assert_eq!(a.checkpoints_taken, b.checkpoints_taken);
}
