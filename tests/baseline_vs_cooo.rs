//! Cross-engine integration tests: the qualitative claims of the paper hold
//! on the synthetic suite — out-of-order commit with small queues beats a
//! same-sized conventional machine and approaches the unbuildable large one.

use koc_sim::{ProcessorConfig, SimBuilder, Suite, Sweep};
use koc_workloads::{kernels, Workload};

fn stream_add(len: usize) -> Suite {
    Suite::custom(vec![Workload::generate(
        "stream_add",
        kernels::stream_add(),
        len,
    )])
}

#[test]
fn cooo_with_small_queues_beats_the_same_size_baseline_on_memory_bound_code() {
    let results = Sweep::over([
        ProcessorConfig::baseline(128, 1000),
        ProcessorConfig::cooo(128, 2048, 1000),
    ])
    .workloads(stream_add(8_000))
    .run();
    let (baseline, cooo) = (&results[0], &results[1]);
    assert!(
        cooo.mean_ipc() > baseline.mean_ipc() * 1.5,
        "out-of-order commit should clearly beat the 128-entry baseline: {} vs {}",
        cooo.mean_ipc(),
        baseline.mean_ipc()
    );
}

#[test]
fn cooo_supports_far_more_inflight_instructions_than_its_queue_size() {
    let cooo = SimBuilder::cooo()
        .pseudo_rob(64)
        .sliq(2048)
        .workloads(stream_add(8_000))
        .build()
        .run();
    assert!(
        cooo.mean_inflight() > 256.0,
        "with 64-entry queues the checkpointed machine should still hold hundreds of \
         instructions in flight, got {}",
        cooo.mean_inflight()
    );
}

#[test]
fn cooo_approaches_the_unrealistic_large_baseline() {
    let results = Sweep::over([
        ProcessorConfig::baseline(4096, 1000),
        ProcessorConfig::cooo(128, 2048, 1000),
    ])
    .workloads(Suite::paper())
    .trace_len(6_000)
    .run();
    let ratio = results[1].mean_ipc() / results[0].mean_ipc();
    assert!(
        ratio > 0.6,
        "the paper reports ~10% degradation; allow generous slack but require the same shape \
         (got {:.0}% of the limit)",
        ratio * 100.0
    );
}

#[test]
fn bigger_sliq_never_hurts() {
    let results = Sweep::over([
        ProcessorConfig::cooo(64, 512, 1000),
        ProcessorConfig::cooo(64, 2048, 1000),
    ])
    .workloads(stream_add(6_000))
    .run();
    let (small, large) = (&results[0], &results[1]);
    assert!(
        large.mean_ipc() >= small.mean_ipc() * 0.95,
        "SLIQ growth should not hurt: 512 -> {} vs 2048 -> {}",
        small.mean_ipc(),
        large.mean_ipc()
    );
}

#[test]
fn more_checkpoints_never_hurt() {
    let suite = Suite::custom(vec![Workload::generate(
        "stencil27",
        kernels::stencil27(),
        6_000,
    )]);
    let cooo = SimBuilder::cooo().workloads(suite);
    let few = cooo.clone().checkpoints(4).build().run();
    let many = cooo.checkpoints(64).build().run();
    assert!(
        many.mean_ipc() >= few.mean_ipc() * 0.95,
        "checkpoint growth should not hurt: 4 -> {} vs 64 -> {}",
        few.mean_ipc(),
        many.mean_ipc()
    );
}

#[test]
fn reinsert_delay_has_only_a_small_effect() {
    // Figure 10's claim: even a 12-cycle re-insertion delay costs ~1%.
    let cooo = SimBuilder::cooo()
        .pseudo_rob(64)
        .sliq(1024)
        .workloads(stream_add(6_000));
    let fast = cooo.clone().reinsert_delay(1).build().run();
    let slow = cooo.reinsert_delay(12).build().run();
    let degradation = 1.0 - slow.mean_ipc() / fast.mean_ipc();
    assert!(
        degradation < 0.10,
        "re-insertion delay sensitivity should be small, got {:.1}%",
        degradation * 100.0
    );
}

#[test]
fn both_engines_commit_identical_instruction_counts() {
    let results = Sweep::over([
        ProcessorConfig::baseline(256, 500),
        ProcessorConfig::cooo(64, 1024, 500),
    ])
    .workloads(Suite::paper())
    .trace_len(3_000)
    .run();
    let (baseline, cooo) = (&results[0], &results[1]);
    for (b, c) in baseline.per_workload.iter().zip(cooo.per_workload.iter()) {
        assert_eq!(
            b.stats.committed_instructions, c.stats.committed_instructions,
            "{}: both engines execute the same program",
            b.workload
        );
    }
}

#[test]
fn ipc_is_deterministic_across_runs() {
    let session = SimBuilder::cooo()
        .pseudo_rob(64)
        .sliq(1024)
        .memory_latency(500)
        .workloads(Suite::kernel("gather", kernels::gather()))
        .trace_len(4_000)
        .build();
    let a = session.run();
    let b = session.run();
    assert_eq!(
        a.per_workload[0].stats.cycles, b.per_workload[0].stats.cycles,
        "the simulator must be deterministic"
    );
    assert_eq!(
        a.per_workload[0].stats.checkpoints_taken,
        b.per_workload[0].stats.checkpoints_taken
    );
}
