//! Determinism and fast-forward-equivalence gates.
//!
//! The CI `bench-regression` job compares cycle counts against a committed
//! baseline at zero tolerance; these tests pin the two properties that gate
//! depends on:
//!
//! 1. **Determinism** — the same configuration over the same workloads
//!    yields *bit-identical* `SimStats`, run directly or through a rayon
//!    `Sweep` (parallelism must not leak into results).
//! 2. **Fast-forward equivalence** — the event-driven skip
//!    (`ProcessorConfig::fast_forward`, on by default) changes wall-clock
//!    only: every statistic, including per-cycle distributions and stall
//!    counters, matches the per-cycle-stepping run exactly.

use koc_sim::{DramConfig, PrefetchConfig, ProcessorConfig, SimBuilder, Suite, Sweep};
use koc_workloads::kernels;

/// Configurations chosen to cover both engines and all three memory
/// backends (flat, banked DRAM, DRAM behind the stride prefetcher).
fn coverage_configs() -> Vec<ProcessorConfig> {
    let mut dram = ProcessorConfig::cooo(32, 512, 800);
    dram.memory = dram.memory.with_dram(DramConfig::table1_like());
    let mut prefetching = ProcessorConfig::baseline(64, 800);
    prefetching.memory = prefetching
        .memory
        .with_dram(DramConfig::table1_like())
        .with_prefetch(PrefetchConfig::stride());
    vec![
        ProcessorConfig::baseline(64, 800),
        ProcessorConfig::cooo(32, 512, 800),
        dram,
        prefetching,
    ]
}

#[test]
fn identical_sessions_yield_bit_identical_stats() {
    for config in coverage_configs() {
        let run = || {
            SimBuilder::from_config(config)
                .workloads(Suite::paper())
                .trace_len(2_000)
                .build()
                .run()
        };
        let (a, b) = (run(), run());
        for (wa, wb) in a.per_workload.iter().zip(b.per_workload.iter()) {
            assert_eq!(wa.workload, wb.workload);
            assert_eq!(
                wa.stats, wb.stats,
                "{} must be bit-identical across runs",
                wa.workload
            );
        }
    }
}

#[test]
fn parallel_sweeps_are_as_deterministic_as_serial_runs() {
    let workloads = Suite::paper().generate(2_000);
    let configs = coverage_configs();
    let first = Sweep::over(configs.clone()).run_on(&workloads);
    let second = Sweep::over(configs.clone()).run_on(&workloads);
    for (a, b) in first.iter().zip(second.iter()) {
        for (wa, wb) in a.per_workload.iter().zip(b.per_workload.iter()) {
            assert_eq!(wa.stats, wb.stats, "rayon must not leak into results");
        }
    }
    // And the sweep agrees with one-at-a-time sessions.
    for (config, swept) in configs.iter().zip(first.iter()) {
        let solo = SimBuilder::from_config(*config)
            .workloads(Suite::custom(workloads.clone()))
            .build()
            .run();
        for (ws, wp) in solo.per_workload.iter().zip(swept.per_workload.iter()) {
            assert_eq!(ws.stats, wp.stats, "sweep vs session must agree");
        }
    }
}

#[test]
fn fast_forward_is_bit_identical_to_per_cycle_stepping() {
    let workloads = {
        let mut all = Suite::paper().generate(2_000);
        all.extend(Suite::mlp_contrast().generate(2_000));
        all
    };
    for config in coverage_configs() {
        let run = |ff: bool| {
            SimBuilder::from_config(config)
                .fast_forward(ff)
                .workloads(Suite::custom(workloads.clone()))
                .build()
                .run()
        };
        let (fast, slow) = (run(true), run(false));
        for (wf, ws) in fast.per_workload.iter().zip(slow.per_workload.iter()) {
            assert_eq!(
                wf.stats.cycles, ws.stats.cycles,
                "{}: cycle counts must not depend on the skip path",
                wf.workload
            );
            assert_eq!(
                wf.stats, ws.stats,
                "{}: every statistic (distributions, stalls, recoveries) \
                 must match with fast-forward {:?}",
                wf.workload, config.fast_forward
            );
        }
    }
}

#[test]
fn fast_forward_speeds_up_the_memory_bound_kernel() {
    // pointer_chase (a dependent chain, MLP = 1) at 1000-cycle memory is
    // almost entirely dead time: the skip path must be at least 2x faster
    // in wall-clock with, as above, identical cycle counts. The margin in
    // practice is >20x, so the 2x assertion stays robust on loaded CI
    // machines.
    let run = |ff: bool| {
        let session = SimBuilder::cooo()
            .memory_latency(1000)
            .fast_forward(ff)
            .workloads(Suite::kernel("pointer_chase", kernels::pointer_chase()))
            .trace_len(10_000)
            .build();
        let start = std::time::Instant::now();
        let result = session.run();
        (start.elapsed(), result.per_workload[0].stats.clone())
    };
    let (slow_wall, slow_stats) = run(false);
    let (fast_wall, fast_stats) = run(true);
    assert_eq!(fast_stats, slow_stats, "identical results either way");
    assert!(
        slow_wall.as_secs_f64() > fast_wall.as_secs_f64() * 2.0,
        "fast-forward must be >=2x faster on pointer_chase: {:?} vs {:?}",
        fast_wall,
        slow_wall
    );
}

#[test]
fn budgeted_runs_are_deterministic_and_bounded() {
    let run = || {
        SimBuilder::baseline(64)
            .memory_latency(1000)
            .workloads(Suite::kernel("pointer_chase", kernels::pointer_chase()))
            .trace_len(4_000)
            .cycle_budget(50_000)
            .build()
            .run()
    };
    let (a, b) = (run(), run());
    let (sa, sb) = (&a.per_workload[0].stats, &b.per_workload[0].stats);
    assert_eq!(sa, sb);
    assert!(sa.budget_exhausted);
    assert_eq!(sa.cycles, 50_000);
}
