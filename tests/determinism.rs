//! Determinism and fast-forward-equivalence gates.
//!
//! The CI `bench-regression` job compares cycle counts against a committed
//! baseline at zero tolerance; these tests pin the two properties that gate
//! depends on:
//!
//! 1. **Determinism** — the same configuration over the same workloads
//!    yields *bit-identical* `SimStats`, run directly or through a rayon
//!    `Sweep` (parallelism must not leak into results).
//! 2. **Fast-forward equivalence** — the event-driven skip
//!    (`ProcessorConfig::fast_forward`, on by default) changes wall-clock
//!    only: every statistic, including per-cycle distributions and stall
//!    counters, matches the per-cycle-stepping run exactly.

use koc_sim::{DramConfig, PrefetchConfig, ProcessorConfig, SimBuilder, Suite, Sweep};
use koc_workloads::kernels;

/// Configurations chosen to cover both engines and all three memory
/// backends (flat, banked DRAM, DRAM behind the stride prefetcher).
fn coverage_configs() -> Vec<ProcessorConfig> {
    let mut dram = ProcessorConfig::cooo(32, 512, 800);
    dram.memory = dram.memory.with_dram(DramConfig::table1_like());
    let mut prefetching = ProcessorConfig::baseline(64, 800);
    prefetching.memory = prefetching
        .memory
        .with_dram(DramConfig::table1_like())
        .with_prefetch(PrefetchConfig::stride());
    vec![
        ProcessorConfig::baseline(64, 800),
        ProcessorConfig::cooo(32, 512, 800),
        dram,
        prefetching,
    ]
}

#[test]
fn identical_sessions_yield_bit_identical_stats() {
    for config in coverage_configs() {
        let run = || {
            SimBuilder::from_config(config)
                .workloads(Suite::paper())
                .trace_len(2_000)
                .build()
                .run()
        };
        let (a, b) = (run(), run());
        for (wa, wb) in a.per_workload.iter().zip(b.per_workload.iter()) {
            assert_eq!(wa.workload, wb.workload);
            assert_eq!(
                wa.stats, wb.stats,
                "{} must be bit-identical across runs",
                wa.workload
            );
        }
    }
}

#[test]
fn parallel_sweeps_are_as_deterministic_as_serial_runs() {
    let workloads = Suite::paper().generate(2_000);
    let configs = coverage_configs();
    let first = Sweep::over(configs.clone()).run_on(&workloads);
    let second = Sweep::over(configs.clone()).run_on(&workloads);
    for (a, b) in first.iter().zip(second.iter()) {
        for (wa, wb) in a.per_workload.iter().zip(b.per_workload.iter()) {
            assert_eq!(wa.stats, wb.stats, "rayon must not leak into results");
        }
    }
    // And the sweep agrees with one-at-a-time sessions.
    for (config, swept) in configs.iter().zip(first.iter()) {
        let solo = SimBuilder::from_config(*config)
            .workloads(Suite::custom(workloads.clone()))
            .build()
            .run();
        for (ws, wp) in solo.per_workload.iter().zip(swept.per_workload.iter()) {
            assert_eq!(ws.stats, wp.stats, "sweep vs session must agree");
        }
    }
}

#[test]
fn fast_forward_is_bit_identical_to_per_cycle_stepping() {
    let workloads = {
        let mut all = Suite::paper().generate(2_000);
        all.extend(Suite::mlp_contrast().generate(2_000));
        all
    };
    for config in coverage_configs() {
        let run = |ff: bool| {
            SimBuilder::from_config(config)
                .fast_forward(ff)
                .workloads(Suite::custom(workloads.clone()))
                .build()
                .run()
        };
        let (fast, slow) = (run(true), run(false));
        for (wf, ws) in fast.per_workload.iter().zip(slow.per_workload.iter()) {
            assert_eq!(
                wf.stats.cycles, ws.stats.cycles,
                "{}: cycle counts must not depend on the skip path",
                wf.workload
            );
            assert_eq!(
                wf.stats, ws.stats,
                "{}: every statistic (distributions, stalls, recoveries) \
                 must match with fast-forward {:?}",
                wf.workload, config.fast_forward
            );
        }
    }
}

#[test]
fn fast_forward_speeds_up_the_memory_bound_kernel() {
    // pointer_chase (a dependent chain, MLP = 1) at 1000-cycle memory is
    // almost entirely dead time: the skip path must be at least 2x faster
    // in wall-clock with, as above, identical cycle counts. The margin in
    // practice is >20x, so the 2x assertion stays robust on loaded CI
    // machines.
    let run = |ff: bool| {
        let session = SimBuilder::cooo()
            .memory_latency(1000)
            .fast_forward(ff)
            .workloads(Suite::kernel("pointer_chase", kernels::pointer_chase()))
            .trace_len(10_000)
            .build();
        let start = std::time::Instant::now();
        let result = session.run();
        (start.elapsed(), result.per_workload[0].stats.clone())
    };
    let (slow_wall, slow_stats) = run(false);
    let (fast_wall, fast_stats) = run(true);
    assert_eq!(fast_stats, slow_stats, "identical results either way");
    assert!(
        slow_wall.as_secs_f64() > fast_wall.as_secs_f64() * 2.0,
        "fast-forward must be >=2x faster on pointer_chase: {:?} vs {:?}",
        fast_wall,
        slow_wall
    );
}

/// The committed `bench/baseline.json` cycle counts for the checkpointed
/// engine over the full quick suite, pinned in-source so any hot-path
/// refactor is proved cycle-neutral by `cargo test` alone — before the CI
/// bench gate even runs. Every combination of ingestion mode and
/// fast-forward must land on exactly these numbers.
#[test]
fn cooo_quick_suite_cycles_are_pinned_in_all_modes() {
    use koc_bench::harness::{engines, specs, QUICK_TRACE_LEN};
    use koc_sim::Processor;

    const PINNED: &[(&str, u64, u64)] = &[
        ("stream_add", 4_183, 8_004),
        ("stencil27", 4_460, 8_100),
        ("dense_blocked", 3_623, 8_140),
        ("reduction", 5_608, 8_008),
        ("gather", 4_516, 8_070),
        ("pointer_chase", 6_458_795, 8_000),
        ("stream_mlp", 3_933, 8_024),
    ];
    let config = engines()
        .iter()
        .find(|(name, _)| *name == "cooo")
        .expect("harness exposes the cooo engine")
        .1;
    let specs = specs(QUICK_TRACE_LEN);
    assert_eq!(specs.len(), PINNED.len(), "quick suite changed shape");
    for (spec, &(name, cycles, retired)) in specs.iter().zip(PINNED) {
        assert_eq!(spec.name(), name, "quick suite changed order");
        for fast_forward in [true, false] {
            // Stepping pointer_chase's ~6.5M almost-all-idle cycles one by
            // one is prohibitive under debug codegen; the release CI bench
            // job runs the full matrix, and fast-forward equivalence is
            // separately pinned above on every engine/backend combination.
            if cfg!(debug_assertions) && name == "pointer_chase" && !fast_forward {
                continue;
            }
            let config = config.with_fast_forward(fast_forward);
            let materialized = spec.materialize();
            for streamed in [false, true] {
                let stats = if streamed {
                    Processor::new(config, spec.source()).run()
                } else {
                    Processor::new(config, &materialized.trace).run()
                };
                assert_eq!(
                    (stats.cycles, stats.committed_instructions),
                    (cycles, retired),
                    "{name}: cooo cycles must stay pinned \
                     (streamed={streamed}, fast_forward={fast_forward})"
                );
            }
        }
    }
}

#[test]
fn budgeted_runs_are_deterministic_and_bounded() {
    let run = || {
        SimBuilder::baseline(64)
            .memory_latency(1000)
            .workloads(Suite::kernel("pointer_chase", kernels::pointer_chase()))
            .trace_len(4_000)
            .cycle_budget(50_000)
            .build()
            .run()
    };
    let (a, b) = (run(), run());
    let (sa, sb) = (&a.per_workload[0].stats, &b.per_workload[0].stats);
    assert_eq!(sa, sb);
    assert!(sa.budget_exhausted);
    assert_eq!(sa.cycles, 50_000);
}
