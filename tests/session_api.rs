//! Repository-level tests for the fluent `SimBuilder`/`Session`/`Sweep` API,
//! including the property that sweeps preserve input order.

use koc_sim::{CommitConfig, NullObserver, ProcessorConfig, SimBuilder, Suite, Sweep};
use koc_workloads::kernels;
use proptest::prelude::*;

#[test]
fn the_readme_quickstart_builder_chain_works() {
    let session = SimBuilder::cooo()
        .pseudo_rob(128)
        .sliq(2048)
        .workloads(Suite::kernel("stream_add", kernels::stream_add()))
        .trace_len(2_000)
        .build();
    let result = session.run();
    assert_eq!(result.per_workload.len(), 1);
    assert!(result.mean_ipc() > 0.0);
    assert!(result.per_workload[0].stats.committed_instructions > 0);
}

#[test]
fn builder_overrides_land_in_the_config() {
    let b = SimBuilder::cooo()
        .pseudo_rob(64)
        .sliq(512)
        .checkpoints(16)
        .memory_latency(500);
    let c = *b.config();
    assert_eq!(c.iq_size, 64);
    assert_eq!(c.memory.memory_latency, 500);
    match c.commit {
        CommitConfig::Checkpointed {
            checkpoint_entries,
            pseudo_rob_size,
            sliq,
            ..
        } => {
            assert_eq!(checkpoint_entries, 16);
            assert_eq!(pseudo_rob_size, 64);
            assert_eq!(sliq.capacity, 512);
        }
        CommitConfig::InOrderRob { .. } => panic!("cooo() must build the checkpointed engine"),
    }
}

#[test]
fn sessions_cover_the_former_free_function_entry_points() {
    // `run_trace`/`run_suite`/`run_workloads` are gone; the session API is
    // the single way in.
    let w = koc_workloads::Workload::generate("gather", kernels::gather(), 1_000);
    let session = SimBuilder::baseline(64).memory_latency(100).build();
    let stats = session.run_one(&w.trace, NullObserver).0;
    assert_eq!(stats.committed_instructions as usize, w.trace.len());
    let suite = SimBuilder::baseline(64)
        .memory_latency(100)
        .workloads(Suite::paper())
        .trace_len(600)
        .build()
        .run();
    assert_eq!(suite.per_workload.len(), 5);
}

#[test]
fn a_cycle_budget_caps_every_run_in_a_session() {
    let result = SimBuilder::baseline(64)
        .memory_latency(1000)
        .workloads(Suite::kernel("gather", kernels::gather()))
        .trace_len(5_000)
        .cycle_budget(200)
        .build()
        .run();
    let stats = &result.per_workload[0].stats;
    assert!(
        stats.budget_exhausted,
        "1000-cycle memory cannot finish in 200"
    );
    assert_eq!(stats.cycles, 200);
    assert!((stats.committed_instructions as usize) < 5_000);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A sweep over N configurations returns exactly N results, in input
    /// order (each result carries its configuration, so order is checkable).
    #[test]
    fn sweep_preserves_arity_and_input_order(windows in proptest::collection::vec(4usize..48, 1..7)) {
        let configs: Vec<ProcessorConfig> =
            windows.iter().map(|&w| ProcessorConfig::baseline(w * 8, 100)).collect();
        let results = Sweep::over(configs.clone())
            .workloads(Suite::kernel("stream_add", kernels::stream_add()))
            .trace_len(400)
            .run();
        prop_assert_eq!(results.len(), configs.len(), "one result per configuration");
        for (r, c) in results.iter().zip(configs.iter()) {
            prop_assert_eq!(r.config.iq_size, c.iq_size, "results must follow input order");
            prop_assert_eq!(r.per_workload.len(), 1);
            prop_assert!(r.mean_ipc() > 0.0);
        }
    }
}
