//! Recovery-path integration tests: branch mispredictions (near and far) and
//! exceptions leave the machine in a consistent state and the program still
//! commits completely.

use koc_isa::{ArchReg, Trace, TraceBuilder};
use koc_sim::{BranchPredictorKind, Processor, ProcessorConfig, SimStats};

fn run_trace(config: ProcessorConfig, trace: &Trace) -> SimStats {
    Processor::new(config, trace).run()
}

/// A loop-free trace with data-dependent (hard to predict) branches mixed
/// into FP streaming work.
fn branchy_trace(blocks: usize) -> Trace {
    let mut b = TraceBuilder::named("branchy");
    let base = ArchReg::int(1);
    let cond = ArchReg::int(2);
    for i in 0..blocks as u64 {
        b.int_alu(cond, &[base]);
        // Alternate taken / not-taken in a pattern gshare struggles with at
        // first: pseudo-random based on the block index bits.
        let taken = (i * 2654435761) % 7 < 3;
        let target = b.pc() + 64;
        b.branch_to(cond, taken, target);
        for j in 0..12u64 {
            let f = ArchReg::fp(((i + j) % 24) as u8);
            b.load(f, base, 0x4000_0000 + (i * 12 + j) * 4096);
            b.fp_alu(ArchReg::fp((((i + j) % 24) + 1) as u8 % 28), &[f]);
        }
        b.store(ArchReg::fp(0), base, 0x8000_0000 + i * 8);
    }
    b.finish()
}

/// A trace with one exception-raising instruction in the middle.
fn excepting_trace() -> Trace {
    let mut b = TraceBuilder::named("excepting");
    let base = ArchReg::int(1);
    for i in 0..200u64 {
        let f = ArchReg::fp((i % 20) as u8);
        b.load(f, base, 0x1000_0000 + i * 512);
        b.fp_alu(ArchReg::fp(((i % 20) + 1) as u8), &[f]);
    }
    b.excepting_op(ArchReg::int(3), &[base]);
    for i in 0..200u64 {
        let f = ArchReg::fp((i % 20) as u8);
        b.load(f, base, 0x2000_0000 + i * 512);
        b.fp_alu(ArchReg::fp(((i % 20) + 1) as u8), &[f]);
    }
    b.finish()
}

#[test]
fn mispredictions_are_recovered_on_the_baseline() {
    let trace = branchy_trace(120);
    let stats = run_trace(ProcessorConfig::baseline(128, 500), &trace);
    assert_eq!(stats.committed_instructions as usize, trace.len());
    assert!(
        stats.branches.mispredicted > 0,
        "the pattern must cause some mispredictions"
    );
    assert!(stats.recoveries.near_recoveries > 0);
    assert_eq!(
        stats.recoveries.checkpoint_rollbacks, 0,
        "the baseline never rolls back to checkpoints"
    );
}

#[test]
fn mispredictions_are_recovered_on_the_checkpointed_machine() {
    let trace = branchy_trace(120);
    let stats = run_trace(ProcessorConfig::cooo(32, 512, 500), &trace);
    assert_eq!(stats.committed_instructions as usize, trace.len());
    assert!(stats.branches.mispredicted > 0);
    assert!(
        stats.recoveries.near_recoveries + stats.recoveries.checkpoint_rollbacks > 0,
        "mispredictions must trigger some form of recovery"
    );
}

#[test]
fn far_branch_recovery_rolls_back_to_a_checkpoint() {
    // With a memory latency of 1000 cycles and a tiny pseudo-ROB, a branch
    // that depends on a missing load resolves long after it has left the
    // pseudo-ROB, forcing a checkpoint rollback.
    let mut b = TraceBuilder::named("late-branch");
    let base = ArchReg::int(1);
    let cond = ArchReg::int(2);
    for i in 0..40u64 {
        // A load that misses in L2 feeds the branch condition.
        b.load(cond, base, 0x9000_0000 + i * 8192);
        let taken = i % 3 == 0;
        let target = b.pc() + 32;
        b.branch_to(cond, taken, target);
        // Plenty of independent work after the branch to push it out of the
        // pseudo-ROB before the load returns.
        for j in 0..64u64 {
            let f = ArchReg::fp(((i + j) % 24) as u8);
            b.fp_alu(f, &[f]);
        }
    }
    let trace = b.finish();
    let stats = run_trace(ProcessorConfig::cooo(32, 512, 1000), &trace);
    assert_eq!(stats.committed_instructions as usize, trace.len());
    assert!(
        stats.recoveries.checkpoint_rollbacks > 0,
        "late-resolving mispredicted branches must use checkpoint rollback"
    );
    assert!(
        stats.recoveries.reexecuted_instructions > 0,
        "rollback re-executes work"
    );
    assert!(stats.dispatched_instructions > stats.committed_instructions);
}

#[test]
fn a_perfect_predictor_eliminates_recoveries() {
    let trace = branchy_trace(80);
    let stats = run_trace(
        ProcessorConfig::cooo(32, 512, 500).with_predictor(BranchPredictorKind::Perfect),
        &trace,
    );
    assert_eq!(stats.branches.mispredicted, 0);
    assert_eq!(stats.recoveries.near_recoveries, 0);
    assert_eq!(stats.recoveries.checkpoint_rollbacks, 0);
    assert_eq!(stats.committed_instructions as usize, trace.len());
}

#[test]
fn exceptions_are_delivered_precisely_on_both_engines() {
    let trace = excepting_trace();
    for (name, config) in [
        ("baseline", ProcessorConfig::baseline(128, 500)),
        ("cooo", ProcessorConfig::cooo(64, 1024, 500)),
    ] {
        let stats = run_trace(config, &trace);
        assert_eq!(stats.committed_instructions as usize, trace.len(), "{name}");
        assert_eq!(
            stats.recoveries.exceptions, 1,
            "{name}: the exception fires exactly once"
        );
    }
}

#[test]
fn checkpoint_rollback_costs_performance_but_not_correctness() {
    let trace = branchy_trace(100);
    let mispredicting = run_trace(ProcessorConfig::cooo(32, 512, 1000), &trace);
    let perfect = run_trace(
        ProcessorConfig::cooo(32, 512, 1000).with_predictor(BranchPredictorKind::Perfect),
        &trace,
    );
    assert_eq!(
        mispredicting.committed_instructions,
        perfect.committed_instructions
    );
    assert!(
        perfect.ipc() >= mispredicting.ipc(),
        "misprediction recovery can only cost performance: perfect {} vs real {}",
        perfect.ipc(),
        mispredicting.ipc()
    );
}
