//! Integration gates for the streaming `InstructionSource` ingestion path.
//!
//! Three properties the API redesign promises:
//!
//! 1. **Bit-identical timing** — the full paper suite produces the same
//!    cycle counts (indeed the same `SimStats`) whether workloads are
//!    materialized up front or streamed on demand, under both commit
//!    engines, with event-driven fast-forward on and off.
//! 2. **O(window) memory** — a multi-million-instruction streaming run
//!    completes with a replay-window peak bounded by the machine's
//!    recovery depth (ROB / checkpoint span), independent of stream
//!    length.
//! 3. **Composability** — combinator pipelines (`then`, `repeat_n`,
//!    `warmup_measure`) and reloaded trace files run end to end.

use koc::isa::{InstructionSource, SourceExt, Trace};
use koc::sim::{NullObserver, ProcessorConfig, SimBuilder, SourceMode, Suite};
use koc::workloads::{generate_kernel, kernels, KernelSource, Workload};

/// Stream length for the long-run memory guard: ten million instructions
/// in release builds (the acceptance target), scaled down for debug test
/// runs where the simulator is several times slower.
const GUARD_LEN: usize = if cfg!(debug_assertions) {
    600_000
} else {
    10_000_000
};

#[test]
fn paper_suite_is_bit_identical_streamed_vs_materialized() {
    for fast_forward in [true, false] {
        for base in [
            ProcessorConfig::baseline(128, 500),
            ProcessorConfig::cooo(64, 1024, 500),
        ] {
            let run = |mode: SourceMode| {
                SimBuilder::from_config(base)
                    .fast_forward(fast_forward)
                    .workloads(Suite::paper())
                    .trace_len(1_500)
                    .source_mode(mode)
                    .build()
                    .run()
            };
            let materialized = run(SourceMode::Materialized);
            let streamed = run(SourceMode::Streamed);
            assert_eq!(materialized.per_workload.len(), streamed.per_workload.len());
            for (m, s) in materialized.per_workload.iter().zip(&streamed.per_workload) {
                assert_eq!(m.workload, s.workload);
                assert_eq!(
                    m.stats, s.stats,
                    "{} (ff={fast_forward}) must not depend on the source mode",
                    m.workload
                );
            }
        }
    }
}

#[test]
fn long_streaming_run_keeps_the_replay_window_at_rob_depth() {
    // In-order baseline: the replay window can never exceed the ROB (the
    // only recovery points) plus fetch lookahead.
    let window = 128;
    let config = kernels::stream_add().with_target_len(GUARD_LEN);
    let stats = SimBuilder::baseline(window)
        .build()
        .run_one(KernelSource::new("stream_add", config), NullObserver)
        .0;
    assert!(stats.committed_instructions as usize >= GUARD_LEN);
    assert!(
        stats.replay_window_peak <= window + 2,
        "peak {} must be bounded by the ROB, not the {GUARD_LEN}-instruction stream",
        stats.replay_window_peak
    );
}

#[test]
fn checkpointed_replay_window_is_bounded_by_checkpoint_depth_not_length() {
    // Checkpointed engine: recovery points are whole checkpoints, so the
    // window spans the live checkpoints — still independent of run length.
    let session = SimBuilder::cooo().build();
    let run = |len: usize| {
        let config = kernels::stream_add().with_target_len(len);
        session
            .run_one(KernelSource::new("stream_add", config), NullObserver)
            .0
    };
    let short = run(GUARD_LEN / 5);
    let long = run(GUARD_LEN / 2);
    assert!(short.committed_instructions < long.committed_instructions);
    // 2.5x more instructions, same peak (modulo end-of-stream drain jitter):
    // occupancy is a property of the machine, not of the stream length.
    assert!(
        short.replay_window_peak.abs_diff(long.replay_window_peak) <= 64,
        "peaks {} vs {} must not scale with stream length",
        short.replay_window_peak,
        long.replay_window_peak
    );
    assert!(
        long.replay_window_peak <= 8_192,
        "peak {} should track checkpoint depth",
        long.replay_window_peak
    );
}

#[test]
fn combinator_streams_run_end_to_end() {
    let warm = KernelSource::new(
        "dense_blocked",
        kernels::dense_blocked().with_target_len(800),
    );
    let measured = KernelSource::new("gather", kernels::gather().with_target_len(1_200));
    let stream = warm.then(measured.repeat_n(2)).warmup_measure(500, 2_000);
    // gather places irregular branches randomly, so no exact length can be
    // promised up front — the hint must decline rather than guess the cap.
    assert_eq!(stream.len_hint(), None);
    let stats = SimBuilder::baseline(64)
        .memory_latency(200)
        .build()
        .run_one(stream, NullObserver)
        .0;
    assert_eq!(stats.committed_instructions as usize, 2_500);
    assert!(stats.cycles > 0);
}

#[test]
fn saved_traces_reload_and_replay_identically() {
    let trace = generate_kernel("gather", &kernels::gather().with_target_len(2_000));
    let path = std::env::temp_dir().join(format!("koc-streaming-{}.json", std::process::id()));
    trace.save(&path).expect("save");
    let reloaded = Trace::load(&path).expect("load");
    std::fs::remove_file(&path).ok();
    assert_eq!(reloaded, trace);
    let session = SimBuilder::cooo().build();
    assert_eq!(
        session.run_one(&trace, NullObserver).0,
        session.run_one(&reloaded, NullObserver).0,
        "a reloaded trace must time identically"
    );
}

#[test]
fn custom_suites_stream_their_fixed_traces() {
    let workload = Workload::generate("stencil27", kernels::stencil27(), 1_000);
    let run = |mode: SourceMode| {
        SimBuilder::baseline(64)
            .memory_latency(300)
            .workloads(Suite::custom(vec![workload.clone()]))
            .source_mode(mode)
            .build()
            .run()
    };
    let (m, s) = (run(SourceMode::Materialized), run(SourceMode::Streamed));
    assert_eq!(m.per_workload[0].stats, s.per_workload[0].stats);
}
