//! Integration tests spanning the ISA, workload, memory and pipeline crates:
//! every generated workload runs to completion on both commit engines and the
//! basic accounting invariants hold.

use koc_sim::{Processor, ProcessorConfig, SimStats, Suite};
use koc_workloads::{kernels, Workload};

const TRACE_LEN: usize = 4_000;

fn run(config: ProcessorConfig, trace: &koc_isa::Trace) -> SimStats {
    Processor::new(config, trace).run()
}

fn assert_run_invariants(stats: &SimStats, trace_len: usize, name: &str) {
    assert_eq!(
        stats.committed_instructions as usize, trace_len,
        "{name}: every trace instruction must commit exactly once"
    );
    assert!(stats.cycles > 0, "{name}: simulation must take time");
    assert!(
        stats.dispatched_instructions >= stats.committed_instructions,
        "{name}: dispatches include re-executions"
    );
    assert!(
        stats.ipc() > 0.0 && stats.ipc() <= 4.0,
        "{name}: IPC {} out of range",
        stats.ipc()
    );
    assert_eq!(
        stats.inflight.count() as u64,
        stats.cycles,
        "{name}: one in-flight sample per cycle"
    );
}

#[test]
fn every_suite_workload_completes_on_the_baseline() {
    for w in Suite::paper().generate(TRACE_LEN) {
        let stats = run(ProcessorConfig::baseline(128, 500), &w.trace);
        assert_run_invariants(&stats, w.trace.len(), &w.name);
    }
}

#[test]
fn every_suite_workload_completes_on_the_checkpointed_machine() {
    for w in Suite::paper().generate(TRACE_LEN) {
        let stats = run(ProcessorConfig::cooo(64, 1024, 500), &w.trace);
        assert_run_invariants(&stats, w.trace.len(), &w.name);
        assert_eq!(
            stats.checkpoints_taken,
            stats.checkpoints_committed + stats.checkpoints_squashed,
            "{}: every checkpoint taken must commit or be squashed by recovery",
            w.name
        );
        assert!(
            stats.checkpoints_taken > 0,
            "{}: at least the initial checkpoint",
            w.name
        );
    }
}

#[test]
fn perfect_l2_removes_memory_stalls() {
    let w = Workload::generate("stream_add", kernels::stream_add(), TRACE_LEN);
    let perfect = run(ProcessorConfig::baseline_perfect_l2(256), &w.trace);
    let slow = run(ProcessorConfig::baseline(256, 1000), &w.trace);
    assert!(
        perfect.ipc() > slow.ipc() * 1.5,
        "perfect L2 should be much faster: {} vs {}",
        perfect.ipc(),
        slow.ipc()
    );
    assert_eq!(perfect.memory.l2_misses, 0, "perfect L2 never misses");
}

#[test]
fn longer_memory_latency_never_helps() {
    let w = Workload::generate("stencil27", kernels::stencil27(), TRACE_LEN);
    let fast = run(ProcessorConfig::baseline(128, 100), &w.trace);
    let slow = run(ProcessorConfig::baseline(128, 1000), &w.trace);
    assert!(
        fast.ipc() >= slow.ipc(),
        "100-cycle memory {} vs 1000-cycle {}",
        fast.ipc(),
        slow.ipc()
    );
}

#[test]
fn bigger_windows_never_hurt_the_baseline() {
    let w = Workload::generate("gather", kernels::gather(), TRACE_LEN);
    let small = run(ProcessorConfig::baseline(64, 500), &w.trace);
    let large = run(ProcessorConfig::baseline(1024, 500), &w.trace);
    assert!(
        large.ipc() >= small.ipc() * 0.95,
        "window growth should not hurt: 64 -> {} vs 1024 -> {}",
        small.ipc(),
        large.ipc()
    );
}

#[test]
fn the_gshare_predictor_is_nearly_perfect_on_loop_code() {
    let w = Workload::generate("stream_add", kernels::stream_add(), TRACE_LEN);
    let stats = run(ProcessorConfig::baseline(128, 100), &w.trace);
    assert!(
        stats.branches.misprediction_rate() < 0.05,
        "loop back-edges should predict well, rate = {}",
        stats.branches.misprediction_rate()
    );
}

#[test]
fn memory_statistics_are_populated() {
    let w = Workload::generate("stream_add", kernels::stream_add(), TRACE_LEN);
    let stats = run(ProcessorConfig::cooo(64, 1024, 500), &w.trace);
    assert!(stats.memory.data_accesses > 0);
    assert!(
        stats.memory.l2_misses > 0,
        "streaming workload must miss in L2"
    );
    assert!(
        stats.memory.store_accesses > 0,
        "stores drain to the cache at commit"
    );
}

#[test]
fn sliq_is_used_on_memory_bound_workloads() {
    let w = Workload::generate("stream_add", kernels::stream_add(), TRACE_LEN);
    let stats = run(ProcessorConfig::cooo(32, 1024, 1000), &w.trace);
    assert!(
        stats.sliq_moved > 0,
        "long-latency dependents must move to the SLIQ"
    );
    assert!(stats.sliq_high_water > 0);
    assert!(
        stats
            .retire_breakdown
            .count(koc_core::RetireClass::LongLatLoad)
            > 0,
        "L2-missing loads must be classified as long latency"
    );
}
