//! Smoke tests for the statistics the experiment harness relies on: the
//! figure-specific outputs exist and behave sensibly on small runs.

use koc_core::RetireClass;
use koc_sim::{Processor, ProcessorConfig, RegisterModel, SimStats};
use koc_workloads::{kernels, Workload};

fn run_trace(config: ProcessorConfig, trace: &koc_isa::Trace) -> SimStats {
    Processor::new(config, trace).run()
}

fn workload() -> Workload {
    Workload::generate("stream_add", kernels::stream_add(), 5_000)
}

#[test]
fn figure7_distributions_are_recorded() {
    let w = workload();
    let stats = run_trace(ProcessorConfig::baseline(2048, 500), &w.trace);
    let p = stats.inflight.figure7_percentiles();
    assert!(p[0] <= p[1] && p[1] <= p[2] && p[2] <= p[3] && p[3] <= p[4]);
    assert!(
        stats.live.mean() <= stats.inflight.mean(),
        "live instructions are a subset of in-flight"
    );
    assert!(
        stats.live_long.count() > 0,
        "the long/short breakdown is sampled"
    );
}

#[test]
fn figure11_inflight_average_tracks_window_size() {
    let w = workload();
    let small = run_trace(ProcessorConfig::baseline(128, 1000), &w.trace);
    let large = run_trace(ProcessorConfig::baseline(2048, 1000), &w.trace);
    assert!(small.avg_inflight() <= 128.0 + 1.0);
    assert!(large.avg_inflight() > small.avg_inflight());
}

#[test]
fn figure12_breakdown_covers_all_retirements() {
    let w = workload();
    let stats = run_trace(ProcessorConfig::cooo(32, 1024, 1000), &w.trace);
    let total = stats.retire_breakdown.total();
    assert!(total > 0);
    let sum: u64 = RetireClass::all()
        .iter()
        .map(|&c| stats.retire_breakdown.count(c))
        .sum();
    assert_eq!(sum, total);
    assert!(stats.retire_breakdown.count(RetireClass::Store) > 0);
}

#[test]
fn figure13_checkpoint_sweep_is_monotonicish() {
    let w = workload();
    let few = run_trace(
        ProcessorConfig::cooo(128, 2048, 500).with_checkpoints(4),
        &w.trace,
    );
    let many = run_trace(
        ProcessorConfig::cooo(128, 2048, 500).with_checkpoints(32),
        &w.trace,
    );
    assert!(many.ipc() >= few.ipc() * 0.9);
}

#[test]
fn figure14_virtual_registers_run_and_constrain() {
    let w = workload();
    let plenty = run_trace(
        ProcessorConfig::cooo(128, 1024, 500).with_registers(RegisterModel::Virtual {
            virtual_tags: 2048,
            phys_regs: 512,
        }),
        &w.trace,
    );
    let scarce = run_trace(
        ProcessorConfig::cooo(128, 1024, 500).with_registers(RegisterModel::Virtual {
            virtual_tags: 512,
            phys_regs: 256,
        }),
        &w.trace,
    );
    assert_eq!(plenty.committed_instructions as usize, w.trace.len());
    assert_eq!(scarce.committed_instructions as usize, w.trace.len());
    assert!(
        plenty.ipc() >= scarce.ipc() * 0.95,
        "more register resources should not hurt: {} vs {}",
        plenty.ipc(),
        scarce.ipc()
    );
}

#[test]
fn table1_constructor_reports_the_paper_parameters() {
    let c = ProcessorConfig::table1();
    assert_eq!(c.fetch_width, 4);
    assert_eq!(c.iq_size, 4096);
    assert_eq!(c.lsq_size, 4096);
    assert_eq!(c.memory.memory_latency, 1000);
}
