//! Lockstep execution gates: decode-once batched sweeps must be a pure
//! scheduling change.
//!
//! `ExecMode::Lockstep` forks one fetch stream across all configurations
//! of a sweep (see `koc_sim::lockstep`); these tests pin the properties
//! that make it safe to be the default:
//!
//! 1. **Identity** — lockstep and the per-config rayon fan-out produce
//!    bit-identical `SimStats` across both engines, both ingestion modes
//!    and fast-forward on/off (zero tolerance, like `tests/determinism.rs`).
//! 2. **Baseline agreement** — per-config cycle counts in *both* execution
//!    modes land exactly on the committed `bench/baseline.json` numbers.
//! 3. **Budget semantics** — staggered per-lane cycle budgets behave
//!    exactly like solo capped runs (property-tested over random lane
//!    counts, budgets and chunk sizes).

use koc_sim::{
    run_lockstep, ExecMode, LockstepSweep, Processor, ProcessorConfig, SourceMode, Suite, Sweep,
};
use koc_workloads::{generate_kernel, kernels};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Config grids covering the in-order engine, the checkpointed engine and
/// a mixed grid, at a latency small enough to step without fast-forward.
fn grids() -> Vec<Vec<ProcessorConfig>> {
    vec![
        vec![
            ProcessorConfig::baseline(64, 250),
            ProcessorConfig::baseline(128, 250),
        ],
        vec![
            ProcessorConfig::cooo(32, 512, 250),
            ProcessorConfig::cooo(16, 256, 250),
            ProcessorConfig::cooo(64, 1024, 250),
        ],
        vec![
            ProcessorConfig::baseline(64, 250),
            ProcessorConfig::cooo(32, 512, 250),
        ],
    ]
}

#[test]
fn lockstep_matches_per_config_across_engines_sources_and_fast_forward() {
    for configs in grids() {
        for fast_forward in [true, false] {
            let configs: Vec<ProcessorConfig> = configs
                .iter()
                .map(|c| c.with_fast_forward(fast_forward))
                .collect();
            for source_mode in [SourceMode::Materialized, SourceMode::Streamed] {
                let run = |exec_mode| {
                    Sweep::over(configs.clone())
                        .workloads(Suite::mlp_contrast())
                        .trace_len(1_000)
                        .source_mode(source_mode)
                        .exec_mode(exec_mode)
                        .run()
                };
                let lockstep = run(ExecMode::Lockstep);
                let per_config = run(ExecMode::PerConfig);
                assert_eq!(lockstep.len(), per_config.len());
                for (l, p) in lockstep.iter().zip(per_config.iter()) {
                    assert_eq!(l.config, p.config, "result order must be input order");
                    for (lw, pw) in l.per_workload.iter().zip(p.per_workload.iter()) {
                        assert_eq!(lw.workload, pw.workload);
                        assert_eq!(
                            lw.stats, pw.stats,
                            "{}: lockstep must be bit-identical to per-config \
                             (fast_forward={fast_forward}, {source_mode:?})",
                            lw.workload
                        );
                    }
                }
            }
        }
    }
}

/// The committed `bench/baseline.json` cycle counts for both canonical
/// engines over the full quick suite, pinned in-source: both execution
/// modes must land on exactly these numbers, in both ingestion modes.
#[test]
fn both_exec_modes_land_on_the_committed_baseline_cycles() {
    use koc_bench::harness::{specs, QUICK_TRACE_LEN};

    const PINNED: &[(&str, u64, u64, u64)] = &[
        // (workload, baseline cycles, cooo cycles, retired)
        ("stream_add", 47_328, 4_183, 8_004),
        ("stencil27", 61_382, 4_460, 8_100),
        ("dense_blocked", 57_208, 3_623, 8_140),
        ("reduction", 59_149, 5_608, 8_008),
        ("gather", 63_937, 4_516, 8_070),
        ("pointer_chase", 6_458_794, 6_458_795, 8_000),
        ("stream_mlp", 63_883, 3_933, 8_024),
    ];
    let configs = [
        ProcessorConfig::baseline(128, 1000),
        ProcessorConfig::cooo(128, 2048, 1000),
    ];
    let specs = specs(QUICK_TRACE_LEN);
    assert_eq!(specs.len(), PINNED.len(), "quick suite changed shape");
    for exec_mode in [ExecMode::Lockstep, ExecMode::PerConfig] {
        for streamed in [true, false] {
            let sweep = Sweep::over(configs).exec_mode(exec_mode);
            let results = if streamed {
                sweep.run_grid(&specs)
            } else {
                let workloads: Vec<_> = specs.iter().map(|s| s.materialize()).collect();
                sweep.run_grid(&workloads)
            };
            for (ei, engine) in ["baseline", "cooo"].iter().enumerate() {
                for (wr, &(name, base_cycles, cooo_cycles, retired)) in
                    results[ei].per_workload.iter().zip(PINNED)
                {
                    let cycles = if ei == 0 { base_cycles } else { cooo_cycles };
                    assert_eq!(wr.workload, name);
                    assert_eq!(
                        (wr.stats.cycles, wr.stats.committed_instructions),
                        (cycles, retired),
                        "{name}/{engine}: cycles must stay on bench/baseline.json \
                         ({exec_mode:?}, streamed={streamed})"
                    );
                }
            }
        }
    }
}

fn proptest_trace() -> &'static koc_isa::Trace {
    static TRACE: OnceLock<koc_isa::Trace> = OnceLock::new();
    TRACE.get_or_init(|| {
        generate_kernel("stream_add", &kernels::stream_add().with_target_len(1_500))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random lane counts, staggered per-lane budgets and arbitrary chunk
    /// sizes against the sequential reference: every lane must report
    /// exactly what a solo capped run of its configuration reports.
    #[test]
    fn staggered_budgets_match_the_sequential_reference(
        lanes in 1usize..5,
        chunk in 1usize..600,
        budget_pool in proptest::collection::vec(0u64..2_500, 1..5),
    ) {
        let palette = [
            ProcessorConfig::baseline(64, 300),
            ProcessorConfig::cooo(32, 512, 300),
            ProcessorConfig::cooo(16, 256, 300),
            ProcessorConfig::baseline(128, 300),
        ];
        let configs: Vec<ProcessorConfig> =
            (0..lanes).map(|i| palette[i % palette.len()]).collect();
        // Values below 150 mean "uncapped": a mix of None and staggered
        // caps, without needing an Option strategy.
        let budgets: Vec<Option<u64>> = (0..lanes)
            .map(|i| Some(budget_pool[i % budget_pool.len()]).filter(|&b| b >= 150))
            .collect();
        let trace = proptest_trace();
        let got = LockstepSweep::new(&configs, trace)
            .budgets(&budgets)
            .chunk(chunk)
            .run();
        for ((config, budget), stats) in configs.iter().zip(&budgets).zip(&got) {
            let reference = Processor::new(*config, trace).run_capped(*budget);
            prop_assert_eq!(stats, &reference);
        }
    }
}

#[test]
fn lockstep_helper_and_sweep_agree() {
    let trace = proptest_trace();
    let configs = [
        ProcessorConfig::baseline(64, 300),
        ProcessorConfig::cooo(32, 512, 300),
    ];
    let direct = run_lockstep(&configs, trace, None);
    let swept = Sweep::over(configs)
        .workloads(Suite::custom(vec![koc_workloads::Workload::generate(
            "stream_add",
            kernels::stream_add(),
            1_500,
        )]))
        .exec_mode(ExecMode::Lockstep)
        .run();
    for (ci, stats) in direct.iter().enumerate() {
        // Same kernel, same seed, same target length: the sweep's workload
        // stream is the same stream.
        assert_eq!(
            stats.cycles, swept[ci].per_workload[0].stats.cycles,
            "Sweep lockstep and run_lockstep must drive identical lanes"
        );
    }
}
