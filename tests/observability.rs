//! Acceptance gates for the zero-perturbation observability layer.
//!
//! The observer seam's contract has three legs, each pinned here:
//!
//! 1. **Zero perturbation** — attaching any observer (tracer, timeline,
//!    cycle accounting, or compositions) leaves every statistic bit-identical
//!    to the unobserved run, in both ingestion modes, against the committed
//!    `bench/baseline.json` cycle counts.
//! 2. **Gap-replay exactness** — the event-driven fast-forward replays
//!    observer samples for skipped cycles exactly: traces, timelines and
//!    bucket counts match the per-cycle-stepping run event for event.
//! 3. **Format stability** — the `koc-ptrace/1` and Kanata renderings of a
//!    tiny deterministic kernel are pinned as golden fixtures, and the
//!    `koc-timeline/1` JSON round-trips through the workspace parser at
//!    full u64 precision (including values above 2^53).

use koc_bench::harness::{engines, specs, QUICK_TRACE_LEN};
use koc_isa::json::{parse_json, Json};
use koc_isa::{ArchReg, TraceBuilder};
use koc_obs::{
    timeline_json, CycleAccounting, CycleBuckets, IntervalRecord, PipelineTracer, TimelineRecorder,
};
use koc_sim::{Processor, ProcessorConfig};
use proptest::prelude::*;

/// The committed harness baseline's cycle count for `(workload, engine)`.
fn baseline_cycles(workload: &str, engine: &str) -> u64 {
    let text = std::fs::read_to_string("bench/baseline.json").expect("bench/baseline.json");
    let json = parse_json(&text).expect("baseline parses");
    let Some(Json::Arr(results)) = json.get("results") else {
        panic!("baseline has no results");
    };
    results
        .iter()
        .find(|e| {
            e.get("workload").and_then(Json::as_str) == Some(workload)
                && e.get("engine").and_then(Json::as_str) == Some(engine)
        })
        .and_then(|e| e.get("cycles").and_then(Json::as_u64))
        .unwrap_or_else(|| panic!("no baseline entry for {workload}/{engine}"))
}

#[test]
fn observers_are_zero_perturbation_across_the_quick_suite() {
    for (engine, config) in engines() {
        for spec in specs(QUICK_TRACE_LEN) {
            let w = spec.materialize();
            let plain = Processor::new(config, &w.trace).run();
            assert_eq!(
                plain.cycles,
                baseline_cycles(spec.name(), engine),
                "{}/{engine}: unobserved run drifted from bench/baseline.json",
                spec.name()
            );
            // Materialized ingestion with the timeline + accounting pair.
            let obs = (TimelineRecorder::new(512), CycleAccounting::new());
            let (observed, (_, accounting)) =
                Processor::with_observer(config, &w.trace, obs).run_observed();
            assert_eq!(
                observed,
                plain,
                "{}/{engine}: observers must not perturb the run",
                spec.name()
            );
            assert_eq!(
                accounting.buckets().total(),
                observed.cycles,
                "{}/{engine}: every cycle must land in exactly one bucket",
                spec.name()
            );
            // Streamed ingestion with the event tracer attached.
            let (streamed, _tracer) =
                Processor::with_observer(config, spec.source(), PipelineTracer::new())
                    .run_observed();
            assert_eq!(
                streamed,
                plain,
                "{}/{engine}: streamed observed run must match",
                spec.name()
            );
        }
    }
}

#[test]
fn fast_forward_replays_observer_streams_exactly() {
    for (engine, config) in engines() {
        let spec = specs(QUICK_TRACE_LEN)
            .into_iter()
            .find(|s| s.name() == "gather")
            .expect("gather is in the canonical suite");
        let w = spec.materialize();
        let run = |config: ProcessorConfig| {
            let obs = (
                PipelineTracer::new(),
                (TimelineRecorder::new(128), CycleAccounting::new()),
            );
            Processor::with_observer(config, &w.trace, obs).run_observed()
        };
        let (fast_stats, (fast_trace, (fast_timeline, fast_acct))) = run(config);
        let (slow_stats, (slow_trace, (slow_timeline, slow_acct))) =
            run(config.with_fast_forward(false));
        assert_eq!(fast_stats, slow_stats, "{engine}: stats must match");
        assert_eq!(
            fast_trace.events(),
            slow_trace.events(),
            "{engine}: fast-forward must not change the event stream"
        );
        assert_eq!(
            fast_timeline.records(),
            slow_timeline.records(),
            "{engine}: interval records must replay exactly across gaps"
        );
        assert_eq!(
            fast_acct.buckets(),
            slow_acct.buckets(),
            "{engine}: bucket counts must replay exactly across gaps"
        );
        assert_eq!(fast_acct.buckets().total(), fast_stats.cycles);
    }
}

#[test]
fn checkpoint_lifecycle_balances_on_completed_runs() {
    let spec = specs(QUICK_TRACE_LEN)
        .into_iter()
        .find(|s| s.name() == "gather")
        .expect("gather is in the canonical suite");
    let w = spec.materialize();
    let stats = Processor::new(ProcessorConfig::cooo(128, 2048, 1000), &w.trace).run();
    assert!(stats.checkpoints_taken >= 1);
    assert_eq!(
        stats.checkpoints_taken,
        stats.checkpoints_committed + stats.checkpoints_squashed,
        "every checkpoint taken must commit or squash by the end of the run"
    );
}

/// The tiny deterministic kernel behind the golden fixtures: two dependent
/// ALU ops and a cold load on the 64-entry baseline with 100-cycle memory.
fn golden_run() -> PipelineTracer {
    let mut b = TraceBuilder::named("golden");
    b.int_alu(ArchReg::int(1), &[]);
    b.int_alu(ArchReg::int(2), &[ArchReg::int(1)]);
    b.load(ArchReg::int(3), ArchReg::int(2), 0x40);
    let trace = b.finish();
    let (stats, tracer) = Processor::with_observer(
        ProcessorConfig::baseline(64, 100),
        &trace,
        PipelineTracer::new(),
    )
    .run_observed();
    assert_eq!(stats.committed_instructions, 3);
    assert_eq!(stats.cycles, 116);
    tracer
}

#[test]
fn golden_kanata_fixture_for_the_tiny_kernel() {
    let expected = "Kanata\t0004\n\
        C=\t1\n\
        I\t0\t0\t0\nL\t0\t0\t#0 int-alu\nS\t0\t0\tF\nE\t0\t0\tF\nS\t0\t0\tWa\n\
        I\t1\t1\t0\nL\t1\t0\t#1 int-alu\nS\t1\t0\tF\nE\t1\t0\tF\nS\t1\t0\tWa\n\
        I\t2\t2\t0\nL\t2\t0\t#2 load\nS\t2\t0\tF\nE\t2\t0\tF\nS\t2\t0\tWa\n\
        C\t1\n\
        E\t0\t0\tWa\nS\t0\t0\tEx\n\
        C\t1\n\
        E\t0\t0\tEx\nS\t0\t0\tCm\nE\t0\t0\tCm\nR\t0\t0\t0\n\
        E\t1\t0\tWa\nS\t1\t0\tEx\n\
        C\t1\n\
        E\t1\t0\tEx\nS\t1\t0\tCm\nE\t1\t0\tCm\nR\t1\t1\t0\n\
        E\t2\t0\tWa\nS\t2\t0\tEx\n\
        C\t112\n\
        E\t2\t0\tEx\nS\t2\t0\tCm\nE\t2\t0\tCm\nR\t2\t2\t0\n";
    assert_eq!(golden_run().to_kanata(), expected);
}

#[test]
fn golden_ptrace_fixture_for_the_tiny_kernel() {
    let json = golden_run().to_ptrace_json();
    let expected = concat!(
        r#"{"schema":"koc-ptrace/1","events":["#,
        r#"{"cycle":1,"type":"fetch","inst":0,"kind":"int-alu"},"#,
        r#"{"cycle":1,"type":"rename","inst":0},"#,
        r#"{"cycle":1,"type":"dispatch","inst":0,"ckpt":0},"#,
        r#"{"cycle":1,"type":"fetch","inst":1,"kind":"int-alu"},"#,
        r#"{"cycle":1,"type":"rename","inst":1},"#,
        r#"{"cycle":1,"type":"dispatch","inst":1,"ckpt":0},"#,
        r#"{"cycle":1,"type":"fetch","inst":2,"kind":"load"},"#,
        r#"{"cycle":1,"type":"rename","inst":2},"#,
        r#"{"cycle":1,"type":"dispatch","inst":2,"ckpt":0},"#,
        r#"{"cycle":2,"type":"issue","inst":0},"#,
        r#"{"cycle":3,"type":"complete","inst":0},"#,
        r#"{"cycle":3,"type":"commit","inst":0},"#,
        r#"{"cycle":3,"type":"issue","inst":1},"#,
        r#"{"cycle":4,"type":"complete","inst":1},"#,
        r#"{"cycle":4,"type":"commit","inst":1},"#,
        r#"{"cycle":4,"type":"issue","inst":2},"#,
        r#"{"cycle":116,"type":"complete","inst":2},"#,
        r#"{"cycle":116,"type":"commit","inst":2}]}"#,
    );
    assert_eq!(json, expected);
    // The fixture must stay parseable by the workspace JSON parser.
    let doc = parse_json(&json).expect("ptrace JSON parses");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("koc-ptrace/1")
    );
    let Some(Json::Arr(events)) = doc.get("events") else {
        panic!("events array missing");
    };
    assert_eq!(events.len(), 18);
}

/// Reads back one named u64 field from a parsed interval record.
fn record_u64(record: &Json, key: &str) -> u64 {
    record
        .get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("record field {key} missing or not u64"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `koc-timeline/1` documents round-trip through `koc_isa::json` with
    /// exact u64 semantics — no f64 truncation above 2^53.
    #[test]
    fn timeline_json_round_trips_exact_u64(
        interval in 1u64..=u64::MAX,
        start_cycle in any::<u64>(),
        cycles in any::<u64>(),
        committed in any::<u64>(),
        inflight_sum in any::<u64>(),
        memory_wait in any::<u64>(),
        execute_wait in any::<u64>(),
    ) {
        let record = IntervalRecord {
            start_cycle,
            cycles,
            committed,
            inflight_sum,
            stall: CycleBuckets {
                memory_wait,
                execute_wait,
                ..Default::default()
            },
            ..Default::default()
        };
        let json = timeline_json(interval, &[record]);
        let doc = parse_json(&json).expect("timeline JSON parses");
        prop_assert_eq!(doc.get("schema").and_then(Json::as_str), Some("koc-timeline/1"));
        prop_assert_eq!(doc.get("interval").and_then(Json::as_u64), Some(interval));
        let Some(Json::Arr(records)) = doc.get("records") else {
            panic!("records array missing");
        };
        prop_assert_eq!(records.len(), 1);
        let r = &records[0];
        prop_assert_eq!(record_u64(r, "start_cycle"), start_cycle);
        prop_assert_eq!(record_u64(r, "cycles"), cycles);
        prop_assert_eq!(record_u64(r, "committed"), committed);
        prop_assert_eq!(record_u64(r, "inflight_sum"), inflight_sum);
        let stall = r.get("stall").expect("stall object");
        prop_assert_eq!(record_u64(stall, "memory_wait"), memory_wait);
        prop_assert_eq!(record_u64(stall, "execute_wait"), execute_wait);
    }
}

#[test]
fn timeline_json_preserves_values_beyond_f64_precision() {
    // 2^53 + 1 is the first integer an f64 cannot represent; u64::MAX is the
    // worst case. Both must survive the round trip bit-exactly.
    for value in [9_007_199_254_740_993u64, u64::MAX] {
        let record = IntervalRecord {
            committed: value,
            ..Default::default()
        };
        let json = timeline_json(1, &[record]);
        let doc = parse_json(&json).expect("parses");
        let Some(Json::Arr(records)) = doc.get("records") else {
            panic!("records array missing");
        };
        assert_eq!(record_u64(&records[0], "committed"), value);
    }
}

#[test]
fn malformed_timeline_documents_are_rejected() {
    for bad in [
        "",
        "{",
        r#"{"schema":"koc-timeline/1","records":"#,
        r#"{"schema":"koc-timeline/1"} trailing"#,
    ] {
        assert!(parse_json(bad).is_err(), "{bad:?} should not parse");
    }
}
