//! Property-based tests: randomly generated kernel configurations and
//! hand-built traces always simulate to completion with consistent
//! accounting, on both commit engines.

use koc_isa::{ArchReg, Trace, TraceBuilder};
use koc_sim::{Processor, ProcessorConfig, SimStats};
use koc_workloads::{generate_kernel, DependencePattern, KernelConfig, MemoryPattern};

fn run_trace(config: ProcessorConfig, trace: &Trace) -> SimStats {
    Processor::new(config, trace).run()
}
use proptest::prelude::*;

fn arb_memory_pattern() -> impl Strategy<Value = MemoryPattern> {
    prop_oneof![
        (1u64..=64).prop_map(|s| MemoryPattern::Streaming {
            stride_bytes: s * 8
        }),
        (1u64..=64).prop_map(|t| MemoryPattern::Blocked {
            tile_bytes: t * 1024
        }),
        (1u64..=64).prop_map(|t| MemoryPattern::Gather {
            table_bytes: t * 1024 * 1024
        }),
    ]
}

fn arb_dependence() -> impl Strategy<Value = DependencePattern> {
    prop_oneof![
        Just(DependencePattern::Independent),
        Just(DependencePattern::IntraIterationChain),
        Just(DependencePattern::LoopCarried),
    ]
}

prop_compose! {
    fn arb_kernel()(
        iterations in 2usize..30,
        unroll in 1usize..12,
        loads_per_unit in 1usize..4,
        fp_per_load in 0usize..4,
        stores_per_unit in 0usize..3,
        memory in arb_memory_pattern(),
        dependence in arb_dependence(),
        irregular in 0.0f64..0.2,
        seed in any::<u64>(),
    ) -> KernelConfig {
        KernelConfig {
            iterations,
            unroll,
            loads_per_unit,
            fp_per_load,
            stores_per_unit,
            memory,
            dependence,
            irregular_branch_prob: irregular,
            seed,
        }
    }
}

/// A small random straight-line trace built directly from the builder.
fn arb_trace() -> impl Strategy<Value = Trace> {
    proptest::collection::vec((0u8..6, 0u8..28, any::<u16>()), 1..300).prop_map(|ops| {
        let mut b = TraceBuilder::named("random");
        let base = ArchReg::int(1);
        for (kind, reg, addr) in ops {
            let f = ArchReg::fp(reg % 28);
            match kind {
                0 => {
                    b.int_alu(ArchReg::int(reg % 30 + 1), &[base]);
                }
                1 => {
                    b.fp_alu(f, &[ArchReg::fp((reg + 1) % 28)]);
                }
                2 => {
                    b.load(f, base, 0x1000_0000 + addr as u64 * 64);
                }
                3 => {
                    b.store(f, base, 0x2000_0000 + addr as u64 * 64);
                }
                4 => {
                    let target = b.pc() + 16;
                    b.branch_to(base, addr % 2 == 0, target);
                }
                _ => {
                    b.fp_div(f, &[ArchReg::fp((reg + 2) % 28)]);
                }
            }
        }
        b.finish()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_kernels_are_valid_and_deterministic(config in arb_kernel()) {
        prop_assert!(config.validate().is_ok());
        let a = generate_kernel("k", &config);
        let b = generate_kernel("k", &config);
        prop_assert_eq!(&a, &b, "generation must be deterministic");
        prop_assert!(!a.is_empty());
        // Every load/store carries an address; every branch carries an outcome.
        for inst in a.iter() {
            if inst.kind.is_memory() {
                prop_assert!(inst.mem.is_some());
            }
            if inst.is_branch() {
                prop_assert!(inst.branch.is_some());
            }
        }
    }

    #[test]
    fn random_kernels_complete_on_both_engines(config in arb_kernel()) {
        let trace = generate_kernel("k", &config);
        let baseline = run_trace(ProcessorConfig::baseline(64, 100), &trace);
        prop_assert_eq!(baseline.committed_instructions as usize, trace.len());
        let cooo = run_trace(ProcessorConfig::cooo(32, 256, 100), &trace);
        prop_assert_eq!(cooo.committed_instructions as usize, trace.len());
        prop_assert_eq!(
            cooo.checkpoints_taken,
            cooo.checkpoints_committed + cooo.checkpoints_squashed,
            "every checkpoint taken must commit or be squashed by recovery"
        );
    }

    #[test]
    fn random_straightline_traces_complete(trace in arb_trace()) {
        let baseline = run_trace(ProcessorConfig::baseline(32, 100), &trace);
        prop_assert_eq!(baseline.committed_instructions as usize, trace.len());
        let cooo = run_trace(ProcessorConfig::cooo(16, 128, 100), &trace);
        prop_assert_eq!(cooo.committed_instructions as usize, trace.len());
    }

    #[test]
    fn ipc_never_exceeds_the_machine_width(config in arb_kernel()) {
        let trace = generate_kernel("k", &config);
        let stats = run_trace(ProcessorConfig::baseline(256, 100), &trace);
        prop_assert!(stats.ipc() <= 4.0 + 1e-9);
    }
}
