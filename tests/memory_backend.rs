//! Integration tests for the pluggable timed memory backend: parity with
//! the paper's flat model, the DRAM/MSHR back-pressure axis, prefetching,
//! and the configuration plumbing through the session API.

use koc_sim::{
    BackendKind, CommitConfig, DramConfig, PrefetchConfig, ProcessorConfig, SimBuilder, Suite,
    Sweep,
};
use koc_workloads::kernels;

/// Cycle counts recorded from the pre-backend hierarchy (the seed code) on
/// the full paper suite at `trace_len = 4000`: `FlatLatency` must reproduce
/// them exactly, for both commit engines.
const SEED_GOLDEN: &[(&str, u64, u64, u64)] = &[
    // (workload, baseline-128 cycles, COoO-32/512 cycles, committed)
    ("stream_add", 24_674, 2_675, 4_060),
    ("stencil27", 31_695, 6_088, 4_104),
    ("dense_blocked", 29_632, 2_456, 4_180),
    ("reduction", 29_608, 5_829, 4_004),
    ("gather", 32_506, 5_064, 4_072),
];

#[test]
fn flat_backend_reproduces_seed_cycle_counts_exactly() {
    let workloads = Suite::paper().generate(4_000);
    let results = Sweep::over([
        ProcessorConfig::baseline(128, 1000),
        ProcessorConfig::cooo(32, 512, 1000),
    ])
    .run_on(&workloads);
    for (i, &(name, base_cycles, cooo_cycles, committed)) in SEED_GOLDEN.iter().enumerate() {
        let base = &results[0].per_workload[i];
        let cooo = &results[1].per_workload[i];
        assert_eq!(base.workload, name);
        assert_eq!(
            (base.stats.cycles, base.stats.committed_instructions),
            (base_cycles, committed),
            "baseline diverged from the seed on {name}"
        );
        assert_eq!(
            (cooo.stats.cycles, cooo.stats.committed_instructions),
            (cooo_cycles, committed),
            "checkpointed engine diverged from the seed on {name}"
        );
    }
}

#[test]
fn ideal_dram_matches_flat_latency_cycle_for_cycle() {
    let workloads = Suite::paper().generate(2_000);
    for commit in [
        CommitConfig::InOrderRob { rob_size: 128 },
        CommitConfig::cooo(32, 512),
    ] {
        let mut flat = ProcessorConfig::baseline(128, 1000);
        flat.commit = commit;
        let mut dram = flat;
        dram.memory = dram.memory.with_dram(DramConfig::ideal());
        let results = Sweep::over([flat, dram]).run_on(&workloads);
        for (f, d) in results[0]
            .per_workload
            .iter()
            .zip(results[1].per_workload.iter())
        {
            assert_eq!(
                f.stats.committed_instructions, d.stats.committed_instructions,
                "retired counts must match on {}",
                f.workload
            );
            assert_eq!(
                f.stats.cycles, d.stats.cycles,
                "unlimited MSHRs + free rows must equal the flat model on {}",
                f.workload
            );
        }
    }
}

#[test]
fn mshr_starvation_throttles_the_streaming_workload() {
    let session = |mshrs: usize| {
        SimBuilder::cooo()
            .pseudo_rob(128)
            .sliq(2048)
            .memory_latency(500)
            .mshr_entries(mshrs)
            .dram_banks(16)
            .workloads(Suite::kernel("stream_mlp", kernels::stream_mlp()))
            .trace_len(3_000)
            .build()
            .run()
    };
    let starved = session(1);
    let fed = session(16);
    assert!(
        fed.mean_ipc() > starved.mean_ipc() * 2.0,
        "16 MSHRs must beat 1 on independent misses: {:.3} vs {:.3}",
        fed.mean_ipc(),
        starved.mean_ipc()
    );
    let stats = &starved.per_workload[0].stats;
    assert!(
        stats.memory.mshr_full_stalls > 0,
        "a single MSHR must back-pressure: {:?}",
        stats.memory
    );
    assert!(
        stats.memory.row_buffer_hits
            + stats.memory.row_buffer_misses
            + stats.memory.row_buffer_conflicts
            > 0,
        "DRAM row activity must be recorded"
    );
}

#[test]
fn pointer_chase_gains_nothing_from_mshrs() {
    let run = |mshrs: usize| {
        SimBuilder::cooo()
            .memory_latency(500)
            .mshr_entries(mshrs)
            .workloads(Suite::kernel("pointer_chase", kernels::pointer_chase()))
            .trace_len(600)
            .build()
            .run()
            .mean_ipc()
    };
    let one = run(1);
    let many = run(32);
    let ratio = many / one;
    assert!(
        (0.95..=1.05).contains(&ratio),
        "a dependent chain has MLP 1: {one:.4} vs {many:.4}"
    );
}

#[test]
fn stride_prefetching_helps_the_streaming_workload() {
    let run = |prefetch: PrefetchConfig| {
        SimBuilder::cooo()
            .memory_latency(1000)
            .prefetch(prefetch)
            .workloads(Suite::kernel("stream_add", kernels::stream_add()))
            .trace_len(3_000)
            .build()
            .run()
    };
    let off = run(PrefetchConfig::Off);
    let on = run(PrefetchConfig::stride());
    let stats = &on.per_workload[0].stats;
    assert!(
        stats.memory.prefetch_issued > 0,
        "the unit-stride stream must trigger prefetches: {:?}",
        stats.memory
    );
    assert!(
        stats.memory.prefetch_useful > 0,
        "prefetched lines must get used: {:?}",
        stats.memory
    );
    assert!(
        on.mean_ipc() >= off.mean_ipc(),
        "prefetching a perfect stream must not hurt: {:.3} vs {:.3}",
        on.mean_ipc(),
        off.mean_ipc()
    );
}

#[test]
fn backend_knobs_flow_through_the_builder() {
    let builder = SimBuilder::cooo()
        .mshr_entries(8)
        .dram_banks(4)
        .row_buffer(8 * 1024)
        .prefetch(PrefetchConfig::Stride {
            degree: 2,
            streams: 4,
        });
    let mem = builder.config().memory;
    match mem.backend {
        BackendKind::Dram(d) => {
            assert_eq!((d.mshr_entries, d.banks, d.row_bytes), (8, 4, 8 * 1024));
        }
        BackendKind::Flat => panic!("knobs must upgrade the backend to DRAM"),
    }
    assert_eq!(
        mem.prefetch,
        PrefetchConfig::Stride {
            degree: 2,
            streams: 4
        }
    );
    // The whole-backend override wins over per-knob upgrades.
    let flat_again = builder.memory_backend(BackendKind::Flat);
    assert_eq!(flat_again.config().memory.backend, BackendKind::Flat);
}

#[test]
fn prefetching_composes_with_dram_and_still_commits_everything() {
    let result = SimBuilder::baseline(128)
        .memory_latency(500)
        .dram(DramConfig::table1_like())
        .prefetch(PrefetchConfig::stride())
        .workloads(Suite::mlp_contrast())
        .trace_len(1_500)
        .build()
        .run();
    assert_eq!(result.per_workload.len(), 2);
    for w in &result.per_workload {
        assert!(
            w.stats.committed_instructions >= 1_500,
            "{} must commit its whole trace under back-pressure",
            w.workload
        );
    }
}
