//! Physical register file state: free list, ready bits, and the
//! virtual/ephemeral register variant used by Figure 14.

use koc_isa::PhysReg;
use serde::{Deserialize, Serialize};

/// Free list + ready (scoreboard) bits for a pool of physical registers.
///
/// The paper keeps the free list as one bit per physical register
/// (Figure 3); this structure does the same and adds the ready bit the issue
/// logic needs.
///
/// The free list is a two-level bitmap: 64 registers per `u64` word plus a
/// summary word per 64 words. Allocation — which runs once per dispatched
/// instruction and must find the **lowest** free index (the paper-era policy
/// every committed baseline was recorded under) — is a find-first-set over
/// the summary instead of a linear probe across the pool, so its cost no
/// longer grows with window occupancy. With Table 1's 4096 registers and a
/// kilo-instruction window in flight, the old scan walked ~4000 slots per
/// rename.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhysRegFile {
    num_regs: usize,
    /// Bit set = register free, 64 registers per word.
    free_words: Vec<u64>,
    /// Bit `w` of `summary[g]` set iff `free_words[g * 64 + w] != 0`.
    summary: Vec<u64>,
    ready: Vec<bool>,
    free_count: usize,
}

impl PhysRegFile {
    /// Creates a register file with `num_regs` physical registers, all free.
    ///
    /// # Panics
    /// Panics if `num_regs` is zero.
    pub fn new(num_regs: usize) -> Self {
        assert!(
            num_regs > 0,
            "register file must have at least one register"
        );
        let words = num_regs.div_ceil(64);
        let mut free_words = vec![u64::MAX; words];
        if !num_regs.is_multiple_of(64) {
            // Registers past the pool are permanently non-free.
            free_words[words - 1] = (1u64 << (num_regs % 64)) - 1;
        }
        let groups = words.div_ceil(64);
        let mut summary = vec![u64::MAX; groups];
        if !words.is_multiple_of(64) {
            summary[groups - 1] = (1u64 << (words % 64)) - 1;
        }
        PhysRegFile {
            num_regs,
            free_words,
            summary,
            ready: vec![false; num_regs],
            free_count: num_regs,
        }
    }

    /// Total number of physical registers.
    pub fn num_regs(&self) -> usize {
        self.num_regs
    }

    /// Number of currently free physical registers.
    pub fn free_count(&self) -> usize {
        self.free_count
    }

    fn clear_free_bit(&mut self, idx: usize) {
        let w = idx / 64;
        self.free_words[w] &= !(1u64 << (idx % 64));
        if self.free_words[w] == 0 {
            self.summary[w / 64] &= !(1u64 << (w % 64));
        }
    }

    fn set_free_bit(&mut self, idx: usize) {
        let w = idx / 64;
        self.free_words[w] |= 1u64 << (idx % 64);
        self.summary[w / 64] |= 1u64 << (w % 64);
    }

    /// Allocates the lowest-indexed free physical register, or `None` if the
    /// pool is exhausted.
    ///
    /// Newly allocated registers start *not ready* (their producer has not
    /// executed yet).
    pub fn alloc(&mut self) -> Option<PhysReg> {
        let g = self.summary.iter().position(|&s| s != 0)?;
        let w = g * 64 + self.summary[g].trailing_zeros() as usize;
        let idx = w * 64 + self.free_words[w].trailing_zeros() as usize;
        self.clear_free_bit(idx);
        self.ready[idx] = false;
        self.free_count -= 1;
        Some(PhysReg(idx as u32))
    }

    /// Returns a physical register to the free list.
    ///
    /// Freeing an already-free register is a logic error in the commit
    /// machinery and panics.
    pub fn free(&mut self, reg: PhysReg) {
        let idx = reg.index();
        assert!(!self.is_free(reg), "double free of {reg}");
        self.set_free_bit(idx);
        self.ready[idx] = false;
        self.free_count += 1;
    }

    /// Whether `reg` currently holds a produced value.
    pub fn is_ready(&self, reg: PhysReg) -> bool {
        self.ready[reg.index()]
    }

    /// Marks `reg` as produced (write-back broadcast).
    pub fn set_ready(&mut self, reg: PhysReg) {
        self.ready[reg.index()] = true;
    }

    /// Marks `reg` as not produced (used when re-dispatching after rollback).
    pub fn clear_ready(&mut self, reg: PhysReg) {
        self.ready[reg.index()] = false;
    }

    /// Whether `reg` is currently on the free list.
    pub fn is_free(&self, reg: PhysReg) -> bool {
        let idx = reg.index();
        self.free_words[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Snapshot of the free list as a bit vector (one bool per register).
    pub fn free_list_snapshot(&self) -> Vec<bool> {
        (0..self.num_regs)
            .map(|i| self.free_words[i / 64] & (1u64 << (i % 64)) != 0)
            .collect() // koc-lint: allow(hot-path-alloc, "checkpoint snapshot, taken per checkpoint not per cycle")
    }

    /// Restores the free list from a snapshot taken by
    /// [`free_list_snapshot`](Self::free_list_snapshot).
    ///
    /// # Panics
    /// Panics if the snapshot length does not match the register count.
    pub fn restore_free_list(&mut self, snapshot: &[bool]) {
        assert_eq!(snapshot.len(), self.num_regs, "snapshot size mismatch");
        self.free_words.fill(0);
        self.summary.fill(0);
        self.free_count = 0;
        for (idx, &free) in snapshot.iter().enumerate() {
            if free {
                self.set_free_bit(idx);
                self.free_count += 1;
            }
        }
    }
}

/// Occupancy model for *ephemeral / virtual registers* (Figure 14).
///
/// In the virtual-register scheme (refs. 19 and 21 in the paper) an
/// instruction
/// only needs a *virtual tag* at rename time; a physical register is
/// allocated late, when the instruction produces its result, and is released
/// early, when the superseding definition commits. This structure tracks the
/// two occupancies so the pipeline can stall on whichever resource is
/// exhausted.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VirtualRegisterFile {
    virtual_capacity: usize,
    physical_capacity: usize,
    virtual_in_use: usize,
    physical_in_use: usize,
}

impl VirtualRegisterFile {
    /// Creates a virtual register file with the given tag and physical
    /// register capacities.
    pub fn new(virtual_capacity: usize, physical_capacity: usize) -> Self {
        VirtualRegisterFile {
            virtual_capacity,
            physical_capacity,
            virtual_in_use: 0,
            physical_in_use: 0,
        }
    }

    /// Number of virtual tags still available.
    pub fn virtual_free(&self) -> usize {
        self.virtual_capacity - self.virtual_in_use
    }

    /// Number of physical registers still available.
    pub fn physical_free(&self) -> usize {
        self.physical_capacity - self.physical_in_use
    }

    /// Acquires a virtual tag at rename. Returns `false` (stall) if none left.
    pub fn acquire_virtual(&mut self) -> bool {
        if self.virtual_in_use < self.virtual_capacity {
            self.virtual_in_use += 1;
            true
        } else {
            false
        }
    }

    /// Upgrades a virtual tag to a physical register at write-back.
    /// Returns `false` (stall the write-back) if no physical register is free.
    pub fn acquire_physical(&mut self) -> bool {
        if self.physical_in_use < self.physical_capacity {
            self.physical_in_use += 1;
            true
        } else {
            false
        }
    }

    /// Releases the virtual tag (at checkpoint commit or squash).
    pub fn release_virtual(&mut self) {
        assert!(self.virtual_in_use > 0, "virtual tag underflow");
        self.virtual_in_use -= 1;
    }

    /// Releases a physical register (early release at checkpoint commit of
    /// the superseding definition, or squash of a completed instruction).
    pub fn release_physical(&mut self) {
        assert!(self.physical_in_use > 0, "physical register underflow");
        self.physical_in_use -= 1;
    }

    /// Releases a physical register if any is in use; returns whether a
    /// release happened. The pipeline uses this at commit, where the
    /// occupancy model can conservatively under-count acquisitions.
    pub fn try_release_physical(&mut self) -> bool {
        if self.physical_in_use > 0 {
            self.physical_in_use -= 1;
            true
        } else {
            false
        }
    }

    /// Number of physical registers currently occupied.
    pub fn physical_in_use(&self) -> usize {
        self.physical_in_use
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_round_trip() {
        let mut rf = PhysRegFile::new(4);
        assert_eq!(rf.free_count(), 4);
        let a = rf.alloc().unwrap();
        let b = rf.alloc().unwrap();
        assert_ne!(a, b);
        assert_eq!(rf.free_count(), 2);
        rf.free(a);
        assert_eq!(rf.free_count(), 3);
        assert!(rf.is_free(a));
        assert!(!rf.is_free(b));
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut rf = PhysRegFile::new(2);
        assert!(rf.alloc().is_some());
        assert!(rf.alloc().is_some());
        assert!(rf.alloc().is_none());
    }

    #[test]
    fn ready_bits_track_production() {
        let mut rf = PhysRegFile::new(4);
        let r = rf.alloc().unwrap();
        assert!(!rf.is_ready(r));
        rf.set_ready(r);
        assert!(rf.is_ready(r));
        rf.clear_ready(r);
        assert!(!rf.is_ready(r));
    }

    #[test]
    fn freed_register_is_not_ready_when_reallocated() {
        let mut rf = PhysRegFile::new(1);
        let r = rf.alloc().unwrap();
        rf.set_ready(r);
        rf.free(r);
        let r2 = rf.alloc().unwrap();
        assert_eq!(r, r2);
        assert!(!rf.is_ready(r2));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut rf = PhysRegFile::new(2);
        let r = rf.alloc().unwrap();
        rf.free(r);
        rf.free(r);
    }

    #[test]
    fn snapshot_and_restore_free_list() {
        let mut rf = PhysRegFile::new(4);
        let _a = rf.alloc().unwrap();
        let snap = rf.free_list_snapshot();
        let b = rf.alloc().unwrap();
        let c = rf.alloc().unwrap();
        assert_eq!(rf.free_count(), 1);
        rf.restore_free_list(&snap);
        assert_eq!(rf.free_count(), 3);
        assert!(rf.is_free(b));
        assert!(rf.is_free(c));
    }

    #[test]
    fn virtual_register_file_enforces_both_capacities() {
        let mut v = VirtualRegisterFile::new(2, 1);
        assert!(v.acquire_virtual());
        assert!(v.acquire_virtual());
        assert!(!v.acquire_virtual(), "virtual tags exhausted");
        assert!(v.acquire_physical());
        assert!(!v.acquire_physical(), "physical registers exhausted");
        v.release_physical();
        assert!(v.acquire_physical());
        v.release_virtual();
        assert_eq!(v.virtual_free(), 1);
        assert_eq!(v.physical_in_use(), 1);
        assert!(v.try_release_physical());
        assert!(!v.try_release_physical(), "nothing left to release");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn virtual_underflow_panics() {
        let mut v = VirtualRegisterFile::new(2, 2);
        v.release_virtual();
    }
}
