//! # koc-core
//!
//! The microarchitectural mechanisms proposed by *Out-of-Order Commit
//! Processors* (HPCA 2004), plus the window structures they replace:
//!
//! **The paper's contribution**
//! * [`rename::CamRenameMap`] — CAM register mapping extended with the
//!   *Future Free* bit column (Figures 3–6),
//! * [`checkpoint`] — the checkpoint table and the taking/committing/rollback
//!   logic that replaces in-order ROB commit (Figure 2),
//! * [`pseudo_rob::PseudoRob`] — the small FIFO that delays the
//!   long-latency-instruction decision and recovers nearby branches,
//! * [`sliq`] — Slow Lane Instruction Queuing: the dependence-mask detector
//!   and the secondary buffer with its wake-up walker (Figure 8),
//! * [`regfile::VirtualRegisterFile`] — the ephemeral/virtual register model
//!   used by the combined experiment (Figure 14).
//!
//! **Conventional structures** (used by the baseline and shared by both
//! machines): [`rob::ReorderBuffer`], [`iq::InstructionQueue`],
//! [`lsq::LoadStoreQueue`], [`regfile::PhysRegFile`].
//!
//! All structures are plain data structures driven one cycle at a time by the
//! pipeline in `koc-sim`; they own no global state and are directly unit- and
//! property-testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod depmask;
pub mod flatmap;
pub mod iq;
pub mod lsq;
pub mod pseudo_rob;
pub mod regfile;
pub mod rename;
pub mod rob;
pub mod sliq;

pub use checkpoint::{Checkpoint, CheckpointId, CheckpointPolicy, CheckpointTable};
pub use depmask::DependenceMask;
pub use flatmap::FlatMap;
pub use iq::{InstructionQueue, IqEntry, IqFull};
pub use lsq::{LoadStoreQueue, LsqEntry, LsqFull};
pub use pseudo_rob::{PseudoRob, PseudoRobEntry, RetireClass};
pub use regfile::{PhysRegFile, VirtualRegisterFile};
pub use rename::{CamRenameMap, RenameCheckpoint, RenamedInst};
pub use rob::{ReorderBuffer, RobEntry, RobFull};
pub use sliq::{DependenceTracker, SliqBuffer, SliqConfig, WakeupWalker};
