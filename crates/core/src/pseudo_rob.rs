//! The pseudo-ROB (Section 3).
//!
//! A small FIFO that every dispatched instruction enters. Instructions leave
//! not because they commit (the checkpoints handle commit) but because they
//! are the oldest entries and the structure is full. At extraction time the
//! processor knows whether the instruction executed quickly, is a
//! long-latency load, or depends on one — the decision the SLIQ mechanism
//! needs — and Figure 12 reports the breakdown of these classes.
//!
//! The pseudo-ROB doubles as the recovery window for nearby branches: a
//! mispredicted branch that is still inside the pseudo-ROB is recovered by
//! walking back the rename map (like a conventional ROB squash) instead of
//! rolling back to a checkpoint.

use crate::checkpoint::CheckpointId;
use koc_isa::{ArchReg, InstId, PhysReg};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The status classes of instructions retired from the pseudo-ROB
/// (the six sections of Figure 12, bottom to top).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RetireClass {
    /// Moved from the instruction queue into the SLIQ (long-latency
    /// dependent work).
    Moved,
    /// Already finished execution when retired.
    Finished,
    /// Not yet executed but short latency (or dependent on short-latency
    /// work); stays in the instruction queue.
    ShortLat,
    /// A load that finished or hit in L1/L2.
    FinishedLoad,
    /// A load that missed in L2 (the source of the problem, ~10% in Fig. 12).
    LongLatLoad,
    /// A store.
    Store,
}

impl RetireClass {
    /// All classes in Figure 12's bottom-to-top order.
    pub fn all() -> &'static [RetireClass] {
        &[
            RetireClass::Moved,
            RetireClass::Finished,
            RetireClass::ShortLat,
            RetireClass::FinishedLoad,
            RetireClass::LongLatLoad,
            RetireClass::Store,
        ]
    }

    /// Stable index for per-class counters.
    pub fn index(self) -> usize {
        match self {
            RetireClass::Moved => 0,
            RetireClass::Finished => 1,
            RetireClass::ShortLat => 2,
            RetireClass::FinishedLoad => 3,
            RetireClass::LongLatLoad => 4,
            RetireClass::Store => 5,
        }
    }

    /// Number of classes.
    pub const COUNT: usize = 6;
}

/// One pseudo-ROB entry: the instruction plus the rename undo information
/// needed for walk-back branch recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PseudoRobEntry {
    /// The dynamic instruction.
    pub inst: InstId,
    /// The checkpoint this instruction is associated with.
    pub ckpt: CheckpointId,
    /// Destination rename record: (logical, newly allocated physical,
    /// previous physical), if the instruction writes a register.
    pub rename: Option<(ArchReg, PhysReg, Option<PhysReg>)>,
    /// Whether the instruction is a store.
    pub is_store: bool,
    /// Whether the instruction is a branch.
    pub is_branch: bool,
}

/// The pseudo-ROB FIFO.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PseudoRob {
    capacity: usize,
    entries: VecDeque<PseudoRobEntry>,
}

impl PseudoRob {
    /// Creates a pseudo-ROB with room for `capacity` instructions
    /// (32 / 64 / 128 in the paper's experiments).
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "pseudo-ROB capacity must be non-zero");
        PseudoRob {
            capacity,
            entries: VecDeque::with_capacity(capacity),
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pseudo-ROB holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the pseudo-ROB is full (the next push will evict the oldest).
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Inserts a newly dispatched instruction. If the FIFO is full, the
    /// oldest entry is *retired* (extracted) and returned — this is the
    /// moment the SLIQ classification happens.
    ///
    /// Dispatch walks the stream one position at a time and every squash
    /// removes a suffix, so the FIFO always holds a contiguous band of
    /// trace positions — the invariant [`contains`](Self::contains) relies
    /// on for its O(1) range check.
    pub fn push(&mut self, entry: PseudoRobEntry) -> Option<PseudoRobEntry> {
        debug_assert!(
            self.entries.back().is_none_or(|b| entry.inst == b.inst + 1),
            "pseudo-ROB pushes must be consecutive trace positions"
        );
        let retired = if self.is_full() {
            self.entries.pop_front()
        } else {
            None
        };
        self.entries.push_back(entry);
        retired
    }

    /// Pops the oldest entry unconditionally (used to drain the pseudo-ROB
    /// when fetch has ended).
    pub fn pop_oldest(&mut self) -> Option<PseudoRobEntry> {
        self.entries.pop_front()
    }

    /// Stream position of the oldest entry, if any. Entries still inside
    /// the pseudo-ROB are classified at retirement, so this bounds how far
    /// the fetch replay window may be released.
    pub fn oldest_inst(&self) -> Option<InstId> {
        self.entries.front().map(|e| e.inst)
    }

    /// Whether the given instruction is still inside the pseudo-ROB (and can
    /// therefore be recovered without a checkpoint rollback).
    ///
    /// O(1): the FIFO holds a contiguous band of trace positions (see
    /// [`push`](Self::push)), so membership is a range check against the
    /// oldest and youngest entries.
    pub fn contains(&self, inst: InstId) -> bool {
        match (self.entries.front(), self.entries.back()) {
            (Some(front), Some(back)) => front.inst <= inst && inst <= back.inst,
            _ => false,
        }
    }

    /// Removes and returns every entry **younger** than `inst` (exclusive),
    /// youngest first — the walk-back order required to undo renames.
    /// The entry for `inst` itself is retained.
    pub fn squash_younger_than(&mut self, inst: InstId) -> Vec<PseudoRobEntry> {
        let mut squashed = Vec::new(); // koc-lint: allow(hot-path-alloc, "branch-recovery squash, not per cycle")
        while let Some(back) = self.entries.back() {
            if back.inst > inst {
                squashed.push(self.entries.pop_back().expect("back exists")); // koc-lint: allow(panic, "back was just peeked as Some")
            } else {
                break;
            }
        }
        squashed
    }

    /// Removes every entry at or after trace position `from`, youngest first
    /// (used on checkpoint rollback).
    pub fn squash_from(&mut self, from: InstId) -> Vec<PseudoRobEntry> {
        let mut squashed = Vec::new(); // koc-lint: allow(hot-path-alloc, "checkpoint-rollback squash, not per cycle")
        while let Some(back) = self.entries.back() {
            if back.inst >= from {
                squashed.push(self.entries.pop_back().expect("back exists")); // koc-lint: allow(panic, "back was just peeked as Some")
            } else {
                break;
            }
        }
        squashed
    }

    /// Iterates over entries from oldest to youngest.
    pub fn iter(&self) -> impl Iterator<Item = &PseudoRobEntry> {
        self.entries.iter()
    }

    /// Removes all entries.
    pub fn flush(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(inst: InstId) -> PseudoRobEntry {
        PseudoRobEntry {
            inst,
            ckpt: 0,
            rename: None,
            is_store: false,
            is_branch: false,
        }
    }

    #[test]
    fn push_retires_the_oldest_when_full() {
        let mut p = PseudoRob::new(2);
        assert_eq!(p.push(entry(0)), None);
        assert_eq!(p.push(entry(1)), None);
        assert!(p.is_full());
        let retired = p.push(entry(2)).unwrap();
        assert_eq!(retired.inst, 0);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn retirement_is_fifo_order() {
        let mut p = PseudoRob::new(3);
        for i in 0..3 {
            p.push(entry(i));
        }
        let mut retired = Vec::new();
        for i in 3..6 {
            retired.push(p.push(entry(i)).unwrap().inst);
        }
        assert_eq!(retired, vec![0, 1, 2]);
    }

    #[test]
    fn contains_reports_live_entries_only() {
        let mut p = PseudoRob::new(2);
        p.push(entry(0));
        p.push(entry(1));
        p.push(entry(2)); // retires 0
        assert!(!p.contains(0));
        assert!(p.contains(1));
        assert!(p.contains(2));
    }

    #[test]
    fn squash_younger_than_removes_entries_youngest_first() {
        let mut p = PseudoRob::new(8);
        for i in 0..5 {
            p.push(entry(i));
        }
        let squashed = p.squash_younger_than(2);
        let ids: Vec<_> = squashed.iter().map(|e| e.inst).collect();
        assert_eq!(ids, vec![4, 3]);
        assert!(p.contains(2));
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn squash_from_removes_the_boundary_instruction_too() {
        let mut p = PseudoRob::new(8);
        for i in 0..5 {
            p.push(entry(i));
        }
        let squashed = p.squash_from(3);
        assert_eq!(squashed.len(), 2);
        assert!(!p.contains(3));
        assert!(p.contains(2));
    }

    #[test]
    fn pop_oldest_drains_in_order() {
        let mut p = PseudoRob::new(4);
        p.push(entry(7));
        p.push(entry(8));
        assert_eq!(p.pop_oldest().unwrap().inst, 7);
        assert_eq!(p.pop_oldest().unwrap().inst, 8);
        assert!(p.pop_oldest().is_none());
        assert!(p.is_empty());
    }

    #[test]
    fn retire_class_indices_are_dense_and_unique() {
        let mut seen = [false; RetireClass::COUNT];
        for c in RetireClass::all() {
            assert!(!seen[c.index()]);
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = PseudoRob::new(0);
    }

    #[test]
    fn flush_empties_the_structure() {
        let mut p = PseudoRob::new(4);
        p.push(entry(1));
        p.flush();
        assert!(p.is_empty());
    }
}
