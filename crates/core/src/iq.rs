//! General-purpose instruction queues with broadcast wake-up and
//! oldest-first select.
//!
//! The paper's point is that these queues are the cycle-time-critical
//! structures: every entry needs associative wake-up logic, so they must stay
//! small (32–128 entries) even when thousands of instructions are in flight.
//! The SLIQ mechanism removes long-latency-dependent instructions from here
//! so the scarce entries go to work that will issue soon.

use crate::checkpoint::CheckpointId;
use koc_isa::{FuClass, InstId, PhysReg, RegList};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// An instruction waiting in (or being inserted into) an instruction queue.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IqEntry {
    /// The dynamic instruction.
    pub inst: InstId,
    /// Renamed destination register, if any.
    pub dest: Option<PhysReg>,
    /// Renamed source registers.
    pub srcs: RegList,
    /// Functional-unit class the instruction issues to.
    pub fu: FuClass,
    /// Checkpoint the instruction is associated with.
    pub ckpt: CheckpointId,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Slot {
    entry: IqEntry,
    token: u64,
    outstanding: usize,
}

/// Error returned when inserting into a full instruction queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IqFull;

impl std::fmt::Display for IqFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("instruction queue is full")
    }
}

impl std::error::Error for IqFull {}

/// A wake-up/select instruction queue.
///
/// * **Wake-up**: [`wakeup`](InstructionQueue::wakeup) broadcasts a produced
///   physical register; entries whose last outstanding source was produced
///   become ready.
/// * **Select**: [`select_ready`](InstructionQueue::select_ready) picks the
///   oldest ready entries subject to per-functional-unit availability.
#[derive(Debug, Clone, Default)]
pub struct InstructionQueue {
    capacity: usize,
    slots: BTreeMap<InstId, Slot>,
    ready: BTreeSet<InstId>,
    waiters: HashMap<PhysReg, Vec<(InstId, u64)>>,
    next_token: u64,
    /// Reused by [`select_ready_into`](Self::select_ready_into) so steady-
    /// state selection allocates nothing.
    select_scratch: Vec<InstId>,
}

impl InstructionQueue {
    /// Creates an instruction queue with the given number of entries.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "instruction queue capacity must be non-zero");
        InstructionQueue {
            capacity,
            ..Default::default()
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the queue holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether another instruction can be inserted.
    pub fn has_space(&self) -> bool {
        self.slots.len() < self.capacity
    }

    /// Number of entries currently ready to issue.
    pub fn ready_count(&self) -> usize {
        self.ready.len()
    }

    /// Inserts an instruction. `is_ready` reports whether a source physical
    /// register already holds its value (the register-file scoreboard).
    ///
    /// # Errors
    /// Returns [`IqFull`] if the queue has no free entry; the dispatch stage
    /// stalls in that case.
    pub fn insert(
        &mut self,
        entry: IqEntry,
        mut is_ready: impl FnMut(PhysReg) -> bool,
    ) -> Result<(), IqFull> {
        if !self.has_space() {
            return Err(IqFull);
        }
        let token = self.next_token;
        self.next_token += 1;
        let inst = entry.inst;
        let mut outstanding = 0;
        for &s in &entry.srcs {
            if !is_ready(s) {
                outstanding += 1;
                self.waiters.entry(s).or_default().push((inst, token));
            }
        }
        if outstanding == 0 {
            self.ready.insert(inst);
        }
        let prev = self.slots.insert(
            inst,
            Slot {
                entry,
                token,
                outstanding,
            },
        );
        debug_assert!(prev.is_none(), "instruction {inst} inserted twice");
        Ok(())
    }

    /// Inserts an instruction even if the queue is at capacity.
    ///
    /// Used only for SLIQ re-insertions: the wake-up path is never blocked by
    /// queue occupancy (see `DESIGN.md`), which keeps the wake-up machinery
    /// free of circular waits; dispatch still respects the capacity, so the
    /// transient overshoot is bounded by the wake-up width.
    pub fn insert_unbounded(&mut self, entry: IqEntry, is_ready: impl FnMut(PhysReg) -> bool) {
        let capacity = self.capacity;
        self.capacity = usize::MAX;
        let result = self.insert(entry, is_ready);
        self.capacity = capacity;
        result.expect("unbounded insert cannot fail");
    }

    /// Broadcasts that `reg` now holds its value, waking dependent entries.
    pub fn wakeup(&mut self, reg: PhysReg) {
        let Some(waiting) = self.waiters.remove(&reg) else {
            return;
        };
        for (inst, token) in waiting {
            if let Some(slot) = self.slots.get_mut(&inst) {
                if slot.token == token && slot.outstanding > 0 {
                    slot.outstanding -= 1;
                    if slot.outstanding == 0 {
                        self.ready.insert(inst);
                    }
                }
            }
        }
    }

    /// Selects up to `max_total` ready instructions, oldest first, consuming
    /// per-functional-unit availability from `fu_available` (indexed by
    /// [`FuClass::index`]). Selected entries are removed from the queue.
    pub fn select_ready(
        &mut self,
        fu_available: &mut [usize; FuClass::COUNT],
        max_total: usize,
    ) -> Vec<IqEntry> {
        let mut picked = Vec::new();
        self.select_ready_into(fu_available, max_total, &mut picked);
        picked
    }

    /// [`select_ready`](Self::select_ready) into a caller-owned buffer
    /// (appended, not cleared) — the per-cycle issue path reuses one buffer
    /// across the whole run.
    pub fn select_ready_into(
        &mut self,
        fu_available: &mut [usize; FuClass::COUNT],
        max_total: usize,
        picked: &mut Vec<IqEntry>,
    ) {
        if max_total == 0 || self.ready.is_empty() {
            return;
        }
        let mut candidates = std::mem::take(&mut self.select_scratch);
        candidates.clear();
        candidates.extend(self.ready.iter().copied());
        let mut taken = 0;
        for &inst in &candidates {
            if taken >= max_total {
                break;
            }
            let fu = self.slots[&inst].entry.fu;
            if fu_available[fu.index()] == 0 {
                continue;
            }
            fu_available[fu.index()] -= 1;
            self.ready.remove(&inst);
            let slot = self.slots.remove(&inst).expect("ready entry exists");
            picked.push(slot.entry);
            taken += 1;
        }
        self.select_scratch = candidates;
    }

    /// Removes a specific instruction (used when the SLIQ steals a
    /// long-latency-dependent entry). Returns the entry if it was present.
    pub fn remove(&mut self, inst: InstId) -> Option<IqEntry> {
        let slot = self.slots.remove(&inst)?;
        self.ready.remove(&inst);
        Some(slot.entry)
    }

    /// Removes every instruction at or after trace position `from`
    /// (squash on rollback or branch recovery). Returns the removed entries.
    pub fn squash_from(&mut self, from: InstId) -> Vec<IqEntry> {
        let doomed: Vec<InstId> = self.slots.range(from..).map(|(&k, _)| k).collect();
        let mut out = Vec::with_capacity(doomed.len());
        for inst in doomed {
            self.ready.remove(&inst);
            out.push(self.slots.remove(&inst).expect("listed entry exists").entry);
        }
        out
    }

    /// Whether the queue currently holds `inst`.
    pub fn contains(&self, inst: InstId) -> bool {
        self.slots.contains_key(&inst)
    }

    /// Iterates over queued entries in program order.
    pub fn iter(&self) -> impl Iterator<Item = &IqEntry> {
        self.slots.values().map(|s| &s.entry)
    }

    /// Removes everything (full pipeline flush).
    pub fn flush(&mut self) {
        self.slots.clear();
        self.ready.clear();
        self.waiters.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(inst: InstId, srcs: &[u32], fu: FuClass) -> IqEntry {
        IqEntry {
            inst,
            dest: Some(PhysReg(100 + inst as u32)),
            srcs: srcs.iter().map(|&r| PhysReg(r)).collect::<RegList>(),
            fu,
            ckpt: 0,
        }
    }

    fn all_fus() -> [usize; FuClass::COUNT] {
        [4, 2, 4, 2]
    }

    #[test]
    fn entry_with_ready_sources_is_immediately_ready() {
        let mut iq = InstructionQueue::new(4);
        iq.insert(entry(0, &[1, 2], FuClass::IntAlu), |_| true)
            .unwrap();
        assert_eq!(iq.ready_count(), 1);
        let picked = iq.select_ready(&mut all_fus(), 4);
        assert_eq!(picked.len(), 1);
        assert!(iq.is_empty());
    }

    #[test]
    fn wakeup_makes_dependent_entries_ready() {
        let mut iq = InstructionQueue::new(4);
        iq.insert(entry(0, &[7], FuClass::Fp), |_| false).unwrap();
        assert_eq!(iq.ready_count(), 0);
        iq.wakeup(PhysReg(7));
        assert_eq!(iq.ready_count(), 1);
    }

    #[test]
    fn entry_waits_for_all_sources() {
        let mut iq = InstructionQueue::new(4);
        iq.insert(entry(0, &[7, 8], FuClass::Fp), |_| false)
            .unwrap();
        iq.wakeup(PhysReg(7));
        assert_eq!(iq.ready_count(), 0);
        iq.wakeup(PhysReg(8));
        assert_eq!(iq.ready_count(), 1);
    }

    #[test]
    fn select_is_oldest_first_and_respects_fu_limits() {
        let mut iq = InstructionQueue::new(8);
        for i in 0..6 {
            iq.insert(entry(i, &[], FuClass::Fp), |_| true).unwrap();
        }
        let mut fus = [4, 2, 2, 2]; // only 2 FP units available
        let picked = iq.select_ready(&mut fus, 8);
        let ids: Vec<_> = picked.iter().map(|e| e.inst).collect();
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(fus[FuClass::Fp.index()], 0);
        assert_eq!(iq.len(), 4);
    }

    #[test]
    fn select_respects_total_width() {
        let mut iq = InstructionQueue::new(8);
        for i in 0..6 {
            iq.insert(entry(i, &[], FuClass::IntAlu), |_| true).unwrap();
        }
        let picked = iq.select_ready(&mut [8, 8, 8, 8], 4);
        assert_eq!(picked.len(), 4);
    }

    #[test]
    fn full_queue_rejects_inserts() {
        let mut iq = InstructionQueue::new(2);
        iq.insert(entry(0, &[], FuClass::IntAlu), |_| true).unwrap();
        iq.insert(entry(1, &[], FuClass::IntAlu), |_| true).unwrap();
        assert_eq!(
            iq.insert(entry(2, &[], FuClass::IntAlu), |_| true),
            Err(IqFull)
        );
        assert!(!iq.has_space());
    }

    #[test]
    fn remove_steals_an_entry_for_the_sliq() {
        let mut iq = InstructionQueue::new(4);
        iq.insert(entry(3, &[9], FuClass::Fp), |_| false).unwrap();
        let stolen = iq.remove(3).unwrap();
        assert_eq!(stolen.inst, 3);
        assert!(iq.is_empty());
        // A stale wake-up for the removed entry must be harmless.
        iq.wakeup(PhysReg(9));
        assert_eq!(iq.ready_count(), 0);
    }

    #[test]
    fn stale_wakeups_do_not_affect_reinserted_instructions() {
        let mut iq = InstructionQueue::new(4);
        iq.insert(entry(3, &[9], FuClass::Fp), |_| false).unwrap();
        iq.remove(3).unwrap();
        // Re-insert the same instruction id, now waiting on a different register.
        iq.insert(entry(3, &[11], FuClass::Fp), |_| false).unwrap();
        iq.wakeup(PhysReg(9)); // stale broadcast from the first incarnation
        assert_eq!(
            iq.ready_count(),
            0,
            "stale wakeup must not make the new incarnation ready"
        );
        iq.wakeup(PhysReg(11));
        assert_eq!(iq.ready_count(), 1);
    }

    #[test]
    fn squash_from_removes_young_entries_only() {
        let mut iq = InstructionQueue::new(8);
        for i in 0..6 {
            iq.insert(entry(i, &[], FuClass::IntAlu), |_| true).unwrap();
        }
        let squashed = iq.squash_from(3);
        assert_eq!(squashed.len(), 3);
        assert!(iq.contains(2));
        assert!(!iq.contains(3));
        assert_eq!(iq.ready_count(), 3);
    }

    #[test]
    fn duplicate_source_registers_are_counted_per_occurrence() {
        let mut iq = InstructionQueue::new(4);
        iq.insert(entry(0, &[7, 7], FuClass::Fp), |_| false)
            .unwrap();
        iq.wakeup(PhysReg(7));
        assert_eq!(
            iq.ready_count(),
            1,
            "one broadcast satisfies both occurrences"
        );
    }

    #[test]
    fn insert_unbounded_ignores_capacity_but_preserves_it() {
        let mut iq = InstructionQueue::new(1);
        iq.insert(entry(0, &[], FuClass::IntAlu), |_| true).unwrap();
        iq.insert_unbounded(entry(1, &[], FuClass::IntAlu), |_| true);
        assert_eq!(iq.len(), 2);
        assert_eq!(iq.capacity(), 1);
        assert!(!iq.has_space());
        assert_eq!(
            iq.insert(entry(2, &[], FuClass::IntAlu), |_| true),
            Err(IqFull)
        );
    }

    #[test]
    fn flush_clears_everything() {
        let mut iq = InstructionQueue::new(4);
        iq.insert(entry(0, &[5], FuClass::Fp), |_| false).unwrap();
        iq.flush();
        assert!(iq.is_empty());
        assert_eq!(iq.ready_count(), 0);
        iq.wakeup(PhysReg(5));
        assert_eq!(iq.ready_count(), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = InstructionQueue::new(0);
    }
}
