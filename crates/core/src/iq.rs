//! General-purpose instruction queues with broadcast wake-up and
//! oldest-first select.
//!
//! The paper's point is that these queues are the cycle-time-critical
//! structures: every entry needs associative wake-up logic, so they must stay
//! small (32–128 entries) even when thousands of instructions are in flight.
//! The SLIQ mechanism removes long-latency-dependent instructions from here
//! so the scarce entries go to work that will issue soon.
//!
//! # Host cost
//!
//! Wake-up and select run every cycle, so the simulator-side structures are
//! flat: entries live in an open-addressed [`FlatMap`] keyed by trace
//! position (one multiply and usually one probe per touch — no tree walk,
//! no node churn); the waiter table is a flat array keyed by [`PhysReg`]
//! index whose per-register chains thread through a pooled node slab (a
//! broadcast is one array load plus a walk of the actual waiters — no
//! hashing, no `Vec` churn); and the ready set is partitioned by
//! functional-unit class into lazy min-heaps, so selection is O(picked)
//! regardless of how many ready instructions are starved of their unit
//! (with two memory ports and a hundred ready loads, an age-ordered scan
//! would revisit almost all of them every cycle).

use crate::checkpoint::CheckpointId;
use crate::flatmap::FlatMap;
use koc_isa::{FuClass, InstId, PhysReg, RegList};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An instruction waiting in (or being inserted into) an instruction queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IqEntry {
    /// The dynamic instruction.
    pub inst: InstId,
    /// Renamed destination register, if any.
    pub dest: Option<PhysReg>,
    /// Renamed source registers.
    pub srcs: RegList,
    /// Functional-unit class the instruction issues to.
    pub fu: FuClass,
    /// Checkpoint the instruction is associated with.
    pub ckpt: CheckpointId,
}

#[derive(Debug, Clone)]
struct Slot {
    entry: IqEntry,
    token: u64,
    outstanding: usize,
}

/// Sentinel index for "no node" in the waiter pool.
const NIL: u32 = u32::MAX;

/// One pooled waiter record: instruction `inst` (incarnation `token`) waits
/// on the register whose chain this node is linked into. Freed nodes are
/// chained through `next` onto the free list.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct WaiterNode {
    inst: InstId,
    token: u64,
    next: u32,
}

/// Error returned when inserting into a full instruction queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IqFull;

impl std::fmt::Display for IqFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("instruction queue is full")
    }
}

impl std::error::Error for IqFull {}

/// A wake-up/select instruction queue.
///
/// * **Wake-up**: [`wakeup`](InstructionQueue::wakeup) broadcasts a produced
///   physical register; entries whose last outstanding source was produced
///   become ready.
/// * **Select**: [`select_ready`](InstructionQueue::select_ready) picks the
///   oldest ready entries subject to per-functional-unit availability.
#[derive(Debug, Clone)]
pub struct InstructionQueue {
    capacity: usize,
    slots: FlatMap<Slot>,
    /// Per-class min-heaps of `(inst, token)` that became ready. Entries
    /// whose slot has since been stolen, squashed or issued are *stale*;
    /// they are discarded lazily when they surface at the top, so arbitrary
    /// removal never restructures a heap.
    ready: [BinaryHeap<Reverse<(InstId, u64)>>; FuClass::COUNT],
    /// Number of live ready entries across all classes.
    ready_total: usize,
    /// Head of each physical register's waiter chain, keyed by
    /// [`PhysReg::index`], grown on demand.
    waiter_heads: Vec<u32>,
    /// Pooled waiter nodes; free nodes chain through `next` from
    /// `waiter_free`.
    waiter_nodes: Vec<WaiterNode>,
    waiter_free: u32,
    next_token: u64,
}

impl Default for InstructionQueue {
    fn default() -> Self {
        InstructionQueue {
            capacity: 0,
            slots: FlatMap::default(),
            ready: std::array::from_fn(|_| BinaryHeap::new()),
            ready_total: 0,
            waiter_heads: Vec::new(),
            waiter_nodes: Vec::new(),
            waiter_free: NIL,
            next_token: 0,
        }
    }
}

impl InstructionQueue {
    /// Creates an instruction queue with the given number of entries.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "instruction queue capacity must be non-zero");
        InstructionQueue {
            capacity,
            ..Default::default()
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the queue holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether another instruction can be inserted.
    pub fn has_space(&self) -> bool {
        self.slots.len() < self.capacity
    }

    /// Number of entries currently ready to issue.
    pub fn ready_count(&self) -> usize {
        self.ready_total
    }

    /// Pushes a newly ready instruction onto its class heap.
    fn ready_push(&mut self, fu: FuClass, inst: InstId, token: u64) {
        let heap = &mut self.ready[fu.index()];
        heap.push(Reverse((inst, token)));
        self.ready_total += 1;
        // Stale entries are normally discarded at the top during selection;
        // bound the heap against pathological flows where entries go stale
        // faster than selection drains them (mass squashes, SLIQ steals).
        if heap.len() > 64 && heap.len() > 4 * (self.slots.len() + 1) {
            let slots = &self.slots;
            let live: Vec<_> = std::mem::take(heap)
                .into_iter()
                .filter(|&Reverse((i, t))| slots.get(i).is_some_and(|s| s.token == t))
                .collect(); // koc-lint: allow(hot-path-alloc, "amortized compaction; runs only when stale entries outnumber live 4:1")
            *heap = BinaryHeap::from(live);
        }
    }

    /// The oldest live ready instruction of class `k`, discarding stale
    /// heap tops in passing.
    fn ready_peek(&mut self, k: usize) -> Option<InstId> {
        while let Some(&Reverse((inst, token))) = self.ready[k].peek() {
            if self.slots.get(inst).is_some_and(|s| s.token == token) {
                return Some(inst);
            }
            self.ready[k].pop();
        }
        None
    }

    fn push_waiter(&mut self, reg: PhysReg, inst: InstId, token: u64) {
        let i = reg.index();
        if i >= self.waiter_heads.len() {
            self.waiter_heads.resize(i + 1, NIL);
        }
        let node = WaiterNode {
            inst,
            token,
            next: self.waiter_heads[i],
        };
        let idx = if self.waiter_free != NIL {
            let idx = self.waiter_free;
            self.waiter_free = self.waiter_nodes[idx as usize].next;
            self.waiter_nodes[idx as usize] = node;
            idx
        } else {
            let idx = self.waiter_nodes.len() as u32;
            self.waiter_nodes.push(node);
            idx
        };
        self.waiter_heads[i] = idx;
    }

    /// Inserts an instruction. `is_ready` reports whether a source physical
    /// register already holds its value (the register-file scoreboard).
    ///
    /// # Errors
    /// Returns [`IqFull`] if the queue has no free entry; the dispatch stage
    /// stalls in that case.
    pub fn insert(
        &mut self,
        entry: IqEntry,
        mut is_ready: impl FnMut(PhysReg) -> bool,
    ) -> Result<(), IqFull> {
        if !self.has_space() {
            return Err(IqFull);
        }
        let token = self.next_token;
        self.next_token += 1;
        let inst = entry.inst;
        let mut outstanding = 0;
        for &s in &entry.srcs {
            if !is_ready(s) {
                outstanding += 1;
                self.push_waiter(s, inst, token);
            }
        }
        let fu = entry.fu;
        let prev = self.slots.insert(
            inst,
            Slot {
                entry,
                token,
                outstanding,
            },
        );
        debug_assert!(prev.is_none(), "instruction {inst} inserted twice");
        if outstanding == 0 {
            self.ready_push(fu, inst, token);
        }
        Ok(())
    }

    /// Inserts an instruction even if the queue is at capacity.
    ///
    /// Used only for SLIQ re-insertions: the wake-up path is never blocked by
    /// queue occupancy (see `DESIGN.md`), which keeps the wake-up machinery
    /// free of circular waits; dispatch still respects the capacity, so the
    /// transient overshoot is bounded by the wake-up width.
    pub fn insert_unbounded(&mut self, entry: IqEntry, is_ready: impl FnMut(PhysReg) -> bool) {
        let capacity = self.capacity;
        self.capacity = usize::MAX;
        let result = self.insert(entry, is_ready);
        self.capacity = capacity;
        result.expect("unbounded insert cannot fail"); // koc-lint: allow(panic, "capacity is lifted for this insert; it cannot be full")
    }

    /// Broadcasts that `reg` now holds its value, waking dependent entries.
    pub fn wakeup(&mut self, reg: PhysReg) {
        let Some(head) = self.waiter_heads.get_mut(reg.index()) else {
            return;
        };
        let mut cur = std::mem::replace(head, NIL);
        while cur != NIL {
            let WaiterNode { inst, token, next } = self.waiter_nodes[cur as usize];
            let mut now_ready = None;
            if let Some(slot) = self.slots.get_mut(inst) {
                if slot.token == token && slot.outstanding > 0 {
                    slot.outstanding -= 1;
                    if slot.outstanding == 0 {
                        now_ready = Some(slot.entry.fu);
                    }
                }
            }
            if let Some(fu) = now_ready {
                self.ready_push(fu, inst, token);
            }
            self.waiter_nodes[cur as usize].next = self.waiter_free;
            self.waiter_free = cur;
            cur = next;
        }
    }

    /// Selects up to `max_total` ready instructions, oldest first, consuming
    /// per-functional-unit availability from `fu_available` (indexed by
    /// [`FuClass::index`]). Selected entries are removed from the queue.
    pub fn select_ready(
        &mut self,
        fu_available: &mut [usize; FuClass::COUNT],
        max_total: usize,
    ) -> Vec<IqEntry> {
        let mut picked = Vec::new();
        self.select_ready_into(fu_available, max_total, &mut picked);
        picked
    }

    /// [`select_ready`](Self::select_ready) into a caller-owned buffer
    /// (appended, not cleared) — the per-cycle issue path reuses one buffer
    /// across the whole run. The per-class ready minima are merged oldest
    /// first (identical pick order to a single age-ordered scan with
    /// functional-unit filtering), so the cost is O(picked), independent of
    /// how many ready instructions are starved of their unit.
    pub fn select_ready_into(
        &mut self,
        fu_available: &mut [usize; FuClass::COUNT],
        max_total: usize,
        picked: &mut Vec<IqEntry>,
    ) {
        let mut taken = 0;
        while taken < max_total && self.ready_total > 0 {
            let mut best: Option<(InstId, usize)> = None;
            for k in (0..FuClass::COUNT).filter(|&k| fu_available[k] > 0) {
                if let Some(inst) = self.ready_peek(k) {
                    if best.is_none_or(|(b, _)| inst < b) {
                        best = Some((inst, k));
                    }
                }
            }
            let Some((inst, k)) = best else {
                break;
            };
            fu_available[k] -= 1;
            taken += 1;
            self.ready[k].pop();
            self.ready_total -= 1;
            let slot = self.slots.remove(inst).expect("ready entry exists"); // koc-lint: allow(panic, "the ready heap only lists live slots after the stale check")
            picked.push(slot.entry);
        }
    }

    /// Removes a specific instruction (used when the SLIQ steals a
    /// long-latency-dependent entry). Returns the entry if it was present.
    pub fn remove(&mut self, inst: InstId) -> Option<IqEntry> {
        let slot = self.slots.remove(inst)?;
        if slot.outstanding == 0 {
            // Its heap entry goes stale; account the live ready count now.
            self.ready_total -= 1;
        }
        Some(slot.entry)
    }

    /// Removes every instruction at or after trace position `from`
    /// (squash on rollback or branch recovery). Returns the removed entries.
    pub fn squash_from(&mut self, from: InstId) -> Vec<IqEntry> {
        let doomed: Vec<InstId> = self
            .slots
            .iter()
            .filter_map(|(inst, _)| (inst >= from).then_some(inst))
            .collect(); // koc-lint: allow(hot-path-alloc, "branch-recovery squash, not per cycle")
        let mut out = Vec::with_capacity(doomed.len()); // koc-lint: allow(hot-path-alloc, "branch-recovery squash, not per cycle")
        for inst in doomed {
            let slot = self.slots.remove(inst).expect("listed entry exists"); // koc-lint: allow(panic, "doomed ids were just listed from the slots")
            if slot.outstanding == 0 {
                self.ready_total -= 1;
            }
            out.push(slot.entry);
        }
        out.sort_unstable_by_key(|e| e.inst);
        out
    }

    /// Whether the queue currently holds `inst`.
    pub fn contains(&self, inst: InstId) -> bool {
        self.slots.contains_key(inst)
    }

    /// The queued entries in program order (collected; the queue itself is
    /// unordered flat storage).
    pub fn iter(&self) -> impl Iterator<Item = &IqEntry> {
        let mut entries: Vec<&IqEntry> = self.slots.iter().map(|(_, s)| &s.entry).collect(); // koc-lint: allow(hot-path-alloc, "diagnostic iteration for tests and dumps, not the cycle loop")
        entries.sort_unstable_by_key(|e| e.inst);
        entries.into_iter()
    }

    /// Removes everything (full pipeline flush).
    pub fn flush(&mut self) {
        self.slots.clear();
        for heap in &mut self.ready {
            heap.clear();
        }
        self.ready_total = 0;
        self.waiter_heads.fill(NIL);
        self.waiter_nodes.clear();
        self.waiter_free = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(inst: InstId, srcs: &[u32], fu: FuClass) -> IqEntry {
        IqEntry {
            inst,
            dest: Some(PhysReg(100 + inst as u32)),
            srcs: srcs.iter().map(|&r| PhysReg(r)).collect::<RegList>(),
            fu,
            ckpt: 0,
        }
    }

    fn all_fus() -> [usize; FuClass::COUNT] {
        [4, 2, 4, 2]
    }

    #[test]
    fn entry_with_ready_sources_is_immediately_ready() {
        let mut iq = InstructionQueue::new(4);
        iq.insert(entry(0, &[1, 2], FuClass::IntAlu), |_| true)
            .unwrap();
        assert_eq!(iq.ready_count(), 1);
        let picked = iq.select_ready(&mut all_fus(), 4);
        assert_eq!(picked.len(), 1);
        assert!(iq.is_empty());
    }

    #[test]
    fn wakeup_makes_dependent_entries_ready() {
        let mut iq = InstructionQueue::new(4);
        iq.insert(entry(0, &[7], FuClass::Fp), |_| false).unwrap();
        assert_eq!(iq.ready_count(), 0);
        iq.wakeup(PhysReg(7));
        assert_eq!(iq.ready_count(), 1);
    }

    #[test]
    fn entry_waits_for_all_sources() {
        let mut iq = InstructionQueue::new(4);
        iq.insert(entry(0, &[7, 8], FuClass::Fp), |_| false)
            .unwrap();
        iq.wakeup(PhysReg(7));
        assert_eq!(iq.ready_count(), 0);
        iq.wakeup(PhysReg(8));
        assert_eq!(iq.ready_count(), 1);
    }

    #[test]
    fn select_is_oldest_first_and_respects_fu_limits() {
        let mut iq = InstructionQueue::new(8);
        for i in 0..6 {
            iq.insert(entry(i, &[], FuClass::Fp), |_| true).unwrap();
        }
        let mut fus = [4, 2, 2, 2]; // only 2 FP units available
        let picked = iq.select_ready(&mut fus, 8);
        let ids: Vec<_> = picked.iter().map(|e| e.inst).collect();
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(fus[FuClass::Fp.index()], 0);
        assert_eq!(iq.len(), 4);
    }

    #[test]
    fn select_respects_total_width() {
        let mut iq = InstructionQueue::new(8);
        for i in 0..6 {
            iq.insert(entry(i, &[], FuClass::IntAlu), |_| true).unwrap();
        }
        let picked = iq.select_ready(&mut [8, 8, 8, 8], 4);
        assert_eq!(picked.len(), 4);
    }

    #[test]
    fn select_skips_fu_starved_entries_for_later_ready_ones() {
        let mut iq = InstructionQueue::new(8);
        iq.insert(entry(0, &[], FuClass::Fp), |_| true).unwrap();
        iq.insert(entry(1, &[], FuClass::Fp), |_| true).unwrap();
        iq.insert(entry(2, &[], FuClass::IntAlu), |_| true).unwrap();
        // One FP unit: the second FP entry is skipped, the younger integer
        // entry still issues.
        let picked = iq.select_ready(&mut [4, 2, 1, 2], 4);
        let ids: Vec<_> = picked.iter().map(|e| e.inst).collect();
        assert_eq!(ids, vec![0, 2]);
        assert!(iq.contains(1));
    }

    #[test]
    fn full_queue_rejects_inserts() {
        let mut iq = InstructionQueue::new(2);
        iq.insert(entry(0, &[], FuClass::IntAlu), |_| true).unwrap();
        iq.insert(entry(1, &[], FuClass::IntAlu), |_| true).unwrap();
        assert_eq!(
            iq.insert(entry(2, &[], FuClass::IntAlu), |_| true),
            Err(IqFull)
        );
        assert!(!iq.has_space());
    }

    #[test]
    fn remove_steals_an_entry_for_the_sliq() {
        let mut iq = InstructionQueue::new(4);
        iq.insert(entry(3, &[9], FuClass::Fp), |_| false).unwrap();
        let stolen = iq.remove(3).unwrap();
        assert_eq!(stolen.inst, 3);
        assert!(iq.is_empty());
        // A stale wake-up for the removed entry must be harmless.
        iq.wakeup(PhysReg(9));
        assert_eq!(iq.ready_count(), 0);
    }

    #[test]
    fn stale_wakeups_do_not_affect_reinserted_instructions() {
        let mut iq = InstructionQueue::new(4);
        iq.insert(entry(3, &[9], FuClass::Fp), |_| false).unwrap();
        iq.remove(3).unwrap();
        // Re-insert the same instruction id, now waiting on a different register.
        iq.insert(entry(3, &[11], FuClass::Fp), |_| false).unwrap();
        iq.wakeup(PhysReg(9)); // stale broadcast from the first incarnation
        assert_eq!(
            iq.ready_count(),
            0,
            "stale wakeup must not make the new incarnation ready"
        );
        iq.wakeup(PhysReg(11));
        assert_eq!(iq.ready_count(), 1);
    }

    #[test]
    fn squash_from_removes_young_entries_only() {
        let mut iq = InstructionQueue::new(8);
        for i in 0..6 {
            iq.insert(entry(i, &[], FuClass::IntAlu), |_| true).unwrap();
        }
        let squashed = iq.squash_from(3);
        assert_eq!(squashed.len(), 3);
        assert!(iq.contains(2));
        assert!(!iq.contains(3));
        assert_eq!(iq.ready_count(), 3);
    }

    #[test]
    fn duplicate_source_registers_are_counted_per_occurrence() {
        let mut iq = InstructionQueue::new(4);
        iq.insert(entry(0, &[7, 7], FuClass::Fp), |_| false)
            .unwrap();
        iq.wakeup(PhysReg(7));
        assert_eq!(
            iq.ready_count(),
            1,
            "one broadcast satisfies both occurrences"
        );
    }

    #[test]
    fn waiter_nodes_are_pooled_across_wakeup_churn() {
        // Insert/wake repeatedly: the pool must recycle nodes instead of
        // growing with the total number of waits.
        let mut iq = InstructionQueue::new(8);
        for round in 0..1_000usize {
            for k in 0..4 {
                iq.insert(entry(round * 4 + k, &[5, 6], FuClass::IntAlu), |_| false)
                    .unwrap();
            }
            iq.wakeup(PhysReg(5));
            iq.wakeup(PhysReg(6));
            assert_eq!(iq.select_ready(&mut [8, 8, 8, 8], 8).len(), 4);
        }
        assert!(iq.is_empty());
        assert!(
            iq.waiter_nodes.len() <= 8,
            "pool must stay at peak concurrent waiters, got {}",
            iq.waiter_nodes.len()
        );
    }

    #[test]
    fn insert_unbounded_ignores_capacity_but_preserves_it() {
        let mut iq = InstructionQueue::new(1);
        iq.insert(entry(0, &[], FuClass::IntAlu), |_| true).unwrap();
        iq.insert_unbounded(entry(1, &[], FuClass::IntAlu), |_| true);
        assert_eq!(iq.len(), 2);
        assert_eq!(iq.capacity(), 1);
        assert!(!iq.has_space());
        assert_eq!(
            iq.insert(entry(2, &[], FuClass::IntAlu), |_| true),
            Err(IqFull)
        );
    }

    #[test]
    fn flush_clears_everything() {
        let mut iq = InstructionQueue::new(4);
        iq.insert(entry(0, &[5], FuClass::Fp), |_| false).unwrap();
        iq.flush();
        assert!(iq.is_empty());
        assert_eq!(iq.ready_count(), 0);
        iq.wakeup(PhysReg(5));
        assert_eq!(iq.ready_count(), 0);
        // The queue is reusable after a flush.
        iq.insert(entry(1, &[5], FuClass::Fp), |_| false).unwrap();
        iq.wakeup(PhysReg(5));
        assert_eq!(iq.ready_count(), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = InstructionQueue::new(0);
    }
}
