//! The logical-register dependence bit mask used by SLIQ (Section 3).
//!
//! When a long-latency load leaves the pseudo-ROB, the paper starts a simple
//! forward dependence computation: a bit per logical register, initially only
//! the load's destination. Every later instruction extracted from the
//! pseudo-ROB *joins* the dependent set (and contributes its destination to
//! the mask) if it reads a masked register, and *clears* its destination bit
//! otherwise (an independent redefinition kills the dependence). The paper
//! notes this is the classic reaching-definitions trick from compiler
//! construction.
//!
//! The paper describes a 32-bit mask (integer registers); we track all 64
//! logical registers (32 INT + 32 FP) in a `u64` since FP codes chain through
//! FP registers.

use koc_isa::{ArchReg, Instruction};
use serde::{Deserialize, Serialize};

/// A dependence mask over the 64 logical registers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DependenceMask {
    bits: u64,
}

impl DependenceMask {
    /// An empty mask (nothing is dependent).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a mask seeded with the destination of a long-latency load.
    pub fn seeded(load_dest: ArchReg) -> Self {
        let mut m = Self::new();
        m.set(load_dest);
        m
    }

    /// Marks `reg` as produced by a long-latency instruction.
    pub fn set(&mut self, reg: ArchReg) {
        self.bits |= 1 << reg.flat_index();
    }

    /// Clears `reg` (it has been redefined by an independent instruction).
    pub fn clear(&mut self, reg: ArchReg) {
        self.bits &= !(1 << reg.flat_index());
    }

    /// Whether `reg` currently carries a long-latency dependence.
    pub fn contains(&self, reg: ArchReg) -> bool {
        self.bits & (1 << reg.flat_index()) != 0
    }

    /// Whether the mask is empty.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Number of registers currently marked dependent.
    pub fn len(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Classifies `inst` against the mask and updates the mask, exactly as
    /// the pseudo-ROB extraction logic does:
    ///
    /// * if any source of `inst` is marked, the instruction is **dependent**;
    ///   its destination (if any) joins the mask and `true` is returned;
    /// * otherwise the instruction is independent; its destination (if any)
    ///   is cleared from the mask and `false` is returned.
    pub fn classify_and_update(&mut self, inst: &Instruction) -> bool {
        let dependent = inst.sources().any(|s| self.contains(s));
        if let Some(dest) = inst.dest {
            if dependent {
                self.set(dest);
            } else {
                self.clear(dest);
            }
        }
        dependent
    }

    /// Merges another mask into this one (used when several long-latency
    /// loads are being tracked simultaneously).
    pub fn merge(&mut self, other: DependenceMask) {
        self.bits |= other.bits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koc_isa::{Instruction, OpKind};

    #[test]
    fn seeded_mask_contains_only_the_seed() {
        let m = DependenceMask::seeded(ArchReg::fp(3));
        assert!(m.contains(ArchReg::fp(3)));
        assert!(!m.contains(ArchReg::fp(4)));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn consumer_of_masked_register_becomes_dependent() {
        let mut m = DependenceMask::seeded(ArchReg::fp(1));
        let consumer = Instruction::op(
            0,
            OpKind::FpAlu,
            Some(ArchReg::fp(2)),
            &[ArchReg::fp(1), ArchReg::fp(3)],
        );
        assert!(m.classify_and_update(&consumer));
        assert!(m.contains(ArchReg::fp(2)), "destination joined the mask");
    }

    #[test]
    fn transitive_dependences_propagate() {
        let mut m = DependenceMask::seeded(ArchReg::fp(1));
        let a = Instruction::op(0, OpKind::FpAlu, Some(ArchReg::fp(2)), &[ArchReg::fp(1)]);
        let b = Instruction::op(4, OpKind::FpAlu, Some(ArchReg::fp(3)), &[ArchReg::fp(2)]);
        assert!(m.classify_and_update(&a));
        assert!(m.classify_and_update(&b));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn independent_redefinition_kills_the_dependence() {
        let mut m = DependenceMask::seeded(ArchReg::fp(1));
        // F1 is redefined from independent sources: later readers of F1 are
        // no longer dependent on the long-latency load.
        let redef = Instruction::op(0, OpKind::FpAlu, Some(ArchReg::fp(1)), &[ArchReg::fp(5)]);
        assert!(!m.classify_and_update(&redef));
        assert!(m.is_empty());
        let reader = Instruction::op(4, OpKind::FpAlu, Some(ArchReg::fp(6)), &[ArchReg::fp(1)]);
        assert!(!m.classify_and_update(&reader));
    }

    #[test]
    fn stores_and_branches_can_be_dependent_without_destinations() {
        let mut m = DependenceMask::seeded(ArchReg::fp(1));
        let st = Instruction::store(0, ArchReg::fp(1), ArchReg::int(2), 0x100);
        assert!(m.classify_and_update(&st));
        let br = Instruction::branch(4, ArchReg::int(9), true, 0);
        assert!(!m.classify_and_update(&br));
    }

    #[test]
    fn int_and_fp_registers_do_not_alias_in_the_mask() {
        let mut m = DependenceMask::new();
        m.set(ArchReg::int(5));
        assert!(!m.contains(ArchReg::fp(5)));
    }

    #[test]
    fn merge_unions_the_masks() {
        let mut a = DependenceMask::seeded(ArchReg::fp(1));
        let b = DependenceMask::seeded(ArchReg::fp(2));
        a.merge(b);
        assert!(a.contains(ArchReg::fp(1)) && a.contains(ArchReg::fp(2)));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn clear_removes_a_single_register() {
        let mut m = DependenceMask::seeded(ArchReg::fp(1));
        m.set(ArchReg::fp(2));
        m.clear(ArchReg::fp(1));
        assert!(!m.contains(ArchReg::fp(1)));
        assert!(m.contains(ArchReg::fp(2)));
    }
}
