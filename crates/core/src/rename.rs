//! CAM register mapping with *Future Free* bits (Figures 3–6 of the paper).
//!
//! The mapping table is indexed by **physical** register, as in the Alpha
//! 21264 and HAL Sparc renaming schemes the paper cites. Each entry holds the
//! logical register it maps, a `valid` bit (this entry is the current
//! mapping) and the paper's extension: a `future_free` bit marking registers
//! that must be returned to the free list when the *next checkpoint commits*.
//!
//! Taking a checkpoint therefore costs two bits per physical register (the
//! valid column and the future-free column); this module additionally
//! snapshots the free list so the simulator can restore it on rollback
//! without recomputation (an implementation convenience documented in
//! `DESIGN.md`).

use crate::regfile::PhysRegFile;
use koc_isa::{ArchReg, PhysReg, NUM_ARCH_REGS};
use serde::{Deserialize, Serialize};

/// The outcome of renaming one instruction's destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RenamedInst {
    /// The physical register newly allocated for the destination.
    pub new_phys: PhysReg,
    /// The physical register that previously held the same logical register,
    /// if any. Under conventional (ROB) commit this is freed when the
    /// renaming instruction commits; under out-of-order commit its
    /// `future_free` bit has been set instead.
    pub prev_phys: Option<PhysReg>,
}

/// A snapshot of the rename state taken when a checkpoint is created.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RenameCheckpoint {
    /// The valid column at checkpoint time.
    pub valid: Vec<bool>,
    /// The future-free column at checkpoint time (before it is cleared).
    pub future_free: Vec<bool>,
    /// The free list at checkpoint time.
    pub free_list: Vec<bool>,
}

/// The CAM rename map extended with future-free bits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CamRenameMap {
    /// Logical register mapped by each physical register (meaningful only
    /// while `valid` or `future_free` is set, mirroring the paper's figures).
    logical: Vec<u8>,
    valid: Vec<bool>,
    future_free: Vec<bool>,
    /// Registers whose future-free bit was set since the last drain, in
    /// marking order — the drain at every checkpoint is O(marked) instead
    /// of a scan over the whole future-free column. Entries whose bit was
    /// cleared out-of-band (walk-back undo, rollback restore) go stale and
    /// are filtered against the column at drain time.
    future_free_list: Vec<PhysReg>,
    /// Current mapping per logical register (the CAM lookup, kept as a
    /// direct-mapped shadow for O(1) source lookups).
    map: Vec<Option<PhysReg>>,
}

impl CamRenameMap {
    /// Creates a rename map for `num_phys` physical registers with no logical
    /// register mapped.
    pub fn new(num_phys: usize) -> Self {
        CamRenameMap {
            logical: vec![0; num_phys],
            valid: vec![false; num_phys],
            future_free: vec![false; num_phys],
            future_free_list: Vec::new(),
            map: vec![None; NUM_ARCH_REGS],
        }
    }

    /// Number of physical registers covered by the map.
    pub fn num_phys(&self) -> usize {
        self.valid.len()
    }

    /// The current mapping of a logical register, if any.
    pub fn lookup(&self, reg: ArchReg) -> Option<PhysReg> {
        self.map[reg.flat_index()]
    }

    /// Renames the destination of an instruction: allocates a new physical
    /// register from `regs`, marks the previous mapping of `dest` as
    /// future-free, and installs the new mapping.
    ///
    /// Returns `None` (rename stall) if no physical register is free.
    pub fn rename_dest(&mut self, dest: ArchReg, regs: &mut PhysRegFile) -> Option<RenamedInst> {
        let new_phys = regs.alloc()?;
        let prev = self.map[dest.flat_index()];
        if let Some(p) = prev {
            // The previous mapping is no longer the current one; it will be
            // freed when the next checkpoint commits (future-free), or at the
            // renaming instruction's commit under conventional ROB commit.
            // A valid mapping never carries the future-free bit, so this is
            // always a fresh mark and the list stays duplicate-free.
            debug_assert!(!self.future_free[p.index()]);
            self.valid[p.index()] = false;
            self.future_free[p.index()] = true;
            self.future_free_list.push(p);
        }
        let idx = new_phys.index();
        self.logical[idx] = dest.flat_index() as u8;
        self.valid[idx] = true;
        self.future_free[idx] = false;
        self.map[dest.flat_index()] = Some(new_phys);
        Some(RenamedInst {
            new_phys,
            prev_phys: prev,
        })
    }

    /// Takes a checkpoint: saves the valid, future-free and free-list
    /// columns, then clears the future-free column (the cleared column will
    /// accumulate the registers to free when the *new* checkpoint commits).
    ///
    /// Returns the snapshot together with the set of physical registers whose
    /// future-free bit was set — the registers to release when the checkpoint
    /// *preceding* this one commits.
    pub fn take_checkpoint(&mut self, regs: &PhysRegFile) -> (RenameCheckpoint, Vec<PhysReg>) {
        let snapshot = RenameCheckpoint {
            valid: self.valid.clone(),
            future_free: self.future_free.clone(),
            free_list: regs.free_list_snapshot(),
        };
        let to_free = self.drain_future_free();
        (snapshot, to_free)
    }

    /// Clears and returns the set of physical registers currently marked
    /// future-free. Used when closing a checkpoint window.
    pub fn drain_future_free(&mut self) -> Vec<PhysReg> {
        let mut out = std::mem::take(&mut self.future_free_list);
        // Clearing the bit as each entry is visited both performs the drain
        // and drops stale duplicates (a register un-marked by a walk-back
        // undo and marked again later appears twice in the list; only its
        // first live occurrence may survive).
        out.retain(|p| std::mem::replace(&mut self.future_free[p.index()], false));
        out
    }

    /// Restores the rename state from a checkpoint snapshot (rollback), and
    /// restores the free list of `regs`.
    ///
    /// The live future-free column is cleared rather than copied from the
    /// snapshot: the registers recorded in the snapshot belong to the window
    /// *before* the checkpoint and are already attached to that older
    /// checkpoint's `free_on_commit` set, while every redefinition made after
    /// the checkpoint is being squashed.
    pub fn restore(&mut self, snapshot: &RenameCheckpoint, regs: &mut PhysRegFile) {
        assert_eq!(
            snapshot.valid.len(),
            self.valid.len(),
            "snapshot size mismatch"
        );
        self.valid.copy_from_slice(&snapshot.valid);
        self.future_free.iter_mut().for_each(|b| *b = false);
        self.future_free_list.clear();
        regs.restore_free_list(&snapshot.free_list);
        // Rebuild the logical→physical shadow map from the valid column.
        self.map = vec![None; NUM_ARCH_REGS]; // koc-lint: allow(hot-path-alloc, "checkpoint-rollback restore, not per cycle")
        for (i, &v) in self.valid.iter().enumerate() {
            if v {
                self.map[self.logical[i] as usize] = Some(PhysReg(i as u32));
            }
        }
    }

    /// Undoes the rename of one squashed instruction (walk-back recovery for
    /// branches that are still inside the pseudo-ROB, or conventional ROB
    /// squash in the baseline). Must be applied youngest-first.
    ///
    /// The squashed instruction's destination register is returned to the
    /// free list of `regs` and the previous mapping is re-installed.
    pub fn undo_rename(
        &mut self,
        dest: ArchReg,
        new_phys: PhysReg,
        prev_phys: Option<PhysReg>,
        regs: &mut PhysRegFile,
    ) {
        self.valid[new_phys.index()] = false;
        self.future_free[new_phys.index()] = false;
        regs.free(new_phys);
        self.map[dest.flat_index()] = prev_phys;
        if let Some(p) = prev_phys {
            self.valid[p.index()] = true;
            self.future_free[p.index()] = false;
            self.logical[p.index()] = dest.flat_index() as u8;
        }
    }

    /// Number of physical registers currently holding a valid mapping.
    pub fn valid_count(&self) -> usize {
        self.valid.iter().filter(|&&v| v).count()
    }

    /// Number of physical registers currently marked future-free.
    pub fn future_free_count(&self) -> usize {
        self.future_free.iter().filter(|&&v| v).count()
    }

    /// Whether physical register `p` currently holds the valid mapping of
    /// some logical register.
    pub fn is_valid(&self, p: PhysReg) -> bool {
        self.valid[p.index()]
    }

    /// Whether physical register `p` is marked to be freed at the next
    /// checkpoint commit.
    pub fn is_future_free(&self, p: PhysReg) -> bool {
        self.future_free[p.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(num_phys: usize) -> (CamRenameMap, PhysRegFile) {
        (CamRenameMap::new(num_phys), PhysRegFile::new(num_phys))
    }

    #[test]
    fn renaming_installs_a_new_mapping() {
        let (mut map, mut regs) = setup(8);
        let r1 = ArchReg::int(1);
        let out = map.rename_dest(r1, &mut regs).unwrap();
        assert_eq!(out.prev_phys, None);
        assert_eq!(map.lookup(r1), Some(out.new_phys));
        assert!(map.is_valid(out.new_phys));
        assert_eq!(map.valid_count(), 1);
    }

    /// Re-enacts Figure 4: decoding `R1 = R2 + R3` when `R1` was mapped to
    /// physical 4 sets physical 4's future-free bit and maps `R1` to the
    /// newly allocated register.
    #[test]
    fn figure4_redefinition_sets_future_free() {
        let (mut map, mut regs) = setup(8);
        let r1 = ArchReg::int(1);
        let first = map.rename_dest(r1, &mut regs).unwrap();
        let second = map.rename_dest(r1, &mut regs).unwrap();
        assert_eq!(second.prev_phys, Some(first.new_phys));
        assert!(!map.is_valid(first.new_phys));
        assert!(map.is_future_free(first.new_phys));
        assert!(map.is_valid(second.new_phys));
        assert_eq!(map.lookup(r1), Some(second.new_phys));
    }

    /// Re-enacts Figure 5: two successive redefinitions of the same logical
    /// register leave two physical registers marked future-free, to be freed
    /// together at the next checkpoint commit.
    #[test]
    fn figure5_two_redefinitions_accumulate_future_free() {
        let (mut map, mut regs) = setup(8);
        let r1 = ArchReg::int(1);
        map.rename_dest(r1, &mut regs).unwrap();
        map.rename_dest(r1, &mut regs).unwrap();
        map.rename_dest(r1, &mut regs).unwrap();
        assert_eq!(map.future_free_count(), 2);
        assert_eq!(map.valid_count(), 1);
    }

    /// Re-enacts Figure 6: taking a checkpoint saves valid + future-free and
    /// clears the future-free column.
    #[test]
    fn figure6_checkpoint_saves_and_clears_future_free() {
        let (mut map, mut regs) = setup(8);
        let r1 = ArchReg::int(1);
        let r4 = ArchReg::int(4);
        map.rename_dest(r1, &mut regs).unwrap();
        map.rename_dest(r1, &mut regs).unwrap();
        map.rename_dest(r4, &mut regs).unwrap();
        let (snapshot, to_free) = map.take_checkpoint(&regs);
        assert_eq!(to_free.len(), 1, "one register was redefined");
        assert_eq!(
            map.future_free_count(),
            0,
            "column cleared after checkpoint"
        );
        assert_eq!(snapshot.future_free.iter().filter(|&&b| b).count(), 1);
        assert_eq!(snapshot.valid.iter().filter(|&&b| b).count(), 2);
    }

    #[test]
    fn rename_stalls_when_no_physical_register_is_free() {
        let (mut map, mut regs) = setup(2);
        assert!(map.rename_dest(ArchReg::int(1), &mut regs).is_some());
        assert!(map.rename_dest(ArchReg::int(2), &mut regs).is_some());
        assert!(map.rename_dest(ArchReg::int(3), &mut regs).is_none());
    }

    #[test]
    fn rollback_restores_mappings_and_free_list() {
        let (mut map, mut regs) = setup(8);
        let r1 = ArchReg::int(1);
        let r2 = ArchReg::int(2);
        let a = map.rename_dest(r1, &mut regs).unwrap().new_phys;
        let (snapshot, _) = map.take_checkpoint(&regs);
        let free_before = regs.free_count();
        // Speculative work after the checkpoint.
        map.rename_dest(r1, &mut regs).unwrap();
        map.rename_dest(r2, &mut regs).unwrap();
        assert_ne!(regs.free_count(), free_before);
        map.restore(&snapshot, &mut regs);
        assert_eq!(regs.free_count(), free_before);
        assert_eq!(map.lookup(r1), Some(a));
        assert_eq!(map.lookup(r2), None);
    }

    #[test]
    fn drain_future_free_returns_each_register_once() {
        let (mut map, mut regs) = setup(8);
        let r1 = ArchReg::int(1);
        map.rename_dest(r1, &mut regs).unwrap();
        map.rename_dest(r1, &mut regs).unwrap();
        let first = map.drain_future_free();
        let second = map.drain_future_free();
        assert_eq!(first.len(), 1);
        assert!(second.is_empty());
    }

    #[test]
    fn undo_rename_restores_the_previous_mapping_youngest_first() {
        let (mut map, mut regs) = setup(8);
        let r1 = ArchReg::int(1);
        let a = map.rename_dest(r1, &mut regs).unwrap();
        let b = map.rename_dest(r1, &mut regs).unwrap();
        let c = map.rename_dest(r1, &mut regs).unwrap();
        let free_before = regs.free_count();
        // Squash the two youngest definitions, youngest first.
        map.undo_rename(r1, c.new_phys, c.prev_phys, &mut regs);
        map.undo_rename(r1, b.new_phys, b.prev_phys, &mut regs);
        assert_eq!(map.lookup(r1), Some(a.new_phys));
        assert!(map.is_valid(a.new_phys));
        assert!(!map.is_future_free(a.new_phys));
        assert_eq!(regs.free_count(), free_before + 2);
    }

    #[test]
    fn undo_rename_of_first_definition_unmaps_the_register() {
        let (mut map, mut regs) = setup(4);
        let r2 = ArchReg::int(2);
        let a = map.rename_dest(r2, &mut regs).unwrap();
        map.undo_rename(r2, a.new_phys, a.prev_phys, &mut regs);
        assert_eq!(map.lookup(r2), None);
        assert_eq!(map.valid_count(), 0);
    }

    #[test]
    fn lookup_of_unmapped_register_is_none() {
        let (map, _) = setup(4);
        assert_eq!(map.lookup(ArchReg::fp(3)), None);
    }
}
