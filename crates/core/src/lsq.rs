//! The Load/Store queue.
//!
//! The paper models the LSQ "pseudo-perfectly" (4096 entries, Table 1) and
//! explicitly defers its scalability to future work, so this model tracks
//! only what the commit mechanisms interact with: occupancy (entries are held
//! from dispatch until commit — checkpoint commit under out-of-order commit,
//! which is why the policy bounds stores per checkpoint) and the program
//! order of stores for draining to memory at commit time.

use koc_isa::InstId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One LSQ entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LsqEntry {
    /// The dynamic instruction.
    pub inst: InstId,
    /// Whether it is a store (otherwise a load).
    pub is_store: bool,
    /// The byte address accessed.
    pub addr: u64,
}

/// Error returned when the LSQ is full at dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsqFull;

impl std::fmt::Display for LsqFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("load/store queue is full")
    }
}

impl std::error::Error for LsqFull {}

/// A program-ordered load/store queue.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadStoreQueue {
    capacity: usize,
    entries: VecDeque<LsqEntry>,
    stores_released: u64,
    loads_released: u64,
}

impl LoadStoreQueue {
    /// Creates an LSQ with `capacity` entries (4096 in Table 1).
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "load/store queue capacity must be non-zero");
        LoadStoreQueue {
            capacity,
            entries: VecDeque::new(),
            stores_released: 0,
            loads_released: 0,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether another memory instruction can be allocated.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Number of stores currently held.
    pub fn store_count(&self) -> usize {
        self.entries.iter().filter(|e| e.is_store).count()
    }

    /// Allocates an entry at dispatch (program order).
    ///
    /// # Errors
    /// Returns [`LsqFull`] when no entry is free; dispatch stalls.
    pub fn allocate(&mut self, entry: LsqEntry) -> Result<(), LsqFull> {
        if !self.has_space() {
            return Err(LsqFull);
        }
        debug_assert!(
            self.entries
                .back()
                .map(|b| b.inst < entry.inst)
                .unwrap_or(true),
            "LSQ allocations must be in program order"
        );
        self.entries.push_back(entry);
        Ok(())
    }

    /// Releases entries older than `frontier` (exclusive) from the front:
    /// loads simply free their slot, and the first released *store* is
    /// returned so the caller can drain it to the data cache; `None` once
    /// the frontier is reached. The per-cycle commit path loops on this —
    /// one store at a time, no intermediate collection.
    pub fn pop_store_older_than(&mut self, frontier: InstId) -> Option<LsqEntry> {
        while let Some(front) = self.entries.front() {
            if front.inst >= frontier {
                return None;
            }
            let e = self.entries.pop_front().expect("front exists"); // koc-lint: allow(panic, "front was just peeked as Some")
            if e.is_store {
                self.stores_released += 1;
                return Some(e);
            }
            self.loads_released += 1;
        }
        None
    }

    /// Releases every entry older than `frontier` (exclusive) and collects
    /// the released stores. Convenience wrapper over
    /// [`pop_store_older_than`](Self::pop_store_older_than) for tests and
    /// tools; the cycle loop uses the allocation-free pop directly.
    pub fn release_older_than(&mut self, frontier: InstId) -> Vec<LsqEntry> {
        let mut drained_stores = Vec::new();
        while let Some(e) = self.pop_store_older_than(frontier) {
            drained_stores.push(e);
        }
        drained_stores
    }

    /// Removes every entry at or after trace position `from` (squash).
    pub fn squash_from(&mut self, from: InstId) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.inst < from);
        before - self.entries.len()
    }

    /// Total stores drained to memory so far.
    pub fn stores_released(&self) -> u64 {
        self.stores_released
    }

    /// Total loads released so far.
    pub fn loads_released(&self) -> u64 {
        self.loads_released
    }

    /// Removes everything (full flush).
    pub fn flush(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(inst: InstId) -> LsqEntry {
        LsqEntry {
            inst,
            is_store: false,
            addr: 0x1000 + inst as u64 * 8,
        }
    }

    fn store(inst: InstId) -> LsqEntry {
        LsqEntry {
            inst,
            is_store: true,
            addr: 0x2000 + inst as u64 * 8,
        }
    }

    #[test]
    fn allocate_and_release_in_program_order() {
        let mut lsq = LoadStoreQueue::new(8);
        lsq.allocate(load(0)).unwrap();
        lsq.allocate(store(1)).unwrap();
        lsq.allocate(load(2)).unwrap();
        assert_eq!(lsq.len(), 3);
        assert_eq!(lsq.store_count(), 1);
        let drained = lsq.release_older_than(2);
        assert_eq!(drained.len(), 1, "only the store is returned for draining");
        assert_eq!(drained[0].inst, 1);
        assert_eq!(lsq.len(), 1);
        assert_eq!(lsq.loads_released(), 1);
        assert_eq!(lsq.stores_released(), 1);
    }

    #[test]
    fn full_queue_rejects_allocation() {
        let mut lsq = LoadStoreQueue::new(2);
        lsq.allocate(load(0)).unwrap();
        lsq.allocate(load(1)).unwrap();
        assert_eq!(lsq.allocate(load(2)), Err(LsqFull));
    }

    #[test]
    fn release_stops_at_the_frontier() {
        let mut lsq = LoadStoreQueue::new(8);
        for i in 0..5 {
            lsq.allocate(store(i)).unwrap();
        }
        let drained = lsq.release_older_than(3);
        assert_eq!(drained.len(), 3);
        assert_eq!(lsq.len(), 2);
    }

    #[test]
    fn squash_removes_young_entries() {
        let mut lsq = LoadStoreQueue::new(8);
        for i in 0..5 {
            lsq.allocate(if i % 2 == 0 { load(i) } else { store(i) })
                .unwrap();
        }
        let removed = lsq.squash_from(2);
        assert_eq!(removed, 3);
        assert_eq!(lsq.len(), 2);
        // Released counters are unaffected by squash.
        assert_eq!(lsq.stores_released(), 0);
    }

    #[test]
    fn flush_empties_without_counting_releases() {
        let mut lsq = LoadStoreQueue::new(4);
        lsq.allocate(store(0)).unwrap();
        lsq.flush();
        assert!(lsq.is_empty());
        assert_eq!(lsq.stores_released(), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = LoadStoreQueue::new(0);
    }
}
