//! Slow Lane Instruction Queuing (Section 3, Figure 8).
//!
//! Instructions that depend (transitively) on a load that missed in L2 will
//! not issue for hundreds of cycles; keeping them in the wake-up/select
//! instruction queue wastes its scarce entries. When such an instruction is
//! identified at pseudo-ROB extraction time, it is *moved* from the
//! instruction queue into the SLIQ — a large, simple, RAM-like in-order
//! buffer with no wake-up logic. Each SLIQ entry is tagged with the
//! destination physical register of the long-latency load it depends on;
//! when that register is finally produced, a wake-up walker re-inserts the
//! dependent instructions into the instruction queue at 4 per cycle, after a
//! configurable re-insertion delay (Figure 10 sweeps 1/4/8/12 cycles).
//!
//! # Host cost
//!
//! The SLIQ is the largest per-cycle structure of the checkpointed engine
//! (up to 2048 entries in the paper's sweeps), so its simulator-side cost
//! must be proportional to *activity*, not occupancy. Entries live in a
//! pooled node slab threaded onto per-trigger doubly-linked buckets (a
//! dense `Vec` keyed by [`PhysReg`] index), so a wake-up step touches only
//! the entries it actually re-inserts. Squash walks an insertion-ordered
//! age stack from the young end, with generation stamps marking records
//! whose node has since been woken (freed), so `squash_from` is
//! O(squashed), never O(entries).
//!
//! [`DependenceTracker`] implements the classification: the logical-register
//! bit mask of [`crate::depmask`] plus a per-register record of *which* load
//! the dependence chains back to.

use crate::depmask::DependenceMask;
use crate::iq::IqEntry;
use koc_isa::{ArchReg, InstId, Instruction, PhysReg};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Configuration of the SLIQ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SliqConfig {
    /// Number of entries (512 / 1024 / 2048 in the paper).
    pub capacity: usize,
    /// Cycles between the triggering register being produced and the first
    /// re-insertion (4 in the paper; Figure 10 sweeps 1–12).
    pub reinsert_delay: u32,
    /// Instructions re-inserted per cycle (4 in the paper).
    pub wake_width: usize,
}

impl SliqConfig {
    /// The paper's default: 4-cycle re-insertion delay, 4 instructions/cycle.
    pub fn paper(capacity: usize) -> Self {
        SliqConfig {
            capacity,
            reinsert_delay: 4,
            wake_width: 4,
        }
    }
}

/// A trigger whose register has been produced and whose dependent entries
/// will start re-inserting once the re-insertion delay has elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WakeupWalker {
    /// The trigger register being processed.
    pub trigger: PhysReg,
    /// Cycle at which re-insertion of its dependents may begin.
    pub ready_at: u64,
}

/// Sentinel index for "no node" in the pooled slab.
const NIL: u32 = u32::MAX;

/// One pooled SLIQ node: the stolen instruction-queue entry threaded onto
/// its trigger's bucket list. Freed nodes are chained through `next` onto
/// the intrusive free list; `gen` is bumped at free time so stale age-stack
/// records can be detected without a scan.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SliqNode {
    entry: IqEntry,
    trigger: PhysReg,
    prev: u32,
    next: u32,
    gen: u32,
}

/// Head/tail of one trigger's bucket, plus the pending-walker dedupe flag
/// (replaces the linear membership scan of the walker FIFO).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct TriggerBucket {
    head: u32,
    tail: u32,
    pending: bool,
}

impl TriggerBucket {
    const EMPTY: TriggerBucket = TriggerBucket {
        head: NIL,
        tail: NIL,
        pending: false,
    };
}

/// One record of the insertion-ordered age stack: enough to find and unlink
/// the youngest live entries on a squash without touching anything older.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct AgeRecord {
    inst: InstId,
    node: u32,
    gen: u32,
}

/// The Slow Lane Instruction Queue.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SliqBuffer {
    config: SliqConfig,
    /// Node slab; free nodes are chained through `next` from `free_head`.
    nodes: Vec<SliqNode>,
    free_head: u32,
    /// Per-trigger buckets, keyed by `PhysReg::index()`, grown on demand.
    buckets: Vec<TriggerBucket>,
    /// Insertion-ordered records of live entries (plus stale leftovers of
    /// woken ones, skipped lazily and compacted amortized-O(1)).
    age: Vec<AgeRecord>,
    /// Produced triggers waiting out the re-insertion delay, FIFO. `now` is
    /// monotonic, so the front walker always has the minimum `ready_at`.
    pending_triggers: VecDeque<WakeupWalker>,
    /// Live entries (the slab may hold more, on the free list).
    len: usize,
    /// Peak occupancy, for reporting.
    high_water: usize,
    /// Total instructions that ever entered the SLIQ.
    total_moved: u64,
}

impl SliqBuffer {
    /// Creates an empty SLIQ.
    ///
    /// # Panics
    /// Panics if the configured capacity or wake width is zero.
    pub fn new(config: SliqConfig) -> Self {
        assert!(config.capacity > 0, "SLIQ capacity must be non-zero");
        assert!(config.wake_width > 0, "SLIQ wake width must be non-zero");
        SliqBuffer {
            config,
            nodes: Vec::new(),
            free_head: NIL,
            buckets: Vec::new(),
            age: Vec::new(),
            pending_triggers: VecDeque::new(),
            len: 0,
            high_water: 0,
            total_moved: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SliqConfig {
        &self.config
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the SLIQ holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether another instruction can be moved in.
    pub fn has_space(&self) -> bool {
        self.len < self.config.capacity
    }

    /// Peak occupancy seen so far.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total instructions ever moved into the SLIQ.
    pub fn total_moved(&self) -> u64 {
        self.total_moved
    }

    fn alloc_node(&mut self, entry: IqEntry, trigger: PhysReg) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            let node = &mut self.nodes[idx as usize];
            self.free_head = node.next;
            node.entry = entry;
            node.trigger = trigger;
            node.prev = NIL;
            node.next = NIL;
            idx
        } else {
            let idx = self.nodes.len() as u32;
            self.nodes.push(SliqNode {
                entry,
                trigger,
                prev: NIL,
                next: NIL,
                gen: 0,
            });
            idx
        }
    }

    /// Detaches `idx` from its bucket and returns it to the free list,
    /// bumping its generation so age-stack records pointing at it go stale.
    fn unlink_and_free(&mut self, idx: u32) -> IqEntry {
        let (prev, next, trigger, entry) = {
            let n = &self.nodes[idx as usize];
            (n.prev, n.next, n.trigger, n.entry)
        };
        let bucket = &mut self.buckets[trigger.index()];
        if prev == NIL {
            bucket.head = next;
        } else {
            self.nodes[prev as usize].next = next;
        }
        if next == NIL {
            bucket.tail = prev;
        } else {
            self.nodes[next as usize].prev = prev;
        }
        let node = &mut self.nodes[idx as usize];
        node.gen = node.gen.wrapping_add(1);
        node.next = self.free_head;
        self.free_head = idx;
        self.len -= 1;
        entry
    }

    fn bucket_mut(&mut self, trigger: PhysReg) -> &mut TriggerBucket {
        let i = trigger.index();
        if i >= self.buckets.len() {
            self.buckets.resize(i + 1, TriggerBucket::EMPTY);
        }
        &mut self.buckets[i]
    }

    fn bucket(&self, trigger: PhysReg) -> TriggerBucket {
        self.buckets
            .get(trigger.index())
            .copied()
            .unwrap_or(TriggerBucket::EMPTY)
    }

    /// Drops stale records once they dominate the age stack, so its length
    /// stays proportional to occupancy even on unbounded streams. Amortized
    /// O(1) per insertion.
    fn maybe_compact_age(&mut self) {
        if self.age.len() >= 64 && self.age.len() >= 4 * self.len {
            let nodes = &self.nodes;
            self.age.retain(|r| nodes[r.node as usize].gen == r.gen);
        }
    }

    /// Moves an instruction into the SLIQ (in program order), tagged with its
    /// triggering load's destination register.
    ///
    /// Returns `false` if the SLIQ is full; the caller then leaves the
    /// instruction in the instruction queue.
    pub fn insert(&mut self, iq_entry: IqEntry, trigger: PhysReg) -> bool {
        if !self.has_space() {
            return false;
        }
        self.maybe_compact_age();
        let inst = iq_entry.inst;
        let idx = self.alloc_node(iq_entry, trigger);
        let gen = self.nodes[idx as usize].gen;
        let bucket = self.bucket_mut(trigger);
        // Dispatch order is trace order and squashes always remove the young
        // suffix first, so appends keep every bucket (and the age stack)
        // sorted by trace position — the "oldest first" wake-up order.
        let tail = bucket.tail;
        bucket.tail = idx;
        if tail == NIL {
            bucket.head = idx;
        } else {
            debug_assert!(
                self.nodes[tail as usize].entry.inst < inst,
                "SLIQ inserts must arrive in program order"
            );
            self.nodes[tail as usize].next = idx;
            self.nodes[idx as usize].prev = tail;
        }
        self.age.push(AgeRecord {
            inst,
            node: idx,
            gen,
        });
        self.len += 1;
        self.total_moved += 1;
        self.high_water = self.high_water.max(self.len);
        true
    }

    /// Notifies the SLIQ that `trigger` (a long-latency load destination) has
    /// been produced at cycle `now`. Its dependents become eligible for
    /// re-insertion after the configured re-insertion delay (the delay models
    /// re-computing source availability and overlaps across triggers).
    pub fn on_trigger_ready(&mut self, trigger: PhysReg, now: u64) {
        let delay = self.config.reinsert_delay as u64;
        let bucket = self.bucket_mut(trigger);
        if !bucket.pending {
            bucket.pending = true;
            self.pending_triggers.push_back(WakeupWalker {
                trigger,
                ready_at: now + delay,
            });
        }
    }

    /// Advances the wake-up machinery by one cycle and returns the entries to
    /// re-insert into the instruction queues this cycle: at most `wake_width`
    /// in total, and never more than the free space of each target queue
    /// (`int_space` for integer/memory entries, `fp_space` for floating-point
    /// entries). Entries of one trigger re-insert oldest first; re-insertion
    /// stops at the first entry whose queue is full to preserve order.
    pub fn step(&mut self, now: u64, int_space: usize, fp_space: usize) -> Vec<IqEntry> {
        let mut out = Vec::new();
        self.step_into(now, int_space, fp_space, &mut out);
        out
    }

    /// [`step`](Self::step) into a caller-owned buffer (appended, not
    /// cleared) — the per-cycle wake path reuses one buffer for the whole
    /// run, and the walk touches only the entries it re-inserts.
    pub fn step_into(
        &mut self,
        now: u64,
        mut int_space: usize,
        mut fp_space: usize,
        out: &mut Vec<IqEntry>,
    ) {
        let mut budget = self.config.wake_width;
        while budget > 0 {
            let Some(front) = self.pending_triggers.front().copied() else {
                break;
            };
            if front.ready_at > now {
                break;
            }
            // Re-insert this trigger's entries, oldest first (bucket order).
            let mut blocked = false;
            while budget > 0 {
                let head = self.bucket(front.trigger).head;
                if head == NIL {
                    break;
                }
                let is_fp = self.nodes[head as usize].entry.fu == koc_isa::FuClass::Fp;
                let space = if is_fp { &mut fp_space } else { &mut int_space };
                if *space == 0 {
                    blocked = true;
                    break;
                }
                *space -= 1;
                budget -= 1;
                out.push(self.unlink_and_free(head));
            }
            if self.bucket(front.trigger).head == NIL {
                // Walk complete: retire the walker and let the next trigger
                // use whatever budget remains this cycle.
                self.pending_triggers.pop_front();
                self.bucket_mut(front.trigger).pending = false;
            } else {
                debug_assert!(blocked || budget == 0);
                break;
            }
        }
    }

    /// The pending wake-up triggers (for tests and statistics).
    pub fn pending_triggers(&self) -> impl Iterator<Item = &WakeupWalker> {
        self.pending_triggers.iter()
    }

    /// The earliest cycle at which a pending wake-up walker may start
    /// re-inserting, if any. Triggers are notified with a monotonic clock,
    /// so the FIFO front is the minimum. This is the SLIQ's contribution to
    /// the pipeline's event-driven fast-forward.
    pub fn next_pending_ready_at(&self) -> Option<u64> {
        self.pending_triggers.front().map(|w| w.ready_at)
    }

    /// Removes every entry at or after trace position `from` (squash) and
    /// returns how many were removed.
    ///
    /// Cost is O(removed): the squashed entries are exactly the young suffix
    /// of the insertion-ordered age stack, so the walk stops at the first
    /// surviving entry. Stale records of already-woken nodes are dropped in
    /// passing (each is visited at most once, ever).
    pub fn squash_from(&mut self, from: InstId) -> usize {
        let mut removed = 0;
        while let Some(rec) = self.age.last().copied() {
            if self.nodes[rec.node as usize].gen != rec.gen {
                // The node was woken (or already squashed) and possibly
                // reused for an older entry; the record is dead weight.
                self.age.pop();
                continue;
            }
            if rec.inst < from {
                break;
            }
            self.age.pop();
            self.unlink_and_free(rec.node);
            removed += 1;
        }
        removed
    }

    /// Removes everything, including pending wake-ups (full flush).
    pub fn flush(&mut self) {
        self.nodes.clear();
        self.free_head = NIL;
        self.buckets.fill(TriggerBucket::EMPTY);
        self.age.clear();
        self.pending_triggers.clear();
        self.len = 0;
    }
}

/// Tracks which in-flight long-latency load every logical register's value
/// (transitively) depends on. This is the pseudo-ROB extraction logic's
/// dependence computation: the bit mask of Section 3 plus the trigger
/// association needed to tag SLIQ entries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DependenceTracker {
    mask: DependenceMask,
    trigger_of: Vec<Option<PhysReg>>,
}

impl Default for DependenceTracker {
    fn default() -> Self {
        DependenceTracker {
            mask: DependenceMask::new(),
            trigger_of: vec![None; koc_isa::NUM_ARCH_REGS],
        }
    }
}

impl DependenceTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a long-latency load: its destination becomes a dependence
    /// source, triggered by the load's destination physical register.
    pub fn add_long_latency_load(&mut self, dest: ArchReg, dest_phys: PhysReg) {
        self.mask.set(dest);
        self.trigger_of[dest.flat_index()] = Some(dest_phys);
    }

    /// Classifies an instruction extracted from the pseudo-ROB.
    ///
    /// Returns the trigger register if the instruction depends on an
    /// outstanding long-latency load (it should be moved to the SLIQ), or
    /// `None` if it is independent. The tracker state is updated either way.
    pub fn classify(&mut self, inst: &Instruction) -> Option<PhysReg> {
        let trigger = inst
            .sources()
            .find(|s| self.mask.contains(*s))
            .and_then(|s| self.trigger_of[s.flat_index()]);
        let dependent = self.mask.classify_and_update(inst);
        if let Some(dest) = inst.dest {
            self.trigger_of[dest.flat_index()] = if dependent { trigger } else { None };
        }
        if dependent {
            trigger
        } else {
            None
        }
    }

    /// Clears the dependence of `reg` (its long-latency producer completed
    /// before the dependents were extracted, so they are no longer "slow").
    pub fn clear_register(&mut self, reg: ArchReg) {
        self.mask.clear(reg);
        self.trigger_of[reg.flat_index()] = None;
    }

    /// Clears `reg` only if it is currently triggered by `phys` — used at
    /// write-back so that a completing long-latency load stops poisoning the
    /// mask, without erasing a younger redefinition that happens to use the
    /// same logical register.
    pub fn clear_if_trigger(&mut self, reg: ArchReg, phys: PhysReg) {
        if self.trigger_of[reg.flat_index()] == Some(phys) {
            self.clear_register(reg);
        }
    }

    /// The physical register currently recorded as the long-latency trigger
    /// of `reg`, if any.
    pub fn trigger_for(&self, reg: ArchReg) -> Option<PhysReg> {
        self.trigger_of[reg.flat_index()]
    }

    /// Whether any dependence is currently tracked.
    pub fn is_empty(&self) -> bool {
        self.mask.is_empty()
    }

    /// Resets all tracked state (pipeline flush or rollback).
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koc_isa::{FuClass, OpKind};

    fn iq_entry(inst: InstId) -> IqEntry {
        IqEntry {
            inst,
            dest: Some(PhysReg(200 + inst as u32)),
            srcs: koc_isa::RegList::new(),
            fu: FuClass::Fp,
            ckpt: 0,
        }
    }

    fn cfg(capacity: usize, delay: u32) -> SliqConfig {
        SliqConfig {
            capacity,
            reinsert_delay: delay,
            wake_width: 4,
        }
    }

    #[test]
    fn paper_config_uses_four_cycle_delay_and_width() {
        let c = SliqConfig::paper(1024);
        assert_eq!(c.capacity, 1024);
        assert_eq!(c.reinsert_delay, 4);
        assert_eq!(c.wake_width, 4);
    }

    #[test]
    fn insert_respects_capacity() {
        let mut s = SliqBuffer::new(cfg(2, 0));
        assert!(s.insert(iq_entry(0), PhysReg(1)));
        assert!(s.insert(iq_entry(1), PhysReg(1)));
        assert!(!s.insert(iq_entry(2), PhysReg(1)));
        assert_eq!(s.len(), 2);
        assert_eq!(s.total_moved(), 2);
        assert_eq!(s.high_water(), 2);
    }

    #[test]
    fn wakeup_reinserts_after_the_configured_delay() {
        let mut s = SliqBuffer::new(cfg(16, 2));
        for i in 0..3 {
            s.insert(iq_entry(i), PhysReg(7));
        }
        s.on_trigger_ready(PhysReg(7), 10);
        assert!(s.step(10, 16, 16).is_empty(), "delay cycle 1");
        assert!(s.step(11, 16, 16).is_empty(), "delay cycle 2");
        let woken = s.step(12, 16, 16);
        assert_eq!(woken.len(), 3);
        assert!(s.is_empty());
    }

    #[test]
    fn wakeup_is_limited_to_four_per_cycle() {
        let mut s = SliqBuffer::new(cfg(16, 0));
        for i in 0..6 {
            s.insert(iq_entry(i), PhysReg(7));
        }
        s.on_trigger_ready(PhysReg(7), 0);
        let first = s.step(0, 16, 16);
        assert_eq!(first.len(), 4);
        assert_eq!(first[0].inst, 0, "oldest first");
        let second = s.step(1, 16, 16);
        assert_eq!(second.len(), 2);
        assert_eq!(
            s.pending_triggers().count(),
            0,
            "walk completes when its entries are gone"
        );
    }

    #[test]
    fn wakeup_stalls_when_the_target_queue_is_full() {
        let mut s = SliqBuffer::new(cfg(16, 0));
        for i in 0..4 {
            s.insert(iq_entry(i), PhysReg(7)); // all FP entries
        }
        s.on_trigger_ready(PhysReg(7), 0);
        assert!(
            s.step(0, 16, 0).is_empty(),
            "no FP queue space, nothing re-inserted"
        );
        assert_eq!(s.step(1, 16, 2).len(), 2);
        assert_eq!(s.step(2, 16, 16).len(), 2);
        assert!(s.is_empty());
    }

    #[test]
    fn multiple_triggers_share_the_per_cycle_budget() {
        let mut s = SliqBuffer::new(cfg(16, 0));
        s.insert(iq_entry(0), PhysReg(7));
        s.insert(iq_entry(1), PhysReg(9));
        s.on_trigger_ready(PhysReg(7), 0);
        s.on_trigger_ready(PhysReg(9), 0);
        let woken = s.step(0, 16, 16);
        assert_eq!(
            woken.len(),
            2,
            "both triggers' entries fit in one cycle's budget"
        );
        assert_eq!(woken[0].inst, 0);
        assert_eq!(woken[1].inst, 1);
    }

    #[test]
    fn duplicate_trigger_notifications_are_ignored() {
        let mut s = SliqBuffer::new(cfg(16, 0));
        s.insert(iq_entry(0), PhysReg(7));
        s.on_trigger_ready(PhysReg(7), 0);
        s.on_trigger_ready(PhysReg(7), 0);
        assert_eq!(s.step(0, 16, 16).len(), 1);
        assert!(s.step(1, 16, 16).is_empty());
        assert!(s.step(2, 16, 16).is_empty());
    }

    #[test]
    fn squash_removes_young_entries() {
        let mut s = SliqBuffer::new(cfg(16, 0));
        for i in 0..5 {
            s.insert(iq_entry(i), PhysReg(7));
        }
        assert_eq!(s.squash_from(2), 3);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn squash_interleaves_with_wakeup_and_reinsertion() {
        // Wake some entries, squash others, insert older replacements — the
        // age stack must stay consistent through node reuse.
        let mut s = SliqBuffer::new(cfg(32, 0));
        for i in 0..8 {
            s.insert(iq_entry(i), PhysReg(7));
        }
        s.on_trigger_ready(PhysReg(7), 0);
        assert_eq!(s.step(0, 16, 16).len(), 4); // wakes 0..4, frees their nodes
        assert_eq!(s.squash_from(6), 2, "squashes 6 and 7");
        assert_eq!(s.len(), 2, "4 and 5 survive");
        // Re-dispatch after the squash reuses freed nodes for ids >= 6.
        assert!(s.insert(iq_entry(6), PhysReg(9)));
        assert!(s.insert(iq_entry(7), PhysReg(7)));
        assert_eq!(s.squash_from(0), 4, "everything live is squashed");
        assert!(s.is_empty());
        // A stale walker for an emptied trigger retires without output.
        assert!(s.step(1, 16, 16).is_empty());
        assert_eq!(s.pending_triggers().count(), 0);
    }

    #[test]
    fn trigger_can_be_renotified_after_its_walk_completes() {
        let mut s = SliqBuffer::new(cfg(16, 0));
        s.insert(iq_entry(0), PhysReg(7));
        s.on_trigger_ready(PhysReg(7), 0);
        assert_eq!(s.step(0, 16, 16).len(), 1);
        // A later (re-executed) producer of the same register wakes again.
        s.insert(iq_entry(1), PhysReg(7));
        s.on_trigger_ready(PhysReg(7), 5);
        assert_eq!(s.step(5, 16, 16).len(), 1);
        assert!(s.is_empty());
    }

    #[test]
    fn age_stack_compacts_on_churning_workloads() {
        // Insert/wake churn far past the capacity: the age stack must stay
        // bounded by occupancy, not by total_moved.
        let mut s = SliqBuffer::new(cfg(8, 0));
        for round in 0..1_000u64 {
            for k in 0..4 {
                s.insert(iq_entry((round * 4 + k) as InstId), PhysReg(7));
            }
            s.on_trigger_ready(PhysReg(7), round);
            assert_eq!(s.step(round, 16, 16).len(), 4);
        }
        assert!(s.is_empty());
        assert_eq!(s.total_moved(), 4_000);
        assert!(
            s.age.len() <= 64,
            "age stack must compact: len {}",
            s.age.len()
        );
    }

    #[test]
    fn flush_clears_entries_and_pending_triggers() {
        let mut s = SliqBuffer::new(cfg(16, 4));
        s.insert(iq_entry(0), PhysReg(7));
        s.on_trigger_ready(PhysReg(7), 0);
        s.flush();
        assert!(s.is_empty());
        assert_eq!(s.pending_triggers().count(), 0);
        assert!(s.step(100, 16, 16).is_empty());
        // The dedupe flag must be cleared too: a re-notification after the
        // flush schedules a fresh walker.
        s.insert(iq_entry(1), PhysReg(7));
        s.on_trigger_ready(PhysReg(7), 200);
        assert_eq!(s.step(204, 16, 16).len(), 1);
    }

    #[test]
    fn a_blocked_entry_preserves_order_within_its_trigger() {
        let mut s = SliqBuffer::new(cfg(16, 0));
        // Entry 0 targets the integer queue, entry 1 the FP queue.
        let mut int_entry = iq_entry(0);
        int_entry.fu = FuClass::IntAlu;
        s.insert(int_entry, PhysReg(7));
        s.insert(iq_entry(1), PhysReg(7));
        s.on_trigger_ready(PhysReg(7), 0);
        // No integer-queue space: nothing moves (order preserved).
        assert!(s.step(0, 0, 16).is_empty());
        let woken = s.step(1, 16, 16);
        assert_eq!(woken.len(), 2);
        assert_eq!(woken[0].inst, 0);
    }

    // --- DependenceTracker -------------------------------------------------

    #[test]
    fn tracker_tags_direct_and_transitive_dependents_with_the_load_trigger() {
        let mut t = DependenceTracker::new();
        t.add_long_latency_load(ArchReg::fp(1), PhysReg(41));
        let direct = Instruction::op(0, OpKind::FpAlu, Some(ArchReg::fp(2)), &[ArchReg::fp(1)]);
        let transitive = Instruction::op(4, OpKind::FpAlu, Some(ArchReg::fp(3)), &[ArchReg::fp(2)]);
        assert_eq!(t.classify(&direct), Some(PhysReg(41)));
        assert_eq!(t.classify(&transitive), Some(PhysReg(41)));
    }

    #[test]
    fn tracker_distinguishes_two_loads() {
        let mut t = DependenceTracker::new();
        t.add_long_latency_load(ArchReg::fp(1), PhysReg(41));
        t.add_long_latency_load(ArchReg::fp(10), PhysReg(55));
        let a = Instruction::op(0, OpKind::FpAlu, Some(ArchReg::fp(2)), &[ArchReg::fp(1)]);
        let b = Instruction::op(4, OpKind::FpAlu, Some(ArchReg::fp(11)), &[ArchReg::fp(10)]);
        assert_eq!(t.classify(&a), Some(PhysReg(41)));
        assert_eq!(t.classify(&b), Some(PhysReg(55)));
    }

    #[test]
    fn independent_redefinition_clears_the_trigger() {
        let mut t = DependenceTracker::new();
        t.add_long_latency_load(ArchReg::fp(1), PhysReg(41));
        let redef = Instruction::op(0, OpKind::FpAlu, Some(ArchReg::fp(1)), &[ArchReg::fp(9)]);
        assert_eq!(t.classify(&redef), None);
        let reader = Instruction::op(4, OpKind::FpAlu, Some(ArchReg::fp(2)), &[ArchReg::fp(1)]);
        assert_eq!(t.classify(&reader), None);
        assert!(t.is_empty());
    }

    #[test]
    fn clear_register_stops_tracking_a_completed_load() {
        let mut t = DependenceTracker::new();
        t.add_long_latency_load(ArchReg::fp(1), PhysReg(41));
        t.clear_register(ArchReg::fp(1));
        let reader = Instruction::op(0, OpKind::FpAlu, Some(ArchReg::fp(2)), &[ArchReg::fp(1)]);
        assert_eq!(t.classify(&reader), None);
    }

    #[test]
    fn clear_if_trigger_only_clears_the_matching_load() {
        let mut t = DependenceTracker::new();
        t.add_long_latency_load(ArchReg::fp(1), PhysReg(41));
        assert_eq!(t.trigger_for(ArchReg::fp(1)), Some(PhysReg(41)));
        t.clear_if_trigger(ArchReg::fp(1), PhysReg(99));
        assert_eq!(
            t.trigger_for(ArchReg::fp(1)),
            Some(PhysReg(41)),
            "mismatched trigger is ignored"
        );
        t.clear_if_trigger(ArchReg::fp(1), PhysReg(41));
        assert_eq!(t.trigger_for(ArchReg::fp(1)), None);
        assert!(t.is_empty());
    }

    #[test]
    fn reset_forgets_everything() {
        let mut t = DependenceTracker::new();
        t.add_long_latency_load(ArchReg::fp(1), PhysReg(41));
        t.reset();
        assert!(t.is_empty());
    }
}
