//! The checkpoint table and checkpointing policy (Section 2, Figure 2).
//!
//! Instead of a ROB, the processor keeps a small table of checkpoints. Every
//! dispatched instruction is associated with the youngest checkpoint; each
//! checkpoint counts its pending (dispatched but not yet executed)
//! instructions. A checkpoint **commits** when it is the oldest one, its
//! window has been closed by a younger checkpoint, and its counter reaches
//! zero — at which point its stores drain to memory and the registers
//! recorded in its future-free set are released. A misprediction or
//! exception whose instruction has already left the pseudo-ROB **rolls
//! back** to the owning checkpoint, restoring the rename snapshot and
//! re-executing from the checkpoint's trace position.

use crate::rename::RenameCheckpoint;
use koc_isa::{InstId, PhysReg};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Identifier of a checkpoint (monotonically increasing, never reused).
pub type CheckpointId = u64;

/// The heuristic that decides where checkpoints are taken (Section 2,
/// "Taking Checkpoints").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointPolicy {
    /// Take a checkpoint at the first branch after this many instructions
    /// since the previous checkpoint (64 in the paper).
    pub branch_after_insts: usize,
    /// Force a checkpoint after this many instructions even if no branch was
    /// seen (512 in the paper).
    pub force_after_insts: usize,
    /// Force a checkpoint after this many stores, bounding the Load/Store
    /// queue entries held by one checkpoint (64 in the paper).
    pub force_after_stores: usize,
}

impl CheckpointPolicy {
    /// The paper's thresholds: branch after 64 instructions, force at 512
    /// instructions, force at 64 stores.
    pub fn paper() -> Self {
        CheckpointPolicy {
            branch_after_insts: 64,
            force_after_insts: 512,
            force_after_stores: 64,
        }
    }

    /// A policy that checkpoints every `n` instructions regardless of
    /// instruction type (`n = 1` mimics a conventional ROB, as the paper
    /// notes).
    pub fn every_n(n: usize) -> Self {
        CheckpointPolicy {
            branch_after_insts: usize::MAX,
            force_after_insts: n.max(1),
            force_after_stores: usize::MAX,
        }
    }

    /// Decides whether a checkpoint should be taken *before* dispatching the
    /// next instruction, given the state of the current (youngest) window.
    pub fn should_take(
        &self,
        insts_in_window: usize,
        stores_in_window: usize,
        next_is_branch: bool,
    ) -> bool {
        if insts_in_window == 0 {
            // A fresh window never re-checkpoints at the same instruction.
            return false;
        }
        (next_is_branch && insts_in_window >= self.branch_after_insts)
            || insts_in_window >= self.force_after_insts
            || stores_in_window >= self.force_after_stores
    }
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy::paper()
    }
}

/// One checkpoint: a snapshot of the rename state plus the bookkeeping for
/// the instructions associated with it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Unique identifier.
    pub id: CheckpointId,
    /// Trace position of the first instruction associated with this
    /// checkpoint; rollback re-fetches from here.
    pub trace_index: InstId,
    /// Rename-state snapshot taken when the checkpoint was created.
    pub rename: RenameCheckpoint,
    /// Dispatched-but-not-yet-executed instructions associated with this
    /// checkpoint (the paper's per-checkpoint counter).
    pub pending: usize,
    /// Total instructions associated with this checkpoint (for statistics
    /// and for the committed-instruction count).
    pub total_insts: usize,
    /// Stores associated with this checkpoint.
    pub stores: usize,
    /// Physical registers to free when this checkpoint commits (the drained
    /// future-free set of its window).
    pub free_on_commit: Vec<PhysReg>,
    /// Whether a younger checkpoint exists (the window is closed and
    /// `free_on_commit` is final).
    pub closed: bool,
}

impl Checkpoint {
    fn new(id: CheckpointId, trace_index: InstId, rename: RenameCheckpoint) -> Self {
        Checkpoint {
            id,
            trace_index,
            rename,
            pending: 0,
            total_insts: 0,
            stores: 0,
            free_on_commit: Vec::new(),
            closed: false,
        }
    }
}

/// The checkpoint table: a small in-order queue of live checkpoints
/// (8 entries in the paper's main configuration, 4–128 in Figure 13).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckpointTable {
    capacity: usize,
    entries: VecDeque<Checkpoint>,
    next_id: CheckpointId,
}

impl CheckpointTable {
    /// Creates an empty checkpoint table with room for `capacity` checkpoints.
    ///
    /// # Panics
    /// Panics if `capacity` is zero — the mechanism requires at least one
    /// live checkpoint at all times.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "checkpoint table needs at least one entry");
        CheckpointTable {
            capacity,
            entries: VecDeque::new(),
            next_id: 0,
        }
    }

    /// Maximum number of live checkpoints.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of live checkpoints.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no checkpoint is live (only before the first dispatch).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the table has no room for another checkpoint.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Takes a new checkpoint at `trace_index` with the given rename
    /// snapshot. `freed_from_previous_window` is the drained future-free set
    /// of the (now closed) previous window; it is attached to the previous
    /// checkpoint, which this call also closes.
    ///
    /// Returns the id of the new checkpoint, or `None` if the table is full
    /// (the caller keeps associating instructions with the youngest
    /// checkpoint, per the policy described in `DESIGN.md`).
    pub fn take(
        &mut self,
        trace_index: InstId,
        rename: RenameCheckpoint,
        freed_from_previous_window: Vec<PhysReg>,
    ) -> Option<CheckpointId> {
        if self.is_full() {
            return None;
        }
        if let Some(prev) = self.entries.back_mut() {
            prev.free_on_commit = freed_from_previous_window;
            prev.closed = true;
        } else {
            debug_assert!(
                freed_from_previous_window.is_empty(),
                "nothing can be future-free before the first checkpoint"
            );
        }
        let id = self.next_id;
        self.next_id += 1;
        self.entries
            .push_back(Checkpoint::new(id, trace_index, rename));
        Some(id)
    }

    /// The youngest checkpoint (new instructions associate with it).
    pub fn newest(&self) -> Option<&Checkpoint> {
        self.entries.back()
    }

    /// The youngest checkpoint, mutable.
    pub fn newest_mut(&mut self) -> Option<&mut Checkpoint> {
        self.entries.back_mut()
    }

    /// The oldest live checkpoint.
    pub fn oldest(&self) -> Option<&Checkpoint> {
        self.entries.front()
    }

    /// Position of checkpoint `id` in the (id-sorted) table. Ids are
    /// allocated monotonically and only suffixes are ever truncated, so the
    /// deque stays sorted and the lookup is a binary search — it runs on
    /// every instruction completion, so it must not scan.
    fn position_of(&self, id: CheckpointId) -> Option<usize> {
        let i = self.entries.partition_point(|c| c.id < id);
        (i < self.entries.len() && self.entries[i].id == id).then_some(i)
    }

    /// Looks up a checkpoint by id.
    pub fn get(&self, id: CheckpointId) -> Option<&Checkpoint> {
        self.position_of(id).map(|i| &self.entries[i])
    }

    /// Looks up a checkpoint by id, mutable.
    pub fn get_mut(&mut self, id: CheckpointId) -> Option<&mut Checkpoint> {
        let i = self.position_of(id)?;
        Some(&mut self.entries[i])
    }

    /// Associates one dispatched instruction with the youngest checkpoint.
    ///
    /// # Panics
    /// Panics if no checkpoint is live — the caller must take the initial
    /// checkpoint before dispatching (the paper's "there must always exist a
    /// checkpoint").
    pub fn on_dispatch(&mut self, is_store: bool) -> CheckpointId {
        let c = self
            .entries
            .back_mut()
            .expect("dispatch requires a live checkpoint"); // koc-lint: allow(panic, "pipeline dispatches only with a live checkpoint")
        c.pending += 1;
        c.total_insts += 1;
        if is_store {
            c.stores += 1;
        }
        c.id
    }

    /// Records the completion (execution) of an instruction associated with
    /// checkpoint `id`.
    ///
    /// # Panics
    /// Panics if the checkpoint does not exist or its counter would
    /// underflow — both indicate a bookkeeping bug in the pipeline.
    pub fn on_complete(&mut self, id: CheckpointId) {
        let c = self.get_mut(id).expect("completion for unknown checkpoint"); // koc-lint: allow(panic, "completion events come only from dispatched instructions")
        assert!(c.pending > 0, "checkpoint {id} pending counter underflow");
        c.pending -= 1;
    }

    /// Records that a squashed instruction associated with checkpoint `id`
    /// is being removed from the window. `was_pending` is `true` if the
    /// instruction had not executed yet (so its pending count must also be
    /// released). Squashes against already-removed checkpoints are ignored.
    pub fn on_squash(&mut self, id: CheckpointId, was_pending: bool) {
        if let Some(c) = self.get_mut(id) {
            if was_pending {
                assert!(
                    c.pending > 0,
                    "checkpoint {id} pending counter underflow on squash"
                );
                c.pending -= 1;
            }
            c.total_insts = c.total_insts.saturating_sub(1);
        }
    }

    /// Drops every checkpoint whose first instruction is younger than
    /// `trace_bound` (exclusive), i.e. taken at or after `trace_bound`.
    /// Used by in-pseudo-ROB branch recovery, where the rename map is
    /// restored by walking undo records rather than from a snapshot.
    /// Returns how many checkpoints were dropped.
    pub fn drop_taken_at_or_after(&mut self, trace_bound: InstId) -> usize {
        let before = self.entries.len();
        while let Some(back) = self.entries.back() {
            if back.trace_index >= trace_bound && self.entries.len() > 1 {
                self.entries.pop_back();
            } else {
                break;
            }
        }
        // The surviving newest checkpoint's window is open again.
        if before != self.entries.len() {
            if let Some(newest) = self.entries.back_mut() {
                newest.closed = false;
                newest.free_on_commit.clear();
            }
        }
        before - self.entries.len()
    }

    /// Removes from every live checkpoint's `free_on_commit` set the
    /// registers for which `keep` returns `false`. Used after a rename
    /// walk-back restores previous mappings: a register that is once again
    /// the valid mapping of a logical register must not be freed when an
    /// older checkpoint commits.
    pub fn retain_free_on_commit(&mut self, mut keep: impl FnMut(PhysReg) -> bool) {
        for c in &mut self.entries {
            c.free_on_commit.retain(|&p| keep(p));
        }
    }

    /// Whether the oldest checkpoint is ready to commit: its window is
    /// closed (or `trace_done`) and no associated instruction is pending.
    pub fn can_commit_oldest(&self, trace_done: bool) -> bool {
        match self.entries.front() {
            Some(c) => (c.closed || trace_done) && c.pending == 0,
            None => false,
        }
    }

    /// Commits and removes the oldest checkpoint.
    ///
    /// # Panics
    /// Panics if [`can_commit_oldest`](Self::can_commit_oldest) would return
    /// `false` with `trace_done == true` semantics disabled; callers are
    /// expected to check first.
    pub fn commit_oldest(&mut self) -> Checkpoint {
        let c = self.entries.pop_front().expect("no checkpoint to commit"); // koc-lint: allow(panic, "caller checks has_committable first")
        assert!(
            c.pending == 0,
            "committing a checkpoint with pending instructions"
        );
        c
    }

    /// Rolls back to checkpoint `id`: removes every younger checkpoint and
    /// reopens `id` (its counters are reset because all of its associated
    /// instructions are being squashed by the caller).
    ///
    /// Returns a clone of the target checkpoint's rename snapshot and its
    /// trace index.
    ///
    /// # Panics
    /// Panics if `id` is not a live checkpoint.
    pub fn rollback_to(&mut self, id: CheckpointId) -> (RenameCheckpoint, InstId) {
        let pos = self
            .position_of(id)
            .expect("rollback target checkpoint not found"); // koc-lint: allow(panic, "rollback targets a checkpoint this table handed out")
        self.entries.truncate(pos + 1);
        let c = self.entries.back_mut().expect("target survives truncation"); // koc-lint: allow(panic, "truncate keeps the target as the back entry")
        c.pending = 0;
        c.total_insts = 0;
        c.stores = 0;
        c.free_on_commit.clear();
        c.closed = false;
        (c.rename.clone(), c.trace_index)
    }

    /// Iterates over live checkpoints from oldest to youngest.
    pub fn iter(&self) -> impl Iterator<Item = &Checkpoint> {
        self.entries.iter()
    }

    /// Removes every checkpoint (pipeline flush at end of trace or on a full
    /// exception restart).
    pub fn flush(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> RenameCheckpoint {
        RenameCheckpoint {
            valid: vec![false; 8],
            future_free: vec![false; 8],
            free_list: vec![true; 8],
        }
    }

    #[test]
    fn paper_policy_matches_section2() {
        let p = CheckpointPolicy::paper();
        assert_eq!(p.branch_after_insts, 64);
        assert_eq!(p.force_after_insts, 512);
        assert_eq!(p.force_after_stores, 64);
        assert_eq!(CheckpointPolicy::default(), p);
    }

    #[test]
    fn policy_triggers_on_branch_after_threshold() {
        let p = CheckpointPolicy::paper();
        assert!(!p.should_take(63, 0, true), "not enough instructions yet");
        assert!(p.should_take(64, 0, true));
        assert!(
            !p.should_take(64, 0, false),
            "not a branch, below force threshold"
        );
        assert!(p.should_take(512, 0, false), "forced at 512 instructions");
        assert!(p.should_take(100, 64, false), "forced at 64 stores");
        assert!(
            !p.should_take(0, 0, true),
            "fresh window never re-checkpoints"
        );
    }

    #[test]
    fn every_n_policy_mimics_a_rob() {
        let p = CheckpointPolicy::every_n(1);
        assert!(p.should_take(1, 0, false));
        let p4 = CheckpointPolicy::every_n(4);
        assert!(!p4.should_take(3, 0, false));
        assert!(p4.should_take(4, 0, false));
    }

    #[test]
    fn take_closes_the_previous_window() {
        let mut t = CheckpointTable::new(4);
        let a = t.take(0, snap(), vec![]).unwrap();
        t.on_dispatch(false);
        let freed = vec![PhysReg(3)];
        let _b = t.take(10, snap(), freed.clone()).unwrap();
        let first = t.get(a).unwrap();
        assert!(first.closed);
        assert_eq!(first.free_on_commit, freed);
        assert!(!t.newest().unwrap().closed);
    }

    #[test]
    fn table_capacity_is_enforced() {
        let mut t = CheckpointTable::new(2);
        assert!(t.take(0, snap(), vec![]).is_some());
        assert!(t.take(1, snap(), vec![]).is_some());
        assert!(t.is_full());
        assert!(t.take(2, snap(), vec![]).is_none());
    }

    #[test]
    fn commit_requires_closed_window_and_zero_pending() {
        let mut t = CheckpointTable::new(4);
        let a = t.take(0, snap(), vec![]).unwrap();
        t.on_dispatch(false);
        t.on_dispatch(true);
        assert!(!t.can_commit_oldest(false), "window still open");
        t.take(2, snap(), vec![]).unwrap();
        assert!(!t.can_commit_oldest(false), "instructions still pending");
        t.on_complete(a);
        t.on_complete(a);
        assert!(t.can_commit_oldest(false));
        let committed = t.commit_oldest();
        assert_eq!(committed.id, a);
        assert_eq!(committed.total_insts, 2);
        assert_eq!(committed.stores, 1);
    }

    #[test]
    fn trace_done_allows_committing_an_open_window() {
        let mut t = CheckpointTable::new(4);
        let a = t.take(0, snap(), vec![]).unwrap();
        t.on_dispatch(false);
        t.on_complete(a);
        assert!(!t.can_commit_oldest(false));
        assert!(t.can_commit_oldest(true));
    }

    #[test]
    fn rollback_drops_younger_checkpoints_and_reopens_target() {
        let mut t = CheckpointTable::new(8);
        let a = t.take(0, snap(), vec![]).unwrap();
        t.on_dispatch(false);
        let b = t.take(5, snap(), vec![PhysReg(1)]).unwrap();
        t.on_dispatch(false);
        let _c = t.take(9, snap(), vec![PhysReg(2)]).unwrap();
        assert_eq!(t.len(), 3);
        let (_, trace_index) = t.rollback_to(b);
        assert_eq!(t.len(), 2);
        assert_eq!(trace_index, 5);
        let reopened = t.get(b).unwrap();
        assert!(!reopened.closed);
        assert_eq!(reopened.pending, 0);
        assert!(reopened.free_on_commit.is_empty());
        // The older checkpoint is untouched.
        assert_eq!(t.get(a).unwrap().pending, 1);
    }

    #[test]
    fn squash_releases_pending_without_counting_work() {
        let mut t = CheckpointTable::new(2);
        let a = t.take(0, snap(), vec![]).unwrap();
        t.on_dispatch(false);
        t.on_dispatch(false);
        t.on_squash(a, true);
        let c = t.get(a).unwrap();
        assert_eq!(c.pending, 1);
        assert_eq!(c.total_insts, 1);
        // Squashing an already-executed instruction only reduces the total.
        t.on_complete(a);
        t.on_squash(a, false);
        let c = t.get(a).unwrap();
        assert_eq!(c.pending, 0);
        assert_eq!(c.total_insts, 0);
    }

    #[test]
    fn drop_taken_at_or_after_removes_young_checkpoints_and_reopens_newest() {
        let mut t = CheckpointTable::new(8);
        let a = t.take(0, snap(), vec![]).unwrap();
        let _b = t.take(50, snap(), vec![PhysReg(1)]).unwrap();
        let _c = t.take(100, snap(), vec![PhysReg(2)]).unwrap();
        let dropped = t.drop_taken_at_or_after(40);
        assert_eq!(dropped, 2);
        assert_eq!(t.len(), 1);
        let survivor = t.get(a).unwrap();
        assert!(!survivor.closed);
        assert!(survivor.free_on_commit.is_empty());
    }

    #[test]
    fn drop_taken_at_or_after_never_removes_the_last_checkpoint() {
        let mut t = CheckpointTable::new(4);
        let a = t.take(10, snap(), vec![]).unwrap();
        assert_eq!(t.drop_taken_at_or_after(0), 0);
        assert!(t.get(a).is_some());
    }

    #[test]
    fn retain_free_on_commit_filters_registers() {
        let mut t = CheckpointTable::new(4);
        let a = t.take(0, snap(), vec![]).unwrap();
        t.take(5, snap(), vec![PhysReg(1), PhysReg(2), PhysReg(3)])
            .unwrap();
        t.retain_free_on_commit(|p| p != PhysReg(2));
        assert_eq!(
            t.get(a).unwrap().free_on_commit,
            vec![PhysReg(1), PhysReg(3)]
        );
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn completion_underflow_panics() {
        let mut t = CheckpointTable::new(2);
        let a = t.take(0, snap(), vec![]).unwrap();
        t.on_complete(a);
    }

    #[test]
    #[should_panic(expected = "live checkpoint")]
    fn dispatch_without_checkpoint_panics() {
        let mut t = CheckpointTable::new(2);
        t.on_dispatch(false);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_table_panics() {
        let _ = CheckpointTable::new(0);
    }

    #[test]
    fn ids_are_never_reused() {
        let mut t = CheckpointTable::new(2);
        let a = t.take(0, snap(), vec![]).unwrap();
        t.take(1, snap(), vec![]).unwrap();
        // Commit the first, take another: new id must differ from both.
        t.on_dispatch(false);
        let newest = t.newest().unwrap().id;
        t.rollback_to(newest); // clears pending on newest
        let (_, _) = t.rollback_to(a);
        assert_eq!(t.len(), 1);
        let c = t.take(7, snap(), vec![]).unwrap();
        assert!(c > a);
    }
}
