//! The conventional re-order buffer used by the baseline machine.
//!
//! The baseline processor of the paper commits in order from a ROB whose size
//! is swept from 128 to 4096 entries (Figure 1, and the two reference lines
//! of Figure 9). Entries carry the rename undo/free information so that
//! commit can free the previously-mapped physical register and squash can
//! walk the map back.

use crate::checkpoint::CheckpointId;
use koc_isa::{ArchReg, InstId, PhysReg};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One ROB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RobEntry {
    /// The dynamic instruction.
    pub inst: InstId,
    /// Whether the instruction has finished execution.
    pub finished: bool,
    /// Destination rename record: (logical, new physical, previous physical).
    pub rename: Option<(ArchReg, PhysReg, Option<PhysReg>)>,
    /// Whether the instruction is a store.
    pub is_store: bool,
    /// Whether the instruction is a branch.
    pub is_branch: bool,
    /// Checkpoint association (unused by the baseline, kept so shared
    /// pipeline code can treat both machines uniformly).
    pub ckpt: CheckpointId,
}

/// Error returned when the ROB is full at dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RobFull;

impl std::fmt::Display for RobFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("reorder buffer is full")
    }
}

impl std::error::Error for RobFull {}

/// A conventional in-order-commit re-order buffer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReorderBuffer {
    capacity: usize,
    entries: VecDeque<RobEntry>,
}

impl ReorderBuffer {
    /// Creates a ROB with `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reorder buffer capacity must be non-zero");
        ReorderBuffer {
            capacity,
            entries: VecDeque::with_capacity(capacity.min(4096)),
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ROB is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether another instruction can be dispatched.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Allocates an entry at the tail (program order).
    ///
    /// # Errors
    /// Returns [`RobFull`] when the ROB is full; dispatch stalls.
    pub fn push(&mut self, entry: RobEntry) -> Result<(), RobFull> {
        if !self.has_space() {
            return Err(RobFull);
        }
        self.entries.push_back(entry);
        Ok(())
    }

    /// Marks an instruction as finished (write-back).
    pub fn mark_finished(&mut self, inst: InstId) {
        if let Some(e) = self.entries.iter_mut().rev().find(|e| e.inst == inst) {
            e.finished = true;
        }
    }

    /// Pops the head entry if it has finished — one in-order commit step.
    /// The per-cycle commit loop calls this up to the commit width; no
    /// intermediate collection.
    pub fn pop_finished(&mut self) -> Option<RobEntry> {
        match self.entries.front() {
            Some(e) if e.finished => self.entries.pop_front(),
            _ => None,
        }
    }

    /// Commits up to `width` finished instructions from the head, in order.
    /// Convenience wrapper over [`pop_finished`](Self::pop_finished) for
    /// tests and tools; the cycle loop uses the allocation-free pop.
    pub fn commit(&mut self, width: usize) -> Vec<RobEntry> {
        let mut committed = Vec::new();
        while committed.len() < width {
            match self.pop_finished() {
                Some(e) => committed.push(e),
                None => break,
            }
        }
        committed
    }

    /// Pops the youngest entry if it is younger than `inst` (exclusive) —
    /// one step of the rename walk-back on a branch misprediction. The
    /// recovery path loops on this, youngest first.
    pub fn pop_younger_than(&mut self, inst: InstId) -> Option<RobEntry> {
        match self.entries.back() {
            Some(back) if back.inst > inst => self.entries.pop_back(),
            _ => None,
        }
    }

    /// Removes and returns every entry younger than `inst` (exclusive),
    /// youngest first. Convenience wrapper over
    /// [`pop_younger_than`](Self::pop_younger_than) for tests and tools.
    pub fn squash_younger_than(&mut self, inst: InstId) -> Vec<RobEntry> {
        let mut squashed = Vec::new();
        while let Some(e) = self.pop_younger_than(inst) {
            squashed.push(e);
        }
        squashed
    }

    /// The instruction id at the head of the ROB (the oldest in-flight
    /// instruction), if any.
    pub fn head_inst(&self) -> Option<InstId> {
        self.entries.front().map(|e| e.inst)
    }

    /// Iterates over entries from oldest to youngest.
    pub fn iter(&self) -> impl Iterator<Item = &RobEntry> {
        self.entries.iter()
    }

    /// Removes everything (full flush).
    pub fn flush(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(inst: InstId) -> RobEntry {
        RobEntry {
            inst,
            finished: false,
            rename: None,
            is_store: false,
            is_branch: false,
            ckpt: 0,
        }
    }

    #[test]
    fn commit_is_in_order_and_stops_at_unfinished() {
        let mut rob = ReorderBuffer::new(8);
        for i in 0..4 {
            rob.push(entry(i)).unwrap();
        }
        rob.mark_finished(0);
        rob.mark_finished(2); // out-of-order completion
        let committed = rob.commit(4);
        assert_eq!(committed.len(), 1, "instruction 1 blocks the commit of 2");
        assert_eq!(committed[0].inst, 0);
        rob.mark_finished(1);
        let committed = rob.commit(4);
        let ids: Vec<_> = committed.iter().map(|e| e.inst).collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn commit_respects_width() {
        let mut rob = ReorderBuffer::new(8);
        for i in 0..6 {
            rob.push(entry(i)).unwrap();
            rob.mark_finished(i);
        }
        assert_eq!(rob.commit(4).len(), 4);
        assert_eq!(rob.commit(4).len(), 2);
    }

    #[test]
    fn full_rob_rejects_dispatch() {
        let mut rob = ReorderBuffer::new(2);
        rob.push(entry(0)).unwrap();
        rob.push(entry(1)).unwrap();
        assert_eq!(rob.push(entry(2)), Err(RobFull));
    }

    #[test]
    fn squash_returns_youngest_first_and_keeps_the_boundary() {
        let mut rob = ReorderBuffer::new(8);
        for i in 0..5 {
            rob.push(entry(i)).unwrap();
        }
        let squashed = rob.squash_younger_than(2);
        let ids: Vec<_> = squashed.iter().map(|e| e.inst).collect();
        assert_eq!(ids, vec![4, 3]);
        assert_eq!(rob.len(), 3);
        assert_eq!(rob.head_inst(), Some(0));
    }

    #[test]
    fn head_inst_tracks_the_oldest() {
        let mut rob = ReorderBuffer::new(4);
        assert_eq!(rob.head_inst(), None);
        rob.push(entry(5)).unwrap();
        rob.push(entry(6)).unwrap();
        assert_eq!(rob.head_inst(), Some(5));
        rob.mark_finished(5);
        rob.commit(1);
        assert_eq!(rob.head_inst(), Some(6));
    }

    #[test]
    fn flush_empties_the_rob() {
        let mut rob = ReorderBuffer::new(4);
        rob.push(entry(0)).unwrap();
        rob.flush();
        assert!(rob.is_empty());
        assert!(rob.has_space());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = ReorderBuffer::new(0);
    }
}
