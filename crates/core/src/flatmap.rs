//! A small open-addressed map from dense integer keys to values, tuned for
//! the simulator's hot paths.
//!
//! The per-cycle structures key their records by stream position or request
//! token — monotonically increasing integers from a window-sized band. A
//! `std` `HashMap` pays SipHash on every touch and a `BTreeMap` pays a
//! pointer walk plus node churn; this map is a flat power-of-two table with
//! fibonacci hashing, linear probing and backward-shift deletion, so the
//! steady state is one multiply and (almost always) one probe per
//! operation, with zero allocation after warm-up.

/// An open-addressed `usize → V` map with linear probing.
///
/// Keys may be any `usize` except `usize::MAX` (the internal empty
/// sentinel, which no stream position or token reaches in practice).
#[derive(Debug, Clone)]
pub struct FlatMap<V> {
    /// Slot keys; `EMPTY` marks a vacant slot.
    keys: Vec<usize>,
    vals: Vec<Option<V>>,
    mask: usize,
    len: usize,
}

const EMPTY: usize = usize::MAX;

/// Multiplicative (fibonacci) hashing: spreads monotonic keys across the
/// table while keeping nearby keys in distinct slots.
#[inline]
fn hash(key: usize, mask: usize) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) & mask
}

impl<V> Default for FlatMap<V> {
    fn default() -> Self {
        Self::with_capacity(0)
    }
}

impl<V> FlatMap<V> {
    /// Creates a map that can hold roughly `capacity` entries before its
    /// first growth.
    pub fn with_capacity(capacity: usize) -> Self {
        let slots = (capacity * 2).next_power_of_two().max(16);
        FlatMap {
            keys: vec![EMPTY; slots],
            vals: (0..slots).map(|_| None).collect(),
            mask: slots - 1,
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn slot_of(&self, key: usize) -> Option<usize> {
        let mut i = hash(key, self.mask);
        loop {
            match self.keys[i] {
                EMPTY => return None,
                k if k == key => return Some(i),
                _ => i = (i + 1) & self.mask,
            }
        }
    }

    /// The value for `key`, if present.
    #[inline]
    pub fn get(&self, key: usize) -> Option<&V> {
        self.slot_of(key).and_then(|i| self.vals[i].as_ref())
    }

    /// Mutable access to the value for `key`, if present.
    #[inline]
    pub fn get_mut(&mut self, key: usize) -> Option<&mut V> {
        let i = self.slot_of(key)?;
        self.vals[i].as_mut()
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains_key(&self, key: usize) -> bool {
        self.slot_of(key).is_some()
    }

    /// Inserts `key → val`, returning the previous value if the key was
    /// already present.
    pub fn insert(&mut self, key: usize, val: V) -> Option<V> {
        debug_assert_ne!(key, EMPTY, "usize::MAX is reserved");
        if (self.len + 1) * 4 > self.keys.len() * 3 {
            self.grow();
        }
        let mut i = hash(key, self.mask);
        loop {
            match self.keys[i] {
                EMPTY => {
                    self.keys[i] = key;
                    self.vals[i] = Some(val);
                    self.len += 1;
                    return None;
                }
                k if k == key => {
                    return self.vals[i].replace(val);
                }
                _ => i = (i + 1) & self.mask,
            }
        }
    }

    /// Removes and returns the value for `key`.
    ///
    /// Uses backward-shift deletion: the probe chain after the vacated slot
    /// is compacted in place, so lookups never step over tombstones and the
    /// table needs no periodic rehash.
    pub fn remove(&mut self, key: usize) -> Option<V> {
        let mut vacant = self.slot_of(key)?;
        let val = self.vals[vacant].take();
        self.len -= 1;
        let mut j = vacant;
        loop {
            j = (j + 1) & self.mask;
            let k = self.keys[j];
            if k == EMPTY {
                break;
            }
            // An entry may fill the hole only if its ideal slot is not
            // after the hole in probe order (cyclic distance check).
            let ideal = hash(k, self.mask);
            if (j.wrapping_sub(ideal) & self.mask) >= (j.wrapping_sub(vacant) & self.mask) {
                self.keys[vacant] = k;
                self.vals[vacant] = self.vals[j].take();
                vacant = j;
            }
        }
        self.keys[vacant] = EMPTY;
        val
    }

    /// Iterates over `(key, &value)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &V)> {
        self.keys
            .iter()
            .zip(&self.vals)
            .filter(|(&k, _)| k != EMPTY)
            .map(|(&k, v)| (k, v.as_ref().expect("occupied slot"))) // koc-lint: allow(panic, "non-EMPTY key implies an occupied slot")
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.keys.fill(EMPTY);
        for v in &mut self.vals {
            *v = None;
        }
        self.len = 0;
    }

    fn grow(&mut self) {
        let new_slots = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_slots]);
        let old_vals = std::mem::replace(
            &mut self.vals,
            (0..new_slots).map(|_| None).collect::<Vec<_>>(),
        );
        self.mask = new_slots - 1;
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != EMPTY {
                let v = v.expect("occupied slot"); // koc-lint: allow(panic, "non-EMPTY key implies an occupied slot")
                self.insert(k, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut m = FlatMap::with_capacity(4);
        assert!(m.is_empty());
        assert_eq!(m.insert(10, "a"), None);
        assert_eq!(m.insert(11, "b"), None);
        assert_eq!(m.insert(10, "c"), Some("a"));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(10), Some(&"c"));
        assert!(m.contains_key(11));
        assert!(!m.contains_key(12));
        assert_eq!(m.remove(10), Some("c"));
        assert_eq!(m.remove(10), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut m = FlatMap::with_capacity(4);
        m.insert(5, 1u32);
        *m.get_mut(5).unwrap() += 9;
        assert_eq!(m.get(5), Some(&10));
        assert!(m.get_mut(6).is_none());
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut m = FlatMap::with_capacity(2);
        for k in 0..1000 {
            m.insert(k, k * 3);
        }
        assert_eq!(m.len(), 1000);
        for k in 0..1000 {
            assert_eq!(m.get(k), Some(&(k * 3)));
        }
    }

    #[test]
    fn matches_a_reference_map_under_churn() {
        // Deterministic pseudo-random workload exercising collision chains
        // and backward-shift deletion.
        let mut m = FlatMap::with_capacity(8);
        let mut reference = std::collections::HashMap::new();
        let mut x = 0x12345678usize;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (x >> 33) % 512;
            match x % 3 {
                0 => {
                    assert_eq!(m.insert(key, x), reference.insert(key, x));
                }
                1 => {
                    assert_eq!(m.remove(key), reference.remove(&key));
                }
                _ => {
                    assert_eq!(m.get(key), reference.get(&key));
                }
            }
            assert_eq!(m.len(), reference.len());
        }
        let mut got: Vec<_> = m.iter().map(|(k, &v)| (k, v)).collect();
        got.sort_unstable();
        let mut want: Vec<_> = reference.iter().map(|(&k, &v)| (k, v)).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn clear_empties_and_reuses() {
        let mut m = FlatMap::with_capacity(4);
        for k in 0..50 {
            m.insert(k, k);
        }
        m.clear();
        assert!(m.is_empty());
        assert!(m.get(10).is_none());
        m.insert(7, 7);
        assert_eq!(m.get(7), Some(&7));
    }
}
