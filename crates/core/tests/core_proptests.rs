//! Property-based tests for the core mechanisms: rename/free-list
//! consistency, checkpoint accounting, dependence-mask propagation and SLIQ
//! conservation.

use koc_core::{
    CamRenameMap, CheckpointPolicy, CheckpointTable, DependenceMask, InstructionQueue, IqEntry,
    PhysRegFile, SliqBuffer, SliqConfig,
};
use koc_isa::{ArchReg, FuClass, Instruction, OpKind, PhysReg, NUM_ARCH_REGS};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = ArchReg> {
    (0..NUM_ARCH_REGS).prop_map(ArchReg::from_flat_index)
}

proptest! {
    /// Renaming any sequence of destinations never loses registers: the
    /// number of free + valid + future-free registers always equals the pool.
    #[test]
    fn rename_conserves_registers(dests in proptest::collection::vec(arb_reg(), 1..200)) {
        let pool = 256;
        let mut map = CamRenameMap::new(pool);
        let mut regs = PhysRegFile::new(pool);
        for d in dests {
            if map.rename_dest(d, &mut regs).is_none() {
                break;
            }
            let accounted = regs.free_count() + map.valid_count() + map.future_free_count();
            prop_assert_eq!(accounted, pool, "free + valid + future-free must cover the pool");
        }
    }

    /// After a checkpoint/restore round trip, the rename map maps exactly the
    /// same registers as at checkpoint time.
    #[test]
    fn checkpoint_restore_round_trips(
        before in proptest::collection::vec(arb_reg(), 1..100),
        after in proptest::collection::vec(arb_reg(), 1..100),
    ) {
        let pool = 512;
        let mut map = CamRenameMap::new(pool);
        let mut regs = PhysRegFile::new(pool);
        for d in &before {
            map.rename_dest(*d, &mut regs).unwrap();
        }
        let lookups_before: Vec<_> = ArchReg::all().map(|r| map.lookup(r)).collect();
        let free_before = regs.free_count();
        let (snapshot, _) = map.take_checkpoint(&regs);
        for d in &after {
            if map.rename_dest(*d, &mut regs).is_none() {
                break;
            }
        }
        map.restore(&snapshot, &mut regs);
        let lookups_after: Vec<_> = ArchReg::all().map(|r| map.lookup(r)).collect();
        prop_assert_eq!(lookups_before, lookups_after);
        prop_assert_eq!(regs.free_count(), free_before);
    }

    /// The checkpoint policy fires iff one of its thresholds is reached.
    #[test]
    fn policy_thresholds_are_exact(insts in 0usize..1000, stores in 0usize..200, is_branch in any::<bool>()) {
        let p = CheckpointPolicy::paper();
        let expected = insts > 0
            && ((is_branch && insts >= 64) || insts >= 512 || stores >= 64);
        prop_assert_eq!(p.should_take(insts, stores, is_branch), expected);
    }

    /// Checkpoint-table pending counters never go negative and commits only
    /// happen when every associated instruction completed.
    #[test]
    fn checkpoint_accounting_is_consistent(windows in proptest::collection::vec(1usize..40, 1..10)) {
        let mut table = CheckpointTable::new(windows.len() + 1);
        let snap = koc_core::RenameCheckpoint {
            valid: vec![false; 64],
            future_free: vec![false; 64],
            free_list: vec![true; 64],
        };
        let mut ids = Vec::new();
        let mut trace_index = 0;
        for w in &windows {
            let id = table.take(trace_index, snap.clone(), vec![]).unwrap();
            ids.push((id, *w));
            for _ in 0..*w {
                table.on_dispatch(false);
            }
            trace_index += w;
        }
        // Complete everything, oldest window first, and commit as we go.
        let total_windows = ids.len();
        for (i, (id, w)) in ids.iter().enumerate() {
            for _ in 0..*w {
                table.on_complete(*id);
            }
            let has_younger = i + 1 < total_windows;
            prop_assert_eq!(
                table.can_commit_oldest(false),
                has_younger,
                "a closed window with no pending work commits; an open one needs trace_done"
            );
            prop_assert!(table.can_commit_oldest(true));
            let c = table.commit_oldest();
            prop_assert_eq!(c.total_insts, *w);
            prop_assert_eq!(c.id, *id);
        }
        prop_assert!(table.is_empty());
    }

    /// Dependence-mask propagation: an instruction is dependent iff at least
    /// one of its sources is currently masked.
    #[test]
    fn dependence_mask_matches_reference(seed in arb_reg(), ops in proptest::collection::vec((arb_reg(), arb_reg(), arb_reg()), 1..100)) {
        let mut mask = DependenceMask::seeded(seed);
        let mut reference: std::collections::HashSet<ArchReg> = [seed].into_iter().collect();
        for (dest, s1, s2) in ops {
            let inst = Instruction::op(0, OpKind::FpAlu, Some(dest), &[s1, s2]);
            let dependent = mask.classify_and_update(&inst);
            let expected = reference.contains(&s1) || reference.contains(&s2);
            prop_assert_eq!(dependent, expected);
            if expected {
                reference.insert(dest);
            } else {
                reference.remove(&dest);
            }
        }
    }

    /// Instructions moved into the SLIQ are all eventually returned, exactly
    /// once, in program order per trigger.
    #[test]
    fn sliq_conserves_instructions(count in 1usize..200, triggers in 1u32..8) {
        let mut sliq = SliqBuffer::new(SliqConfig::paper(4096));
        for i in 0..count {
            let entry = IqEntry {
                inst: i,
                dest: Some(PhysReg(100 + i as u32)),
                srcs: koc_isa::RegList::new(),
                fu: if i % 2 == 0 { FuClass::Fp } else { FuClass::IntAlu },
                ckpt: 0,
            };
            sliq.insert(entry, PhysReg(i as u32 % triggers));
        }
        for t in 0..triggers {
            sliq.on_trigger_ready(PhysReg(t), 0);
        }
        let mut woken = Vec::new();
        let mut cycle = 0u64;
        while !sliq.is_empty() && cycle < 10_000 {
            woken.extend(sliq.step(cycle, 4, 4).into_iter().map(|e| e.inst));
            cycle += 1;
        }
        prop_assert_eq!(woken.len(), count, "every entry is returned exactly once");
        let mut seen = std::collections::HashSet::new();
        for w in &woken {
            prop_assert!(seen.insert(*w), "duplicate wake-up for {}", w);
        }
    }

    /// The instruction queue issues every inserted instruction exactly once,
    /// once its sources are produced.
    #[test]
    fn iq_conserves_instructions(srcs in proptest::collection::vec(0u32..16, 1..100)) {
        let mut iq = InstructionQueue::new(256);
        for (i, s) in srcs.iter().enumerate() {
            let entry = IqEntry {
                inst: i,
                dest: Some(PhysReg(1000 + i as u32)),
                srcs: [PhysReg(*s)].into_iter().collect(),
                fu: FuClass::IntAlu,
                ckpt: 0,
            };
            iq.insert(entry, |_| false).unwrap();
        }
        for s in 0u32..16 {
            iq.wakeup(PhysReg(s));
        }
        let mut issued = 0;
        loop {
            let picked = iq.select_ready(&mut [4, 4, 4, 4], 4);
            if picked.is_empty() {
                break;
            }
            issued += picked.len();
        }
        prop_assert_eq!(issued, srcs.len());
        prop_assert!(iq.is_empty());
    }
}
