//! Golden test: lint the fixture tree under `tests/fixtures/` and compare
//! the full JSON report against `tests/fixtures/golden.json`.
//!
//! The fixture tree holds one deliberate violation (and one deliberate
//! non-violation) per rule behaviour: hot-path allocations with a cold-fn
//! and `#[cfg(test)]` exemption, hash-map point use vs iteration, wall-clock
//! and `rand` bans, unjustified panics, a crate root missing
//! `#![forbid(unsafe_code)]`, an uncovered stats field, and malformed /
//! stale suppression markers. The call-graph cases live in `driver.rs`
//! (the `Driver::cycle` entry point), `graphy.rs` (cross-module helper,
//! closure-attributed call, self-recursion, `setup` cut point), and
//! `engines.rs` (trait-dispatch fan-out convicting one impl of two); the
//! unresolvable `Ghost::cycle` entry pins the `callgraph` finding.
//! Regenerate the golden after an intentional rule change with:
//!
//! ```text
//! cargo run -p koc-lint -- --root crates/lint/tests/fixtures \
//!     --config crates/lint/tests/fixtures/lint.toml \
//!     --out crates/lint/tests/fixtures/golden.json
//! ```

use std::path::Path;

use koc_lint::config::Config;
use koc_lint::lint_root;
use serde::Serialize;

fn fixture_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn fixture_tree_matches_golden_report() {
    let root = fixture_root();
    let config = Config::load(&root.join("lint.toml")).expect("fixture lint.toml parses");
    let report = lint_root(&root, &config).expect("fixture tree lints");

    let golden = std::fs::read_to_string(root.join("golden.json")).expect("golden.json readable");
    let actual = report.to_json();
    assert_eq!(
        actual.trim(),
        golden.trim(),
        "fixture findings drifted from golden.json — if the rule change is \
         intentional, regenerate it (see this test's module docs)"
    );
}

#[test]
fn fixture_tree_fails_and_counts_line_up() {
    let root = fixture_root();
    let config = Config::load(&root.join("lint.toml")).expect("fixture lint.toml parses");
    let report = lint_root(&root, &config).expect("fixture tree lints");

    assert!(!report.passed());
    assert_eq!(report.errors + report.warnings, report.findings.len());
    // Every rule (and the suppression meta-rule) appears at least once, so
    // the fixture keeps exercising the full rule set.
    for rule in [
        "hot-path-alloc",
        "hot-path-indirect",
        "determinism",
        "panic",
        "unsafe-policy",
        "stats-coverage",
        "suppression",
        "callgraph",
    ] {
        assert!(
            report.findings.iter().any(|f| f.rule == rule),
            "no fixture finding for rule {rule}"
        );
    }
    // The three well-formed markers (hot.rs to_vec, maps.rs use-line
    // HashMap warning, panics.rs expect) all suppress something.
    assert_eq!(report.suppressed, 3);
}

#[test]
fn suppressions_are_line_and_rule_scoped() {
    let root = fixture_root();
    let config = Config::load(&root.join("lint.toml")).expect("fixture lint.toml parses");
    let report = lint_root(&root, &config).expect("fixture tree lints");

    // The suppressed sites must NOT appear among live findings …
    assert!(!report
        .findings
        .iter()
        .any(|f| f.file.ends_with("hot.rs") && f.rule == "hot-path-alloc" && f.line == 30));
    assert!(!report
        .findings
        .iter()
        .any(|f| f.file.ends_with("panics.rs") && f.rule == "panic" && f.line == 18));
    // … while unsuppressed findings of the same rules elsewhere survive.
    assert!(report
        .findings
        .iter()
        .any(|f| f.file.ends_with("hot.rs") && f.rule == "hot-path-alloc"));
    assert!(report
        .findings
        .iter()
        .any(|f| f.file.ends_with("panics.rs") && f.rule == "panic"));
}

#[test]
fn callgraph_cases_resolve_as_designed() {
    let root = fixture_root();
    let config = Config::load(&root.join("lint.toml")).expect("fixture lint.toml parses");
    let report = lint_root(&root, &config).expect("fixture tree lints");

    // Trait fan-out: the generic `e.kick()` call convicts the allocating
    // impl and names the seeding chain; the clean impl stays clean.
    assert!(report
        .findings
        .iter()
        .any(|f| f.file.ends_with("engines.rs")
            && f.rule == "hot-path-indirect"
            && f.message.contains("Driver::cycle → drive → Bursty::kick")));
    // Closure attribution: `leaf` is reached only through a closure body.
    assert!(report
        .findings
        .iter()
        .any(|f| f.file.ends_with("graphy.rs") && f.message.contains("closure_capture → leaf")));
    // The `setup` cold-fn cut: everything at or below it is unenforced.
    assert!(!report
        .findings
        .iter()
        .any(|f| f.file.ends_with("graphy.rs") && f.line >= 45));
    // Files in legacy_files keep the legacy rule name.
    assert!(report
        .findings
        .iter()
        .filter(|f| f.file.ends_with("hot.rs"))
        .all(|f| f.rule == "hot-path-alloc"));
    // The unresolvable entry point surfaces as an unwaivable config error.
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == "callgraph" && f.message.contains("Ghost::cycle")));
}
