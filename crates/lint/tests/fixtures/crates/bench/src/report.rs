//! stats-coverage fixture consumer: mentions `covered` but not `orphaned`.

pub fn rows(covered: u64) -> Vec<(String, String)> {
    vec![("covered".to_string(), covered.to_string())]
}
