//! stats-coverage fixture: `covered` appears in the consumer, `orphaned`
//! does not (one finding).

/// Fixture stats struct.
pub struct FixtureStats {
    /// Referenced by the consumer.
    pub covered: u64,
    /// Never referenced by the consumer: flagged.
    pub orphaned: u64,
    // Private fields are not part of the contract.
    internal: u64,
}
