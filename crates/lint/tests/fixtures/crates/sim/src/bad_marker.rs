//! suppression fixture: a reasonless marker, an unknown rule, and a stale
//! marker that suppresses nothing — three unsuppressable findings.

pub fn nothing() -> u64 {
    // koc-lint: allow(panic)
    // koc-lint: allow(no-such-rule, "typo")
    // koc-lint: allow(determinism, "stale: nothing here to suppress")
    7
}
