//! panic fixture: flagged unwrap/expect/panic!, a justified suppression,
//! non-panicking lookalikes, and test-code exemption.

/// Flagged: unwrap in library code.
pub fn first(v: &[u64]) -> u64 {
    *v.first().unwrap()
}

/// Flagged: panic! in library code.
pub fn boom() {
    panic!("nope");
}

/// Suppressed with a written invariant.
pub fn checked_first(v: &[u64]) -> u64 {
    // koc-lint: allow(panic, "caller guarantees v is non-empty")
    *v.first().expect("non-empty by contract")
}

/// Not flagged: unwrap_or is total.
pub fn first_or_zero(v: &[u64]) -> u64 {
    v.first().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v = [1u64];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
