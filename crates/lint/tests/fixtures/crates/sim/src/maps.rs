//! determinism fixture: hash-map point use (warning), iteration (error),
//! a suppressed type mention, and the wall-clock / rand bans.

use std::collections::HashMap; // koc-lint: allow(determinism, "re-export for downstream compat")
use std::time::Instant;

pub struct Tracker {
    // Point use: warning nudging toward FlatMap.
    waiting: HashMap<u64, u64>,
}

impl Tracker {
    /// Error: iterating a hash map in storage order.
    pub fn sum(&self) -> u64 {
        let mut total = 0;
        for (_, v) in &self.waiting {
            total += v;
        }
        total
    }

    /// Error: method-based iteration.
    pub fn max(&self) -> u64 {
        self.waiting.values().copied().max().unwrap_or(0)
    }

    /// Point lookups alone are not iteration: no extra finding here.
    pub fn get(&self, k: u64) -> Option<u64> {
        self.waiting.get(&k).copied()
    }

    /// Error: wall-clock time in a simulation crate.
    pub fn stamp(&self) -> Instant {
        Instant::now()
    }

    /// Error: unseeded randomness in a simulation crate.
    pub fn entropy(&self) -> u64 {
        rand::random()
    }
}
