//! Fixture crate root that carries the required attribute: no
//! unsafe-policy finding for this file.

#![forbid(unsafe_code)]

pub mod driver;
pub mod engines;
pub mod graphy;
pub mod hot;
pub mod maps;
pub mod panics;
pub mod stats;
