//! Trait-dispatch fan-out: the lint cannot know which `Engine` impl a
//! `e.kick()` call runs, so a method call by that name marks every `kick`
//! in the workspace — the clean impl stays clean, the allocating impl is
//! convicted.

/// The fixture's per-cycle engine seam.
pub trait Engine {
    /// Per-cycle hook.
    fn kick(&mut self);
}

/// Clean impl: hot, but nothing to report.
pub struct Steady;

impl Engine for Steady {
    fn kick(&mut self) {}
}

/// Impl with an allocation: convicted via the conservative fan-out.
pub struct Bursty;

impl Engine for Bursty {
    fn kick(&mut self) {
        let spill: Vec<u8> = Vec::new();
        drop(spill);
    }
}

/// Generic dispatch: the `e.kick()` call site resolves to both impls.
pub fn drive<E: Engine>(e: &mut E) {
    e.kick();
}
