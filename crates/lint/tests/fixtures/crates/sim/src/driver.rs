//! Call-graph fixture: the per-cycle entry point seeding reachability.
//! Everything transitively called from `Driver::cycle` is hot; functions
//! this file never reaches stay cold no matter what they allocate.

use crate::engines::{self, Bursty, Steady};
use crate::hot::Hot;

/// The fixture's pipeline shell.
pub struct Driver {
    hot: Hot,
    steady: Steady,
    bursty: Bursty,
}

impl Driver {
    /// The declared entry point (see the fixture lint.toml): seeds the
    /// reachability walk.
    pub fn cycle(&mut self) {
        self.hot.tick();
        let _ = self.hot.drain();
        let _ = self.hot.rollback();
        crate::graphy::helper_entry();
        engines::drive(&mut self.steady);
        engines::drive(&mut self.bursty);
    }
}
