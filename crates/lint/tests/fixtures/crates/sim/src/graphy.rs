//! Call-graph cases: a cross-module helper that allocates, a call made
//! inside a closure, a self-recursive function, and a cold-fn cut point.
//! This file is NOT in the fixture's `legacy_files`, so its findings carry
//! the `hot-path-indirect` rule and cite the seeding chain.

/// Reached from `Driver::cycle`; fans out into the cases.
pub fn helper_entry() {
    cross_module_alloc();
    closure_capture(&[1, 2, 3]);
    recurse(3);
    setup();
}

/// Flagged (`hot-path-indirect`): an allocation in a helper the old
/// hand-written file list never named.
fn cross_module_alloc() {
    let scratch: Vec<u64> = Vec::new();
    drop(scratch);
}

/// The call to `leaf` happens inside a closure: attributed to this
/// function, so `leaf` is still marked hot.
fn closure_capture(xs: &[u64]) {
    let total: u64 = xs.iter().map(|x| x + leaf()).sum();
    drop(total);
}

/// Flagged: reachable only through the closure above.
fn leaf() -> u64 {
    let s = String::new();
    s.len() as u64
}

/// Self-recursive: the walk terminates and the body is enforced once.
fn recurse(n: u64) {
    if n > 0 {
        recurse(n - 1);
    }
    let v = vec![n];
    drop(v);
}

/// In the fixture's `cold_fns`: a cut point — neither enforced nor
/// traversed, so nothing below here is flagged.
fn setup() {
    let big: Vec<u64> = Vec::with_capacity(1024);
    only_via_setup(big);
}

/// Reachable only through the cut `setup`: stays cold, not flagged.
fn only_via_setup(v: Vec<u64>) {
    let copy = v.to_vec();
    drop(copy);
}
