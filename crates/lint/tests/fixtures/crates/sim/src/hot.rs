//! hot-path-alloc fixture: flagged allocations, a cold-fn exemption, a
//! suppressed site, and a `#[cfg(test)]` false-positive case.

pub struct Hot {
    buf: Vec<u64>,
}

impl Hot {
    /// `new` is in cold_fns: these allocations are exempt.
    pub fn new() -> Hot {
        Hot {
            buf: Vec::with_capacity(64),
        }
    }

    /// Flagged: Vec::new on the hot path.
    pub fn tick(&mut self) {
        let scratch: Vec<u64> = Vec::new();
        drop(scratch);
    }

    /// Flagged: .collect() and format! on the hot path.
    pub fn drain(&mut self) -> String {
        let all: Vec<u64> = self.buf.iter().copied().collect();
        format!("{all:?}")
    }

    /// Suppressed with a reason: does not gate.
    pub fn rollback(&mut self) -> Vec<u64> {
        self.buf.to_vec() // koc-lint: allow(hot-path-alloc, "recovery path, not per cycle")
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_allocate() {
        let v = vec![1, 2, 3];
        assert_eq!(v.len(), 3);
    }
}
