//! Fixture crate root MISSING `#![forbid(unsafe_code)]` and containing an
//! `unsafe` block: two unsafe-policy findings.

pub fn read_raw(p: *const u8) -> u8 {
    unsafe { *p }
}
