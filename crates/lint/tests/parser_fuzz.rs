//! Property test: the item parser and call-graph builder never panic, no
//! matter how mangled the input source is. The parser walks raw token
//! streams with hand-maintained depth counters and index arithmetic — the
//! classic place for an off-by-one on unbalanced braces or a truncated
//! `impl` header — so we throw random fragment soup at it and require
//! graceful degradation (garbage in, empty-or-partial graph out, never a
//! crash).

use koc_lint::graph::{parse_items, CallGraph};
use koc_lint::reach::Reachability;
use koc_lint::scan::FileScan;
use proptest::prelude::*;

/// Fragments chosen to hit the parser's decision points: item keywords,
/// receivers, qualified paths, closures, generics, and stray delimiters
/// that never balance.
const FRAGMENTS: &[&str] = &[
    "fn",
    "impl",
    "trait",
    "for",
    "struct",
    "enum",
    "mod",
    "pub",
    "self",
    "Self",
    "where",
    "dyn",
    "f",
    "Type",
    "Trait",
    "x",
    "tick",
    "cycle",
    "(",
    ")",
    "{",
    "}",
    "<",
    ">",
    "[",
    "]",
    ",",
    ";",
    ":",
    "::",
    "->",
    "=>",
    "|",
    "&",
    "&mut",
    ".",
    "#",
    "#[cfg(test)]",
    "'a",
    "0",
    "1.5",
    "\"s\"",
    "|x|",
    ".m()",
    "T::m()",
    "self.m()",
    "vec![",
    "// c\n",
];

fn soup() -> impl Strategy<Value = String> {
    proptest::collection::vec(0..FRAGMENTS.len(), 0..120).prop_map(|picks| {
        let mut s = String::new();
        for (i, p) in picks.iter().enumerate() {
            if i % 7 == 0 {
                s.push('\n');
            } else {
                s.push(' ');
            }
            s.push_str(FRAGMENTS[*p]);
        }
        s
    })
}

proptest! {
    #[test]
    fn parser_never_panics_on_fragment_soup(src in soup()) {
        let scan = FileScan::new("crates/sim/src/fuzz.rs".to_string(), &src);
        let items = parse_items(&scan);
        // Whatever was recovered must stay consistent with the scan: the
        // attribution map is parallel to the code-token list and only
        // points at functions that exist.
        prop_assert_eq!(items.node_at.len(), scan.code.len());
        for local in items.node_at.iter().flatten() {
            prop_assert!((*local as usize) < items.fns.len());
        }
        for f in &items.fns {
            prop_assert!(f.line >= 1);
        }
    }

    #[test]
    fn graph_and_reachability_never_panic(src in soup(), src2 in soup()) {
        let scans = vec![
            FileScan::new("crates/sim/src/a.rs".to_string(), &src),
            FileScan::new("crates/core/src/b.rs".to_string(), &src2),
        ];
        let graph = CallGraph::build(&scans);
        let entries = ["tick".to_string(), "Type::cycle".to_string()];
        let cold = ["new".to_string()];
        let reach = Reachability::compute(&graph, &entries, &cold);
        // Hot count can never exceed the number of parsed functions.
        prop_assert!(reach.hot_count() <= graph.nodes.len());
    }
}
