//! Hot-path reachability over the workspace [`CallGraph`]: seeds the graph
//! from the `entry_points` declared in `lint.toml` (the per-cycle surface —
//! `Processor::advance_until`, the `CommitEngine` per-cycle methods, the
//! `MemoryBackend` request/tick/drain hooks, the `Observer` hooks, the
//! lockstep scheduling loop) and propagates a *hot* mark through every
//! resolved call edge.
//!
//! `cold_fns` entries are **cut points**: when the walk reaches a function
//! whose name (or `Type::name` qualified form) is listed there, the
//! function is marked as a cut — it is neither enforced nor traversed, so
//! everything only reachable through it stays cold. This is how
//! constructors (`new`, `with_capacity`, …) and explicitly-cold helpers
//! (reset paths, end-of-run finalization) are carved out of the per-cycle
//! surface.
//!
//! Every hot function remembers the edge that first reached it, so a
//! finding can cite its full seeding chain
//! (`entry → caller → … → offending fn`) — the answer to "why does the
//! lint think this helper is per-cycle?".

use crate::graph::CallGraph;
use serde::Serialize;

/// The result of the reachability pass.
#[derive(Debug)]
pub struct Reachability {
    /// The entry specs, as configured (indexes the `entry` field below).
    pub entry_specs: Vec<String>,
    /// Per global node: reachable from an entry point and not cut.
    pub hot: Vec<bool>,
    /// Per global node: reached but cut by a `cold_fns` entry.
    pub cold_cut: Vec<bool>,
    /// Per global node: the node that first reached it (`None` for seeds).
    pub parent: Vec<Option<u32>>,
    /// Per global node: index into `entry_specs` of the seeding entry.
    pub entry: Vec<Option<u32>>,
    /// Entry specs that resolved to no function (configuration errors).
    pub unresolved: Vec<String>,
}

impl Reachability {
    /// Runs the pass: resolve every entry spec, then breadth-first
    /// propagate the hot mark, cutting at `cold_fns`.
    pub fn compute(
        graph: &CallGraph,
        entry_points: &[String],
        cold_fns: &[String],
    ) -> Reachability {
        let n = graph.nodes.len();
        let mut reach = Reachability {
            entry_specs: entry_points.to_vec(),
            hot: vec![false; n],
            cold_cut: vec![false; n],
            parent: vec![None; n],
            entry: vec![None; n],
            unresolved: Vec::new(),
        };

        let mut queue = std::collections::VecDeque::new();
        for (ei, spec) in entry_points.iter().enumerate() {
            let seeds = graph.resolve_entry(spec);
            if seeds.is_empty() {
                reach.unresolved.push(spec.clone());
                continue;
            }
            for gid in seeds {
                if !reach.hot[gid as usize] && !reach.cold_cut[gid as usize] {
                    if is_cold(graph, gid, cold_fns) {
                        reach.cold_cut[gid as usize] = true;
                        continue;
                    }
                    reach.hot[gid as usize] = true;
                    reach.entry[gid as usize] = Some(ei as u32);
                    queue.push_back(gid);
                }
            }
        }

        while let Some(gid) = queue.pop_front() {
            let ei = reach.entry[gid as usize];
            for &callee in &graph.callees[gid as usize] {
                let c = callee as usize;
                if reach.hot[c] || reach.cold_cut[c] {
                    continue;
                }
                if is_cold(graph, callee, cold_fns) {
                    reach.cold_cut[c] = true;
                    continue;
                }
                reach.hot[c] = true;
                reach.parent[c] = Some(gid);
                reach.entry[c] = ei;
                queue.push_back(callee);
            }
        }

        reach
    }

    /// Number of hot functions.
    pub fn hot_count(&self) -> usize {
        self.hot.iter().filter(|&&h| h).count()
    }

    /// The seeding chain for a hot node:
    /// `entry-spec → caller → … → Type::fn`. Returns `None` for nodes that
    /// are not hot.
    pub fn chain(&self, graph: &CallGraph, gid: u32) -> Option<String> {
        if !self.hot[gid as usize] {
            return None;
        }
        let mut names = Vec::new();
        let mut cur = gid;
        loop {
            names.push(graph.item(cur).qualified());
            match self.parent[cur as usize] {
                Some(p) => cur = p,
                None => break,
            }
        }
        let spec = self.entry[gid as usize].map(|ei| self.entry_specs[ei as usize].as_str());
        let mut chain = String::new();
        if let Some(spec) = spec {
            // Skip the seed's own name when it restates the entry spec.
            if names.last().is_some_and(|n| n == spec) {
                names.pop();
            }
            chain.push_str(spec);
        }
        for name in names.iter().rev() {
            if !chain.is_empty() {
                chain.push_str(" → ");
            }
            chain.push_str(name);
        }
        Some(chain)
    }
}

/// Per-file hot marks handed to the rules: for each code-token index of a
/// [`FileScan`](crate::scan::FileScan), whether the enclosing function is
/// hot and via which seeding chain. Built once per file so the token-stream
/// rules stay O(tokens).
#[derive(Debug)]
pub struct HotMarks {
    /// Per code index: file-local item id of the enclosing fn, kept only
    /// when that fn is hot.
    node_at: Vec<Option<u32>>,
    /// Per file-local item: the seeding chain (`None` when not hot).
    chains: Vec<Option<String>>,
}

impl HotMarks {
    /// Computes the marks for file index `file` of the graph.
    pub fn for_file(graph: &CallGraph, reach: &Reachability, file: usize) -> HotMarks {
        let chains: Vec<Option<String>> = graph.global_of[file]
            .iter()
            .map(|&gid| reach.chain(graph, gid))
            .collect();
        let node_at = graph.files[file]
            .node_at
            .iter()
            .map(|&local| local.filter(|&l| chains[l as usize].is_some()))
            .collect();
        HotMarks { node_at, chains }
    }

    /// Marks with no hot function, for callers that lint a scan outside any
    /// graph (unit tests of the suppression plumbing).
    pub fn none(code_len: usize) -> HotMarks {
        HotMarks {
            node_at: vec![None; code_len],
            chains: Vec::new(),
        }
    }

    /// The seeding chain of the hot function enclosing code token `i`.
    /// `None` when the token sits in cold code (or outside any function).
    pub fn chain_at(&self, i: usize) -> Option<&str> {
        self.node_at
            .get(i)
            .copied()
            .flatten()
            .and_then(|l| self.chains[l as usize].as_deref())
    }

    /// Whether any function in the file is hot.
    pub fn any_hot(&self) -> bool {
        self.chains.iter().any(|c| c.is_some())
    }
}

/// Whether `gid` matches a `cold_fns` entry: a bare `name` matches any
/// function of that name; `Type::name` (or `Trait::name`) matches only
/// functions of that name in impls of (or default bodies of) that type or
/// trait.
fn is_cold(graph: &CallGraph, gid: u32, cold_fns: &[String]) -> bool {
    let item = graph.item(gid);
    cold_fns.iter().any(|spec| match spec.split_once("::") {
        None => item.name == *spec,
        Some((qual, name)) => {
            item.name == name
                && (item.self_ty.as_deref() == Some(qual) || item.trait_ty.as_deref() == Some(qual))
        }
    })
}

/// One node of the serialized call graph.
#[derive(Debug, Serialize)]
pub struct GraphNode {
    /// Global node id (the index edges refer to).
    pub id: u32,
    /// Qualified display name (`Type::fn`, `Trait::fn`, or `fn`).
    pub name: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the `fn` name.
    pub line: u32,
    /// On the derived per-cycle hot path.
    pub hot: bool,
    /// Reached but cut by a `cold_fns` entry.
    pub cold_cut: bool,
    /// Seeded directly by an `entry_points` spec.
    pub entry: bool,
    /// The seeding chain, for hot nodes.
    pub via: Option<String>,
}

/// The `koc-callgraph/1` document written by `koc-lint --out-graph`.
#[derive(Debug, Serialize)]
pub struct GraphReport {
    /// Document format identifier.
    pub schema: String,
    /// The configured entry specs.
    pub entry_points: Vec<String>,
    /// Number of hot functions.
    pub hot_fns: usize,
    /// Number of functions cut by `cold_fns`.
    pub cold_cuts: usize,
    /// All workspace functions (test-code functions included, unmarked).
    pub nodes: Vec<GraphNode>,
    /// Resolved call edges as `[caller id, callee id]` pairs.
    pub edges: Vec<(u32, u32)>,
}

impl GraphReport {
    /// Renders the graph plus reachability marks into the serializable
    /// document. `paths[f]` is the workspace-relative path of file `f`.
    pub fn new(graph: &CallGraph, reach: &Reachability, paths: &[String]) -> GraphReport {
        let mut nodes = Vec::with_capacity(graph.nodes.len());
        let mut edges = Vec::new();
        for gid in 0..graph.nodes.len() as u32 {
            let item = graph.item(gid);
            let file = graph.nodes[gid as usize].file;
            nodes.push(GraphNode {
                id: gid,
                name: item.qualified(),
                file: paths[file].clone(),
                line: item.line,
                hot: reach.hot[gid as usize],
                cold_cut: reach.cold_cut[gid as usize],
                entry: reach.hot[gid as usize] && reach.parent[gid as usize].is_none(),
                via: reach.chain(graph, gid),
            });
            for &callee in &graph.callees[gid as usize] {
                edges.push((gid, callee));
            }
        }
        GraphReport {
            schema: "koc-callgraph/1".to_string(),
            entry_points: reach.entry_specs.clone(),
            hot_fns: reach.hot_count(),
            cold_cuts: reach.cold_cut.iter().filter(|&&c| c).count(),
            nodes,
            edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::FileScan;

    fn setup(src: &str, entries: &[&str], cold: &[&str]) -> (CallGraph, Reachability) {
        let scans = vec![FileScan::new("crates/sim/src/x.rs".into(), src)];
        let graph = CallGraph::build(&scans);
        let entries: Vec<String> = entries.iter().map(|s| s.to_string()).collect();
        let cold: Vec<String> = cold.iter().map(|s| s.to_string()).collect();
        let reach = Reachability::compute(&graph, &entries, &cold);
        (graph, reach)
    }

    fn id_of(g: &CallGraph, name: &str) -> u32 {
        (0..g.nodes.len() as u32)
            .find(|&id| g.item(id).qualified() == name || g.item(id).name == name)
            .unwrap()
    }

    #[test]
    fn hot_propagates_through_calls_and_stops_at_cold_fns() {
        let (g, r) = setup(
            "struct P;\nimpl P {\n fn cycle(&mut self) { self.helper(); self.grow(); }\n \
             fn helper(&self) { deep(); }\n fn grow(&mut self) { only_via_grow(); }\n}\n\
             fn deep() {}\nfn only_via_grow() {}\n",
            &["P::cycle"],
            &["grow"],
        );
        assert!(r.hot[id_of(&g, "P::cycle") as usize]);
        assert!(r.hot[id_of(&g, "P::helper") as usize]);
        assert!(r.hot[id_of(&g, "deep") as usize]);
        assert!(r.cold_cut[id_of(&g, "P::grow") as usize]);
        assert!(!r.hot[id_of(&g, "only_via_grow") as usize]);
    }

    #[test]
    fn qualified_cold_fns_cut_only_that_type() {
        let (g, r) = setup(
            "struct A;\nstruct B;\n\
             impl A { fn go(&self) { self.push(1); } fn push(&self, _x: u64) {} }\n\
             impl B { fn push(&self, _x: u64) { b_helper(); } }\n\
             fn b_helper() {}\n\
             fn entry(a: &A, b: &B) { a.go(); b.push(2); }\n",
            &["entry"],
            &["B::push"],
        );
        assert!(r.hot[id_of(&g, "A::push") as usize]);
        assert!(r.cold_cut[id_of(&g, "B::push") as usize]);
        assert!(!r.hot[id_of(&g, "b_helper") as usize]);
    }

    #[test]
    fn recursion_terminates_and_chains_name_the_entry() {
        let (g, r) = setup(
            "fn spin(n: u64) { if n > 0 { spin(n - 1); leaf(); } }\nfn leaf() {}\n",
            &["spin"],
            &[],
        );
        let leaf = id_of(&g, "leaf");
        assert!(r.hot[leaf as usize]);
        assert_eq!(r.chain(&g, leaf).unwrap(), "spin → leaf");
        // The recursive seed's chain is just the entry spec.
        assert_eq!(r.chain(&g, id_of(&g, "spin")).unwrap(), "spin");
    }

    #[test]
    fn unresolved_entries_are_reported() {
        let (_, r) = setup("fn f() {}\n", &["f", "Ghost::cycle"], &[]);
        assert_eq!(r.unresolved, ["Ghost::cycle"]);
    }

    #[test]
    fn graph_report_serializes_with_marks() {
        let (g, r) = setup("fn a() { b(); }\nfn b() {}\n", &["a"], &[]);
        let report = GraphReport::new(&g, &r, &["crates/sim/src/x.rs".to_string()]);
        let json = report.to_json();
        assert!(json.contains("\"schema\":\"koc-callgraph/1\""), "{json}");
        assert!(json.contains("\"hot\":true"), "{json}");
        assert!(json.contains("\"via\":\"a → b\""), "{json}");
        assert_eq!(report.hot_fns, 2);
        assert_eq!(report.edges, [(0, 1)]);
    }
}
