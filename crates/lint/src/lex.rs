//! A minimal hand-rolled Rust lexer, in the spirit of the workspace's JSON
//! reader ([`koc_isa::json`]): just enough tokenization that the rules can
//! pattern-match token sequences without false positives inside string
//! literals or comments.
//!
//! The lexer is line-accurate (every token carries its 1-based source line)
//! and understands the constructs that would otherwise confuse a textual
//! scan: nested block comments, string/char/byte literals with escapes, raw
//! strings with arbitrary `#` fencing, and the lifetime-vs-char-literal
//! ambiguity after `'`.
//!
//! [`koc_isa::json`]: https://example.org/koc/koc_isa/json/

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `unsafe`, …).
    Ident,
    /// A single punctuation character (`.` `:` `!` `{` …). Multi-character
    /// operators are emitted as consecutive tokens (`::` is `:` `:`).
    Punct,
    /// Numeric literal (including suffixes, `0x…`, …).
    Num,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`) — kept distinct so it is never mistaken for code.
    Lifetime,
    /// `// …` comment (text includes the slashes).
    LineComment,
    /// `/* … */` comment (text includes the delimiters; nesting handled).
    BlockComment,
}

/// One lexeme with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// The lexeme kind.
    pub kind: TokKind,
    /// The lexeme text, verbatim from the source.
    pub text: String,
    /// 1-based source line of the lexeme's first character.
    pub line: u32,
    /// Whether this token is the first token on its source line.
    pub first_on_line: bool,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }

    /// Whether this token is a comment (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Lexes `source` into tokens. The lexer never fails: malformed input
/// degrades to punctuation tokens, which at worst makes a rule miss a
/// pattern — acceptable for a linter that runs on code `rustc` already
/// accepted.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
        line_had_token: false,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    /// Whether a token has already been emitted for the current line.
    line_had_token: bool,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.line_had_token = false;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(self.pos),
                b'\'' => self.char_or_lifetime(),
                b'r' | b'b' if self.raw_or_byte_literal() => {}
                b'0'..=b'9' => self.number(),
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => self.ident(),
                _ => {
                    let start = self.pos;
                    // Multi-byte UTF-8 only occurs inside literals/comments
                    // in valid Rust; consume the whole code point anyway.
                    self.pos += utf8_len(b);
                    self.emit(TokKind::Punct, start);
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn emit(&mut self, kind: TokKind, start: usize) {
        // Truncated literals at EOF may have stepped past the end.
        self.pos = self.pos.min(self.bytes.len());
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.out.push(Token {
            kind,
            text,
            line: self.line,
            first_on_line: !self.line_had_token,
        });
        self.line_had_token = true;
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.emit(TokKind::LineComment, start);
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let start_line = self.line;
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            match (self.bytes[self.pos], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.out.push(Token {
            kind: TokKind::BlockComment,
            text,
            line: start_line,
            first_on_line: !self.line_had_token,
        });
        self.line_had_token = true;
    }

    /// Consumes a `"…"` string starting at the current `"` (the token spans
    /// from `start`, which may include a `b` prefix already consumed).
    fn string(&mut self, start: usize) {
        let start_line = self.line;
        self.pos += 1; // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.pos = self.pos.min(self.bytes.len());
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.out.push(Token {
            kind: TokKind::Str,
            text,
            line: start_line,
            first_on_line: !self.line_had_token,
        });
        self.line_had_token = true;
    }

    /// Handles `r"…"`, `r#"…"#`, `br"…"`, `b"…"`, `b'…'` and raw
    /// identifiers (`r#ident`). Returns `false` when the current position
    /// is a plain identifier starting with `r`/`b` (the caller then lexes
    /// it as an identifier).
    fn raw_or_byte_literal(&mut self) -> bool {
        let start = self.pos;
        let mut i = self.pos;
        let first = self.bytes[i];
        i += 1;
        if first == b'b' && self.bytes.get(i) == Some(&b'r') {
            i += 1;
        }
        // Count raw-string fencing.
        let mut hashes = 0usize;
        while self.bytes.get(i) == Some(&b'#') {
            hashes += 1;
            i += 1;
        }
        match self.bytes.get(i) {
            Some(b'"') if first == b'r' || self.bytes[start + 1] == b'r' || hashes == 0 => {
                if first == b'b' && self.bytes[start + 1] != b'r' && hashes > 0 {
                    return false; // `b#` is not a literal
                }
                if first == b'r' || self.bytes[start + 1] == b'r' {
                    self.raw_string(start, i, hashes);
                    return true;
                }
                // b"…": plain string with a prefix.
                self.pos = i;
                self.string(start);
                true
            }
            Some(b'\'') if first == b'b' && hashes == 0 => {
                self.pos = i;
                self.byte_char(start);
                true
            }
            Some(c) if hashes == 1 && first == b'r' && is_ident_char(*c) => {
                // Raw identifier r#ident.
                self.pos = i;
                while self.pos < self.bytes.len() && is_ident_char(self.bytes[self.pos]) {
                    self.pos += 1;
                }
                self.emit(TokKind::Ident, start);
                true
            }
            _ => false,
        }
    }

    /// Consumes a raw string whose opening `"` is at `quote`, fenced by
    /// `hashes` `#` characters.
    fn raw_string(&mut self, start: usize, quote: usize, hashes: usize) {
        let start_line = self.line;
        self.pos = quote + 1;
        'outer: while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\n' => self.line += 1,
                b'"' => {
                    let mut ok = true;
                    for k in 0..hashes {
                        if self.bytes.get(self.pos + 1 + k) != Some(&b'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        self.pos += 1 + hashes;
                        break 'outer;
                    }
                }
                _ => {}
            }
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.out.push(Token {
            kind: TokKind::Str,
            text,
            line: start_line,
            first_on_line: !self.line_had_token,
        });
        self.line_had_token = true;
    }

    /// Consumes a byte-char literal `b'…'` whose `'` is at the current
    /// position (the token spans from `start`).
    fn byte_char(&mut self, start: usize) {
        self.pos += 1;
        if self.peek(0) == Some(b'\\') {
            self.pos += 2;
        } else {
            self.pos += 1;
        }
        if self.peek(0) == Some(b'\'') {
            self.pos += 1;
        }
        self.emit(TokKind::Char, start);
    }

    /// Disambiguates `'a'` (char literal) from `'a` (lifetime).
    fn char_or_lifetime(&mut self) {
        let start = self.pos;
        // Escaped chars are always literals.
        if self.peek(1) == Some(b'\\') {
            self.pos += 2; // ' and backslash
            while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                self.pos += 1;
            }
            self.pos = (self.pos + 1).min(self.bytes.len());
            self.emit(TokKind::Char, start);
            return;
        }
        // `'x'` (any single code point followed by a quote) is a literal;
        // `'ident` with no closing quote is a lifetime.
        if let Some(c) = self.peek(1) {
            let len = utf8_len(c);
            if self.peek(1 + len) == Some(b'\'') {
                self.pos += 2 + len;
                self.emit(TokKind::Char, start);
                return;
            }
        }
        self.pos += 1;
        while self.pos < self.bytes.len() && is_ident_char(self.bytes[self.pos]) {
            self.pos += 1;
        }
        self.emit(TokKind::Lifetime, start);
    }

    fn number(&mut self) {
        let start = self.pos;
        // Digits, hex/bin/octal bodies, `_` separators, type suffixes and
        // float forms are all ident-ish characters plus `.` when followed
        // by a digit (so `0.5` is one token but `x.0` field access is not).
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if is_ident_char(b) || (b == b'.' && self.peek(1).is_some_and(|d| d.is_ascii_digit())) {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.emit(TokKind::Num, start);
    }

    fn ident(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && is_ident_char(self.bytes[self.pos]) {
            self.pos += 1;
        }
        self.emit(TokKind::Ident, start);
    }
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Length in bytes of the UTF-8 code point starting with `b`.
fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_and_lines() {
        let toks = lex("fn main() {\n    x.y\n}");
        assert!(toks[0].is_ident("fn"));
        assert!(toks[1].is_ident("main"));
        assert_eq!(toks[0].line, 1);
        let x = toks.iter().find(|t| t.is_ident("x")).unwrap();
        assert_eq!(x.line, 2);
        assert!(x.first_on_line);
        let y = toks.iter().find(|t| t.is_ident("y")).unwrap();
        assert!(!y.first_on_line);
    }

    #[test]
    fn strings_swallow_code_like_content() {
        let toks = kinds(r#"let s = "Vec::new() // not a comment";"#);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Str).count(),
            1,
            "{toks:?}"
        );
        assert!(!toks.iter().any(|(_, t)| t == "Vec"));
        assert!(!toks.iter().any(|(k, _)| *k == TokKind::LineComment));
    }

    #[test]
    fn raw_strings_and_fencing() {
        let toks = kinds(r##"let s = r#"quote " inside"#; done"##);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("inside")));
        assert!(toks.iter().any(|(_, t)| t == "done"));
    }

    #[test]
    fn comments_are_tokens_with_text() {
        let toks = lex("a // trailing note\n/* block\nspan */ b");
        assert!(toks[1].text.contains("trailing note"));
        assert_eq!(toks[1].kind, TokKind::LineComment);
        assert_eq!(toks[2].kind, TokKind::BlockComment);
        assert_eq!(toks[3].line, 3, "line counting crosses block comments");
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].1, "x");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'y'; }");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
    }

    #[test]
    fn numbers_and_floats() {
        let toks = kinds("let x = 0.5 + 1_000u64 + 0xFF; y.0");
        let nums: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Num)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, ["0.5", "1_000u64", "0xFF", "0"]);
    }

    #[test]
    fn byte_and_raw_ident_forms() {
        let toks = kinds(r#"let a = b"bytes"; let c = b'\n'; let r#fn = 1;"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.starts_with("b\"")));
        assert!(toks.iter().any(|(k, _)| *k == TokKind::Char));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "r#fn"));
    }
}
