//! The lint rules: token-stream checks over a [`FileScan`], plus the
//! cross-file checks (crate-root `#![forbid(unsafe_code)]`, stats-field
//! coverage). Each check appends [`Finding`]s; suppression and exit-code
//! policy live in the crate root.

use crate::config::Config;
use crate::lex::TokKind;
use crate::reach::HotMarks;
use crate::scan::FileScan;
use serde::Serialize;

/// One reported violation.
#[derive(Debug, Clone, Serialize)]
pub struct Finding {
    /// Rule name (`hot-path-alloc`, `hot-path-indirect`, `determinism`,
    /// `panic`, `unsafe-policy`, `stats-coverage`, `suppression`,
    /// `callgraph`).
    pub rule: String,
    /// `"error"` or `"warning"` — informational only: *any* unsuppressed
    /// finding fails the run.
    pub severity: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// What went wrong and how to fix or justify it.
    pub message: String,
}

impl Finding {
    fn error(rule: &str, scan: &FileScan, line: u32, message: String) -> Finding {
        Finding {
            rule: rule.to_string(),
            severity: "error".to_string(),
            file: scan.path.clone(),
            line,
            message,
        }
    }

    fn warning(rule: &str, scan: &FileScan, line: u32, message: String) -> Finding {
        Finding {
            severity: "warning".to_string(),
            ..Finding::error(rule, scan, line, message)
        }
    }
}

/// Methods that iterate a map in storage order — the determinism hazard.
const MAP_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Whether `path` sits in the library source of one of `crates` (each entry
/// a crate directory such as `crates/core`, or `.` for the workspace root
/// package). Integration tests (`<crate>/tests/`) are outside `src/` and
/// therefore exempt from crate-scoped rules.
fn in_crate_src(path: &str, crates: &[String]) -> bool {
    crates.iter().any(|c| {
        if c == "." {
            path.starts_with("src/")
        } else {
            path.starts_with(&format!("{c}/src/"))
        }
    })
}

/// Whether `path` is binary (CLI) code rather than library code.
fn is_bin(path: &str) -> bool {
    path.contains("/bin/") || path.ends_with("/main.rs")
}

/// Runs every per-file rule on one scan. `hot` carries the call-graph
/// reachability marks for this file: the alloc rule is enforced on exactly
/// the hot functions, and the determinism/panic rules — normally scoped to
/// the crates configured in `lint.toml` — additionally follow the hot path
/// into any crate it escapes to.
pub fn check_file(scan: &FileScan, config: &Config, hot: &HotMarks, findings: &mut Vec<Finding>) {
    hot_path_alloc(scan, config, hot, findings);
    // `wall_clock_files` is a scoped waiver of the `std::time` check only —
    // the listed file keeps every other determinism obligation (rand, maps).
    let allow_wall_clock = config.wall_clock_files.iter().any(|f| f == &scan.path);
    if in_crate_src(&scan.path, &config.determinism_crates) {
        determinism_sources(scan, None, allow_wall_clock, findings);
    } else if hot.any_hot() {
        determinism_sources(scan, Some(hot), false, findings);
    }
    if in_crate_src(&scan.path, &config.map_crates) {
        determinism_maps(scan, None, findings);
    } else if hot.any_hot() {
        determinism_maps(scan, Some(hot), findings);
    }
    if in_crate_src(&scan.path, &config.panic_crates) && !is_bin(&scan.path) {
        panic_policy(scan, None, findings);
    } else if hot.any_hot() && !is_bin(&scan.path) {
        panic_policy(scan, Some(hot), findings);
    }
    unsafe_tokens(scan, findings);
}

/// `hot-path-alloc` / `hot-path-indirect`: allocation constructors are
/// banned in every function reachable from the configured `entry_points`
/// (cut at `cold_fns`). Findings in files the old hand-list knew about keep
/// the `hot-path-alloc` name (so existing waivers stay valid); findings in
/// files the list missed get `hot-path-indirect` — the wider net the
/// call graph casts. Either way the message cites the seeding chain.
fn hot_path_alloc(scan: &FileScan, config: &Config, hot: &HotMarks, findings: &mut Vec<Finding>) {
    let legacy = config.legacy_files.iter().any(|f| f == &scan.path);
    for i in 0..scan.code.len() {
        if scan.in_test[i] {
            continue;
        }
        let Some(chain) = hot.chain_at(i) else {
            continue;
        };
        let what = if scan.matches(i, &["Vec", ":", ":", "new"])
            || scan.matches(i, &["Vec", ":", ":", "with_capacity"])
        {
            Some("Vec construction")
        } else if scan.matches(i, &["Box", ":", ":", "new"]) {
            Some("Box::new")
        } else if scan.matches(i, &["String", ":", ":", "from"])
            || scan.matches(i, &["String", ":", ":", "new"])
        {
            Some("String construction")
        } else if scan.matches(i, &["vec", "!"]) {
            Some("vec! macro")
        } else if scan.matches(i, &["format", "!"]) {
            Some("format! macro")
        } else if scan.matches(i, &[".", "collect"]) {
            Some(".collect()")
        } else if scan.matches(i, &[".", "to_vec"]) {
            Some(".to_vec()")
        } else {
            None
        };
        if let Some(what) = what {
            let line = scan.tok(i).line;
            let rule = if legacy {
                "hot-path-alloc"
            } else {
                "hot-path-indirect"
            };
            findings.push(Finding::error(
                rule,
                scan,
                line,
                format!(
                    "{what} in per-cycle code (hot via {chain}) — allocate \
                     in a constructor (cold fn) instead, justify with \
                     `// koc-lint: allow({rule}, \"reason\")`, or cut the \
                     function with a `cold_fns` entry if it is genuinely \
                     cold"
                ),
            ));
        }
    }
}

/// Scope suffix for a finding outside the rule's crate list that was
/// reached through the hot path.
fn via(chain: Option<&str>) -> String {
    match chain {
        Some(c) => format!(" (hot via {c})"),
        None => String::new(),
    }
}

/// `determinism` (sources): wall-clock time and unseeded randomness are
/// banned in the simulation crates outright, and — when `hot` is given —
/// in any hot function elsewhere. `allow_wall_clock` waives only the
/// `std::time` check (for files listed in `wall_clock_files`).
fn determinism_sources(
    scan: &FileScan,
    hot: Option<&HotMarks>,
    allow_wall_clock: bool,
    findings: &mut Vec<Finding>,
) {
    for i in 0..scan.code.len() {
        if scan.in_test[i] {
            continue;
        }
        let chain = match hot {
            None => None,
            Some(h) => match h.chain_at(i) {
                Some(c) => Some(c),
                None => continue,
            },
        };
        if !allow_wall_clock && scan.matches(i, &["std", ":", ":", "time"]) {
            findings.push(Finding::error(
                "determinism",
                scan,
                scan.tok(i).line,
                format!(
                    "std::time in simulation code{} — wall-clock reads break \
                     bit-exact reproducibility; derive timing from cycle \
                     counts",
                    via(chain)
                ),
            ));
        }
        if scan.tok(i).is_ident("rand")
            && (scan.matches(i + 1, &[":", ":"]) || (i > 0 && scan.tok(i - 1).is_ident("use")))
        {
            findings.push(Finding::error(
                "determinism",
                scan,
                scan.tok(i).line,
                format!(
                    "`rand` in simulation code{} — randomness belongs only \
                     in seeded workload generation (koc-workloads)",
                    via(chain)
                ),
            ));
        }
    }
}

/// `determinism` (maps): `HashMap`/`HashSet` presence is a warning (prefer
/// `koc_core::FlatMap`); iterating one is a hard error, because iteration
/// order depends on the hasher and breaks cycle-exact determinism. With
/// `hot` given, only violations inside hot functions are reported (the
/// bindings are still collected file-wide, so a hot loop over a cold-side
/// field is caught).
fn determinism_maps(scan: &FileScan, hot: Option<&HotMarks>, findings: &mut Vec<Finding>) {
    let gate = |i: usize| match hot {
        None => Some(None),
        Some(h) => h.chain_at(i).map(Some),
    };
    // Pass 1: flag every type mention and collect the binding names
    // declared with a hash-map type (`name: HashMap<…>`, possibly behind a
    // `std::collections::` path, or `let name = HashMap::new()`).
    let mut bindings: Vec<String> = Vec::new();
    for i in 0..scan.code.len() {
        if scan.in_test[i] {
            continue;
        }
        let t = scan.tok(i);
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        if let Some(chain) = gate(i) {
            findings.push(Finding::warning(
                "determinism",
                scan,
                t.line,
                format!(
                    "{} in simulation code{} — point lookups should use \
                     koc_core::FlatMap (usize keys, allocation-free steady \
                     state); iteration over it is a hard error",
                    t.text,
                    via(chain)
                ),
            ));
        }
        // Walk back over `ident ::` path segments to the head of the path.
        let mut j = i;
        while j >= 3
            && scan.tok(j - 1).is_punct(':')
            && scan.tok(j - 2).is_punct(':')
            && scan.tok(j - 3).kind == TokKind::Ident
        {
            j -= 3;
        }
        if j >= 2 && scan.tok(j - 2).kind == TokKind::Ident {
            let prev = scan.tok(j - 1);
            let is_type_ann = prev.is_punct(':') && !(j >= 3 && scan.tok(j - 3).is_punct(':'));
            if (is_type_ann || prev.is_punct('=')) && !bindings.contains(&scan.tok(j - 2).text) {
                bindings.push(scan.tok(j - 2).text.clone());
            }
        }
    }
    if bindings.is_empty() {
        return;
    }
    // Pass 2: any iteration over a collected binding is an error.
    for i in 0..scan.code.len() {
        if scan.in_test[i] {
            continue;
        }
        let t = scan.tok(i);
        if t.kind != TokKind::Ident || !bindings.contains(&t.text) {
            continue;
        }
        let Some(chain) = gate(i) else {
            continue;
        };
        if scan.code.get(i + 1).is_some() && scan.tok(i + 1).is_punct('.') {
            let m = &scan.tok(i + 2);
            if m.kind == TokKind::Ident && MAP_ITER_METHODS.contains(&m.text.as_str()) {
                findings.push(Finding::error(
                    "determinism",
                    scan,
                    t.line,
                    format!(
                        ".{}() iterates hash-map `{}` in storage order{} — \
                         nondeterministic; use koc_core::FlatMap or a dense \
                         Vec with stable indices",
                        m.text,
                        t.text,
                        via(chain)
                    ),
                ));
            }
        }
        // `for … in [&[mut]] [self.]binding {` — direct loop iteration.
        if i >= 1 {
            let mut k = i - 1;
            while k > 0 && (scan.tok(k).is_punct('&') || scan.tok(k).is_ident("mut")) {
                k -= 1;
            }
            // Step over a `self .` qualifier.
            if k >= 2 && scan.tok(k).is_punct('.') && scan.tok(k - 1).is_ident("self") {
                k = k.saturating_sub(2);
                while k > 0 && (scan.tok(k).is_punct('&') || scan.tok(k).is_ident("mut")) {
                    k -= 1;
                }
            }
            if scan.tok(k).is_ident("in") {
                findings.push(Finding::error(
                    "determinism",
                    scan,
                    t.line,
                    format!(
                        "`for … in {}` iterates a hash map in storage \
                         order{} — nondeterministic; use koc_core::FlatMap \
                         or a dense Vec with stable indices",
                        t.text,
                        via(chain)
                    ),
                ));
            }
        }
    }
}

/// `panic`: library code must justify every `unwrap`/`expect`/`panic!`.
/// With `hot` given, enforcement follows the hot path into crates outside
/// the configured `panic` crate list.
fn panic_policy(scan: &FileScan, hot: Option<&HotMarks>, findings: &mut Vec<Finding>) {
    for i in 0..scan.code.len() {
        if scan.in_test[i] {
            continue;
        }
        let chain = match hot {
            None => None,
            Some(h) => match h.chain_at(i) {
                Some(c) => Some(c),
                None => continue,
            },
        };
        let what = if scan.matches(i, &[".", "unwrap", "("]) {
            Some(".unwrap()")
        } else if scan.matches(i, &[".", "expect", "("]) {
            Some(".expect()")
        } else if scan.matches(i, &["panic", "!"]) {
            Some("panic!")
        } else {
            None
        };
        if let Some(what) = what {
            findings.push(Finding::error(
                "panic",
                scan,
                scan.tok(i).line,
                format!(
                    "{what} in library code{} — return an error or justify \
                     the invariant with `// koc-lint: allow(panic, \
                     \"reason\")`",
                    via(chain)
                ),
            ));
        }
    }
}

/// `unsafe-policy` (per file): no `unsafe` token anywhere; the per-crate
/// `#![forbid(unsafe_code)]` attribute is checked separately in
/// [`check_crate_roots`].
fn unsafe_tokens(scan: &FileScan, findings: &mut Vec<Finding>) {
    for i in 0..scan.code.len() {
        if scan.tok(i).is_ident("unsafe") {
            findings.push(Finding::error(
                "unsafe-policy",
                scan,
                scan.tok(i).line,
                "`unsafe` is forbidden workspace-wide".to_string(),
            ));
        }
    }
}

/// `unsafe-policy` (cross-file): every configured crate root must *carry*
/// `#![forbid(unsafe_code)]` — verified in the token stream, not trusted.
pub fn check_crate_roots(scans: &[FileScan], config: &Config, findings: &mut Vec<Finding>) {
    for root in &config.crate_roots {
        let Some(scan) = scans.iter().find(|s| &s.path == root) else {
            findings.push(Finding {
                rule: "unsafe-policy".to_string(),
                severity: "error".to_string(),
                file: root.clone(),
                line: 1,
                message: "configured crate root was not found in the scan".to_string(),
            });
            continue;
        };
        let has_forbid = (0..scan.code.len())
            .any(|i| scan.matches(i, &["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"]));
        if !has_forbid {
            findings.push(Finding::error(
                "unsafe-policy",
                scan,
                1,
                "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            ));
        }
    }
}

/// `stats-coverage`: every public field of the configured stats structs
/// must be referenced (by identifier) in the configured consumer file, so a
/// newly added counter cannot silently stay out of the bench report.
pub fn check_stats_coverage(scans: &[FileScan], config: &Config, findings: &mut Vec<Finding>) {
    if config.stats_consumer.is_empty() {
        return;
    }
    let Some(consumer) = scans.iter().find(|s| s.path == config.stats_consumer) else {
        findings.push(Finding {
            rule: "stats-coverage".to_string(),
            severity: "error".to_string(),
            file: config.stats_consumer.clone(),
            line: 1,
            message: "configured stats consumer was not found in the scan".to_string(),
        });
        return;
    };
    let mut consumed: Vec<&str> = (0..consumer.code.len())
        .filter(|&i| consumer.tok(i).kind == TokKind::Ident)
        .map(|i| consumer.tok(i).text.as_str())
        .collect();
    consumed.sort_unstable();
    consumed.dedup();

    for entry in &config.stats_structs {
        let Some((file, struct_name)) = entry.split_once(':') else {
            findings.push(Finding {
                rule: "stats-coverage".to_string(),
                severity: "error".to_string(),
                file: entry.clone(),
                line: 1,
                message: "stats-coverage structs entries must be `file:Struct`".to_string(),
            });
            continue;
        };
        let Some(scan) = scans.iter().find(|s| s.path == file) else {
            findings.push(Finding {
                rule: "stats-coverage".to_string(),
                severity: "error".to_string(),
                file: file.to_string(),
                line: 1,
                message: format!("stats file for struct {struct_name} was not found in the scan"),
            });
            continue;
        };
        let fields = pub_fields(scan, struct_name);
        if fields.is_empty() {
            findings.push(Finding::error(
                "stats-coverage",
                scan,
                1,
                format!("struct {struct_name} with public fields not found in {file}"),
            ));
            continue;
        }
        for (field, line) in fields {
            if consumed.binary_search(&field.as_str()).is_err() {
                findings.push(Finding::error(
                    "stats-coverage",
                    scan,
                    line,
                    format!(
                        "public stat field `{struct_name}.{field}` never \
                         appears in {} — add it to the report formatting \
                         so the counter is visible in bench output",
                        config.stats_consumer
                    ),
                ));
            }
        }
    }
}

/// Extracts the public field names (with lines) of `struct struct_name`.
fn pub_fields(scan: &FileScan, struct_name: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let Some(start) = (0..scan.code.len())
        .find(|&i| scan.tok(i).is_ident("struct") && scan.matches(i + 1, &[struct_name]))
    else {
        return out;
    };
    // Find the body's opening brace (a `;` first means a unit/tuple struct).
    let mut i = start;
    while i < scan.code.len() && !scan.tok(i).is_punct('{') {
        if scan.tok(i).is_punct(';') {
            return out;
        }
        i += 1;
    }
    let mut depth = 0usize;
    while i < scan.code.len() {
        let t = scan.tok(i);
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth == 1
            && t.is_ident("pub")
            && scan.code.get(i + 1).is_some()
            && scan.tok(i + 1).kind == TokKind::Ident
            && scan.code.get(i + 2).is_some()
            && scan.tok(i + 2).is_punct(':')
        {
            out.push((scan.tok(i + 1).text.clone(), scan.tok(i + 1).line));
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CallGraph;
    use crate::reach::Reachability;

    fn scan(src: &str) -> FileScan {
        FileScan::new("crates/sim/src/x.rs".into(), src)
    }

    fn cfg() -> Config {
        Config {
            roots: vec!["crates".into()],
            entry_points: vec!["X::tick".into(), "S::tick".into(), "tick".into()],
            legacy_files: vec!["crates/sim/src/x.rs".into()],
            cold_fns: vec!["new".into()],
            determinism_crates: vec!["crates/sim".into()],
            map_crates: vec!["crates/sim".into()],
            panic_crates: vec!["crates/sim".into()],
            ..Config::default()
        }
    }

    fn run_at(path: &str, src: &str, config: &Config) -> Vec<Finding> {
        let scans = vec![FileScan::new(path.into(), src)];
        let graph = CallGraph::build(&scans);
        let reach = Reachability::compute(&graph, &config.entry_points, &config.cold_fns);
        let hot = HotMarks::for_file(&graph, &reach, 0);
        let mut f = Vec::new();
        check_file(&scans[0], config, &hot, &mut f);
        f
    }

    fn run(src: &str) -> Vec<Finding> {
        run_at("crates/sim/src/x.rs", src, &cfg())
    }

    #[test]
    fn allocs_flagged_in_hot_fns_not_cold_or_tests() {
        let f = run("impl X {\n fn new() -> X { let v = Vec::new(); X }\n fn tick(&mut self) { let v = Vec::new(); }\n}\n#[cfg(test)]\nmod t { fn u() { let v = Vec::new(); } }\n");
        let hot: Vec<_> = f.iter().filter(|f| f.rule == "hot-path-alloc").collect();
        assert_eq!(hot.len(), 1, "{f:?}");
        assert_eq!(hot[0].line, 3);
        assert!(
            hot[0].message.contains("hot via X::tick"),
            "{}",
            hot[0].message
        );
    }

    #[test]
    fn indirect_rule_names_the_chain_outside_legacy_files() {
        // File outside every crate scope and outside legacy_files: the
        // call graph alone convicts `helper` via X::tick.
        let src = "struct X;\nimpl X {\n fn tick(&mut self) { helper(); }\n}\n\
                   fn helper(x: Option<u8>) { let v = Vec::new(); let _ = x.unwrap(); }\n";
        let f = run_at("crates/bench/src/helper.rs", src, &cfg());
        let alloc: Vec<_> = f.iter().filter(|f| f.rule == "hot-path-indirect").collect();
        assert_eq!(alloc.len(), 1, "{f:?}");
        assert!(
            alloc[0].message.contains("X::tick → helper"),
            "{}",
            alloc[0].message
        );
        // The panic rule follows the hot path out of the configured crates.
        let p: Vec<_> = f.iter().filter(|f| f.rule == "panic").collect();
        assert_eq!(p.len(), 1, "{f:?}");
        assert!(p[0].message.contains("hot via X::tick → helper"));
    }

    #[test]
    fn cold_fn_cut_point_suppresses_indirect_findings() {
        let src = "struct X;\nimpl X {\n fn tick(&mut self) { helper(); }\n}\n\
                   fn helper() { let v = Vec::new(); }\n";
        let mut config = cfg();
        config.cold_fns.push("helper".into());
        let f = run_at("crates/bench/src/helper.rs", src, &config);
        assert!(!f.iter().any(|f| f.rule.starts_with("hot-path")), "{f:?}");
    }

    #[test]
    fn map_iteration_is_an_error_point_use_a_warning() {
        let f = run(
            "use std::collections::HashMap;\nstruct S { m: HashMap<u64, u64> }\nimpl S {\n fn tick(&self) { for (k, v) in &self.m { } }\n fn get(&self) -> Option<&u64> { self.m.get(&0) }\n}\n",
        );
        let errors: Vec<_> = f
            .iter()
            .filter(|f| f.rule == "determinism" && f.severity == "error")
            .collect();
        assert_eq!(errors.len(), 1, "{f:?}");
        assert_eq!(errors[0].line, 4);
        assert!(f
            .iter()
            .any(|f| f.rule == "determinism" && f.severity == "warning"));
    }

    #[test]
    fn map_method_iteration_is_an_error() {
        let f = run("struct S { m: HashMap<u64, u64> }\nimpl S {\n fn sum(&self) -> u64 { self.m.values().sum() }\n}\n");
        assert!(f
            .iter()
            .any(|f| f.rule == "determinism" && f.severity == "error" && f.line == 3));
    }

    #[test]
    fn panic_policy_flags_unwrap_expect_panic() {
        let f = run("fn a(x: Option<u8>) -> u8 { x.unwrap() }\nfn b(x: Option<u8>) -> u8 { x.expect(\"y\") }\nfn c() { panic!(\"boom\"); }\nfn ok(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n");
        let p: Vec<_> = f.iter().filter(|f| f.rule == "panic").collect();
        assert_eq!(p.len(), 3, "{p:?}");
    }

    #[test]
    fn std_time_and_rand_flagged() {
        let f = run("use std::time::Instant;\nuse rand::Rng;\n");
        assert_eq!(f.iter().filter(|f| f.rule == "determinism").count(), 2);
    }

    #[test]
    fn wall_clock_waiver_is_scoped_to_the_listed_file_and_to_std_time() {
        let src = "use std::time::Instant;\nuse rand::Rng;\n";
        let mut config = cfg();
        config.wall_clock_files = vec!["crates/sim/src/clock.rs".into()];
        // The listed file: std::time allowed, rand still banned.
        let f = run_at("crates/sim/src/clock.rs", src, &config);
        let det: Vec<_> = f.iter().filter(|f| f.rule == "determinism").collect();
        assert_eq!(det.len(), 1, "{det:?}");
        assert!(det[0].message.contains("rand"), "{}", det[0].message);
        // A sibling file in the same crate gets no waiver.
        let f = run_at("crates/sim/src/x.rs", src, &config);
        assert_eq!(f.iter().filter(|f| f.rule == "determinism").count(), 2);
    }

    #[test]
    fn unsafe_token_flagged_and_forbid_attr_checked() {
        let f = run("fn x() { let p = unsafe { *(0 as *const u8) }; }\n");
        assert!(f.iter().any(|f| f.rule == "unsafe-policy"));

        let mut config = cfg();
        config.crate_roots = vec!["crates/sim/src/x.rs".into()];
        let with = scan("#![forbid(unsafe_code)]\nfn x() {}\n");
        let without = scan("fn x() {}\n");
        let mut f = Vec::new();
        check_crate_roots(&[with], &config, &mut f);
        assert!(f.is_empty(), "{f:?}");
        check_crate_roots(&[without], &config, &mut f);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn stats_coverage_reports_missing_fields() {
        let stats = FileScan::new(
            "crates/sim/src/stats.rs".into(),
            "pub struct SimStats {\n pub cycles: u64,\n pub missing_one: u64,\n}\n",
        );
        let consumer = FileScan::new(
            "crates/bench/src/report.rs".into(),
            "fn rows(s: &SimStats) { row(s.cycles); }\n",
        );
        let mut config = cfg();
        config.stats_structs = vec!["crates/sim/src/stats.rs:SimStats".into()];
        config.stats_consumer = "crates/bench/src/report.rs".into();
        let mut f = Vec::new();
        check_stats_coverage(&[stats, consumer], &config, &mut f);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("missing_one"));
    }
}
