//! Per-file structural scan over the token stream: which tokens sit inside
//! `#[cfg(test)]` / `#[test]` code, which function each token belongs to,
//! and the `// koc-lint: allow(rule, "reason")` suppression markers.

use crate::lex::{lex, TokKind, Token};

/// The rule names suppressions may reference. (`suppression` and
/// `callgraph` findings are infrastructure errors and deliberately absent:
/// they cannot be waived.)
pub const RULES: &[&str] = &[
    "hot-path-alloc",
    "hot-path-indirect",
    "determinism",
    "panic",
    "unsafe-policy",
    "stats-coverage",
];

/// One parsed suppression marker.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule the marker suppresses.
    pub rule: String,
    /// The mandatory justification. `None` when the marker is malformed
    /// (which is itself reported as a `suppression` finding).
    pub reason: Option<String>,
    /// Source line of the marker comment.
    pub line: u32,
    /// The line whose findings this marker suppresses: the marker's own
    /// line for trailing comments, the next code line for comments that
    /// stand alone on their line.
    pub target_line: u32,
}

/// A lexed file plus the structural facts every rule needs.
#[derive(Debug)]
pub struct FileScan {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// All tokens, including comments.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the non-comment tokens, in order — the
    /// stream rules pattern-match so a comment can never split a pattern.
    pub code: Vec<usize>,
    /// Per *code* index: inside `#[cfg(test)]` / `#[test]` code.
    pub in_test: Vec<bool>,
    /// Per *code* index: enclosing function name, if any.
    pub fn_name: Vec<Option<u32>>,
    /// Function-name table for `fn_name`.
    pub fn_names: Vec<String>,
    /// Parsed suppression markers.
    pub allows: Vec<Allow>,
    /// Malformed markers: `(line, message)` — reported unsuppressably.
    pub bad_markers: Vec<(u32, String)>,
}

impl FileScan {
    /// Lexes and scans one file.
    pub fn new(path: String, source: &str) -> FileScan {
        let tokens = lex(source);
        let mut scan = FileScan {
            path,
            code: Vec::new(),
            in_test: Vec::new(),
            fn_name: Vec::new(),
            fn_names: Vec::new(),
            allows: Vec::new(),
            bad_markers: Vec::new(),
            tokens,
        };
        scan.walk();
        scan
    }

    /// The token behind code index `i`.
    pub fn tok(&self, i: usize) -> &Token {
        &self.tokens[self.code[i]]
    }

    /// Whether the code token at `i` starts the sequence of identifiers and
    /// punctuation in `pattern` (e.g. `&["Vec", ":", ":", "new"]`).
    pub fn matches(&self, i: usize, pattern: &[&str]) -> bool {
        pattern.iter().enumerate().all(|(k, want)| {
            self.code.get(i + k).is_some_and(|_| {
                let t = self.tok(i + k);
                match t.kind {
                    TokKind::Ident => t.text == *want,
                    TokKind::Punct => want.len() == 1 && t.text == *want,
                    _ => false,
                }
            })
        })
    }

    fn walk(&mut self) {
        let mut depth = 0usize;
        // Depths at which a test region opened.
        let mut test_stack: Vec<usize> = Vec::new();
        // (name index, depth at the body's opening brace).
        let mut fn_stack: Vec<(u32, usize)> = Vec::new();
        // A `#[test]`-ish attribute was seen; waiting for the item body.
        let mut pending_test = false;
        let mut pending_test_depth = 0usize;
        // A `fn` keyword was seen; waiting for the name, then the body.
        let mut pending_fn: Option<u32> = None;
        let mut awaiting_fn_name = false;

        // First pass over raw tokens: suppressions come from plain `//`
        // comments. Doc comments (`///`, `//!`) are documentation — they
        // may *describe* the marker syntax without enacting it.
        for (idx, tok) in self.tokens.iter().enumerate() {
            let is_doc = tok.text.starts_with("///")
                || tok.text.starts_with("//!")
                || tok.text.starts_with("/**")
                || tok.text.starts_with("/*!");
            if tok.is_comment() && !is_doc && tok.text.contains("koc-lint:") {
                let target_line = if tok.first_on_line {
                    // A standalone marker governs the next code line.
                    self.tokens[idx + 1..]
                        .iter()
                        .find(|t| !t.is_comment())
                        .map_or(tok.line, |t| t.line)
                } else {
                    tok.line
                };
                match parse_marker(&tok.text) {
                    Ok((rule, reason)) => self.allows.push(Allow {
                        rule,
                        reason: Some(reason),
                        line: tok.line,
                        target_line,
                    }),
                    Err(msg) => self.bad_markers.push((tok.line, msg)),
                }
            }
        }

        for idx in 0..self.tokens.len() {
            if self.tokens[idx].is_comment() {
                continue;
            }
            // Attribute recognition works on the raw neighborhood.
            if self.tokens[idx].is_punct('#') && self.attr_is_test(idx) {
                pending_test = true;
                pending_test_depth = depth;
            }
            let t = &self.tokens[idx];
            match t.kind {
                TokKind::Ident if t.text == "fn" => {
                    awaiting_fn_name = true;
                }
                TokKind::Ident if awaiting_fn_name => {
                    self.fn_names.push(t.text.clone());
                    pending_fn = Some(self.fn_names.len() as u32 - 1);
                    awaiting_fn_name = false;
                }
                TokKind::Punct if t.text == "{" => {
                    if pending_test {
                        test_stack.push(depth);
                        pending_test = false;
                    }
                    if let Some(name) = pending_fn.take() {
                        fn_stack.push((name, depth));
                    }
                    depth += 1;
                }
                TokKind::Punct if t.text == "}" => {
                    depth = depth.saturating_sub(1);
                    if test_stack.last() == Some(&depth) {
                        test_stack.pop();
                    }
                    while fn_stack.last().is_some_and(|&(_, d)| d >= depth) {
                        fn_stack.pop();
                    }
                }
                TokKind::Punct if t.text == ";" => {
                    // `#[cfg(test)] use …;` or a bodyless trait method: the
                    // pending state never found a body.
                    if pending_test && depth == pending_test_depth {
                        pending_test = false;
                    }
                    pending_fn = None;
                }
                _ => {}
            }
            self.code.push(idx);
            self.in_test.push(!test_stack.is_empty());
            self.fn_name.push(fn_stack.last().map(|&(n, _)| n));
        }
    }

    /// Whether the attribute opening at raw token index `i` (a `#`) marks
    /// test-only code: `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]`.
    fn attr_is_test(&self, i: usize) -> bool {
        let mut j = i + 1;
        // Inner attributes (`#![…]`) configure the whole file, not an item.
        if self.tokens.get(j).is_some_and(|t| t.is_punct('!')) {
            return false;
        }
        if !self.tokens.get(j).is_some_and(|t| t.is_punct('[')) {
            return false;
        }
        j += 1;
        let mut bracket_depth = 1usize;
        while let Some(t) = self.tokens.get(j) {
            if t.is_punct('[') {
                bracket_depth += 1;
            } else if t.is_punct(']') {
                bracket_depth -= 1;
                if bracket_depth == 0 {
                    return false;
                }
            } else if t.is_ident("test") {
                return true;
            }
            j += 1;
        }
        false
    }
}

/// Parses one `koc-lint: allow(rule, "reason")` marker out of a comment.
///
/// # Errors
/// Returns a message when the marker is malformed, names an unknown rule,
/// or omits the mandatory reason.
fn parse_marker(comment: &str) -> Result<(String, String), String> {
    let after = comment
        .split("koc-lint:")
        .nth(1)
        .expect("caller checked the prefix") // koc-lint: allow(panic, "caller checked the marker prefix is present")
        .trim();
    let Some(args) = after.strip_prefix("allow") else {
        return Err(format!(
            "malformed marker '{}' (expected `koc-lint: allow(<rule>, \"reason\")`)",
            after
        ));
    };
    let args = args.trim();
    let inner = args
        .strip_prefix('(')
        .and_then(|a| a.rfind(')').map(|end| &a[..end]))
        .ok_or_else(|| "marker missing parentheses: `allow(<rule>, \"reason\")`".to_string())?;
    let (rule, reason) = match inner.split_once(',') {
        Some((rule, reason)) => (rule.trim(), reason.trim()),
        None => (inner.trim(), ""),
    };
    if !RULES.contains(&rule) {
        return Err(format!(
            "unknown rule '{rule}' in allow marker (known: {})",
            RULES.join(", ")
        ));
    }
    let reason = reason.trim_matches('"').trim();
    if reason.is_empty() {
        return Err(format!(
            "allow({rule}) without a reason — suppressions must say why \
             (`koc-lint: allow({rule}, \"reason\")`)"
        ));
    }
    Ok((rule.to_string(), reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_regions_cover_their_block_only() {
        let src = "fn live() { a(); }\n#[cfg(test)]\nmod tests {\n    fn t() { b(); }\n}\nfn after() { c(); }\n";
        let s = FileScan::new("x.rs".into(), src);
        let at = |name: &str| {
            (0..s.code.len())
                .find(|&i| s.tok(i).is_ident(name))
                .unwrap()
        };
        assert!(!s.in_test[at("a")]);
        assert!(s.in_test[at("b")]);
        assert!(!s.in_test[at("c")]);
    }

    #[test]
    fn test_attr_without_body_does_not_poison_the_rest() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() { a(); }\n";
        let s = FileScan::new("x.rs".into(), src);
        let i = (0..s.code.len()).find(|&i| s.tok(i).is_ident("a")).unwrap();
        assert!(!s.in_test[i]);
    }

    #[test]
    fn fn_names_attach_to_their_bodies() {
        let src = "impl X {\n  fn new() { alloc(); }\n  fn tick(&mut self) { work(); }\n}\n";
        let s = FileScan::new("x.rs".into(), src);
        let at = |name: &str| {
            (0..s.code.len())
                .find(|&i| s.tok(i).is_ident(name))
                .unwrap()
        };
        let name_of = |i: usize| s.fn_name[i].map(|n| s.fn_names[n as usize].as_str());
        assert_eq!(name_of(at("alloc")), Some("new"));
        assert_eq!(name_of(at("work")), Some("tick"));
    }

    #[test]
    fn trailing_and_standalone_markers_pick_target_lines() {
        let src = "let a = x.unwrap(); // koc-lint: allow(panic, \"seeded\")\n\
                   // koc-lint: allow(determinism, \"point lookup\")\n\
                   map.get(&k);\n";
        let s = FileScan::new("x.rs".into(), src);
        assert_eq!(s.allows.len(), 2, "{:?}", s.bad_markers);
        assert_eq!(s.allows[0].rule, "panic");
        assert_eq!(s.allows[0].target_line, 1);
        assert_eq!(s.allows[1].rule, "determinism");
        assert_eq!(s.allows[1].target_line, 3);
    }

    #[test]
    fn markers_without_reason_or_with_unknown_rule_are_bad() {
        let s = FileScan::new(
            "x.rs".into(),
            "// koc-lint: allow(panic)\n// koc-lint: allow(made-up, \"x\")\n",
        );
        assert!(s.allows.is_empty());
        assert_eq!(s.bad_markers.len(), 2);
        assert!(s.bad_markers[0].1.contains("without a reason"));
        assert!(s.bad_markers[1].1.contains("unknown rule"));
    }

    #[test]
    fn matches_sees_through_comments() {
        let s = FileScan::new("x.rs".into(), "Vec:: /* why */ new()");
        assert!(s.matches(0, &["Vec", ":", ":", "new"]));
    }
}
