//! `koc-lint` — static analysis gate for the koc workspace.
//!
//! ```text
//! koc-lint [--root DIR] [--config PATH] [--out PATH] [--quiet]
//! ```
//!
//! Scans the workspace for violations of the hot-path-alloc, determinism,
//! panic, unsafe-policy and stats-coverage rules (see `lint.toml`), prints
//! human-readable findings, optionally writes the machine-readable JSON
//! report, and exits nonzero when any unsuppressed finding remains.

#![forbid(unsafe_code)]

use serde::Serialize;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: koc-lint [--root DIR] [--config PATH] [--out PATH] [--quiet]\n\
     \n\
     --root DIR     workspace root to scan (default: current directory)\n\
     --config PATH  lint config (default: <root>/lint.toml)\n\
     --out PATH     also write the JSON report here\n\
     --quiet        print only the summary line"
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut out_path: Option<PathBuf> = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return fail("--root needs a value"),
            },
            "--config" => match args.next() {
                Some(v) => config_path = Some(PathBuf::from(v)),
                None => return fail("--config needs a value"),
            },
            "--out" => match args.next() {
                Some(v) => out_path = Some(PathBuf::from(v)),
                None => return fail("--out needs a value"),
            },
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown argument '{other}'")),
        }
    }

    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));
    let config = match koc_lint::Config::load(&config_path) {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    let report = match koc_lint::lint_root(&root, &config) {
        Ok(r) => r,
        Err(e) => return fail(&e),
    };

    if let Some(out) = &out_path {
        if let Err(e) = std::fs::write(out, report.to_json()) {
            return fail(&format!("cannot write {}: {e}", out.display()));
        }
    }

    if !quiet {
        for f in &report.findings {
            println!(
                "{}[{}] {}:{}: {}",
                f.severity, f.rule, f.file, f.line, f.message
            );
        }
    }
    println!(
        "koc-lint: {} files, {} errors, {} warnings, {} suppressed — {}",
        report.files_scanned,
        report.errors,
        report.warnings,
        report.suppressed,
        if report.passed() { "clean" } else { "FAILED" }
    );
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("koc-lint: {msg}");
    eprintln!("{}", usage());
    ExitCode::from(2)
}
