//! `koc-lint` — static analysis gate for the koc workspace.
//!
//! ```text
//! koc-lint [--root DIR] [--config PATH] [--out PATH] [--out-graph PATH]
//!          [--list-waivers] [--quiet]
//! ```
//!
//! Scans the workspace, derives the per-cycle hot set from the call graph
//! seeded at `lint.toml`'s `entry_points`, checks the hot-path-alloc /
//! hot-path-indirect, determinism, panic, unsafe-policy and stats-coverage
//! rules, prints human-readable findings (each citing its seeding chain),
//! optionally writes the machine-readable JSON report (`--out`) and the
//! derived call graph (`--out-graph`, `koc-callgraph/1`), and exits nonzero
//! when any unsuppressed finding remains. `--list-waivers` enumerates every
//! `// koc-lint: allow(...)` marker in the tree with its justification.

#![forbid(unsafe_code)]

use serde::Serialize;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: koc-lint [--root DIR] [--config PATH] [--out PATH] \
     [--out-graph PATH] [--list-waivers] [--quiet]\n\
     \n\
     --root DIR       workspace root to scan (default: current directory)\n\
     --config PATH    lint config (default: <root>/lint.toml)\n\
     --out PATH       also write the JSON findings report here\n\
     --out-graph PATH also write the derived call graph (koc-callgraph/1)\n\
     --list-waivers   list every allow marker with its reason, then exit\n\
     --quiet          print only the summary line"
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut out_path: Option<PathBuf> = None;
    let mut graph_path: Option<PathBuf> = None;
    let mut list_waivers = false;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return fail("--root needs a value"),
            },
            "--config" => match args.next() {
                Some(v) => config_path = Some(PathBuf::from(v)),
                None => return fail("--config needs a value"),
            },
            "--out" => match args.next() {
                Some(v) => out_path = Some(PathBuf::from(v)),
                None => return fail("--out needs a value"),
            },
            "--out-graph" => match args.next() {
                Some(v) => graph_path = Some(PathBuf::from(v)),
                None => return fail("--out-graph needs a value"),
            },
            "--list-waivers" => list_waivers = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown argument '{other}'")),
        }
    }

    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));
    let config = match koc_lint::Config::load(&config_path) {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    let started = std::time::Instant::now();
    let analysis = match koc_lint::analyze(&root, &config) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let total_seconds = started.elapsed().as_secs_f64();
    let report = &analysis.report;

    if list_waivers {
        for w in &analysis.waivers {
            println!(
                "{}:{}: allow({}) — {}{}",
                w.file,
                w.line,
                w.rule,
                w.reason,
                if w.live { "" } else { "  [STALE]" }
            );
        }
        let stale = analysis.waivers.iter().filter(|w| !w.live).count();
        println!(
            "koc-lint: {} waivers ({} live, {} stale)",
            analysis.waivers.len(),
            analysis.waivers.len() - stale,
            stale
        );
        return ExitCode::SUCCESS;
    }

    if let Some(out) = &out_path {
        if let Err(e) = std::fs::write(out, report.to_json()) {
            return fail(&format!("cannot write {}: {e}", out.display()));
        }
    }
    if let Some(out) = &graph_path {
        if let Err(e) = std::fs::write(out, analysis.graph.to_json()) {
            return fail(&format!("cannot write {}: {e}", out.display()));
        }
    }

    if !quiet {
        for f in &report.findings {
            println!(
                "{}[{}] {}:{}: {}",
                f.severity, f.rule, f.file, f.line, f.message
            );
        }
    }
    println!(
        "koc-lint: {} files, {} hot fns, {} errors, {} warnings, {} \
         suppressed — {} ({:.2}s total, {:.2}s call graph)",
        report.files_scanned,
        report.hot_fns,
        report.errors,
        report.warnings,
        report.suppressed,
        if report.passed() { "clean" } else { "FAILED" },
        total_seconds,
        analysis.graph_seconds,
    );
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("koc-lint: {msg}");
    eprintln!("{}", usage());
    ExitCode::from(2)
}
