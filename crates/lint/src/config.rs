//! The `lint.toml` configuration: which directories to scan, which modules
//! are on the per-cycle hot path, which crates the determinism and panic
//! policies govern.
//!
//! Like everything in this workspace that reads a config format, the parser
//! is hand-rolled (no external TOML crate): it accepts the small TOML
//! subset the file actually uses — `[section]` headers, `key = "string"`
//! and `key = ["a", "b", …]` (single line or multiline) — and rejects
//! everything else with a line-numbered error, so a typo in `lint.toml`
//! fails the lint run instead of silently disabling a gate.

use std::path::Path;

/// Parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Directories (relative to the workspace root) scanned for `.rs` files.
    pub roots: Vec<String>,
    /// Path prefixes excluded from the scan (fixture trees).
    pub exclude: Vec<String>,
    /// Per-cycle entry points seeding the call-graph reachability pass:
    /// `Type::method`, `Trait::method` (fans out to every impl), or a bare
    /// free-function name.
    pub entry_points: Vec<String>,
    /// The pre-reachability hand-listed hot-path files, kept as a
    /// regression guard: the derived hot set must still cover every file
    /// here (each must contain at least one hot function).
    pub legacy_files: Vec<String>,
    /// Reachability cut points: when the hot walk reaches a function whose
    /// name (or `Type::name`) is listed here, it is neither enforced nor
    /// traversed — constructors and other cold code that legitimately
    /// allocates.
    pub cold_fns: Vec<String>,
    /// Crate directories where `std::time` and `rand` are forbidden.
    pub determinism_crates: Vec<String>,
    /// Individual files inside [`Config::determinism_crates`] allowed to
    /// read the wall clock — the scoped escape hatch for service code whose
    /// *job* is wall-clock deadlines (e.g. `crates/serve/src/clock.rs`).
    /// The `rand` ban still applies; only the `std::time` check is waived,
    /// and only for the listed files.
    pub wall_clock_files: Vec<String>,
    /// Crate directories where `HashMap`/`HashSet` use is policed: point
    /// use is a warning (prefer `FlatMap`), iteration a hard error.
    pub map_crates: Vec<String>,
    /// Crate directories whose library code must justify every
    /// `unwrap`/`expect`/`panic!` with an allow marker.
    pub panic_crates: Vec<String>,
    /// Crate-root files that must carry `#![forbid(unsafe_code)]`.
    pub crate_roots: Vec<String>,
    /// `file:Struct` pairs whose public fields must all be consumed by
    /// [`Config::stats_consumer`].
    pub stats_structs: Vec<String>,
    /// The file that must reference every public stat field.
    pub stats_consumer: String,
}

impl Config {
    /// Reads and parses a config file.
    ///
    /// # Errors
    /// Returns a line-numbered message for unreadable files, syntax errors,
    /// or unknown sections/keys (typos must not silently disable a rule).
    pub fn load(path: &Path) -> Result<Config, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::parse(&text)
    }

    /// Parses config text. See [`Config::load`].
    ///
    /// # Errors
    /// Returns a line-numbered message for syntax errors or unknown
    /// sections/keys.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut config = Config::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                let known = [
                    "workspace",
                    "hot-path-alloc",
                    "determinism",
                    "panic",
                    "unsafe-policy",
                    "stats-coverage",
                ];
                if !known.contains(&section.as_str()) {
                    return Err(format!("line {lineno}: unknown section [{section}]"));
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "line {lineno}: expected `key = value`, got '{line}'"
                ));
            };
            let key = key.trim();
            let mut value = value.trim().to_string();
            // Multiline arrays: keep consuming lines until the bracket
            // closes (strings in this file never contain brackets).
            while value.starts_with('[') && !value.ends_with(']') {
                let Some((_, next)) = lines.next() else {
                    return Err(format!("line {lineno}: unterminated array for '{key}'"));
                };
                value.push_str(strip_comment(next).trim());
            }
            let place = |v: &str| -> Result<Vec<String>, String> {
                parse_array(v).map_err(|e| format!("line {lineno}: {e}"))
            };
            match (section.as_str(), key) {
                ("workspace", "roots") => config.roots = place(&value)?,
                ("workspace", "exclude") => config.exclude = place(&value)?,
                ("hot-path-alloc", "entry_points") => config.entry_points = place(&value)?,
                ("hot-path-alloc", "legacy_files") => config.legacy_files = place(&value)?,
                ("hot-path-alloc", "cold_fns") => config.cold_fns = place(&value)?,
                ("determinism", "crates") => config.determinism_crates = place(&value)?,
                ("determinism", "wall_clock_files") => config.wall_clock_files = place(&value)?,
                ("determinism", "map_crates") => config.map_crates = place(&value)?,
                ("panic", "crates") => config.panic_crates = place(&value)?,
                ("unsafe-policy", "crate_roots") => config.crate_roots = place(&value)?,
                ("stats-coverage", "structs") => config.stats_structs = place(&value)?,
                ("stats-coverage", "consumer") => {
                    config.stats_consumer =
                        parse_string(&value).map_err(|e| format!("line {lineno}: {e}"))?;
                }
                _ => {
                    return Err(format!("line {lineno}: unknown key '{key}' in [{section}]"));
                }
            }
        }
        if config.roots.is_empty() {
            return Err("missing [workspace] roots".to_string());
        }
        Ok(config)
    }
}

/// Strips a trailing `#` comment (this subset never puts `#` in strings).
fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Parses `"…"`.
fn parse_string(value: &str) -> Result<String, String> {
    let v = value.trim();
    v.strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected a quoted string, got '{v}'"))
}

/// Parses `["a", "b", …]` (possibly with a trailing comma).
fn parse_array(value: &str) -> Result<Vec<String>, String> {
    let v = value.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("expected an array, got '{v}'"))?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        out.push(parse_string(item)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_shape() {
        let c = Config::parse(
            r#"
# comment
[workspace]
roots = ["src", "crates"]
exclude = ["crates/lint/tests/fixtures"]

[hot-path-alloc]
entry_points = ["Processor::advance_until", "CommitEngine::wake"]
legacy_files = [
    "crates/core/src/sliq.rs",  # per-line comment
    "crates/core/src/iq.rs",
]
cold_fns = ["new"]

[determinism]
crates = ["crates/core"]
wall_clock_files = ["crates/serve/src/clock.rs"]
map_crates = ["crates/sim"]

[panic]
crates = ["crates/isa"]

[unsafe-policy]
crate_roots = ["src/lib.rs"]

[stats-coverage]
structs = ["crates/sim/src/stats.rs:SimStats"]
consumer = "crates/bench/src/report.rs"
"#,
        )
        .unwrap();
        assert_eq!(c.roots, ["src", "crates"]);
        assert_eq!(
            c.entry_points,
            ["Processor::advance_until", "CommitEngine::wake"]
        );
        assert_eq!(
            c.legacy_files,
            ["crates/core/src/sliq.rs", "crates/core/src/iq.rs"]
        );
        assert_eq!(c.wall_clock_files, ["crates/serve/src/clock.rs"]);
        assert_eq!(c.stats_consumer, "crates/bench/src/report.rs");
    }

    #[test]
    fn unknown_sections_and_keys_fail() {
        assert!(Config::parse("[nope]\n").is_err());
        assert!(Config::parse("[workspace]\nbogus = [\"x\"]\n").is_err());
        assert!(Config::parse("[workspace]\nroots = 3\n").is_err());
    }

    #[test]
    fn missing_roots_fail() {
        assert!(Config::parse("[panic]\ncrates = []\n").is_err());
    }
}
