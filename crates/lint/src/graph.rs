//! Workspace call-graph construction: a lightweight item parser on top of
//! [`crate::lex`] that recovers `fn` / `impl` / `trait` boundaries, receiver
//! types and call sites, and a builder that resolves those call sites into a
//! conservative (over-approximating) call graph.
//!
//! The parser is *not* a Rust parser — it is a single forward pass over the
//! comment-filtered token stream of each file, tracking brace depth and a
//! scope stack. That is enough to attribute every token to its innermost
//! enclosing function, to know which `impl` (and which trait, for trait
//! impls) that function belongs to, and to collect the file's call sites:
//!
//! * free calls — `helper(…)`,
//! * path calls — `Type::method(…)`, `Trait::method(…)`, `Self::m(…)`,
//!   `module::helper(…)`, including turbofish (`f::<T>(…)`),
//! * method calls — `x.method(…)`, with the receiver type recovered when it
//!   is literally `self`,
//! * path-expression function references — `Type::method` passed as a value
//!   (higher-order fallback).
//!
//! Calls made *inside a closure* body are attributed to the enclosing
//! function (the closure-capture fallback: a closure is only callable
//! through the function that created it, so for reachability purposes its
//! body belongs to that function).
//!
//! Resolution is deliberately conservative — where the receiver type is
//! unknown, a call to `x.cycle()` marks **every** `cycle` method in the
//! workspace (in particular, every impl of a trait that declares `cycle`).
//! Precision is recovered where it is cheap: `self.m()` and `Self::m()`
//! resolve against the enclosing impl's type first, `Type::m()` against the
//! named type's impls (falling through to trait-default bodies), and
//! `Trait::m()` fans out to every impl of that trait. A qualifier that
//! names no workspace type or trait (e.g. `Vec::new`, `mem::take`) falls
//! back to free functions of that name, and resolves to nothing when the
//! workspace defines none — calls into `std` cannot reach workspace code
//! except through a trait impl, which the method-name fan-out already
//! covers.
//!
//! Known (documented) approximation gaps: qualified-path calls
//! (`<T as Trait>::m(…)`) and *bare-identifier* function references passed
//! as values (`iter.map(helper)`) are not resolved. Neither form appears on
//! the simulator's hot path; `koc-lint`'s job is to make the common,
//! idiomatic call forms visible to the reachability pass.

use crate::lex::TokKind;
use crate::scan::FileScan;

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `name(…)` with no path qualifier or receiver.
    Free,
    /// `Qual::name(…)` or a `Qual::name` function reference.
    Path {
        /// The last path segment before the method name (`Type`, `Trait`,
        /// `Self`, or a module name).
        qual: String,
    },
    /// `x.name(…)` where the receiver expression is not `self`.
    Method,
    /// `self.name(…)` — resolvable against the enclosing impl's type.
    SelfMethod,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name as written.
    pub name: String,
    /// The call form (drives resolution).
    pub kind: CallKind,
    /// 1-based source line of the callee name.
    pub line: u32,
}

/// One `fn` item recovered from a file.
#[derive(Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Self type of the enclosing `impl` block, if any.
    pub self_ty: Option<String>,
    /// Trait name: for `impl Trait for Type` methods the implemented trait,
    /// for default bodies inside `trait Trait { … }` the declaring trait.
    pub trait_ty: Option<String>,
    /// Whether this is a default body inside a `trait` declaration.
    pub in_trait_decl: bool,
    /// Whether the item is a bodyless declaration (`fn f(…);` in a trait).
    pub is_decl: bool,
    /// Whether the declaration sits inside `#[cfg(test)]` / `#[test]` code.
    pub in_test: bool,
    /// 1-based source line of the `fn` name.
    pub line: u32,
    /// Call sites inside the body, in source order.
    pub calls: Vec<CallSite>,
}

impl FnItem {
    /// Display name: `Type::name`, `Trait::name`, or bare `name`.
    pub fn qualified(&self) -> String {
        match (&self.self_ty, &self.trait_ty) {
            (Some(ty), _) => format!("{ty}::{}", self.name),
            (None, Some(tr)) => format!("{tr}::{}", self.name),
            (None, None) => self.name.clone(),
        }
    }
}

/// The items of one file: functions plus a per-code-token attribution map.
#[derive(Debug)]
pub struct FileItems {
    /// Functions in declaration order.
    pub fns: Vec<FnItem>,
    /// Per *code* index (parallel to [`FileScan::code`]): the innermost
    /// enclosing function, as an index into `fns`.
    pub node_at: Vec<Option<u32>>,
}

/// Scope-stack entry for the item parser.
enum Scope {
    /// `impl` block: `(self type, implemented trait)`.
    Impl(String, Option<String>),
    /// `trait` declaration body.
    Trait(String),
    /// Function body, as an index into the file's `fns`.
    Fn(u32),
    /// Any other brace pair (block, struct/enum/match body, …).
    Block,
}

/// Keywords that look like `ident (` call sites but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "in", "as", "move", "fn", "let",
    "mut", "ref", "pub", "where", "use", "mod", "impl", "trait", "struct", "enum", "type", "const",
    "static", "dyn", "break", "continue",
];

/// Parses one file's items. Never fails: constructs the parser can't follow
/// degrade to missing items or missing call edges, never to a panic.
pub fn parse_items(scan: &FileScan) -> FileItems {
    Parser {
        scan,
        fns: Vec::new(),
        node_at: vec![None; scan.code.len()],
        scopes: Vec::new(),
        depth: 0,
    }
    .run()
}

struct Parser<'a> {
    scan: &'a FileScan,
    fns: Vec<FnItem>,
    node_at: Vec<Option<u32>>,
    /// `(scope, brace depth at which its `{` opened)`.
    scopes: Vec<(Scope, usize)>,
    depth: usize,
}

impl Parser<'_> {
    fn run(mut self) -> FileItems {
        // Pending item headers: seen the keyword, waiting for the `{`.
        let mut pending_impl: Option<(String, Option<String>)> = None;
        let mut pending_trait: Option<String> = None;
        let mut pending_fn: Option<u32> = None;

        let n = self.scan.code.len();
        let mut i = 0usize;
        while i < n {
            let t = self.scan.tok(i);
            match t.kind {
                TokKind::Ident if t.text == "impl" && self.at_item_position(i) => {
                    if let Some((self_ty, trait_ty, next)) = self.parse_impl_header(i) {
                        pending_impl = Some((self_ty, trait_ty));
                        self.attribute(i, next);
                        i = next;
                        continue;
                    }
                }
                TokKind::Ident if t.text == "trait" => {
                    if let Some(name) = self.ident_at(i + 1) {
                        pending_trait = Some(name);
                    }
                }
                TokKind::Ident if t.text == "fn" => {
                    if let Some(name) = self.ident_at(i + 1) {
                        let (self_ty, trait_ty, in_trait_decl) = self.enclosing_item();
                        let node = self.fns.len() as u32;
                        self.fns.push(FnItem {
                            name,
                            self_ty,
                            trait_ty,
                            in_trait_decl,
                            is_decl: false, // patched to true on `;`
                            in_test: self.scan.in_test[i],
                            line: self.scan.tok(i + 1).line,
                            calls: Vec::new(),
                        });
                        pending_fn = Some(node);
                        // Skip the name so `name (` is not read as a call.
                        self.attribute(i, i + 2);
                        i += 2;
                        continue;
                    }
                }
                TokKind::Punct if t.text == "{" => {
                    if let Some((self_ty, trait_ty)) = pending_impl.take() {
                        self.scopes
                            .push((Scope::Impl(self_ty, trait_ty), self.depth));
                    } else if let Some(name) = pending_trait.take() {
                        self.scopes.push((Scope::Trait(name), self.depth));
                    } else if let Some(node) = pending_fn.take() {
                        self.scopes.push((Scope::Fn(node), self.depth));
                    } else {
                        self.scopes.push((Scope::Block, self.depth));
                    }
                    self.depth += 1;
                }
                TokKind::Punct if t.text == "}" => {
                    self.depth = self.depth.saturating_sub(1);
                    while self.scopes.last().is_some_and(|&(_, d)| d >= self.depth) {
                        self.scopes.pop();
                    }
                }
                TokKind::Punct if t.text == ";" => {
                    // A pending fn that hits `;` before `{` is a bodyless
                    // trait-method declaration.
                    if let Some(node) = pending_fn.take() {
                        self.fns[node as usize].is_decl = true;
                    }
                    pending_impl = None;
                    pending_trait = None;
                }
                _ => {}
            }

            self.attribute(i, i + 1);
            if let Some(node) = self.current_fn() {
                self.collect_call(i, node);
            }
            i += 1;
        }

        FileItems {
            fns: self.fns,
            node_at: self.node_at,
        }
    }

    /// Records the enclosing-fn attribution for code indices `[from, to)`.
    fn attribute(&mut self, from: usize, to: usize) {
        let node = self.current_fn();
        for k in from..to.min(self.node_at.len()) {
            self.node_at[k] = node;
        }
    }

    /// Innermost enclosing function, if any.
    fn current_fn(&self) -> Option<u32> {
        self.scopes.iter().rev().find_map(|(s, _)| match s {
            Scope::Fn(n) => Some(*n),
            _ => None,
        })
    }

    /// The impl/trait context a new `fn` declaration belongs to:
    /// `(self type, trait, is a trait-decl default body)`.
    fn enclosing_item(&self) -> (Option<String>, Option<String>, bool) {
        for (s, _) in self.scopes.iter().rev() {
            match s {
                Scope::Impl(ty, tr) => return (Some(ty.clone()), tr.clone(), false),
                Scope::Trait(name) => return (None, Some(name.clone()), true),
                Scope::Fn(_) => return (None, None, false), // nested fn: free
                Scope::Block => {}
            }
        }
        (None, None, false)
    }

    /// Whether the `impl` at code index `i` starts an item (as opposed to
    /// `impl Trait` in type position, where it follows `->`, `(`, `,`, `:`,
    /// `<`, `&`, or `=`).
    fn at_item_position(&self, i: usize) -> bool {
        if i == 0 {
            return true;
        }
        let p = self.scan.tok(i - 1);
        matches!(p.kind, TokKind::Punct if matches!(p.text.as_str(), "{" | "}" | ";" | "]"))
    }

    /// The identifier at code index `i`, if there is one.
    fn ident_at(&self, i: usize) -> Option<String> {
        self.scan.code.get(i)?;
        let t = self.scan.tok(i);
        (t.kind == TokKind::Ident).then(|| t.text.clone())
    }

    /// Parses an impl header starting at the `impl` keyword: returns
    /// `(self type, trait, code index of the body's `{`)`. Angle brackets
    /// are depth-tracked (with `->` inside `Fn(…) -> T` bounds handled);
    /// only identifiers at angle depth 0 name the trait/self-type paths,
    /// and everything after `where` is ignored.
    fn parse_impl_header(&self, start: usize) -> Option<(String, Option<String>, usize)> {
        let mut angle = 0usize;
        let mut before_for: Vec<String> = Vec::new();
        let mut after_for: Vec<String> = Vec::new();
        let mut saw_for = false;
        let mut in_where = false;
        let mut i = start + 1;
        while i < self.scan.code.len() {
            let t = self.scan.tok(i);
            match t.kind {
                TokKind::Punct if t.text == "<" => angle += 1,
                TokKind::Punct if t.text == ">" => {
                    // `->` inside an `Fn() -> T` bound is not a closer.
                    let arrow = i > 0 && self.scan.tok(i - 1).is_punct('-');
                    if !arrow {
                        angle = angle.saturating_sub(1);
                    }
                }
                TokKind::Punct if t.text == "{" && angle == 0 => {
                    let names = if saw_for { &after_for } else { &before_for };
                    let self_ty = names.last()?.clone();
                    let trait_ty = saw_for.then(|| before_for.last().cloned()).flatten();
                    return Some((self_ty, trait_ty, i));
                }
                TokKind::Punct if t.text == ";" => return None,
                TokKind::Ident if angle == 0 => match t.text.as_str() {
                    "for" => saw_for = true,
                    "where" => in_where = true,
                    "dyn" | "mut" => {}
                    _ if in_where => {}
                    name if saw_for => after_for.push(name.to_string()),
                    name => before_for.push(name.to_string()),
                },
                _ => {}
            }
            i += 1;
        }
        None
    }

    /// Detects a call site whose callee name sits at code index `i`, and
    /// appends it to `node`'s call list.
    fn collect_call(&mut self, i: usize, node: u32) {
        let t = self.scan.tok(i);
        if t.kind != TokKind::Ident || NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            return;
        }
        if self.scan.in_test[i] {
            return;
        }

        // What precedes the name: `.` (method), `::` (path), or neither.
        let after_dot = i >= 1 && self.scan.tok(i - 1).is_punct('.');
        let after_path =
            i >= 2 && self.scan.tok(i - 1).is_punct(':') && self.scan.tok(i - 2).is_punct(':');

        // What follows: `(`, or a turbofish `::<…>(`, or nothing callable.
        let called = self.followed_by_call_parens(i + 1);

        let site = if after_dot {
            if !called {
                return; // field access
            }
            let receiver_is_self = i >= 2
                && self.scan.tok(i - 2).is_ident("self")
                && !(i >= 3 && self.scan.tok(i - 3).is_punct('.'));
            Some(CallSite {
                name: t.text.clone(),
                kind: if receiver_is_self {
                    CallKind::SelfMethod
                } else {
                    CallKind::Method
                },
                line: t.line,
            })
        } else if after_path {
            // `Qual::name(…)` call or `Qual::name` function reference; skip
            // when the name is itself followed by `::` (mid-path segment).
            if self.scan.code.get(i + 1).is_some()
                && self.scan.tok(i + 1).is_punct(':')
                && self.scan.code.get(i + 2).is_some()
                && self.scan.tok(i + 2).is_punct(':')
                && !self.turbofish_at(i + 1)
            {
                return;
            }
            let qual = (i >= 3 && self.scan.tok(i - 3).kind == TokKind::Ident)
                .then(|| self.scan.tok(i - 3).text.clone());
            let Some(qual) = qual else { return };
            Some(CallSite {
                name: t.text.clone(),
                kind: CallKind::Path { qual },
                line: t.line,
            })
        } else if called {
            // Guard against macro invocations (`name!(…)` never matches
            // `called` since `!` intervenes) and plain free calls.
            Some(CallSite {
                name: t.text.clone(),
                kind: CallKind::Free,
                line: t.line,
            })
        } else {
            None
        };

        if let Some(site) = site {
            self.fns[node as usize].calls.push(site);
        }
    }

    /// Whether code index `j` begins `(`, or a turbofish `::<…>` followed
    /// by `(`.
    fn followed_by_call_parens(&self, j: usize) -> bool {
        if self.scan.code.get(j).is_none() {
            return false;
        }
        if self.scan.tok(j).is_punct('(') {
            return true;
        }
        if let Some(end) = self.turbofish_end(j) {
            return self.scan.code.get(end).is_some() && self.scan.tok(end).is_punct('(');
        }
        false
    }

    /// Whether a turbofish (`::<…>`) starts at code index `j`.
    fn turbofish_at(&self, j: usize) -> bool {
        self.turbofish_end(j).is_some()
    }

    /// If a turbofish starts at `j`, the code index just past its `>`.
    fn turbofish_end(&self, j: usize) -> Option<usize> {
        if !(self.scan.code.get(j).is_some()
            && self.scan.tok(j).is_punct(':')
            && self.scan.code.get(j + 1).is_some()
            && self.scan.tok(j + 1).is_punct(':')
            && self.scan.code.get(j + 2).is_some()
            && self.scan.tok(j + 2).is_punct('<'))
        {
            return None;
        }
        let mut angle = 1usize;
        let mut k = j + 3;
        while self.scan.code.get(k).is_some() {
            let t = self.scan.tok(k);
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle -= 1;
                if angle == 0 {
                    return Some(k + 1);
                }
            } else if t.is_punct('(') || t.is_punct(';') {
                return None; // not a turbofish after all
            }
            k += 1;
        }
        None
    }
}

/// A function node in the workspace call graph.
#[derive(Debug)]
pub struct Node {
    /// Index of the owning file in the scan list.
    pub file: usize,
    /// Index into that file's [`FileItems::fns`].
    pub item: u32,
}

/// The workspace-wide call graph: all files' items plus resolved edges.
///
/// Nodes are global function ids (indices into [`CallGraph::nodes`]);
/// [`CallGraph::callees`] holds the resolved, deduplicated out-edges of
/// each node.
#[derive(Debug)]
pub struct CallGraph {
    /// Per-file item tables, parallel to the scan list.
    pub files: Vec<FileItems>,
    /// Global node table.
    pub nodes: Vec<Node>,
    /// Resolved out-edges per node (global ids, sorted, deduplicated).
    pub callees: Vec<Vec<u32>>,
    /// `nodes[global_of[file][item]]` maps a file-local item back to its
    /// global id.
    pub global_of: Vec<Vec<u32>>,
    /// Per file: whether its items are resolution targets. Only library
    /// source (`src/`, excluding `src/bin` and `main.rs`) can be *called
    /// from* the hot path; free helpers in `tests/` or `examples/` that
    /// happen to share a name with a library function must not attract
    /// edges.
    pub resolvable: Vec<bool>,
}

impl CallGraph {
    /// Parses every scan and resolves all call sites into edges.
    pub fn build(scans: &[FileScan]) -> CallGraph {
        let files: Vec<FileItems> = scans.iter().map(parse_items).collect();
        let resolvable: Vec<bool> = scans
            .iter()
            .map(|s| {
                let p = s.path.as_str();
                (p.starts_with("src/") || p.contains("/src/"))
                    && !p.contains("/bin/")
                    && !p.ends_with("/main.rs")
            })
            .collect();

        let mut nodes = Vec::new();
        let mut global_of: Vec<Vec<u32>> = Vec::with_capacity(files.len());
        for (fi, items) in files.iter().enumerate() {
            let mut ids = Vec::with_capacity(items.fns.len());
            for (ii, _) in items.fns.iter().enumerate() {
                ids.push(nodes.len() as u32);
                nodes.push(Node {
                    file: fi,
                    item: ii as u32,
                });
            }
            global_of.push(ids);
        }

        let index = Index::build(&files, &nodes, &global_of, &resolvable);
        let mut callees: Vec<Vec<u32>> = vec![Vec::new(); nodes.len()];
        for (gid, node) in nodes.iter().enumerate() {
            let item = &files[node.file].fns[node.item as usize];
            if item.in_test {
                continue;
            }
            let mut out = Vec::new();
            for call in &item.calls {
                index.resolve(call, item, &mut out);
            }
            out.sort_unstable();
            out.dedup();
            callees[gid] = out;
        }

        CallGraph {
            files,
            nodes,
            callees,
            global_of,
            resolvable,
        }
    }

    /// The item behind a global node id.
    pub fn item(&self, gid: u32) -> &FnItem {
        let node = &self.nodes[gid as usize];
        &self.files[node.file].fns[node.item as usize]
    }

    /// Resolves an `entry_points` spec (`Type::method`, `Trait::method`, or
    /// a bare free-fn name) to global node ids. Returns an empty vector for
    /// specs that name nothing — the caller reports that as a config error.
    pub fn resolve_entry(&self, spec: &str) -> Vec<u32> {
        let index = Index::build(&self.files, &self.nodes, &self.global_of, &self.resolvable);
        let mut out = Vec::new();
        match spec.split_once("::") {
            Some((qual, name)) => index.resolve(
                &CallSite {
                    name: name.to_string(),
                    kind: CallKind::Path {
                        qual: qual.to_string(),
                    },
                    line: 0,
                },
                &FnItem {
                    name: String::new(),
                    self_ty: None,
                    trait_ty: None,
                    in_trait_decl: false,
                    is_decl: false,
                    in_test: false,
                    line: 0,
                    calls: Vec::new(),
                },
                &mut out,
            ),
            None => out.extend(index.free.get(spec).into_iter().flatten().copied()),
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

use std::collections::BTreeMap;

/// Name-resolution index over all files' items.
struct Index<'a> {
    /// Free fns (no impl/trait) by name.
    free: BTreeMap<&'a str, Vec<u32>>,
    /// All impl/trait methods by name.
    methods: BTreeMap<&'a str, Vec<u32>>,
    /// Impl methods by `(self type, name)`.
    by_type: BTreeMap<(&'a str, &'a str), Vec<u32>>,
    /// Trait-impl methods and trait-decl default bodies by
    /// `(trait, name)`.
    by_trait: BTreeMap<(&'a str, &'a str), Vec<u32>>,
    /// Traits each type implements (for trait-default fall-through).
    traits_of: BTreeMap<&'a str, Vec<&'a str>>,
}

impl<'a> Index<'a> {
    fn build(
        files: &'a [FileItems],
        nodes: &[Node],
        global_of: &[Vec<u32>],
        resolvable: &[bool],
    ) -> Index<'a> {
        let mut index = Index {
            free: BTreeMap::new(),
            methods: BTreeMap::new(),
            by_type: BTreeMap::new(),
            by_trait: BTreeMap::new(),
            traits_of: BTreeMap::new(),
        };
        for (gid, node) in nodes.iter().enumerate() {
            let gid = gid as u32;
            debug_assert_eq!(global_of[node.file][node.item as usize], gid);
            let item = &files[node.file].fns[node.item as usize];
            // Test fns and non-library files are not resolution targets.
            if item.in_test || item.is_decl || !resolvable[node.file] {
                continue;
            }
            let name = item.name.as_str();
            match (&item.self_ty, &item.trait_ty) {
                (Some(ty), tr) => {
                    index.methods.entry(name).or_default().push(gid);
                    index.by_type.entry((ty, name)).or_default().push(gid);
                    if let Some(tr) = tr {
                        index.by_trait.entry((tr, name)).or_default().push(gid);
                        let list = index.traits_of.entry(ty.as_str()).or_default();
                        if !list.contains(&tr.as_str()) {
                            list.push(tr);
                        }
                    }
                }
                (None, Some(tr)) if item.in_trait_decl => {
                    // Trait default body.
                    index.methods.entry(name).or_default().push(gid);
                    index.by_trait.entry((tr, name)).or_default().push(gid);
                }
                _ => index.free.entry(name).or_default().push(gid),
            }
        }
        index
    }

    /// Whether `name` names a trait the index knows about.
    fn is_trait(&self, name: &str) -> bool {
        self.by_trait.keys().any(|&(tr, _)| tr == name)
            || self.traits_of.values().any(|ts| ts.contains(&name))
    }

    /// Whether `name` names a type with impls.
    fn is_type(&self, name: &str) -> bool {
        self.by_type.keys().any(|&(ty, _)| ty == name)
    }

    /// Methods of `ty` named `name`, falling through to default bodies of
    /// traits `ty` implements.
    fn type_methods(&self, ty: &str, name: &str, out: &mut Vec<u32>) {
        if let Some(ids) = self.by_type.get(&(ty, name)) {
            out.extend_from_slice(ids);
            return;
        }
        for tr in self.traits_of.get(ty).into_iter().flatten() {
            if let Some(ids) = self.by_trait.get(&(*tr, name)) {
                out.extend_from_slice(ids);
            }
        }
    }

    /// Appends the global ids `call` may reach (the conservative set).
    fn resolve(&self, call: &CallSite, caller: &FnItem, out: &mut Vec<u32>) {
        let name = call.name.as_str();
        match &call.kind {
            CallKind::Free => {
                out.extend(self.free.get(name).into_iter().flatten().copied());
            }
            CallKind::SelfMethod => {
                let before = out.len();
                if let Some(ty) = &caller.self_ty {
                    self.type_methods(ty, name, out);
                } else if let (Some(tr), true) = (&caller.trait_ty, caller.in_trait_decl) {
                    // `self.m()` inside a trait default body: every impl of
                    // the trait, plus sibling defaults.
                    out.extend(
                        self.by_trait
                            .get(&(tr.as_str(), name))
                            .into_iter()
                            .flatten()
                            .copied(),
                    );
                }
                if out.len() == before {
                    // Deref / blanket-impl fallback: any method of the name.
                    out.extend(self.methods.get(name).into_iter().flatten().copied());
                }
            }
            CallKind::Method => {
                // Unknown receiver: every method of that name, including
                // every impl of any trait that declares it.
                out.extend(self.methods.get(name).into_iter().flatten().copied());
            }
            CallKind::Path { qual } => {
                let qual = if qual == "Self" {
                    match &caller.self_ty {
                        Some(ty) => ty.as_str(),
                        None => caller.trait_ty.as_deref().unwrap_or(""),
                    }
                } else {
                    qual.as_str()
                };
                if self.is_trait(qual) {
                    out.extend(
                        self.by_trait
                            .get(&(qual, name))
                            .into_iter()
                            .flatten()
                            .copied(),
                    );
                } else if self.is_type(qual) {
                    self.type_methods(qual, name, out);
                } else {
                    // Module path or foreign type: only free fns can match.
                    out.extend(self.free.get(name).into_iter().flatten().copied());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(src: &str) -> FileItems {
        parse_items(&FileScan::new("crates/sim/src/x.rs".into(), src))
    }

    fn graph(srcs: &[(&str, &str)]) -> CallGraph {
        let scans: Vec<FileScan> = srcs
            .iter()
            .map(|(p, s)| FileScan::new((*p).to_string(), s))
            .collect();
        CallGraph::build(&scans)
    }

    fn names_of(g: &CallGraph, ids: &[u32]) -> Vec<String> {
        let mut v: Vec<String> = ids.iter().map(|&id| g.item(id).qualified()).collect();
        v.sort();
        v
    }

    #[test]
    fn fn_impl_trait_boundaries_are_recovered() {
        let it = items(
            "impl Engine for Cooo {\n fn wake(&mut self) { self.step(); }\n}\n\
             trait Engine {\n fn wake(&mut self);\n fn idle(&self) -> bool { true }\n}\n\
             fn free_helper() {}\n",
        );
        let q: Vec<String> = it.fns.iter().map(|f| f.qualified()).collect();
        assert_eq!(
            q,
            ["Cooo::wake", "Engine::wake", "Engine::idle", "free_helper"]
        );
        assert!(it.fns[1].is_decl);
        assert!(it.fns[2].in_trait_decl && !it.fns[2].is_decl);
    }

    #[test]
    fn impl_headers_with_generics_and_bounds_parse() {
        let it = items(
            "impl<O: Observer, F: Fn() -> u64> CommitEngine<O> for Checkpointed<O, F> {\n fn wake(&mut self) {}\n}\n",
        );
        assert_eq!(it.fns[0].self_ty.as_deref(), Some("Checkpointed"));
        assert_eq!(it.fns[0].trait_ty.as_deref(), Some("CommitEngine"));
    }

    #[test]
    fn impl_in_type_position_is_not_an_item() {
        let it = items("fn f(x: impl Iterator) -> impl Iterator { g(); x }\n");
        assert_eq!(it.fns.len(), 1);
        assert!(it.fns[0].self_ty.is_none());
        assert_eq!(it.fns[0].calls.len(), 1);
    }

    #[test]
    fn call_kinds_are_classified() {
        let it = items(
            "impl T {\n fn go(&mut self) {\n  helper();\n  self.local();\n  other.remote();\n  Widget::build();\n  iter.map(Self::lift);\n  f::<u64>();\n }\n}\n",
        );
        let calls = &it.fns[0].calls;
        let kinds: Vec<(&str, &CallKind)> =
            calls.iter().map(|c| (c.name.as_str(), &c.kind)).collect();
        assert!(kinds.contains(&("helper", &CallKind::Free)));
        assert!(kinds.contains(&("local", &CallKind::SelfMethod)));
        assert!(kinds.contains(&("remote", &CallKind::Method)));
        assert!(kinds.iter().any(
            |(n, k)| *n == "build" && matches!(k, CallKind::Path { qual } if qual == "Widget")
        ));
        assert!(kinds
            .iter()
            .any(|(n, k)| *n == "lift" && matches!(k, CallKind::Path { qual } if qual == "Self")));
        assert!(kinds.contains(&("f", &CallKind::Free)));
        // `iter.map` itself is a method call; field accesses are not calls.
        assert!(kinds.contains(&("map", &CallKind::Method)));
    }

    #[test]
    fn closure_bodies_attribute_to_the_enclosing_fn() {
        let it =
            items("fn outer() {\n let c = |x: u64| inner(x);\n c(1);\n}\nfn inner(_x: u64) {}\n");
        assert!(it.fns[0].calls.iter().any(|c| c.name == "inner"));
    }

    #[test]
    fn trait_method_calls_fan_out_to_every_impl() {
        let g = graph(&[(
            "crates/sim/src/e.rs",
            "trait Engine { fn cycle(&mut self); }\n\
             struct A; impl Engine for A { fn cycle(&mut self) { a_only(); } }\n\
             struct B; impl Engine for B { fn cycle(&mut self) { b_only(); } }\n\
             fn a_only() {}\nfn b_only() {}\n\
             fn drive(e: &mut dyn Engine) { e.cycle(); }\n",
        )]);
        let drive = (0..g.nodes.len() as u32)
            .find(|&id| g.item(id).name == "drive")
            .unwrap();
        assert_eq!(
            names_of(&g, &g.callees[drive as usize]),
            ["A::cycle", "B::cycle"]
        );
    }

    #[test]
    fn self_calls_resolve_within_the_impl_first() {
        let g = graph(&[(
            "crates/sim/src/e.rs",
            "struct A; struct B;\n\
             impl A { fn tick(&self) { self.helper(); } fn helper(&self) {} }\n\
             impl B { fn helper(&self) {} }\n",
        )]);
        let tick = (0..g.nodes.len() as u32)
            .find(|&id| g.item(id).name == "tick")
            .unwrap();
        assert_eq!(names_of(&g, &g.callees[tick as usize]), ["A::helper"]);
    }

    #[test]
    fn foreign_quals_fall_back_to_free_fns_only() {
        let g = graph(&[(
            "crates/sim/src/e.rs",
            "impl A { fn new() -> A { A } }\n\
             fn caller() { let v = Vec::new(); mem_take(); }\nfn mem_take() {}\n",
        )]);
        let caller = (0..g.nodes.len() as u32)
            .find(|&id| g.item(id).name == "caller")
            .unwrap();
        // `Vec::new` must NOT resolve to `A::new`.
        assert_eq!(names_of(&g, &g.callees[caller as usize]), ["mem_take"]);
    }

    #[test]
    fn entry_specs_resolve_types_traits_and_free_fns() {
        let g = graph(&[(
            "crates/sim/src/e.rs",
            "trait Engine { fn cycle(&mut self); }\n\
             struct A; impl Engine for A { fn cycle(&mut self) {} }\n\
             struct P; impl P { fn advance(&mut self) {} }\n\
             fn boot() {}\n",
        )]);
        assert_eq!(
            names_of(&g, &g.resolve_entry("Engine::cycle")),
            ["A::cycle"]
        );
        assert_eq!(names_of(&g, &g.resolve_entry("P::advance")), ["P::advance"]);
        assert_eq!(names_of(&g, &g.resolve_entry("boot")), ["boot"]);
        assert!(g.resolve_entry("Nope::nothing").is_empty());
    }

    #[test]
    fn test_code_fns_are_not_resolution_targets() {
        let g = graph(&[(
            "crates/sim/src/e.rs",
            "fn live() { x.cycle(); }\n#[cfg(test)]\nmod t {\n fn cycle() {}\n impl Z { fn cycle(&self) {} }\n}\n",
        )]);
        let live = (0..g.nodes.len() as u32)
            .find(|&id| g.item(id).name == "live")
            .unwrap();
        assert!(g.callees[live as usize].is_empty());
    }
}
