//! `koc-lint`: repo-native static analysis for the koc workspace.
//!
//! The simulator's correctness claims rest on properties `rustc` does not
//! check: the per-cycle hot path must not allocate, cycle counts must be
//! bit-exact across runs (so no hash-order iteration, no wall-clock, no
//! unseeded randomness in the simulation crates), library code must not
//! panic without a written justification, and no crate may contain
//! `unsafe`. This crate turns each of those conventions into a named,
//! machine-checked rule over a hand-rolled Rust lexer — in the same
//! no-external-dependencies style as `koc_isa::json` — so CI fails when a
//! change violates one, instead of a human noticing in review (or a
//! nondeterministic benchmark noticing much later).
//!
//! Rules are suppressible per line with
//! `// koc-lint: allow(<rule>, "reason")`; the reason is mandatory, and a
//! marker that suppresses nothing is itself reported, so the set of waivers
//! in the tree stays live and auditable. Findings are emitted both
//! human-readable and as machine-readable JSON (the `koc-lint/1` schema)
//! for CI artifacts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod lex;
pub mod rules;
pub mod scan;

pub use config::Config;
pub use rules::Finding;

use scan::FileScan;
use serde::Serialize;
use std::path::{Path, PathBuf};

/// The result of linting a tree: what `koc-lint` prints and serializes.
#[derive(Debug, Serialize)]
pub struct LintReport {
    /// Report format identifier.
    pub schema: String,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings an `allow` marker silenced (they do not gate).
    pub suppressed: usize,
    /// Unsuppressed findings with severity `error`.
    pub errors: usize,
    /// Unsuppressed findings with severity `warning`.
    pub warnings: usize,
    /// The unsuppressed findings, sorted by file, line, rule.
    pub findings: Vec<Finding>,
}

impl LintReport {
    /// Whether the tree is clean: any unsuppressed finding fails the run,
    /// warnings included (severity is diagnostic detail, not a gate tier).
    pub fn passed(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Lints the workspace at `root` under `config`.
///
/// # Errors
/// Returns a message when a configured scan root cannot be read. Rule
/// violations are *not* errors — they come back inside the report.
pub fn lint_root(root: &Path, config: &Config) -> Result<LintReport, String> {
    let mut files = Vec::new();
    for scan_root in &config.roots {
        collect_rs_files(&root.join(scan_root), &mut files)?;
    }
    // Deterministic order regardless of directory enumeration order.
    files.sort();

    let mut scans = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        if config.exclude.iter().any(|e| rel.starts_with(e.as_str())) {
            continue;
        }
        let source = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        scans.push(FileScan::new(rel, &source));
    }

    let mut findings = Vec::new();
    for scan in &scans {
        rules::check_file(scan, config, &mut findings);
        for (line, message) in &scan.bad_markers {
            findings.push(Finding {
                rule: "suppression".to_string(),
                severity: "error".to_string(),
                file: scan.path.clone(),
                line: *line,
                message: message.clone(),
            });
        }
    }
    rules::check_crate_roots(&scans, config, &mut findings);
    rules::check_stats_coverage(&scans, config, &mut findings);

    Ok(apply_suppressions(scans, findings))
}

/// Splits raw findings into suppressed and live, and reports unused
/// markers so stale waivers cannot linger.
fn apply_suppressions(scans: Vec<FileScan>, raw: Vec<Finding>) -> LintReport {
    let mut suppressed = 0usize;
    let mut live: Vec<Finding> = Vec::new();
    // Marker usage is tracked per (file index, allow index).
    let mut used: Vec<Vec<bool>> = scans.iter().map(|s| vec![false; s.allows.len()]).collect();

    for finding in raw {
        // Malformed-marker findings are themselves unsuppressable.
        let covering = (finding.rule != "suppression")
            .then(|| {
                scans.iter().enumerate().find_map(|(si, s)| {
                    if s.path != finding.file {
                        return None;
                    }
                    s.allows
                        .iter()
                        .position(|a| {
                            a.rule == finding.rule
                                && (a.target_line == finding.line || a.line == finding.line)
                        })
                        .map(|ai| (si, ai))
                })
            })
            .flatten();
        match covering {
            Some((si, ai)) => {
                used[si][ai] = true;
                suppressed += 1;
            }
            None => live.push(finding),
        }
    }

    for (si, scan) in scans.iter().enumerate() {
        for (ai, allow) in scan.allows.iter().enumerate() {
            if !used[si][ai] {
                live.push(Finding {
                    rule: "suppression".to_string(),
                    severity: "warning".to_string(),
                    file: scan.path.clone(),
                    line: allow.line,
                    message: format!(
                        "allow({}) marker suppresses nothing — remove the \
                         stale waiver",
                        allow.rule
                    ),
                });
            }
        }
    }

    live.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.as_str()).cmp(&(b.file.as_str(), b.line, b.rule.as_str()))
    });
    let errors = live.iter().filter(|f| f.severity == "error").count();
    let warnings = live.len() - errors;
    LintReport {
        schema: "koc-lint/1".to_string(),
        files_scanned: scans.len(),
        suppressed,
        errors,
        warnings,
        findings: live,
    }
}

/// Recursively collects `.rs` files under `dir` (which must exist).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let path = entry.path();
        let ty = entry
            .file_type()
            .map_err(|e| format!("cannot stat {}: {e}", path.display()))?;
        if ty.is_dir() {
            // `target/` never holds source we own.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_silences_matching_rule_on_matching_line_only() {
        let scans = vec![FileScan::new(
            "crates/sim/src/x.rs".into(),
            "fn f(x: Option<u8>) -> u8 { x.unwrap() } // koc-lint: allow(panic, \"test invariant\")\nfn g(x: Option<u8>) -> u8 { x.unwrap() }\n",
        )];
        let raw = vec![
            Finding {
                rule: "panic".into(),
                severity: "error".into(),
                file: "crates/sim/src/x.rs".into(),
                line: 1,
                message: "m".into(),
            },
            Finding {
                rule: "panic".into(),
                severity: "error".into(),
                file: "crates/sim/src/x.rs".into(),
                line: 2,
                message: "m".into(),
            },
        ];
        let report = apply_suppressions(scans, raw);
        assert_eq!(report.suppressed, 1);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].line, 2);
    }

    #[test]
    fn unused_markers_are_reported() {
        let scans = vec![FileScan::new(
            "crates/sim/src/x.rs".into(),
            "// koc-lint: allow(panic, \"nothing here panics\")\nfn f() {}\n",
        )];
        let report = apply_suppressions(scans, Vec::new());
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "suppression");
        assert!(!report.passed());
    }

    #[test]
    fn report_serializes_to_json() {
        let report = apply_suppressions(Vec::new(), Vec::new());
        let json = report.to_json();
        assert!(json.contains("\"schema\":\"koc-lint/1\""), "{json}");
        assert!(json.contains("\"findings\":[]"), "{json}");
    }
}
