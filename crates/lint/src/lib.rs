//! `koc-lint`: repo-native static analysis for the koc workspace.
//!
//! The simulator's correctness claims rest on properties `rustc` does not
//! check: the per-cycle hot path must not allocate, cycle counts must be
//! bit-exact across runs (so no hash-order iteration, no wall-clock, no
//! unseeded randomness in the simulation crates), library code must not
//! panic without a written justification, and no crate may contain
//! `unsafe`. This crate turns each of those conventions into a named,
//! machine-checked rule over a hand-rolled Rust lexer — in the same
//! no-external-dependencies style as `koc_isa::json` — so CI fails when a
//! change violates one, instead of a human noticing in review (or a
//! nondeterministic benchmark noticing much later).
//!
//! The hot-path rules are *derived*, not hand-listed: a workspace call
//! graph ([`graph`]) is built from the same token streams, seeded from the
//! per-cycle `entry_points` declared in `lint.toml`, and walked into a hot
//! set ([`reach`]) cut at `cold_fns`. Allocation, determinism, and panic
//! enforcement then follow the hot path wherever it actually goes —
//! including files the old hand list never named (`hot-path-indirect`) —
//! and every finding cites its seeding chain.
//!
//! Rules are suppressible per line with
//! `// koc-lint: allow(<rule>, "reason")`; the reason is mandatory, and a
//! marker that suppresses nothing is itself reported, so the set of waivers
//! in the tree stays live and auditable. Findings are emitted both
//! human-readable and as machine-readable JSON (the `koc-lint/1` schema)
//! for CI artifacts; the derived call graph ships as `koc-callgraph/1`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod graph;
pub mod lex;
pub mod reach;
pub mod rules;
pub mod scan;

pub use config::Config;
pub use rules::Finding;

use graph::CallGraph;
use reach::{GraphReport, HotMarks, Reachability};
use scan::FileScan;
use serde::Serialize;
use std::path::{Path, PathBuf};

/// The result of linting a tree: what `koc-lint` prints and serializes.
#[derive(Debug, Serialize)]
pub struct LintReport {
    /// Report format identifier.
    pub schema: String,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings an `allow` marker silenced (they do not gate).
    pub suppressed: usize,
    /// Unsuppressed findings with severity `error`.
    pub errors: usize,
    /// Unsuppressed findings with severity `warning`.
    pub warnings: usize,
    /// Functions on the derived per-cycle hot path.
    pub hot_fns: usize,
    /// The unsuppressed findings, sorted by file, line, rule.
    pub findings: Vec<Finding>,
}

impl LintReport {
    /// Whether the tree is clean: any unsuppressed finding fails the run,
    /// warnings included (severity is diagnostic detail, not a gate tier).
    pub fn passed(&self) -> bool {
        self.findings.is_empty()
    }
}

/// One `// koc-lint: allow(...)` marker found in the tree, with its
/// liveness after the run — what `koc-lint --list-waivers` enumerates.
#[derive(Debug, Clone, Serialize)]
pub struct Waiver {
    /// Workspace-relative file holding the marker.
    pub file: String,
    /// 1-based line of the marker comment.
    pub line: u32,
    /// The rule it suppresses.
    pub rule: String,
    /// The written justification.
    pub reason: String,
    /// Whether the marker suppressed at least one finding this run
    /// (`false` means the waiver is stale and is itself reported).
    pub live: bool,
}

/// Everything one lint run produces: the gating report, the derived call
/// graph, the waiver inventory, and how long graph construction took.
#[derive(Debug)]
pub struct Analysis {
    /// The findings report (the `koc-lint/1` document).
    pub report: LintReport,
    /// The derived call graph with hot marks (the `koc-callgraph/1`
    /// document, written by `--out-graph`).
    pub graph: GraphReport,
    /// Every suppression marker in the tree, live or stale.
    pub waivers: Vec<Waiver>,
    /// Wall-clock seconds spent building the graph and reachability (kept
    /// visible so graph-construction cost shows up in CI logs).
    pub graph_seconds: f64,
}

/// Lints the workspace at `root` under `config`: scan, build the call
/// graph, derive the hot set, run every rule, apply suppressions.
///
/// # Errors
/// Returns a message when a configured scan root cannot be read. Rule
/// violations are *not* errors — they come back inside the report.
pub fn analyze(root: &Path, config: &Config) -> Result<Analysis, String> {
    let mut files = Vec::new();
    for scan_root in &config.roots {
        collect_rs_files(&root.join(scan_root), &mut files)?;
    }
    // Deterministic order regardless of directory enumeration order.
    files.sort();

    let mut scans = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        if config.exclude.iter().any(|e| rel.starts_with(e.as_str())) {
            continue;
        }
        let source = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        scans.push(FileScan::new(rel, &source));
    }

    // std::time is fine here: koc-lint is tooling, not a simulation crate
    // (and lint.toml's determinism scope does not include it).
    let t0 = std::time::Instant::now();
    let graph = CallGraph::build(&scans);
    let reach = Reachability::compute(&graph, &config.entry_points, &config.cold_fns);
    let graph_seconds = t0.elapsed().as_secs_f64();

    let mut findings = Vec::new();
    // Configuration errors in the graph seeding are findings under the
    // unsuppressable `callgraph` rule: a typo'd entry point must fail the
    // run, not silently shrink the protected set.
    for spec in &reach.unresolved {
        findings.push(Finding {
            rule: "callgraph".to_string(),
            severity: "error".to_string(),
            file: "lint.toml".to_string(),
            line: 1,
            message: format!(
                "entry point `{spec}` resolves to no function in the scan — \
                 fix the spec or remove it from entry_points"
            ),
        });
    }
    // Regression guard for the hand-list → derived transition: every file
    // the old list protected must still contain at least one hot function.
    for legacy in &config.legacy_files {
        let Some(fi) = scans.iter().position(|s| &s.path == legacy) else {
            findings.push(Finding {
                rule: "callgraph".to_string(),
                severity: "error".to_string(),
                file: legacy.clone(),
                line: 1,
                message: "legacy_files entry was not found in the scan — \
                          fix the path or drop it"
                    .to_string(),
            });
            continue;
        };
        let any_hot = graph.global_of[fi]
            .iter()
            .any(|&gid| reach.hot[gid as usize]);
        if !any_hot {
            findings.push(Finding {
                rule: "callgraph".to_string(),
                severity: "error".to_string(),
                file: legacy.clone(),
                line: 1,
                message: "no function in this legacy hot-path file is \
                          reachable from the configured entry_points — the \
                          derived hot set regressed below the hand-listed \
                          baseline; add the missing entry point (or drop \
                          the file from legacy_files if it is genuinely \
                          cold now)"
                    .to_string(),
            });
        }
    }

    for (fi, scan) in scans.iter().enumerate() {
        let hot = HotMarks::for_file(&graph, &reach, fi);
        rules::check_file(scan, config, &hot, &mut findings);
        for (line, message) in &scan.bad_markers {
            findings.push(Finding {
                rule: "suppression".to_string(),
                severity: "error".to_string(),
                file: scan.path.clone(),
                line: *line,
                message: message.clone(),
            });
        }
    }
    rules::check_crate_roots(&scans, config, &mut findings);
    rules::check_stats_coverage(&scans, config, &mut findings);

    let paths: Vec<String> = scans.iter().map(|s| s.path.clone()).collect();
    let graph_report = GraphReport::new(&graph, &reach, &paths);
    let (mut report, waivers) = apply_suppressions(scans, findings);
    report.hot_fns = reach.hot_count();
    Ok(Analysis {
        report,
        graph: graph_report,
        waivers,
        graph_seconds,
    })
}

/// Lints the workspace and returns just the findings report. See
/// [`analyze`] for the full result (graph, waivers, timing).
///
/// # Errors
/// Returns a message when a configured scan root cannot be read.
pub fn lint_root(root: &Path, config: &Config) -> Result<LintReport, String> {
    analyze(root, config).map(|a| a.report)
}

/// Splits raw findings into suppressed and live, reports unused markers so
/// stale waivers cannot linger, and inventories every marker seen.
fn apply_suppressions(scans: Vec<FileScan>, raw: Vec<Finding>) -> (LintReport, Vec<Waiver>) {
    let mut suppressed = 0usize;
    let mut live: Vec<Finding> = Vec::new();
    // Marker usage is tracked per (file index, allow index).
    let mut used: Vec<Vec<bool>> = scans.iter().map(|s| vec![false; s.allows.len()]).collect();

    for finding in raw {
        // Malformed-marker and graph-infrastructure findings are
        // themselves unsuppressable.
        let covering = (finding.rule != "suppression" && finding.rule != "callgraph")
            .then(|| {
                scans.iter().enumerate().find_map(|(si, s)| {
                    if s.path != finding.file {
                        return None;
                    }
                    s.allows
                        .iter()
                        .position(|a| {
                            a.rule == finding.rule
                                && (a.target_line == finding.line || a.line == finding.line)
                        })
                        .map(|ai| (si, ai))
                })
            })
            .flatten();
        match covering {
            Some((si, ai)) => {
                used[si][ai] = true;
                suppressed += 1;
            }
            None => live.push(finding),
        }
    }

    let mut waivers: Vec<Waiver> = Vec::new();
    for (si, scan) in scans.iter().enumerate() {
        for (ai, allow) in scan.allows.iter().enumerate() {
            waivers.push(Waiver {
                file: scan.path.clone(),
                line: allow.line,
                rule: allow.rule.clone(),
                reason: allow.reason.clone().unwrap_or_default(),
                live: used[si][ai],
            });
            if !used[si][ai] {
                // The marker names its own file:line so the finding stays
                // actionable even when tooling aggregates messages without
                // the surrounding file/line fields (or the file has moved
                // since the waiver was written).
                live.push(Finding {
                    rule: "suppression".to_string(),
                    severity: "warning".to_string(),
                    file: scan.path.clone(),
                    line: allow.line,
                    message: format!(
                        "allow({}) marker at {}:{} suppresses nothing — \
                         remove the stale waiver",
                        allow.rule, scan.path, allow.line
                    ),
                });
            }
        }
    }

    live.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.as_str()).cmp(&(b.file.as_str(), b.line, b.rule.as_str()))
    });
    let errors = live.iter().filter(|f| f.severity == "error").count();
    let warnings = live.len() - errors;
    let report = LintReport {
        schema: "koc-lint/1".to_string(),
        files_scanned: scans.len(),
        suppressed,
        errors,
        warnings,
        hot_fns: 0,
        findings: live,
    };
    (report, waivers)
}

/// Recursively collects `.rs` files under `dir` (which must exist).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let path = entry.path();
        let ty = entry
            .file_type()
            .map_err(|e| format!("cannot stat {}: {e}", path.display()))?;
        if ty.is_dir() {
            // `target/` never holds source we own.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_silences_matching_rule_on_matching_line_only() {
        let scans = vec![FileScan::new(
            "crates/sim/src/x.rs".into(),
            "fn f(x: Option<u8>) -> u8 { x.unwrap() } // koc-lint: allow(panic, \"test invariant\")\nfn g(x: Option<u8>) -> u8 { x.unwrap() }\n",
        )];
        let raw = vec![
            Finding {
                rule: "panic".into(),
                severity: "error".into(),
                file: "crates/sim/src/x.rs".into(),
                line: 1,
                message: "m".into(),
            },
            Finding {
                rule: "panic".into(),
                severity: "error".into(),
                file: "crates/sim/src/x.rs".into(),
                line: 2,
                message: "m".into(),
            },
        ];
        let (report, waivers) = apply_suppressions(scans, raw);
        assert_eq!(report.suppressed, 1);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].line, 2);
        assert_eq!(waivers.len(), 1);
        assert!(waivers[0].live);
        assert_eq!(waivers[0].reason, "test invariant");
    }

    #[test]
    fn unused_markers_are_reported_with_their_location() {
        let scans = vec![FileScan::new(
            "crates/sim/src/x.rs".into(),
            "// koc-lint: allow(panic, \"nothing here panics\")\nfn f() {}\n",
        )];
        let (report, waivers) = apply_suppressions(scans, Vec::new());
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "suppression");
        assert!(
            report.findings[0]
                .message
                .contains("at crates/sim/src/x.rs:1"),
            "{}",
            report.findings[0].message
        );
        assert!(!report.passed());
        assert_eq!(waivers.len(), 1);
        assert!(!waivers[0].live);
    }

    #[test]
    fn report_serializes_to_json() {
        let (report, _) = apply_suppressions(Vec::new(), Vec::new());
        let json = report.to_json();
        assert!(json.contains("\"schema\":\"koc-lint/1\""), "{json}");
        assert!(json.contains("\"findings\":[]"), "{json}");
    }

    #[test]
    fn callgraph_findings_cannot_be_waived() {
        let scans = vec![FileScan::new(
            "lint.toml.rs".into(), // any scanned file
            "fn f() {}\n",
        )];
        let raw = vec![Finding {
            rule: "callgraph".into(),
            severity: "error".into(),
            file: "lint.toml".into(),
            line: 1,
            message: "m".into(),
        }];
        let (report, _) = apply_suppressions(scans, raw);
        assert_eq!(report.errors, 1);
    }
}
