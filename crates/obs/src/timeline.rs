//! Interval time-series: per-N-cycle deltas over a run.

use crate::accounting::CycleBuckets;
use crate::observer::{CycleSample, Observer};
use serde::{Deserialize, Serialize};

/// One interval of the time-series. All fields are exact integers so the
/// `koc-timeline/1` JSON round-trips losslessly through `koc_isa::json`
/// (averages are left to consumers: `inflight_sum / cycles` etc.).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntervalRecord {
    /// First cycle of the interval.
    pub start_cycle: u64,
    /// Number of cycles covered (equal to the configured interval except
    /// possibly for the final, partial record).
    pub cycles: u64,
    /// Instructions committed during the interval (IPC = committed/cycles).
    pub committed: u64,
    /// Instructions dispatched during the interval.
    pub dispatched: u64,
    /// Sum over the interval of the in-flight instruction count.
    pub inflight_sum: u64,
    /// Sum over the interval of the live (dispatched, not executed) count.
    pub live_sum: u64,
    /// Sum over the interval of live checkpoints in the checkpoint table.
    pub live_checkpoints_sum: u64,
    /// Sum over the interval of memory-backend (MSHR) occupancy.
    pub mshr_sum: u64,
    /// Sum over the interval of replay-window occupancy.
    pub replay_window_sum: u64,
    /// Cycle-accounting deltas for the interval (stall-cause breakdown).
    pub stall: CycleBuckets,
}

/// The interval time-series observer: folds per-cycle samples into
/// [`IntervalRecord`]s of a fixed length, splitting fast-forwarded gaps
/// across interval boundaries exactly as a cycle-by-cycle run would.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineRecorder {
    interval: u64,
    records: Vec<IntervalRecord>,
    cur: IntervalRecord,
    prev_committed: u64,
    prev_dispatched: u64,
}

impl TimelineRecorder {
    /// Creates a recorder with the given interval length in cycles
    /// (clamped to at least 1).
    pub fn new(interval: u64) -> Self {
        TimelineRecorder {
            interval: interval.max(1),
            records: Vec::with_capacity(64),
            cur: IntervalRecord::default(),
            prev_committed: 0,
            prev_dispatched: 0,
        }
    }

    /// The configured interval length in cycles.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// The completed intervals so far (excludes the in-progress one).
    pub fn records(&self) -> &[IntervalRecord] {
        &self.records
    }

    /// Finishes the series, flushing any partial final interval.
    pub fn into_records(mut self) -> Vec<IntervalRecord> {
        if self.cur.cycles > 0 {
            self.records.push(self.cur);
        }
        self.records
    }

    #[inline]
    fn flush_if_full(&mut self) {
        if self.cur.cycles == self.interval {
            self.records.push(core::mem::take(&mut self.cur));
        }
    }

    /// Accounts `n` cycles of the (constant) state in `s` starting at
    /// `cycle`, without touching the cumulative counters.
    #[inline]
    fn accumulate(&mut self, s: &CycleSample, cycle: u64, n: u64) {
        self.flush_if_full();
        if self.cur.cycles == 0 {
            self.cur.start_cycle = cycle;
        }
        self.cur.cycles += n;
        self.cur.inflight_sum += s.inflight as u64 * n;
        self.cur.live_sum += s.live as u64 * n;
        self.cur.live_checkpoints_sum += s.live_checkpoints as u64 * n;
        self.cur.mshr_sum += s.mshr_inflight as u64 * n;
        self.cur.replay_window_sum += s.replay_window as u64 * n;
        self.cur.stall.record(s.bucket, n);
    }
}

impl Observer for TimelineRecorder {
    fn sample(&mut self, s: &CycleSample) {
        self.accumulate(s, s.cycle, 1);
        self.cur.committed += s.committed - self.prev_committed;
        self.cur.dispatched += s.dispatched - self.prev_dispatched;
        self.prev_committed = s.committed;
        self.prev_dispatched = s.dispatched;
    }

    fn skip(&mut self, s: &CycleSample, n: u64) {
        // A gap's cumulative counters are constant (nothing progresses), so
        // only occupancy sums and stall attribution accrue; the chunking
        // reproduces the interval boundaries a stepped run would hit.
        let mut done = 0;
        while done < n {
            let room = self.interval - (self.cur.cycles % self.interval);
            let take = room.min(n - done);
            self.accumulate(s, s.cycle + done, take);
            done += take;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::CycleBucket;

    fn sample(cycle: u64, committed: u64, inflight: usize, bucket: CycleBucket) -> CycleSample {
        CycleSample {
            cycle,
            committed,
            dispatched: committed + 1,
            inflight,
            live: inflight / 2,
            live_checkpoints: 1,
            mshr_inflight: 2,
            pending_misses: 0,
            replay_window: 3,
            bucket,
        }
    }

    #[test]
    fn samples_fold_into_fixed_intervals() {
        let mut t = TimelineRecorder::new(4);
        for c in 1..=10 {
            t.sample(&sample(c, c, 8, CycleBucket::Committing));
        }
        let recs = t.into_records();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].start_cycle, 1);
        assert_eq!(recs[0].cycles, 4);
        assert_eq!(recs[0].committed, 4);
        assert_eq!(recs[0].inflight_sum, 32);
        assert_eq!(recs[1].start_cycle, 5);
        assert_eq!(recs[2].cycles, 2, "final interval is partial");
        assert_eq!(recs.iter().map(|r| r.committed).sum::<u64>(), 10);
        assert_eq!(recs.iter().map(|r| r.stall.total()).sum::<u64>(), 10);
    }

    #[test]
    fn skip_is_identical_to_stepping_the_same_gap() {
        // A 13-cycle idle gap starting mid-interval, constant state.
        let stepped = {
            let mut t = TimelineRecorder::new(4);
            t.sample(&sample(1, 1, 4, CycleBucket::Committing));
            t.sample(&sample(2, 1, 4, CycleBucket::Committing));
            for c in 3..=15 {
                t.sample(&sample(c, 1, 4, CycleBucket::MemoryWait));
            }
            t.into_records()
        };
        let skipped = {
            let mut t = TimelineRecorder::new(4);
            t.sample(&sample(1, 1, 4, CycleBucket::Committing));
            t.sample(&sample(2, 1, 4, CycleBucket::Committing));
            t.skip(&sample(3, 1, 4, CycleBucket::MemoryWait), 13);
            t.into_records()
        };
        assert_eq!(stepped, skipped, "skip must replay interval boundaries");
    }

    #[test]
    fn skip_longer_than_an_interval_splits_correctly() {
        let mut t = TimelineRecorder::new(4);
        t.skip(&sample(1, 0, 1, CycleBucket::FetchStarved), 11);
        let recs = t.into_records();
        assert_eq!(recs.len(), 3);
        assert_eq!(
            recs.iter().map(|r| r.cycles).collect::<Vec<_>>(),
            vec![4, 4, 3]
        );
        assert_eq!(recs[1].start_cycle, 5);
        assert_eq!(recs[2].start_cycle, 9);
        assert_eq!(recs[2].stall.fetch_starved, 3);
    }

    #[test]
    fn zero_interval_is_clamped() {
        let t = TimelineRecorder::new(0);
        assert_eq!(t.interval(), 1);
    }
}
