//! Top-down cycle accounting: where did every cycle go?

use crate::observer::{CycleBucket, CycleSample, Observer};
use serde::{Deserialize, Serialize};

/// Per-bucket cycle totals. The pipeline attributes every simulated cycle
/// to exactly one [`CycleBucket`], so [`CycleBuckets::total`] equals
/// `SimStats::cycles` for any completed run — a hard invariant the test
/// suite and CI assert.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleBuckets {
    /// Cycles in which at least one instruction committed.
    pub committing: u64,
    /// Dispatch stalled on a full ROB / pseudo-ROB window.
    pub window_full: u64,
    /// Dispatch stalled on a full instruction or load/store queue.
    pub iq_full: u64,
    /// Dispatch stalled on an exhausted rename register pool.
    pub regfile_exhausted: u64,
    /// Dispatch stalled on a full checkpoint table.
    pub checkpoint_table_full: u64,
    /// Demand misses queued for backend admission (MSHR pressure).
    pub mshr_full: u64,
    /// Waiting on outstanding memory requests.
    pub memory_wait: u64,
    /// The front end had nothing to dispatch (redirect or end of trace).
    pub fetch_starved: u64,
    /// Waiting on execution latencies or operand dependences.
    pub execute_wait: u64,
}

impl CycleBuckets {
    /// Adds `n` cycles to the given bucket.
    #[inline]
    pub fn record(&mut self, bucket: CycleBucket, n: u64) {
        match bucket {
            CycleBucket::Committing => self.committing += n,
            CycleBucket::WindowFull => self.window_full += n,
            CycleBucket::IqFull => self.iq_full += n,
            CycleBucket::RegfileExhausted => self.regfile_exhausted += n,
            CycleBucket::CheckpointTableFull => self.checkpoint_table_full += n,
            CycleBucket::MshrFull => self.mshr_full += n,
            CycleBucket::MemoryWait => self.memory_wait += n,
            CycleBucket::FetchStarved => self.fetch_starved += n,
            CycleBucket::ExecuteWait => self.execute_wait += n,
        }
    }

    /// Total cycles across all buckets. Equals `SimStats::cycles` for a run
    /// observed end to end.
    pub fn total(&self) -> u64 {
        self.committing
            + self.window_full
            + self.iq_full
            + self.regfile_exhausted
            + self.checkpoint_table_full
            + self.mshr_full
            + self.memory_wait
            + self.fetch_starved
            + self.execute_wait
    }

    /// `(name, cycles)` pairs in declaration order, for reports.
    pub fn named(&self) -> [(&'static str, u64); 9] {
        [
            ("committing", self.committing),
            ("window_full", self.window_full),
            ("iq_full", self.iq_full),
            ("regfile_exhausted", self.regfile_exhausted),
            ("checkpoint_table_full", self.checkpoint_table_full),
            ("mshr_full", self.mshr_full),
            ("memory_wait", self.memory_wait),
            ("fetch_starved", self.fetch_starved),
            ("execute_wait", self.execute_wait),
        ]
    }
}

/// The cycle-accounting observer: folds every per-cycle sample (and every
/// fast-forwarded gap) into [`CycleBuckets`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CycleAccounting {
    buckets: CycleBuckets,
}

impl CycleAccounting {
    /// Creates an empty accounting observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The buckets accumulated so far.
    pub fn buckets(&self) -> &CycleBuckets {
        &self.buckets
    }

    /// Consumes the observer, returning the final buckets.
    pub fn into_buckets(self) -> CycleBuckets {
        self.buckets
    }
}

impl Observer for CycleAccounting {
    #[inline]
    fn sample(&mut self, s: &CycleSample) {
        self.buckets.record(s.bucket, 1);
    }

    #[inline]
    fn skip(&mut self, s: &CycleSample, n: u64) {
        self.buckets.record(s.bucket, n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(bucket: CycleBucket) -> CycleSample {
        CycleSample {
            cycle: 1,
            committed: 0,
            dispatched: 0,
            inflight: 0,
            live: 0,
            live_checkpoints: 0,
            mshr_inflight: 0,
            pending_misses: 0,
            replay_window: 0,
            bucket,
        }
    }

    #[test]
    fn every_bucket_lands_in_its_own_counter_and_sums() {
        let mut acct = CycleAccounting::new();
        let all = [
            CycleBucket::Committing,
            CycleBucket::WindowFull,
            CycleBucket::IqFull,
            CycleBucket::RegfileExhausted,
            CycleBucket::CheckpointTableFull,
            CycleBucket::MshrFull,
            CycleBucket::MemoryWait,
            CycleBucket::FetchStarved,
            CycleBucket::ExecuteWait,
        ];
        for (i, &b) in all.iter().enumerate() {
            let s = sample(b);
            acct.sample(&s);
            acct.skip(&s, i as u64);
        }
        let buckets = acct.into_buckets();
        // sample + skip(i) per bucket: 1 + i cycles each.
        let expected: u64 = (0..all.len() as u64).map(|i| 1 + i).sum();
        assert_eq!(buckets.total(), expected);
        let named = buckets.named();
        assert_eq!(named.len(), all.len());
        for (i, (_, v)) in named.iter().enumerate() {
            assert_eq!(*v, 1 + i as u64);
        }
    }

    #[test]
    fn named_covers_every_field_exactly_once() {
        let b = CycleBuckets {
            committing: 1,
            window_full: 2,
            iq_full: 3,
            regfile_exhausted: 4,
            checkpoint_table_full: 5,
            mshr_full: 6,
            memory_wait: 7,
            fetch_starved: 8,
            execute_wait: 9,
        };
        assert_eq!(b.total(), 45);
        assert_eq!(b.named().iter().map(|&(_, v)| v).sum::<u64>(), 45);
    }
}
