//! Renderers for the versioned observability formats.
//!
//! Rendering runs after the simulation completes (it allocates freely, so
//! it is deliberately *not* part of the hot path):
//!
//! - `koc-ptrace/1` — a flat JSON event stream:
//!   `{"schema":"koc-ptrace/1","events":[{"cycle":..,"type":"fetch",..},..]}`.
//!   All numbers are exact integers readable back through `koc_isa::json`.
//! - Kanata text (`Kanata\t0004`) — load the file in the Konata pipeline
//!   viewer to scroll through the run stage by stage. Stages: `F` fetch/
//!   rename/dispatch cycle, `Wa` waiting in an issue queue, `Sq` parked in
//!   the SLIQ, `Ex` executing, `Cm` completed and waiting to commit.
//! - `koc-timeline/1` — interval records:
//!   `{"schema":"koc-timeline/1","interval":N,"records":[..]}`.

use crate::observer::Event;
use crate::timeline::IntervalRecord;
use crate::trace::PipelineTracer;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt::Write;

/// Schema tag of the pipeline-event JSON stream.
pub const PTRACE_SCHEMA: &str = "koc-ptrace/1";
/// Schema tag of the interval time-series JSON.
pub const TIMELINE_SCHEMA: &str = "koc-timeline/1";

/// Renders a finished time-series as versioned `koc-timeline/1` JSON.
pub fn timeline_json(interval: u64, records: &[IntervalRecord]) -> String {
    let mut out = String::with_capacity(64 + records.len() * 256);
    let _ = write!(
        out,
        "{{\"schema\":\"{TIMELINE_SCHEMA}\",\"interval\":{interval},\"records\":"
    );
    records.write_json(&mut out);
    out.push('}');
    out
}

fn write_event(out: &mut String, cycle: u64, ev: Event) {
    let _ = match ev {
        Event::Fetch { inst, kind } => write!(
            out,
            "{{\"cycle\":{cycle},\"type\":\"fetch\",\"inst\":{inst},\"kind\":\"{kind}\"}}"
        ),
        Event::Rename { inst } => {
            write!(
                out,
                "{{\"cycle\":{cycle},\"type\":\"rename\",\"inst\":{inst}}}"
            )
        }
        Event::Dispatch { inst, ckpt } => write!(
            out,
            "{{\"cycle\":{cycle},\"type\":\"dispatch\",\"inst\":{inst},\"ckpt\":{ckpt}}}"
        ),
        Event::Issue { inst } => {
            write!(
                out,
                "{{\"cycle\":{cycle},\"type\":\"issue\",\"inst\":{inst}}}"
            )
        }
        Event::Complete { inst } => {
            write!(
                out,
                "{{\"cycle\":{cycle},\"type\":\"complete\",\"inst\":{inst}}}"
            )
        }
        Event::Commit { inst } => {
            write!(
                out,
                "{{\"cycle\":{cycle},\"type\":\"commit\",\"inst\":{inst}}}"
            )
        }
        Event::Squash { inst } => {
            write!(
                out,
                "{{\"cycle\":{cycle},\"type\":\"squash\",\"inst\":{inst}}}"
            )
        }
        Event::SliqMove { inst } => {
            write!(
                out,
                "{{\"cycle\":{cycle},\"type\":\"sliq_move\",\"inst\":{inst}}}"
            )
        }
        Event::CheckpointTake { id, at } => write!(
            out,
            "{{\"cycle\":{cycle},\"type\":\"checkpoint_take\",\"id\":{id},\"at\":{at}}}"
        ),
        Event::CheckpointCommit { id, insts } => write!(
            out,
            "{{\"cycle\":{cycle},\"type\":\"checkpoint_commit\",\"id\":{id},\"insts\":{insts}}}"
        ),
        Event::CheckpointSquash { count } => write!(
            out,
            "{{\"cycle\":{cycle},\"type\":\"checkpoint_squash\",\"count\":{count}}}"
        ),
        Event::MshrAlloc { token, addr } => write!(
            out,
            "{{\"cycle\":{cycle},\"type\":\"mshr_alloc\",\"token\":{token},\"addr\":{addr}}}"
        ),
        Event::MshrFill { token } => {
            write!(
                out,
                "{{\"cycle\":{cycle},\"type\":\"mshr_fill\",\"token\":{token}}}"
            )
        }
    };
}

impl PipelineTracer {
    /// Renders the recorded stream as versioned `koc-ptrace/1` JSON.
    pub fn to_ptrace_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.len() * 64);
        let _ = write!(out, "{{\"schema\":\"{PTRACE_SCHEMA}\",\"events\":[");
        for (i, &(cycle, ev)) in self.events().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_event(&mut out, cycle, ev);
        }
        out.push_str("]}");
        out
    }

    /// Renders the recorded stream as Kanata text for the Konata pipeline
    /// viewer.
    ///
    /// Each dynamic instruction gets a fresh Kanata id; a squashed
    /// instruction is retired with flush type 1 and its re-execution (a
    /// later fetch of the same trace index) appears as a new row. Events
    /// with no per-instruction representation (checkpoint and MSHR
    /// lifecycle) are carried only by the JSON stream.
    pub fn to_kanata(&self) -> String {
        let mut out = String::with_capacity(64 + self.len() * 32);
        out.push_str("Kanata\t0004\n");
        // Trace indices repeat after rollbacks, so the active Kanata row of
        // an instruction is tracked per trace index (deterministic order:
        // BTreeMap, never a hash map).
        let mut kid_of: BTreeMap<u64, u64> = BTreeMap::new();
        let mut stage: BTreeMap<u64, &'static str> = BTreeMap::new();
        let mut next_kid = 0u64;
        let mut clock: Option<u64> = None;
        for &(cycle, ev) in self.events() {
            match clock {
                None => {
                    let _ = writeln!(out, "C=\t{cycle}");
                    clock = Some(cycle);
                }
                Some(c) if cycle > c => {
                    let _ = writeln!(out, "C\t{}", cycle - c);
                    clock = Some(cycle);
                }
                _ => {}
            }
            match ev {
                Event::Fetch { inst, kind } => {
                    let kid = next_kid;
                    next_kid += 1;
                    kid_of.insert(inst as u64, kid);
                    let _ = writeln!(out, "I\t{kid}\t{inst}\t0");
                    let _ = writeln!(out, "L\t{kid}\t0\t#{inst} {kind}");
                    let _ = writeln!(out, "S\t{kid}\t0\tF");
                    stage.insert(kid, "F");
                }
                Event::Dispatch { inst, .. } => {
                    transition(&mut out, &kid_of, &mut stage, inst, "Wa");
                }
                Event::Issue { inst } => {
                    transition(&mut out, &kid_of, &mut stage, inst, "Ex");
                }
                Event::SliqMove { inst } => {
                    transition(&mut out, &kid_of, &mut stage, inst, "Sq");
                }
                Event::Complete { inst } => {
                    transition(&mut out, &kid_of, &mut stage, inst, "Cm");
                }
                Event::Commit { inst } => {
                    retire(&mut out, &mut kid_of, &mut stage, inst, 0);
                }
                Event::Squash { inst } => {
                    retire(&mut out, &mut kid_of, &mut stage, inst, 1);
                }
                Event::Rename { .. }
                | Event::CheckpointTake { .. }
                | Event::CheckpointCommit { .. }
                | Event::CheckpointSquash { .. }
                | Event::MshrAlloc { .. }
                | Event::MshrFill { .. } => {}
            }
        }
        out
    }
}

fn transition(
    out: &mut String,
    kid_of: &BTreeMap<u64, u64>,
    stage: &mut BTreeMap<u64, &'static str>,
    inst: usize,
    next: &'static str,
) {
    if let Some(&kid) = kid_of.get(&(inst as u64)) {
        if let Some(prev) = stage.insert(kid, next) {
            let _ = writeln!(out, "E\t{kid}\t0\t{prev}");
        }
        let _ = writeln!(out, "S\t{kid}\t0\t{next}");
    }
}

fn retire(
    out: &mut String,
    kid_of: &mut BTreeMap<u64, u64>,
    stage: &mut BTreeMap<u64, &'static str>,
    inst: usize,
    flush: u32,
) {
    if let Some(kid) = kid_of.remove(&(inst as u64)) {
        if let Some(prev) = stage.remove(&kid) {
            let _ = writeln!(out, "E\t{kid}\t0\t{prev}");
        }
        let _ = writeln!(out, "R\t{kid}\t{inst}\t{flush}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::{Event, Observer};
    use koc_isa::OpKind;

    fn tiny_trace() -> PipelineTracer {
        let mut t = PipelineTracer::new();
        t.event(
            1,
            Event::Fetch {
                inst: 0,
                kind: OpKind::Load,
            },
        );
        t.event(1, Event::Rename { inst: 0 });
        t.event(1, Event::Dispatch { inst: 0, ckpt: 0 });
        t.event(2, Event::Issue { inst: 0 });
        t.event(4, Event::Complete { inst: 0 });
        t.event(5, Event::Commit { inst: 0 });
        t
    }

    #[test]
    fn ptrace_json_has_schema_and_all_events() {
        let json = tiny_trace().to_ptrace_json();
        assert!(json.starts_with("{\"schema\":\"koc-ptrace/1\",\"events\":["));
        assert!(json.contains("\"type\":\"fetch\""));
        assert!(json.contains("\"kind\":\"load\""));
        assert!(json.contains("\"type\":\"commit\""));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn kanata_lifecycle_renders_stage_by_stage() {
        let text = tiny_trace().to_kanata();
        let expected = "Kanata\t0004\n\
                        C=\t1\n\
                        I\t0\t0\t0\n\
                        L\t0\t0\t#0 load\n\
                        S\t0\t0\tF\n\
                        E\t0\t0\tF\n\
                        S\t0\t0\tWa\n\
                        C\t1\n\
                        E\t0\t0\tWa\n\
                        S\t0\t0\tEx\n\
                        C\t2\n\
                        E\t0\t0\tEx\n\
                        S\t0\t0\tCm\n\
                        C\t1\n\
                        E\t0\t0\tCm\n\
                        R\t0\t0\t0\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn squash_flushes_and_refetch_gets_a_new_row() {
        let mut t = PipelineTracer::new();
        t.event(
            1,
            Event::Fetch {
                inst: 7,
                kind: OpKind::IntAlu,
            },
        );
        t.event(3, Event::Squash { inst: 7 });
        t.event(
            6,
            Event::Fetch {
                inst: 7,
                kind: OpKind::IntAlu,
            },
        );
        let text = t.to_kanata();
        assert!(text.contains("R\t0\t7\t1\n"), "flush retire: {text}");
        assert!(text.contains("I\t1\t7\t0\n"), "re-fetch row: {text}");
    }

    #[test]
    fn timeline_json_is_versioned() {
        let recs = vec![IntervalRecord {
            start_cycle: 1,
            cycles: 4,
            ..Default::default()
        }];
        let json = timeline_json(4, &recs);
        assert!(json.starts_with("{\"schema\":\"koc-timeline/1\",\"interval\":4,\"records\":["));
        assert!(json.contains("\"start_cycle\":1"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn huge_cycle_numbers_render_exactly() {
        // Past 2^53: must stay exact (the reader side is pinned in
        // tests/observability.rs via koc_isa::json).
        let mut t = PipelineTracer::new();
        t.event(9_007_199_254_740_993, Event::Issue { inst: 1 });
        assert!(t.to_ptrace_json().contains("\"cycle\":9007199254740993"));
    }
}
