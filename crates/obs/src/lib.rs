//! Zero-perturbation observability for the out-of-order commit simulator.
//!
//! This crate defines the [`Observer`] seam — the fourth pluggable boundary
//! of the simulator, alongside `CommitEngine`, `MemoryBackend` and
//! `InstructionSource` — and three observers built on top of it:
//!
//! - [`PipelineTracer`]: records per-instruction lifecycle events (fetch,
//!   rename, dispatch, issue, complete, commit, squash, SLIQ moves,
//!   checkpoint lifecycle, MSHR allocate/fill) and renders them as a
//!   versioned `koc-ptrace/1` JSON stream or as Kanata text for the Konata
//!   pipeline viewer.
//! - [`TimelineRecorder`]: aggregates per-cycle samples into per-interval
//!   [`IntervalRecord`] deltas (IPC, occupancies, live checkpoints, MSHR
//!   occupancy, replay-window depth, stall-cause deltas), rendered as
//!   versioned `koc-timeline/1` JSON.
//! - [`CycleAccounting`]: top-down cycle accounting — every simulated cycle
//!   is attributed to exactly one [`CycleBucket`], with the hard invariant
//!   that the buckets sum to the total cycle count.
//!
//! # Zero perturbation
//!
//! The simulator threads observers through as a *generic parameter*
//! monomorphized to [`NullObserver`] by default. `NullObserver` sets
//! [`Observer::ENABLED`] to `false` and every hook is an empty `#[inline]`
//! method, so the disabled path compiles to nothing: no allocation, no
//! branches in the per-cycle loop beyond what inlines away. With any
//! observer attached, simulated cycle counts and every statistic are
//! bit-identical to the unobserved run — observers only *read* pipeline
//! state (`tests/observability.rs` pins this against the committed bench
//! baseline).
//!
//! Event-driven fast-forward is replayed exactly: when the pipeline skips a
//! provably-idle gap, it calls [`Observer::skip`] with the (constant) cycle
//! sample and the gap length, and the bundled observers expand that into the
//! same stream a cycle-by-cycle run would have produced.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accounting;
pub mod format;
pub mod observer;
pub mod timeline;
pub mod trace;

pub use accounting::{CycleAccounting, CycleBuckets};
pub use format::{timeline_json, PTRACE_SCHEMA, TIMELINE_SCHEMA};
pub use observer::{CycleBucket, CycleSample, Event, NullObserver, Observer};
pub use timeline::{IntervalRecord, TimelineRecorder};
pub use trace::PipelineTracer;
