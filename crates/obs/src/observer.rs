//! The [`Observer`] seam: lifecycle events and per-cycle samples.
//!
//! This module is on the simulator's per-cycle hot path (the pipeline calls
//! into it every stepped cycle), so nothing here allocates: events are
//! `Copy`, samples are plain structs, and the [`NullObserver`] hooks are
//! empty inline methods.

use koc_isa::{InstId, OpKind};

/// A per-instruction (or per-structure) pipeline lifecycle event.
///
/// Instruction identifiers are the trace indices the simulator itself uses
/// (`koc_isa::InstId`); an instruction re-executed after a checkpoint
/// rollback appears again with the same id, preceded by a [`Event::Squash`].
/// Checkpoint ids and memory tokens are widened to `u64` so the event model
/// stays independent of the engine's internal types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// An instruction was read out of the replay window by the front end.
    Fetch {
        /// Trace index of the instruction.
        inst: InstId,
        /// Operation class (for labels in rendered traces).
        kind: OpKind,
    },
    /// The instruction's registers were renamed.
    Rename {
        /// Trace index of the instruction.
        inst: InstId,
    },
    /// The instruction was dispatched into the issue queues.
    Dispatch {
        /// Trace index of the instruction.
        inst: InstId,
        /// Checkpoint (or ROB band) the instruction was charged to.
        ckpt: u64,
    },
    /// The instruction was selected for execution.
    Issue {
        /// Trace index of the instruction.
        inst: InstId,
    },
    /// The instruction finished execution (write-back).
    Complete {
        /// Trace index of the instruction.
        inst: InstId,
    },
    /// The instruction was committed (architecturally retired).
    Commit {
        /// Trace index of the instruction.
        inst: InstId,
    },
    /// The instruction was squashed (misprediction or rollback) and will
    /// re-enter the pipeline if the front end re-fetches it.
    Squash {
        /// Trace index of the instruction.
        inst: InstId,
    },
    /// A long-latency-dependent instruction was moved out of the issue
    /// queue into the SLIQ (slow-lane instruction queue).
    SliqMove {
        /// Trace index of the instruction.
        inst: InstId,
    },
    /// The checkpointed engine took a checkpoint.
    CheckpointTake {
        /// Checkpoint-table id.
        id: u64,
        /// Trace index of the first instruction covered.
        at: InstId,
    },
    /// The oldest checkpoint committed, retiring its instructions in bulk.
    CheckpointCommit {
        /// Checkpoint-table id.
        id: u64,
        /// Number of instructions retired with it.
        insts: u64,
    },
    /// Checkpoints younger than a recovery point were squashed.
    CheckpointSquash {
        /// How many checkpoints were dropped.
        count: u64,
    },
    /// The memory backend accepted a demand miss into its MSHR-like
    /// in-flight tracking.
    MshrAlloc {
        /// Request token (the instruction's sequence number).
        token: u64,
        /// Requested address.
        addr: u64,
    },
    /// A demand miss completed and its data returned to the pipeline.
    MshrFill {
        /// Request token (the instruction's sequence number).
        token: u64,
    },
}

/// The top-down cycle-accounting bucket a cycle is attributed to.
///
/// Every simulated cycle lands in *exactly one* bucket; the classification
/// is a fixed priority order evaluated from the commit stage outward (see
/// the pipeline's per-cycle classifier). [`CycleBuckets`] totals therefore
/// sum exactly to `SimStats::cycles`.
///
/// [`CycleBuckets`]: crate::accounting::CycleBuckets
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleBucket {
    /// At least one instruction committed this cycle.
    Committing,
    /// Dispatch stalled because the ROB / pseudo-ROB window was full.
    WindowFull,
    /// Dispatch stalled because an instruction or load/store queue was full.
    IqFull,
    /// Dispatch stalled because the rename register pool was exhausted.
    RegfileExhausted,
    /// Dispatch stalled because the checkpoint table could not cover a new
    /// instruction (checkpointed engine only).
    CheckpointTableFull,
    /// No commit or dispatch stall, but demand misses are queued waiting
    /// for an MSHR slot in the memory backend.
    MshrFull,
    /// No commit, no dispatch stall, no MSHR pressure, but outstanding
    /// memory requests are in flight — the window is waiting on memory.
    MemoryWait,
    /// The front end had nothing to dispatch: redirect penalty after a
    /// misprediction/exception, or the trace ran out while the window
    /// drains.
    FetchStarved,
    /// None of the above: in-flight instructions are waiting on execution
    /// latencies or operand dependences (including pipeline ramp-up).
    ExecuteWait,
}

/// A snapshot of pipeline state for one simulated cycle.
///
/// `committed` and `dispatched` are *cumulative* end-of-run-style counters
/// (the same values `SimStats` reports); interval observers difference them.
/// Occupancies are instantaneous at the end of the cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleSample {
    /// The cycle this sample describes (first cycle of the gap for
    /// [`Observer::skip`]).
    pub cycle: u64,
    /// Cumulative committed instructions.
    pub committed: u64,
    /// Cumulative dispatched instructions.
    pub dispatched: u64,
    /// In-flight (dispatched, not yet retired-and-released) instructions.
    pub inflight: usize,
    /// Live instructions in the paper's sense (dispatched, not executed).
    pub live: usize,
    /// Live checkpoints in the checkpoint table (0 for the ROB engine).
    pub live_checkpoints: usize,
    /// Outstanding requests inside the memory backend (MSHR occupancy).
    pub mshr_inflight: usize,
    /// Demand misses queued because the backend refused admission.
    pub pending_misses: usize,
    /// Replay-window occupancy (streamed ingestion's fetch buffer depth).
    pub replay_window: usize,
    /// The cycle-accounting bucket this cycle was attributed to.
    pub bucket: CycleBucket,
}

/// The observer seam threaded through the pipeline as a generic parameter.
///
/// The pipeline guards every hook behind `if O::ENABLED { ... }`, so with
/// [`NullObserver`] (the default) the calls — and the construction of their
/// arguments — compile to nothing. Implementations must not influence
/// simulation: hooks take `&mut self` but only receive read-only views of
/// pipeline state.
pub trait Observer {
    /// Whether the pipeline should construct samples/events at all. The
    /// pipeline reads this as a compile-time constant.
    const ENABLED: bool = true;

    /// A lifecycle event at the given cycle. Events within one cycle are
    /// delivered in pipeline-stage order (deterministic across runs).
    fn event(&mut self, cycle: u64, ev: Event) {
        let _ = (cycle, ev);
    }

    /// Exactly one sample per stepped cycle, after all stages ran.
    fn sample(&mut self, s: &CycleSample) {
        let _ = s;
    }

    /// A fast-forwarded idle gap: `n` consecutive cycles starting at
    /// `s.cycle` during which the pipeline state was provably constant.
    /// Implementations must expand this to the exact stream `n` calls to
    /// [`Observer::sample`] would have produced (`s.cycle` advancing by one
    /// each) so fast-forward stays bit-identical.
    fn skip(&mut self, s: &CycleSample, n: u64) {
        let _ = (s, n);
    }
}

/// The default no-op observer: every hook is empty and `ENABLED` is false,
/// so observation costs nothing when not requested.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NullObserver;

impl Observer for NullObserver {
    const ENABLED: bool = false;

    #[inline(always)]
    fn event(&mut self, _cycle: u64, _ev: Event) {}

    #[inline(always)]
    fn sample(&mut self, _s: &CycleSample) {}

    #[inline(always)]
    fn skip(&mut self, _s: &CycleSample, _n: u64) {}
}

/// Observers compose as pairs: `(A, B)` fans every hook out to both, so a
/// single run can, e.g., record a timeline and cycle accounting at once.
impl<A: Observer, B: Observer> Observer for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline]
    fn event(&mut self, cycle: u64, ev: Event) {
        self.0.event(cycle, ev);
        self.1.event(cycle, ev);
    }

    #[inline]
    fn sample(&mut self, s: &CycleSample) {
        self.0.sample(s);
        self.1.sample(s);
    }

    #[inline]
    fn skip(&mut self, s: &CycleSample, n: u64) {
        self.0.skip(s, n);
        self.1.skip(s, n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_observer_is_disabled_and_inert() {
        const { assert!(!NullObserver::ENABLED) }
        let mut o = NullObserver;
        o.event(1, Event::Commit { inst: 0 });
        let s = CycleSample {
            cycle: 1,
            committed: 0,
            dispatched: 0,
            inflight: 0,
            live: 0,
            live_checkpoints: 0,
            mshr_inflight: 0,
            pending_misses: 0,
            replay_window: 0,
            bucket: CycleBucket::ExecuteWait,
        };
        o.sample(&s);
        o.skip(&s, 10);
        assert_eq!(o, NullObserver);
    }

    #[test]
    fn pair_composition_enables_if_either_side_does() {
        const { assert!(!<(NullObserver, NullObserver) as Observer>::ENABLED) }
        struct On;
        impl Observer for On {}
        const { assert!(<(NullObserver, On) as Observer>::ENABLED) }
        const { assert!(<(On, NullObserver) as Observer>::ENABLED) }
    }
}
