//! The pipeline event tracer: records the raw lifecycle-event stream.

use crate::observer::{Event, Observer};

/// Records every [`Event`] with its cycle, in delivery order. Rendering
/// (JSON, Kanata) lives in [`crate::format`] and runs after the simulation,
/// so the hot path only appends a `Copy` record to a vector.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PipelineTracer {
    events: Vec<(u64, Event)>,
}

impl PipelineTracer {
    /// Creates an empty tracer.
    pub fn new() -> Self {
        PipelineTracer {
            events: Vec::with_capacity(1024),
        }
    }

    /// The recorded `(cycle, event)` stream, in delivery order.
    pub fn events(&self) -> &[(u64, Event)] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl Observer for PipelineTracer {
    #[inline]
    fn event(&mut self, cycle: u64, ev: Event) {
        self.events.push((cycle, ev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_events_in_order() {
        let mut t = PipelineTracer::new();
        assert!(t.is_empty());
        t.event(
            3,
            Event::Fetch {
                inst: 0,
                kind: koc_isa::OpKind::Load,
            },
        );
        t.event(3, Event::Dispatch { inst: 0, ckpt: 0 });
        t.event(5, Event::Issue { inst: 0 });
        assert_eq!(t.len(), 3);
        assert_eq!(t.events()[2], (5, Event::Issue { inst: 0 }));
    }
}
