//! Property tests: the `koc-serve/1` request parser never panics, no
//! matter how random, truncated, or hostile the byte stream is — and a
//! live server answers every such line with a structured error and keeps
//! serving (the graceful-degradation pattern from koc-lint's
//! `parser_fuzz.rs`, applied to the wire).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use koc_serve::clock::Duration;
use koc_serve::fault::FaultPlan;
use koc_serve::protocol::{parse_request, parse_response, Request, Response};
use koc_serve::server::{serve, ServerConfig};
use proptest::prelude::*;

/// Fragments chosen to hit the parser's decision points: schema and op
/// tokens, JSON punctuation that never balances, deep nesting openers,
/// numbers at type boundaries, and raw control bytes.
const FRAGMENTS: &[&str] = &[
    "{",
    "}",
    "[",
    "]",
    ":",
    ",",
    "\"",
    "\\",
    "\"schema\"",
    "\"koc-serve/1\"",
    "\"koc-serve/2\"",
    "\"op\"",
    "\"submit\"",
    "\"ping\"",
    "\"job\"",
    "\"engine\"",
    "\"trace_len\"",
    "\"cycle_budget\"",
    "null",
    "true",
    "false",
    "-1",
    "0",
    "18446744073709551615",
    "1e308",
    "1e999",
    "0.5",
    "\\u0000",
    "\\uFFFF",
    "\u{7f}",
    "é",
    " ",
]; // koc-serve/1 wire soup

fn soup() -> impl Strategy<Value = String> {
    proptest::collection::vec(0..FRAGMENTS.len(), 0..80).prop_map(|picks| {
        let mut s = String::new();
        for p in picks {
            s.push_str(FRAGMENTS[p]);
        }
        s
    })
}

/// A valid request line, randomly truncated somewhere inside.
fn truncated_request() -> impl Strategy<Value = String> {
    (any::<u16>(), 0usize..200).prop_map(|(seed, cut)| {
        let spec = koc_serve::protocol::JobSpec {
            trace_len: seed as usize + 1,
            progress: seed % 2 == 0,
            ..koc_serve::protocol::JobSpec::default()
        };
        let line = Request::Submit(spec).encode();
        let cut = cut.min(line.len().saturating_sub(1));
        line.chars().take(cut).collect()
    })
}

proptest! {
    #[test]
    fn parse_request_never_panics_on_soup(line in soup()) {
        // Ok or Err are both acceptable; a panic or abort is not.
        let _ = parse_request(&line);
    }

    #[test]
    fn parse_request_never_panics_on_truncations(line in truncated_request()) {
        prop_assert!(parse_request(&line).is_err(), "a truncated line must not parse");
    }

    #[test]
    fn parse_response_never_panics_on_soup(line in soup()) {
        let _ = parse_response(&line);
    }
}

/// One live server is enough for the wire-level property: hostile lines
/// get structured errors and the connection (and server) survive.
#[test]
fn live_server_answers_soup_with_structured_errors_and_stays_up() {
    let dir = std::env::temp_dir().join(format!("koc-serve-fuzz-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = serve(
        "127.0.0.1:0",
        &dir,
        ServerConfig::default(),
        FaultPlan::default(),
    )
    .expect("bind loopback");
    let stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(10_000)))
        .expect("read timeout");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    // Deterministic soup (seeded walk over the fragment list): every line
    // must draw exactly one structured response, never a hang or a crash.
    let mut pick = 0x9E37u64;
    for round in 0..64 {
        let mut line = String::new();
        for _ in 0..(round % 13) {
            pick = pick
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let fragment = FRAGMENTS[(pick >> 33) as usize % FRAGMENTS.len()];
            if !fragment.contains('\n') {
                line.push_str(fragment);
            }
        }
        writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("write soup");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("a reply per line");
        match parse_response(reply.trim_end()) {
            Ok(Response::Error { .. }) => {}
            Ok(other) => {
                // An all-whitespace or accidentally valid line may draw a
                // non-error reply; anything parseable is fine.
                let _ = other;
            }
            Err(e) => panic!("server emitted an unparseable reply {reply:?}: {e}"),
        }
    }
    // After 64 rounds of abuse the same connection still works.
    writer
        .write_all(format!("{}\n", Request::Ping.encode()).as_bytes())
        .expect("ping");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("pong line");
    assert!(matches!(
        parse_response(reply.trim_end()),
        Ok(Response::Pong)
    ));
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
