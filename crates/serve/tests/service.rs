//! End-to-end fault-injection matrix for `koc-serve`.
//!
//! Each test stands up a real server on a loopback port, injects one
//! fault class through a deterministic `FaultPlan`, and proves graceful
//! degradation: a structured error or shed, the next request succeeding,
//! and never a wrong or partial simulation result.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;

use koc_serve::clock::{sleep_ms, Duration};
use koc_serve::fault::{FaultPlan, FaultSet};
use koc_serve::protocol::{ErrorKind, JobSpec, Request, Response};
use koc_serve::server::{serve, ServerConfig, ServerHandle};
use koc_serve::{Client, ClientError, RetryPolicy};
use koc_sim::Processor;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("koc-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(tag: &str, config: ServerConfig, plan: FaultPlan) -> (ServerHandle, Client, PathBuf) {
    let dir = temp_dir(tag);
    let handle = serve("127.0.0.1:0", &dir, config, plan).expect("bind loopback");
    let client = Client::new(handle.local_addr().to_string(), RetryPolicy::default());
    (handle, client, dir)
}

fn quick_job(engine: &str, workload: &str) -> JobSpec {
    JobSpec {
        engine: engine.to_string(),
        workload: workload.to_string(),
        trace_len: 4_000,
        memory_latency: 100,
        ..JobSpec::default()
    }
}

/// A job that runs long enough (in debug builds too) to be cancelled or
/// timed out while in flight.
fn long_job() -> JobSpec {
    JobSpec {
        engine: "cooo".to_string(),
        workload: "pointer_chase".to_string(),
        trace_len: 120_000,
        memory_latency: 1_000,
        ..JobSpec::default()
    }
}

/// What the simulator itself says this job's outcome is (ground truth for
/// wrong-result checks).
fn solo_truth(spec: &JobSpec) -> (u64, u64) {
    let config = spec.processor_config().expect("valid config");
    let wspec = spec.workload_spec().expect("valid workload");
    let stats = Processor::new(config, wspec.source()).run_capped(spec.cycle_budget);
    (stats.cycles, stats.committed_instructions)
}

/// Opens a raw protocol connection (no client-side retry or parsing
/// conveniences — for driving the wire format directly).
fn raw_conn(handle: &ServerHandle) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(10_000)))
        .expect("read timeout");
    let writer = stream.try_clone().expect("clone");
    (BufReader::new(stream), writer)
}

fn send_raw(writer: &mut TcpStream, line: &str) {
    writer
        .write_all(format!("{line}\n").as_bytes())
        .expect("write line");
}

fn read_response(reader: &mut BufReader<TcpStream>) -> Response {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read line");
    koc_serve::protocol::parse_response(line.trim_end()).expect("parseable response")
}

#[test]
fn identical_batch_replay_hits_the_cache_with_bit_identical_results() {
    let (handle, client, dir) = start("replay", ServerConfig::default(), FaultPlan::default());
    let jobs: Vec<JobSpec> = [
        ("baseline", "stream_add"),
        ("cooo", "stream_add"),
        ("baseline", "gather"),
        ("cooo", "gather"),
    ]
    .iter()
    .map(|(e, w)| quick_job(e, w))
    .collect();
    let first: Vec<_> = jobs
        .iter()
        .map(|j| client.submit(j).expect("first round"))
        .collect();
    assert!(first.iter().all(|s| !s.cache_hit), "cold cache");
    let second: Vec<_> = jobs
        .iter()
        .map(|j| client.submit(j).expect("second round"))
        .collect();
    assert!(second.iter().all(|s| s.cache_hit), "warm cache");
    for ((job, a), b) in jobs.iter().zip(&first).zip(&second) {
        assert_eq!(a.result, b.result, "replay must not change results");
        let (cycles, committed) = solo_truth(job);
        assert_eq!(a.result.cycles, cycles, "served result matches simulator");
        assert_eq!(a.result.committed, committed);
    }
    let stats = client.server_stats().expect("stats");
    assert_eq!(stats.cache_hits, jobs.len() as u64);
    assert_eq!(stats.cache_misses, jobs.len() as u64);
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_cache_write_is_quarantined_and_recomputed_never_served() {
    let plan = FaultPlan {
        torn_cache_write: FaultSet::at(&[0]),
        ..FaultPlan::default()
    };
    let (handle, client, dir) = start("torn", ServerConfig::default(), plan);
    let job = quick_job("cooo", "stream_add");
    let (cycles, committed) = solo_truth(&job);
    // First run computes and stores a *torn* entry.
    let a = client.submit(&job).expect("first run");
    assert_eq!(a.result.cycles, cycles, "the response itself is whole");
    // Second run detects the damage, quarantines, recomputes — a correct
    // result, not a hit, never garbage.
    let b = client.submit(&job).expect("second run");
    assert!(!b.cache_hit, "torn entry must not hit");
    assert_eq!(b.result.cycles, cycles);
    assert_eq!(b.result.committed, committed);
    // Third run hits the re-stored clean entry.
    let c = client.submit(&job).expect("third run");
    assert!(c.cache_hit);
    assert_eq!(c.result, b.result);
    let stats = client.server_stats().expect("stats");
    assert_eq!(stats.cache_quarantined, 1);
    assert!(
        std::fs::read_dir(&dir).expect("cache dir").any(|e| e
            .expect("entry")
            .path()
            .to_string_lossy()
            .contains("quarantined")),
        "quarantined entry kept on disk for post-mortem"
    );
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hand_corrupted_cache_entry_is_never_served() {
    let (handle, client, dir) = start("corrupt", ServerConfig::default(), FaultPlan::default());
    let job = quick_job("baseline", "reduction");
    let truth = client.submit(&job).expect("compute").result;
    // Corrupt the stored counters on disk behind the server's back.
    let entry = std::fs::read_dir(&dir)
        .expect("cache dir")
        .map(|e| e.expect("entry").path())
        .find(|p| p.extension().is_some_and(|x| x == "json"))
        .expect("one cache entry");
    let text = std::fs::read_to_string(&entry).expect("read entry");
    std::fs::write(&entry, text.replace(&truth.cycles.to_string(), "1")).expect("corrupt");
    let again = client.submit(&job).expect("recompute");
    assert!(!again.cache_hit, "corrupt entry must not be served");
    assert_eq!(again.result, truth, "recomputed, not patched");
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn worker_panic_poisons_the_job_not_the_server() {
    let plan = FaultPlan {
        worker_panic: FaultSet::at(&[0]),
        ..FaultPlan::default()
    };
    let (handle, client, dir) = start("panic", ServerConfig::default(), plan);
    let job = quick_job("cooo", "stencil27");
    match client.submit(&job) {
        Err(ClientError::Rejected {
            kind: ErrorKind::WorkerPanic,
            ..
        }) => {}
        other => panic!("expected a structured worker-panic error, got {other:?}"),
    }
    // The very next request succeeds on the same server.
    let ok = client.submit(&job).expect("server kept serving");
    let (cycles, _) = solo_truth(&job);
    assert_eq!(ok.result.cycles, cycles);
    let stats = client.server_stats().expect("stats");
    assert_eq!(stats.worker_panics, 1);
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn queue_overflow_sheds_with_a_retry_hint_and_recovers() {
    let config = ServerConfig {
        workers: 1,
        queue_depth: 1,
        retry_after_ms: 50,
        ..ServerConfig::default()
    };
    let plan = FaultPlan {
        stall_worker: FaultSet::at(&[0]),
        stall_ms: 900,
        ..FaultPlan::default()
    };
    let (handle, client, dir) = start("overflow", config, plan);
    // Wedge the only worker, then fill the 1-deep queue.
    let stalled = std::thread::spawn({
        let client = client.clone();
        move || client.submit(&quick_job("cooo", "stream_add"))
    });
    sleep_ms(250); // let the worker claim the stalled job
    let (mut r2, mut w2) = raw_conn(&handle);
    send_raw(
        &mut w2,
        &Request::Submit(quick_job("baseline", "gather")).encode(),
    );
    sleep_ms(100); // ensure it is queued before the overflow probe
    let (mut r3, mut w3) = raw_conn(&handle);
    send_raw(
        &mut w3,
        &Request::Submit(quick_job("cooo", "gather")).encode(),
    );
    match read_response(&mut r3) {
        Response::Error {
            kind: ErrorKind::Overloaded,
            retry_after_ms,
            ..
        } => assert_eq!(retry_after_ms, Some(50), "shed carries the hint"),
        other => panic!("expected load shedding, got {other:?}"),
    }
    // Both in-flight jobs complete, and the retrying client gets through
    // once the stall clears.
    assert!(matches!(read_response(&mut r2), Response::Done { .. }));
    stalled
        .join()
        .expect("thread")
        .expect("stalled job finishes");
    let retried = Client::new(
        handle.local_addr().to_string(),
        RetryPolicy {
            max_attempts: 8,
            base_backoff_ms: 100,
            ..RetryPolicy::default()
        },
    );
    let sub = retried
        .submit(&quick_job("cooo", "gather"))
        .expect("backoff rides out the overload");
    assert!(sub.result.cycles > 0);
    let stats = client.server_stats().expect("stats");
    assert!(stats.shed >= 1, "shedding was counted");
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stalled_client_cannot_wedge_the_server() {
    let config = ServerConfig {
        workers: 1,
        read_timeout_ms: 300,
        ..ServerConfig::default()
    };
    let (handle, client, dir) = start("stalled", config, FaultPlan::default());
    // A client that connects and never sends (or reads) anything.
    let (mut stalled_reader, _stalled_writer) = raw_conn(&handle);
    // The single worker still serves everyone else promptly.
    for _ in 0..3 {
        client.ping().expect("server responsive");
    }
    let sub = client
        .submit(&quick_job("baseline", "stream_add"))
        .expect("jobs still run");
    assert!(sub.result.cycles > 0);
    // The stalled connection is closed on its idle deadline with a
    // structured timeout, not held open forever.
    let mut line = String::new();
    stalled_reader.read_line(&mut line).expect("deadline line");
    match koc_serve::protocol::parse_response(line.trim_end()) {
        Ok(Response::Error {
            kind: ErrorKind::Timeout,
            ..
        }) => {}
        other => panic!("expected idle-timeout close, got {other:?}"),
    }
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deadlines_time_out_with_a_structured_error() {
    let config = ServerConfig {
        slice_cycles: 2_000,
        ..ServerConfig::default()
    };
    let (handle, client, dir) = start("deadline", config, FaultPlan::default());
    let job = JobSpec {
        deadline_ms: Some(1),
        ..long_job()
    };
    match client.submit(&job) {
        Err(ClientError::Rejected {
            kind: ErrorKind::Timeout,
            ..
        }) => {}
        other => panic!("expected a timeout, got {other:?}"),
    }
    // The server moves on to the next job untroubled.
    let ok = client
        .submit(&quick_job("cooo", "stream_add"))
        .expect("next job");
    assert!(ok.result.cycles > 0);
    let stats = client.server_stats().expect("stats");
    assert_eq!(stats.timeouts, 1);
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clock_skew_expires_generous_deadlines() {
    let plan = FaultPlan {
        clock_skew_ms: 3_600_000, // the worker's clock runs an hour fast
        ..FaultPlan::default()
    };
    let (handle, client, dir) = start("skew", ServerConfig::default(), plan);
    let job = JobSpec {
        deadline_ms: Some(60_000), // generous, but not against an hour of skew
        ..quick_job("cooo", "stream_add")
    };
    match client.submit(&job) {
        Err(ClientError::Rejected {
            kind: ErrorKind::Timeout,
            ..
        }) => {}
        other => panic!("expected a skew-forced timeout, got {other:?}"),
    }
    // Jobs without deadlines are untouched by skew.
    let ok = client
        .submit(&quick_job("cooo", "stream_add"))
        .expect("no deadline");
    assert!(ok.result.cycles > 0);
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancellation_stops_a_running_job_cooperatively() {
    let config = ServerConfig {
        slice_cycles: 2_000,
        ..ServerConfig::default()
    };
    let (handle, client, dir) = start("cancel", config, FaultPlan::default());
    let (mut reader, mut writer) = raw_conn(&handle);
    let job = JobSpec {
        progress: true,
        ..long_job()
    };
    send_raw(&mut writer, &Request::Submit(job).encode());
    // Wait for proof the job is actually running, then cancel it.
    match read_response(&mut reader) {
        Response::Progress { .. } => {}
        other => panic!("expected a progress heartbeat, got {other:?}"),
    }
    send_raw(&mut writer, &Request::Cancel.encode());
    loop {
        match read_response(&mut reader) {
            Response::Progress { .. } => continue,
            Response::Error {
                kind: ErrorKind::Cancelled,
                ..
            } => break,
            other => panic!("expected cancellation, got {other:?}"),
        }
    }
    // Same connection is still usable, and the server still serves.
    send_raw(&mut writer, &Request::Ping.encode());
    assert!(matches!(read_response(&mut reader), Response::Pong));
    let ok = client
        .submit(&quick_job("baseline", "stream_add"))
        .expect("next job");
    assert!(ok.result.cycles > 0);
    let stats = client.server_stats().expect("stats");
    assert_eq!(stats.cancelled, 1);
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_lines_get_structured_errors_and_the_connection_survives() {
    let (handle, _client, dir) = start("parse", ServerConfig::default(), FaultPlan::default());
    let (mut reader, mut writer) = raw_conn(&handle);
    for hostile in [
        "not json at all",
        "{\"schema\":\"koc-serve/2\",\"op\":\"ping\"}",
        "{\"schema\":\"koc-serve/1\",\"op\":\"nonsense\"}",
        "{\"schema\":\"koc-serve/1\",\"op\":\"submit\",\"job\":{\"engine\":7}}",
        "{\"truncated\":",
    ] {
        send_raw(&mut writer, hostile);
        match read_response(&mut reader) {
            Response::Error { kind, .. } => assert!(
                matches!(kind, ErrorKind::Parse | ErrorKind::BadRequest),
                "hostile line classified as {kind:?}"
            ),
            other => panic!("expected a structured error, got {other:?}"),
        }
    }
    // Same connection, next valid request works.
    send_raw(&mut writer, &Request::Ping.encode());
    assert!(matches!(read_response(&mut reader), Response::Pong));
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_response_writes_are_retried_by_the_client() {
    let plan = FaultPlan {
        short_response_write: FaultSet::at(&[0]),
        ..FaultPlan::default()
    };
    let (handle, client, dir) = start("shortwrite", ServerConfig::default(), plan);
    let job = quick_job("cooo", "dense_blocked");
    let sub = client.submit(&job).expect("retry rides out the torn line");
    assert!(sub.attempts >= 2, "first response line was torn");
    let (cycles, _) = solo_truth(&job);
    assert_eq!(sub.result.cycles, cycles, "retried result is still exact");
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compatible_queued_jobs_batch_into_lockstep_with_identical_results() {
    let config = ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    };
    let plan = FaultPlan {
        stall_worker: FaultSet::at(&[0]),
        stall_ms: 700,
        ..FaultPlan::default()
    };
    let (handle, client, dir) = start("batch", config, plan);
    // Wedge the worker so the compatible jobs pile up behind it.
    let decoy = std::thread::spawn({
        let client = client.clone();
        move || client.submit(&quick_job("cooo", "reduction"))
    });
    sleep_ms(200);
    let specs: Vec<JobSpec> = [128usize, 64, 32]
        .iter()
        .map(|&window| JobSpec {
            window,
            ..quick_job("cooo", "stream_add")
        })
        .collect();
    let joins: Vec<_> = specs
        .iter()
        .map(|spec| {
            let client = client.clone();
            let spec = spec.clone();
            std::thread::spawn(move || client.submit(&spec))
        })
        .collect();
    let submissions: Vec<_> = joins
        .into_iter()
        .map(|j| j.join().expect("thread").expect("submission"))
        .collect();
    decoy.join().expect("thread").expect("decoy job");
    for (spec, sub) in specs.iter().zip(&submissions) {
        let (cycles, committed) = solo_truth(spec);
        assert_eq!(sub.result.cycles, cycles, "lockstep lane == solo run");
        assert_eq!(sub.result.committed, committed);
    }
    let stats = client.server_stats().expect("stats");
    assert!(stats.batches >= 1, "a lockstep batch formed");
    assert!(stats.batched_lanes >= 2, "it carried multiple lanes");
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cycle_budgets_cap_served_jobs_exactly_like_run_capped() {
    let (handle, client, dir) = start("budget", ServerConfig::default(), FaultPlan::default());
    let job = JobSpec {
        cycle_budget: Some(300),
        ..quick_job("cooo", "stream_add")
    };
    let sub = client.submit(&job).expect("capped job");
    assert!(sub.result.budget_exhausted, "budget reported");
    let (cycles, committed) = solo_truth(&job);
    assert_eq!(sub.result.cycles, cycles, "sliced == run_capped");
    assert_eq!(sub.result.committed, committed);
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_is_acknowledged_and_the_listener_stops() {
    let (handle, client, dir) = start("shutdown", ServerConfig::default(), FaultPlan::default());
    client.shutdown_server().expect("ack");
    handle.wait();
    // The listener is gone: pings now fail at the transport level.
    sleep_ms(50);
    assert!(client.ping().is_err());
    let _ = std::fs::remove_dir_all(&dir);
}
