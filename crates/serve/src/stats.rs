//! Service-level counters and the `koc-bench` reportable snapshot.

use std::sync::Mutex;

use koc_isa::json::Json;
use serde::Serialize;

/// A point-in-time snapshot of the server's operational counters — the
/// serve-mode analogue of `SimStats`, rendered by `koc-bench`'s serve
/// report rows and shipped over the wire for the `stats` op.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct ServeStats {
    /// Complete request lines received (including unparseable ones).
    pub requests: u64,
    /// Jobs answered with a simulation result.
    pub ok: u64,
    /// Request lines rejected as malformed `koc-serve/1`.
    pub parse_errors: u64,
    /// Well-formed requests rejected as impossible (unknown engine, ...).
    pub bad_requests: u64,
    /// Jobs rejected by load shedding (bounded queue full).
    pub shed: u64,
    /// Jobs served straight from the result cache.
    pub cache_hits: u64,
    /// Jobs that missed the cache and were computed.
    pub cache_misses: u64,
    /// Corrupt/torn cache entries detected, quarantined, and recomputed.
    pub cache_quarantined: u64,
    /// Jobs abandoned on their wall-clock deadline.
    pub timeouts: u64,
    /// Jobs cooperatively cancelled.
    pub cancelled: u64,
    /// Worker panics isolated (each poisons its batch, never the server).
    pub worker_panics: u64,
    /// Lockstep batches executed (2+ lanes).
    pub batches: u64,
    /// Total lanes that rode in lockstep batches.
    pub batched_lanes: u64,
    /// Wall-clock ms since the server started.
    pub wall_ms: u64,
    /// Request lines per wall-clock second.
    pub requests_per_sec: f64,
    /// Median job latency (submit to response), ms.
    pub p50_ms: f64,
    /// 99th-percentile job latency, ms.
    pub p99_ms: f64,
}

impl ServeStats {
    /// Decodes a snapshot from its wire JSON (missing counters read 0, so
    /// the reader tolerates older servers).
    ///
    /// # Errors
    /// Returns a description of a structurally broken document.
    pub fn from_json(v: &Json) -> Result<ServeStats, String> {
        if !matches!(v, Json::Obj(_)) {
            return Err("stats must be an object".to_string());
        }
        let n = |key: &str| v.get(key).and_then(Json::as_u64).unwrap_or(0);
        let f = |key: &str| v.get(key).and_then(Json::as_f64).unwrap_or(0.0);
        Ok(ServeStats {
            requests: n("requests"),
            ok: n("ok"),
            parse_errors: n("parse_errors"),
            bad_requests: n("bad_requests"),
            shed: n("shed"),
            cache_hits: n("cache_hits"),
            cache_misses: n("cache_misses"),
            cache_quarantined: n("cache_quarantined"),
            timeouts: n("timeouts"),
            cancelled: n("cancelled"),
            worker_panics: n("worker_panics"),
            batches: n("batches"),
            batched_lanes: n("batched_lanes"),
            wall_ms: n("wall_ms"),
            requests_per_sec: f("requests_per_sec"),
            p50_ms: f("p50_ms"),
            p99_ms: f("p99_ms"),
        })
    }
}

/// Internal mutable counters behind one lock (all touches are off the
/// simulation path; contention is per-request, not per-cycle).
#[derive(Debug, Default)]
struct RecorderInner {
    stats: ServeStats,
    latencies_ms: Vec<u64>,
}

/// Thread-safe accumulator the server threads record into.
#[derive(Debug, Default)]
pub struct StatsRecorder {
    inner: Mutex<RecorderInner>,
}

/// The counters a recorder can bump by one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// A request line arrived.
    Request,
    /// A job was answered with a result.
    Ok,
    /// A malformed request line.
    ParseError,
    /// An impossible request.
    BadRequest,
    /// A job was load-shed.
    Shed,
    /// A cache hit.
    CacheHit,
    /// A cache miss.
    CacheMiss,
    /// A quarantined cache entry.
    CacheQuarantined,
    /// A deadline timeout.
    Timeout,
    /// A cancellation.
    Cancelled,
    /// An isolated worker panic.
    WorkerPanic,
}

impl StatsRecorder {
    /// Bumps one counter.
    pub fn bump(&self, which: Counter) {
        let mut inner = self.guard();
        let s = &mut inner.stats;
        *match which {
            Counter::Request => &mut s.requests,
            Counter::Ok => &mut s.ok,
            Counter::ParseError => &mut s.parse_errors,
            Counter::BadRequest => &mut s.bad_requests,
            Counter::Shed => &mut s.shed,
            Counter::CacheHit => &mut s.cache_hits,
            Counter::CacheMiss => &mut s.cache_misses,
            Counter::CacheQuarantined => &mut s.cache_quarantined,
            Counter::Timeout => &mut s.timeouts,
            Counter::Cancelled => &mut s.cancelled,
            Counter::WorkerPanic => &mut s.worker_panics,
        } += 1;
    }

    /// Records a lockstep batch of `lanes` jobs.
    pub fn record_batch(&self, lanes: u64) {
        let mut inner = self.guard();
        inner.stats.batches += 1;
        inner.stats.batched_lanes += lanes;
    }

    /// Records one completed job's submit-to-response latency.
    pub fn record_latency_ms(&self, ms: u64) {
        self.guard().latencies_ms.push(ms);
    }

    /// A consistent snapshot with derived rates at `wall_ms` since start.
    pub fn snapshot(&self, wall_ms: u64) -> ServeStats {
        let inner = self.guard();
        let mut stats = inner.stats.clone();
        stats.wall_ms = wall_ms;
        stats.requests_per_sec = if wall_ms == 0 {
            0.0
        } else {
            stats.requests as f64 * 1_000.0 / wall_ms as f64
        };
        let mut sorted = inner.latencies_ms.clone();
        sorted.sort_unstable();
        stats.p50_ms = percentile(&sorted, 50) as f64;
        stats.p99_ms = percentile(&sorted, 99) as f64;
        stats
    }

    fn guard(&self) -> std::sync::MutexGuard<'_, RecorderInner> {
        // A poisoned stats lock means a recorder thread already panicked
        // while holding it; counters are plain integers, so propagating is
        // strictly worse than the poison itself.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (0 when empty).
fn percentile(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as u64 * pct).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_computes_rates_and_percentiles() {
        let rec = StatsRecorder::default();
        for _ in 0..10 {
            rec.bump(Counter::Request);
        }
        rec.bump(Counter::Ok);
        rec.record_batch(3);
        for ms in [1, 2, 3, 4, 5, 6, 7, 8, 9, 100] {
            rec.record_latency_ms(ms);
        }
        let snap = rec.snapshot(2_000);
        assert_eq!(snap.requests, 10);
        assert_eq!(snap.ok, 1);
        assert_eq!(snap.batches, 1);
        assert_eq!(snap.batched_lanes, 3);
        assert!((snap.requests_per_sec - 5.0).abs() < 1e-9);
        assert_eq!(snap.p50_ms, 5.0);
        assert_eq!(snap.p99_ms, 100.0);
    }

    #[test]
    fn wire_snapshot_round_trips() {
        let rec = StatsRecorder::default();
        rec.bump(Counter::CacheHit);
        rec.bump(Counter::Shed);
        rec.bump(Counter::WorkerPanic);
        let snap = rec.snapshot(1_000);
        let json = serde::Serialize::to_json(&snap);
        let parsed = ServeStats::from_json(&koc_isa::json::parse_json(&json).unwrap()).unwrap();
        assert_eq!(parsed, snap);
        assert!(ServeStats::from_json(&Json::Arr(vec![])).is_err());
    }
}
