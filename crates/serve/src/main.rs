//! The `koc-serve` binary: bind an address, serve jobs until a client
//! sends `shutdown` (or the process is killed).
//!
//! ```text
//! koc-serve --addr 127.0.0.1:7841 --cache-dir serve-cache \
//!           [--workers N] [--queue-depth N] [--max-batch N] \
//!           [--slice-cycles N] [--read-timeout-ms N] [--write-timeout-ms N] \
//!           [--fault-plan plan.json]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use koc_serve::fault::FaultPlan;
use koc_serve::server::{serve, ServerConfig};

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("koc-serve: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    let mut addr = "127.0.0.1:7841".to_string();
    let mut cache_dir = PathBuf::from("serve-cache");
    let mut config = ServerConfig::default();
    let mut plan = FaultPlan::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--addr" => addr = value("--addr")?,
            "--cache-dir" => cache_dir = PathBuf::from(value("--cache-dir")?),
            "--workers" => config.workers = parse_num(&value("--workers")?, "--workers")?,
            "--queue-depth" => {
                config.queue_depth = parse_num(&value("--queue-depth")?, "--queue-depth")?;
            }
            "--max-batch" => config.max_batch = parse_num(&value("--max-batch")?, "--max-batch")?,
            "--slice-cycles" => {
                config.slice_cycles = parse_num(&value("--slice-cycles")?, "--slice-cycles")?;
            }
            "--read-timeout-ms" => {
                config.read_timeout_ms =
                    parse_num(&value("--read-timeout-ms")?, "--read-timeout-ms")?;
            }
            "--write-timeout-ms" => {
                config.write_timeout_ms =
                    parse_num(&value("--write-timeout-ms")?, "--write-timeout-ms")?;
            }
            "--fault-plan" => {
                let path = value("--fault-plan")?;
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("fault plan {path}: {e}"))?;
                plan = FaultPlan::from_json_text(&text)
                    .map_err(|e| format!("fault plan {path}: {e}"))?;
                eprintln!("koc-serve: fault plan loaded from {path}");
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: koc-serve [--addr HOST:PORT] [--cache-dir DIR] [--workers N] \
                     [--queue-depth N] [--max-batch N] [--slice-cycles N] \
                     [--read-timeout-ms N] [--write-timeout-ms N] [--fault-plan FILE]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    let handle = serve(&addr, &cache_dir, config, plan).map_err(|e| format!("bind {addr}: {e}"))?;
    println!("koc-serve: listening on {}", handle.local_addr());
    handle.wait();
    println!("koc-serve: shut down cleanly");
    Ok(())
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("{flag}: '{text}' is not a valid number"))
}
