//! The `koc-serve/1` wire format.
//!
//! Requests and responses are newline-delimited JSON objects, each carrying
//! a `"schema"` field, parsed with the workspace's hand-rolled
//! `koc_isa::json` reader (depth-capped, so hostile nesting is a structured
//! error rather than a stack overflow). Both directions are implemented
//! here — the server parses [`Request`]s and encodes [`Response`]s, the
//! client does the reverse — so the schema lives in exactly one place.

use koc_isa::json::{parse_versioned, Json};
use koc_sim::{ProcessorConfig, SimStats};
use koc_workloads::{kernels, KernelConfig, WorkloadSpec};
use serde::write_json_string;

use crate::stats::ServeStats;

/// Schema tag carried by every request and response line.
pub const SCHEMA: &str = "koc-serve/1";

/// A job submission: which engine configuration to run over which workload,
/// plus execution policy (budget, deadline, progress streaming).
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Commit engine: `"baseline"` (in-order ROB) or `"cooo"` (checkpointed
    /// out-of-order commit).
    pub engine: String,
    /// Suite kernel name (`stream_add`, `stencil27`, `dense_blocked`,
    /// `reduction`, `gather`, `pointer_chase`, `stream_mlp`).
    pub workload: String,
    /// Minimum dynamic trace length to generate.
    pub trace_len: usize,
    /// ROB size (baseline) or IQ size (cooo).
    pub window: usize,
    /// SLIQ entries (cooo only).
    pub sliq: usize,
    /// Checkpoint count override (cooo only).
    pub checkpoints: Option<usize>,
    /// Main-memory latency in cycles.
    pub memory_latency: u32,
    /// Optional simulated-cycle budget (results then carry
    /// `budget_exhausted`).
    pub cycle_budget: Option<u64>,
    /// Optional wall-clock deadline: the job is abandoned with a `timeout`
    /// error if it has not finished this many ms after submission.
    pub deadline_ms: Option<u64>,
    /// Stream progress lines while the job runs.
    pub progress: bool,
    /// Bypass the result cache (recompute even on a hit).
    pub fresh: bool,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            engine: "cooo".to_string(),
            workload: "stream_add".to_string(),
            trace_len: 8_000,
            window: 128,
            sliq: 2_048,
            checkpoints: None,
            memory_latency: 1_000,
            cycle_budget: None,
            deadline_ms: None,
            progress: false,
            fresh: false,
        }
    }
}

impl JobSpec {
    /// The content-addressed cache key: every field that affects the
    /// simulation result, none that only affects execution policy.
    pub fn cache_key(&self) -> String {
        let checkpoints = match self.checkpoints {
            Some(n) => n.to_string(),
            None => "default".to_string(),
        };
        let budget = match self.cycle_budget {
            Some(b) => b.to_string(),
            None => "none".to_string(),
        };
        format!(
            "{SCHEMA}|engine={}|workload={}|trace_len={}|window={}|sliq={}|checkpoints={}|mem={}|budget={}",
            self.engine, self.workload, self.trace_len, self.window, self.sliq,
            checkpoints, self.memory_latency, budget,
        )
    }

    /// Builds the processor configuration this job runs.
    ///
    /// # Errors
    /// Returns a description of an unknown engine or invalid configuration.
    pub fn processor_config(&self) -> Result<ProcessorConfig, String> {
        let config = match self.engine.as_str() {
            "baseline" => ProcessorConfig::baseline(self.window, self.memory_latency),
            "cooo" => {
                let mut c = ProcessorConfig::cooo(self.window, self.sliq, self.memory_latency);
                if let Some(n) = self.checkpoints {
                    c = c.with_checkpoints(n);
                }
                c
            }
            other => return Err(format!("unknown engine '{other}' (baseline|cooo)")),
        };
        config.validate()?;
        Ok(config)
    }

    /// Resolves the workload name into a generate-on-demand spec at this
    /// job's trace length.
    ///
    /// # Errors
    /// Returns a description of an unknown workload name.
    pub fn workload_spec(&self) -> Result<WorkloadSpec, String> {
        let config = kernel_by_name(&self.workload)
            .ok_or_else(|| format!("unknown workload '{}'", self.workload))?;
        Ok(WorkloadSpec::Kernel {
            name: self.workload.clone(),
            config: config.with_target_len(self.trace_len),
        })
    }

    /// Whether this job may ride in a lockstep batch: batches share one
    /// forked instruction stream and run without per-lane pacing, so only
    /// plain compute-to-completion jobs qualify.
    pub fn batchable(&self) -> bool {
        self.deadline_ms.is_none() && !self.progress && !self.fresh
    }

    /// Whether another job can share a lockstep batch with this one (same
    /// instruction stream; engine configuration may differ per lane).
    pub fn shares_stream_with(&self, other: &JobSpec) -> bool {
        self.workload == other.workload && self.trace_len == other.trace_len
    }

    /// Encodes the spec as the `"job"` object of a submit request.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"engine\":");
        write_json_string(&self.engine, &mut out);
        out.push_str(",\"workload\":");
        write_json_string(&self.workload, &mut out);
        out.push_str(&format!(
            ",\"trace_len\":{},\"window\":{},\"sliq\":{},\"memory_latency\":{}",
            self.trace_len, self.window, self.sliq, self.memory_latency
        ));
        if let Some(n) = self.checkpoints {
            out.push_str(&format!(",\"checkpoints\":{n}"));
        }
        if let Some(b) = self.cycle_budget {
            out.push_str(&format!(",\"cycle_budget\":{b}"));
        }
        if let Some(d) = self.deadline_ms {
            out.push_str(&format!(",\"deadline_ms\":{d}"));
        }
        if self.progress {
            out.push_str(",\"progress\":true");
        }
        if self.fresh {
            out.push_str(",\"fresh\":true");
        }
        out.push('}');
        out
    }

    fn from_json(job: &Json) -> Result<JobSpec, String> {
        if !matches!(job, Json::Obj(_)) {
            return Err("'job' must be an object".to_string());
        }
        let defaults = JobSpec::default();
        let text = |key: &str, default: &str| -> Result<String, String> {
            match job.get(key) {
                None => Ok(default.to_string()),
                Some(v) => v
                    .as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("'{key}' must be a string")),
            }
        };
        let uint = |key: &str, default: u64| -> Result<u64, String> {
            match job.get(key) {
                None => Ok(default),
                Some(v) => v
                    .as_u64()
                    .ok_or_else(|| format!("'{key}' must be a non-negative integer")),
            }
        };
        let opt_uint = |key: &str| -> Result<Option<u64>, String> {
            match job.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(v) => v
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| format!("'{key}' must be a non-negative integer")),
            }
        };
        let flag = |key: &str| -> Result<bool, String> {
            match job.get(key) {
                None => Ok(false),
                Some(v) => v
                    .as_bool()
                    .ok_or_else(|| format!("'{key}' must be a boolean")),
            }
        };
        Ok(JobSpec {
            engine: text("engine", &defaults.engine)?,
            workload: text("workload", &defaults.workload)?,
            trace_len: uint("trace_len", defaults.trace_len as u64)? as usize,
            window: uint("window", defaults.window as u64)? as usize,
            sliq: uint("sliq", defaults.sliq as u64)? as usize,
            checkpoints: opt_uint("checkpoints")?.map(|n| n as usize),
            memory_latency: u32::try_from(uint("memory_latency", defaults.memory_latency as u64)?)
                .map_err(|_| "'memory_latency' does not fit u32".to_string())?,
            cycle_budget: opt_uint("cycle_budget")?,
            deadline_ms: opt_uint("deadline_ms")?,
            progress: flag("progress")?,
            fresh: flag("fresh")?,
        })
    }
}

/// Looks up a suite kernel by name across the paper suite and the
/// MLP-contrast pair.
pub fn kernel_by_name(name: &str) -> Option<KernelConfig> {
    kernels::all()
        .into_iter()
        .chain(kernels::mlp_contrast())
        .find(|(n, _)| *n == name)
        .map(|(_, c)| c)
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Snapshot of the server's [`ServeStats`].
    Stats,
    /// Cooperatively cancel the connection's in-flight job.
    Cancel,
    /// Stop accepting work and shut the server down.
    Shutdown,
    /// Run (or serve from cache) a job.
    Submit(JobSpec),
}

impl Request {
    /// Encodes the request as one wire line (without the trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Request::Ping => format!("{{\"schema\":\"{SCHEMA}\",\"op\":\"ping\"}}"),
            Request::Stats => format!("{{\"schema\":\"{SCHEMA}\",\"op\":\"stats\"}}"),
            Request::Cancel => format!("{{\"schema\":\"{SCHEMA}\",\"op\":\"cancel\"}}"),
            Request::Shutdown => format!("{{\"schema\":\"{SCHEMA}\",\"op\":\"shutdown\"}}"),
            Request::Submit(spec) => format!(
                "{{\"schema\":\"{SCHEMA}\",\"op\":\"submit\",\"job\":{}}}",
                spec.encode()
            ),
        }
    }
}

/// Parses one request line.
///
/// # Errors
/// Returns a human-readable reason; the server wraps it in a
/// [`ErrorKind::Parse`] response and keeps the connection open.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = parse_versioned(line, SCHEMA)?;
    match doc.get("op").and_then(Json::as_str) {
        Some("ping") => Ok(Request::Ping),
        Some("stats") => Ok(Request::Stats),
        Some("cancel") => Ok(Request::Cancel),
        Some("shutdown") => Ok(Request::Shutdown),
        Some("submit") => {
            let job = doc.get("job").ok_or("submit requires a 'job' object")?;
            Ok(Request::Submit(JobSpec::from_json(job)?))
        }
        Some(other) => Err(format!(
            "unknown op '{other}' (ping|stats|cancel|shutdown|submit)"
        )),
        None => Err("missing 'op' field".to_string()),
    }
}

/// The simulation outcome shipped back to the client (and persisted in the
/// result cache).
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Simulated cycles.
    pub cycles: u64,
    /// Committed instructions.
    pub committed: u64,
    /// Committed instructions per cycle.
    pub ipc: f64,
    /// Whether the run stopped on its cycle budget rather than completing.
    pub budget_exhausted: bool,
}

impl JobResult {
    /// Extracts the wire-visible outcome from full simulation statistics.
    pub fn from_sim_stats(stats: &SimStats) -> JobResult {
        JobResult {
            cycles: stats.cycles,
            committed: stats.committed_instructions,
            ipc: stats.ipc(),
            budget_exhausted: stats.budget_exhausted,
        }
    }

    /// Encodes the result as a JSON object.
    pub fn encode(&self) -> String {
        let mut ipc = String::new();
        serde::Serialize::write_json(&self.ipc, &mut ipc);
        format!(
            "{{\"cycles\":{},\"committed\":{},\"ipc\":{ipc},\"budget_exhausted\":{}}}",
            self.cycles, self.committed, self.budget_exhausted
        )
    }

    /// Decodes a result object.
    ///
    /// # Errors
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(v: &Json) -> Result<JobResult, String> {
        Ok(JobResult {
            cycles: v
                .get("cycles")
                .and_then(Json::as_u64)
                .ok_or("result missing 'cycles'")?,
            committed: v
                .get("committed")
                .and_then(Json::as_u64)
                .ok_or("result missing 'committed'")?,
            ipc: v
                .get("ipc")
                .and_then(Json::as_f64)
                .ok_or("result missing 'ipc'")?,
            budget_exhausted: v
                .get("budget_exhausted")
                .and_then(Json::as_bool)
                .ok_or("result missing 'budget_exhausted'")?,
        })
    }
}

/// Structured failure classes, mirrored in the wire format's `"kind"`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line was not valid `koc-serve/1` JSON.
    Parse,
    /// The request was well-formed but impossible (unknown engine, ...).
    BadRequest,
    /// Load shed: the job queue is full (HTTP-429 analogue; the response
    /// carries a `retry_after_ms` hint).
    Overloaded,
    /// The job missed its wall-clock deadline.
    Timeout,
    /// The job was cooperatively cancelled.
    Cancelled,
    /// The worker executing the job panicked (the server keeps serving).
    WorkerPanic,
    /// The server is shutting down.
    Shutdown,
}

impl ErrorKind {
    /// The wire name of this kind.
    pub fn as_wire(&self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::BadRequest => "bad-request",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Timeout => "timeout",
            ErrorKind::Cancelled => "cancelled",
            ErrorKind::WorkerPanic => "worker-panic",
            ErrorKind::Shutdown => "shutdown",
        }
    }

    /// Parses a wire name back into a kind.
    pub fn from_wire(s: &str) -> Option<ErrorKind> {
        Some(match s {
            "parse" => ErrorKind::Parse,
            "bad-request" => ErrorKind::BadRequest,
            "overloaded" => ErrorKind::Overloaded,
            "timeout" => ErrorKind::Timeout,
            "cancelled" => ErrorKind::Cancelled,
            "worker-panic" => ErrorKind::WorkerPanic,
            "shutdown" => ErrorKind::Shutdown,
            _ => return None,
        })
    }
}

/// A response line, either direction's view of it.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A finished job: where the result came from and the result itself.
    Done {
        /// `true` when served from the result cache.
        cache_hit: bool,
        /// The simulation outcome.
        result: JobResult,
    },
    /// A progress heartbeat for a running job.
    Progress {
        /// Simulated cycles so far.
        cycles: u64,
        /// Committed instructions so far.
        committed: u64,
    },
    /// Reply to `ping`.
    Pong,
    /// Reply to `stats`.
    Stats(ServeStats),
    /// Acknowledgement that the server is shutting down.
    ShutdownAck,
    /// A structured failure.
    Error {
        /// Failure class.
        kind: ErrorKind,
        /// Human-readable reason.
        message: String,
        /// Back-off hint for retryable failures (load shedding).
        retry_after_ms: Option<u64>,
    },
}

impl Response {
    /// Encodes the response as one wire line (without the trailing
    /// newline).
    pub fn encode(&self) -> String {
        match self {
            Response::Done { cache_hit, result } => format!(
                "{{\"schema\":\"{SCHEMA}\",\"status\":\"ok\",\"cache\":\"{}\",\"result\":{}}}",
                if *cache_hit { "hit" } else { "miss" },
                result.encode()
            ),
            Response::Progress { cycles, committed } => format!(
                "{{\"schema\":\"{SCHEMA}\",\"status\":\"progress\",\"cycles\":{cycles},\"committed\":{committed}}}"
            ),
            Response::Pong => {
                format!("{{\"schema\":\"{SCHEMA}\",\"status\":\"ok\",\"op\":\"pong\"}}")
            }
            Response::ShutdownAck => {
                format!("{{\"schema\":\"{SCHEMA}\",\"status\":\"ok\",\"op\":\"shutdown\"}}")
            }
            Response::Stats(stats) => format!(
                "{{\"schema\":\"{SCHEMA}\",\"status\":\"ok\",\"stats\":{}}}",
                serde::Serialize::to_json(stats)
            ),
            Response::Error {
                kind,
                message,
                retry_after_ms,
            } => {
                let mut out = format!(
                    "{{\"schema\":\"{SCHEMA}\",\"status\":\"error\",\"kind\":\"{}\",\"message\":",
                    kind.as_wire()
                );
                write_json_string(message, &mut out);
                if let Some(ms) = retry_after_ms {
                    out.push_str(&format!(",\"retry_after_ms\":{ms}"));
                }
                out.push('}');
                out
            }
        }
    }
}

/// Parses one response line (the client side of the protocol).
///
/// # Errors
/// Returns a description of the first structural problem.
pub fn parse_response(line: &str) -> Result<Response, String> {
    let doc = parse_versioned(line, SCHEMA)?;
    match doc.get("status").and_then(Json::as_str) {
        Some("progress") => Ok(Response::Progress {
            cycles: doc
                .get("cycles")
                .and_then(Json::as_u64)
                .ok_or("progress missing 'cycles'")?,
            committed: doc
                .get("committed")
                .and_then(Json::as_u64)
                .ok_or("progress missing 'committed'")?,
        }),
        Some("error") => {
            let kind = doc
                .get("kind")
                .and_then(Json::as_str)
                .ok_or("error missing 'kind'")?;
            Ok(Response::Error {
                kind: ErrorKind::from_wire(kind).ok_or_else(|| format!("unknown kind '{kind}'"))?,
                message: doc
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
                retry_after_ms: doc.get("retry_after_ms").and_then(Json::as_u64),
            })
        }
        Some("ok") => {
            if let Some(result) = doc.get("result") {
                Ok(Response::Done {
                    cache_hit: doc.get("cache").and_then(Json::as_str) == Some("hit"),
                    result: JobResult::from_json(result)?,
                })
            } else if let Some(stats) = doc.get("stats") {
                Ok(Response::Stats(ServeStats::from_json(stats)?))
            } else {
                match doc.get("op").and_then(Json::as_str) {
                    Some("pong") => Ok(Response::Pong),
                    Some("shutdown") => Ok(Response::ShutdownAck),
                    other => Err(format!("unrecognized ok response (op {other:?})")),
                }
            }
        }
        other => Err(format!("unrecognized status {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let spec = JobSpec {
            engine: "baseline".to_string(),
            checkpoints: Some(24),
            cycle_budget: Some(10_000),
            deadline_ms: Some(500),
            progress: true,
            ..JobSpec::default()
        };
        for req in [
            Request::Ping,
            Request::Stats,
            Request::Cancel,
            Request::Shutdown,
            Request::Submit(spec),
        ] {
            assert_eq!(parse_request(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Done {
                cache_hit: true,
                result: JobResult {
                    cycles: 123,
                    committed: 456,
                    ipc: 3.7,
                    budget_exhausted: false,
                },
            },
            Response::Progress {
                cycles: 9,
                committed: 2,
            },
            Response::Pong,
            Response::ShutdownAck,
            Response::Error {
                kind: ErrorKind::Overloaded,
                message: "queue full".to_string(),
                retry_after_ms: Some(100),
            },
        ] {
            assert_eq!(parse_response(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn hostile_requests_fail_structurally() {
        assert!(parse_request("").is_err());
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{\"schema\":\"koc-serve/1\"}").is_err());
        assert!(parse_request("{\"schema\":\"koc-serve/2\",\"op\":\"ping\"}").is_err());
        assert!(parse_request("{\"schema\":\"koc-serve/1\",\"op\":\"submit\"}").is_err());
        assert!(parse_request(
            "{\"schema\":\"koc-serve/1\",\"op\":\"submit\",\"job\":{\"trace_len\":\"big\"}}"
        )
        .is_err());
        // A nesting bomb is a parse error, not a stack overflow.
        let bomb = format!("{}{}", "{\"schema\":", "[".repeat(100_000));
        assert!(parse_request(&bomb).is_err());
    }

    #[test]
    fn cache_keys_separate_results_but_not_policy() {
        let a = JobSpec::default();
        let mut b = a.clone();
        b.deadline_ms = Some(100);
        b.progress = true;
        b.fresh = true;
        assert_eq!(a.cache_key(), b.cache_key(), "policy fields not in key");
        let mut c = a.clone();
        c.window = 256;
        assert_ne!(a.cache_key(), c.cache_key());
    }

    #[test]
    fn spec_resolves_configs_and_workloads() {
        let spec = JobSpec::default();
        assert!(spec.processor_config().is_ok());
        assert!(spec.workload_spec().is_ok());
        let bad_engine = JobSpec {
            engine: "quantum".to_string(),
            ..JobSpec::default()
        };
        assert!(bad_engine.processor_config().is_err());
        let bad_workload = JobSpec {
            workload: "nope".to_string(),
            ..JobSpec::default()
        };
        assert!(bad_workload.workload_spec().is_err());
    }
}
