//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is threaded through the cache I/O and connection layer
//! at construction time; each fault class is a set of *operation indices*
//! at which the fault fires (the cache's third store, the worker's first
//! job, ...). Because the indices are data, not probabilities, a test or a
//! CI run replays the exact same failure sequence every time — the same
//! philosophy as the simulator's seeded workloads, applied to the service
//! layer.
//!
//! Plans are written as `koc-serve-fault/1` JSON (see
//! [`FaultPlan::from_json_text`]) so the `koc-serve` binary can load one
//! from disk for end-to-end drills.

use std::sync::atomic::{AtomicU64, Ordering};

use koc_isa::json::{parse_versioned, Json};

/// Schema tag for on-disk fault plans.
pub const FAULT_SCHEMA: &str = "koc-serve-fault/1";

/// One fault class: fires when its operation counter hits a listed index.
#[derive(Debug, Default)]
pub struct FaultSet {
    indices: Vec<u64>,
    counter: AtomicU64,
}

impl FaultSet {
    /// A fault set firing at the given operation indices (0-based).
    pub fn at(indices: &[u64]) -> Self {
        FaultSet {
            indices: indices.to_vec(),
            counter: AtomicU64::new(0),
        }
    }

    /// Counts one operation; `true` when this one should fail.
    pub fn trip(&self) -> bool {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        self.indices.contains(&n)
    }
}

/// A deterministic schedule of injected failures, one [`FaultSet`] per
/// fault class. `FaultPlan::default()` injects nothing.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Cache store ops whose entry is written torn (half the bytes reach
    /// the final file) — exercises checksum detection + quarantine.
    pub torn_cache_write: FaultSet,
    /// Cache store ops whose temp file is never renamed into place —
    /// exercises the atomic-rename protocol (a crash between write and
    /// rename must look like a miss, never a corrupt entry).
    pub torn_cache_rename: FaultSet,
    /// Job executions that panic inside the worker — exercises panic
    /// isolation.
    pub worker_panic: FaultSet,
    /// Response writes cut short mid-line (socket closed after half the
    /// bytes) — exercises client-side retry on torn responses.
    pub short_response_write: FaultSet,
    /// Job executions stalled for [`stall_ms`](Self::stall_ms) before
    /// starting — wedges a worker to drive queue-overflow shedding.
    pub stall_worker: FaultSet,
    /// How long a stalled job execution sleeps.
    pub stall_ms: u64,
    /// Worker clock skew in milliseconds: deadlines expire this much
    /// early (see `clock::ServeClock`).
    pub clock_skew_ms: u64,
}

impl FaultPlan {
    /// Parses a `koc-serve-fault/1` document.
    ///
    /// # Errors
    /// Returns a description of the first syntax or schema problem.
    pub fn from_json_text(text: &str) -> Result<FaultPlan, String> {
        let doc = parse_versioned(text, FAULT_SCHEMA)?;
        let set = |key: &str| -> Result<FaultSet, String> {
            match doc.get(key) {
                None => Ok(FaultSet::default()),
                Some(Json::Arr(items)) => {
                    let mut indices = Vec::with_capacity(items.len());
                    for item in items {
                        indices.push(
                            item.as_u64()
                                .ok_or_else(|| format!("'{key}' entries must be integers"))?,
                        );
                    }
                    Ok(FaultSet::at(&indices))
                }
                Some(_) => Err(format!("'{key}' must be an array of operation indices")),
            }
        };
        let ms = |key: &str| -> Result<u64, String> {
            match doc.get(key) {
                None => Ok(0),
                Some(v) => v
                    .as_u64()
                    .ok_or_else(|| format!("'{key}' must be a non-negative integer")),
            }
        };
        Ok(FaultPlan {
            torn_cache_write: set("torn_cache_write")?,
            torn_cache_rename: set("torn_cache_rename")?,
            worker_panic: set("worker_panic")?,
            short_response_write: set("short_response_write")?,
            stall_worker: set("stall_worker")?,
            stall_ms: ms("stall_ms")?,
            clock_skew_ms: ms("clock_skew_ms")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_sets_fire_at_listed_indices_only() {
        let set = FaultSet::at(&[0, 2]);
        assert!(set.trip());
        assert!(!set.trip());
        assert!(set.trip());
        assert!(!set.trip());
        assert!(!FaultSet::default().trip());
    }

    #[test]
    fn plans_parse_and_reject_malformed_documents() {
        let plan = FaultPlan::from_json_text(
            r#"{"schema":"koc-serve-fault/1","torn_cache_write":[1],"stall_ms":250}"#,
        )
        .unwrap();
        assert!(!plan.torn_cache_write.trip());
        assert!(plan.torn_cache_write.trip());
        assert_eq!(plan.stall_ms, 250);
        assert_eq!(plan.clock_skew_ms, 0);
        assert!(FaultPlan::from_json_text(r#"{"schema":"wrong/1"}"#).is_err());
        assert!(FaultPlan::from_json_text(
            r#"{"schema":"koc-serve-fault/1","worker_panic":"nope"}"#
        )
        .is_err());
        assert!(FaultPlan::from_json_text("{").is_err());
    }
}
