//! The content-addressed, crash-safe result cache.
//!
//! Layout: one file per entry under the cache directory, named by the
//! FNV-1a hash of the job's cache key, containing a single
//! `koc-serve-cache/1` JSON line with the key (hash-collision guard), a
//! checksum of the result payload, and the payload itself.
//!
//! Crash safety is the whole point:
//! - **Writes are atomic**: the entry is written to a `.tmp` file and
//!   renamed into place, so a crash mid-write leaves a temp file (swept on
//!   open), never a half-written entry under the final name.
//! - **Reads are verified**: schema, stored key, and checksum must all
//!   match. Anything torn or corrupt is *quarantined* (renamed aside for
//!   post-mortems) and reported as [`Lookup::Quarantined`] so the caller
//!   recomputes — a damaged entry is never served.
//!
//! The `FaultPlan` seam injects torn writes and skipped renames to prove
//! both properties under test.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use koc_isa::json::parse_versioned;
use serde::write_json_string;

use crate::fault::FaultPlan;
use crate::protocol::JobResult;

/// Schema tag for on-disk cache entries.
pub const CACHE_SCHEMA: &str = "koc-serve-cache/1";

/// Outcome of a cache probe.
#[derive(Debug, Clone, PartialEq)]
pub enum Lookup {
    /// A verified entry.
    Hit(JobResult),
    /// No entry.
    Miss,
    /// A torn or corrupt entry was detected, renamed aside, and must be
    /// recomputed.
    Quarantined,
}

/// The on-disk result cache.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    seq: AtomicU64,
    plan: Arc<FaultPlan>,
}

impl ResultCache {
    /// Opens (creating if needed) the cache at `dir` and sweeps leftover
    /// temp files from interrupted writes.
    ///
    /// # Errors
    /// Returns the underlying I/O error if the directory cannot be
    /// created or scanned.
    pub fn open(dir: &Path, plan: Arc<FaultPlan>) -> io::Result<ResultCache> {
        fs::create_dir_all(dir)?;
        for entry in fs::read_dir(dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "tmp") {
                // A crash between write and rename: the entry never became
                // visible, so the temp file is garbage by construction.
                let _ = fs::remove_file(&path);
            }
        }
        Ok(ResultCache {
            dir: dir.to_path_buf(),
            seq: AtomicU64::new(0),
            plan,
        })
    }

    /// Probes the cache for `key`, verifying schema, key, and checksum.
    pub fn probe(&self, key: &str) -> Lookup {
        let path = self.entry_path(key);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(_) => return Lookup::Miss,
        };
        match decode_entry(&text, key) {
            Ok(result) => Lookup::Hit(result),
            Err(_) => {
                // Torn or corrupt: move it aside (never serve, never
                // silently delete — operators can inspect it) and recompute.
                let n = self.seq.fetch_add(1, Ordering::Relaxed);
                let aside = path.with_extension(format!("quarantined.{n}"));
                let _ = fs::rename(&path, &aside);
                Lookup::Quarantined
            }
        }
    }

    /// Stores `result` under `key` with a temp-file + rename protocol.
    ///
    /// # Errors
    /// Returns the underlying I/O error; the caller treats a failed store
    /// as a non-fatal cache miss on the next probe.
    pub fn store(&self, key: &str, result: &JobResult) -> io::Result<()> {
        let entry = encode_entry(key, result);
        let path = self.entry_path(key);
        let n = self.seq.fetch_add(1, Ordering::Relaxed);
        let tmp = path.with_extension(format!("{n}.tmp"));
        let bytes = entry.as_bytes();
        let torn = self.plan.torn_cache_write.trip();
        {
            let mut file = fs::File::create(&tmp)?;
            if torn {
                // Injected fault: only half the entry reaches the file.
                file.write_all(&bytes[..bytes.len() / 2])?;
            } else {
                file.write_all(bytes)?;
            }
            file.sync_all()?;
        }
        if self.plan.torn_cache_rename.trip() {
            // Injected fault: crash before the rename — the temp file
            // stays, the entry never appears.
            return Ok(());
        }
        fs::rename(&tmp, &path)
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir
            .join(format!("{:016x}.json", fnv1a64(key.as_bytes())))
    }
}

/// Encodes one cache entry line.
fn encode_entry(key: &str, result: &JobResult) -> String {
    let payload = result.encode();
    let mut out = format!("{{\"schema\":\"{CACHE_SCHEMA}\",\"key\":");
    write_json_string(key, &mut out);
    out.push_str(&format!(
        ",\"checksum\":\"{:016x}\",\"result\":{payload}}}",
        fnv1a64(payload.as_bytes())
    ));
    out
}

/// Decodes and verifies one cache entry against the probing key.
fn decode_entry(text: &str, key: &str) -> Result<JobResult, String> {
    let doc = parse_versioned(text, CACHE_SCHEMA)?;
    let stored_key = doc
        .get("key")
        .and_then(koc_isa::json::Json::as_str)
        .ok_or("entry missing 'key'")?;
    if stored_key != key {
        return Err("key mismatch (hash collision or relocated entry)".to_string());
    }
    let checksum = doc
        .get("checksum")
        .and_then(koc_isa::json::Json::as_str)
        .ok_or("entry missing 'checksum'")?;
    let result_json = doc.get("result").ok_or("entry missing 'result'")?;
    let result = JobResult::from_json(result_json)?;
    // The checksum covers the canonical re-encoding of the payload: any
    // bit damage to a counter surfaces as a mismatch.
    if format!("{:016x}", fnv1a64(result.encode().as_bytes())) != checksum {
        return Err("checksum mismatch".to_string());
    }
    Ok(result)
}

/// 64-bit FNV-1a (the workspace's standing dependency-free hash).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> JobResult {
        JobResult {
            cycles: 1_000,
            committed: 800,
            ipc: 0.8,
            budget_exhausted: false,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("koc-serve-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_then_probe_round_trips() {
        let dir = temp_dir("roundtrip");
        let cache = ResultCache::open(&dir, Arc::new(FaultPlan::default())).unwrap();
        assert_eq!(cache.probe("k"), Lookup::Miss);
        cache.store("k", &result()).unwrap();
        assert_eq!(cache.probe("k"), Lookup::Hit(result()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_is_quarantined_then_recomputable() {
        let dir = temp_dir("torn");
        let plan = FaultPlan {
            torn_cache_write: crate::fault::FaultSet::at(&[0]),
            ..FaultPlan::default()
        };
        let cache = ResultCache::open(&dir, Arc::new(plan)).unwrap();
        cache.store("k", &result()).unwrap();
        assert_eq!(cache.probe("k"), Lookup::Quarantined, "torn entry detected");
        assert_eq!(cache.probe("k"), Lookup::Miss, "quarantine moved it aside");
        cache.store("k", &result()).unwrap();
        assert_eq!(cache.probe("k"), Lookup::Hit(result()));
        let quarantined = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .to_string_lossy()
                    .contains("quarantined")
            })
            .count();
        assert_eq!(quarantined, 1, "damaged entry kept for post-mortem");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_rename_looks_like_a_clean_miss() {
        let dir = temp_dir("rename");
        let plan = FaultPlan {
            torn_cache_rename: crate::fault::FaultSet::at(&[0]),
            ..FaultPlan::default()
        };
        let cache = ResultCache::open(&dir, Arc::new(plan)).unwrap();
        cache.store("k", &result()).unwrap();
        assert_eq!(
            cache.probe("k"),
            Lookup::Miss,
            "unrenamed entry is invisible"
        );
        cache.store("k", &result()).unwrap();
        assert_eq!(cache.probe("k"), Lookup::Hit(result()));
        // Reopening sweeps the leftover temp file.
        drop(cache);
        let cache = ResultCache::open(&dir, Arc::new(FaultPlan::default())).unwrap();
        let tmps = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .is_some_and(|x| x == "tmp")
            })
            .count();
        assert_eq!(tmps, 0);
        assert_eq!(cache.probe("k"), Lookup::Hit(result()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn hand_corrupted_entries_are_never_served() {
        let dir = temp_dir("corrupt");
        let cache = ResultCache::open(&dir, Arc::new(FaultPlan::default())).unwrap();
        cache.store("k", &result()).unwrap();
        // Flip a counter on disk without fixing the checksum.
        let path = dir.join(format!("{:016x}.json", fnv1a64(b"k")));
        let text = fs::read_to_string(&path).unwrap().replace("1000", "9999");
        fs::write(&path, text).unwrap();
        assert_eq!(cache.probe("k"), Lookup::Quarantined);
        let _ = fs::remove_dir_all(&dir);
    }
}
