//! A retrying `koc-serve/1` client.
//!
//! One connection per call keeps the client trivially correct under
//! server restarts. Transient failures — connect errors, torn responses,
//! `overloaded` sheds — are retried with capped exponential backoff plus
//! deterministic jitter (a seeded xorshift, not `rand`: retry schedules
//! are reproducible like everything else in this workspace). Permanent
//! failures (bad requests, timeouts, cancellations, worker panics) are
//! returned immediately.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use crate::clock::{self, Duration};
use crate::protocol::{parse_response, ErrorKind, JobResult, JobSpec, Request, Response};
use crate::stats::ServeStats;

/// Retry schedule: `max_attempts` tries, backoff doubling from
/// `base_backoff_ms` up to `max_backoff_ms`, jittered by up to half the
/// step from `jitter_seed`.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retries).
    pub max_attempts: u32,
    /// First backoff step, ms.
    pub base_backoff_ms: u64,
    /// Backoff cap, ms.
    pub max_backoff_ms: u64,
    /// Seed for the deterministic jitter sequence.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 50,
            max_backoff_ms: 2_000,
            jitter_seed: 0x5EED_CAFE,
        }
    }
}

impl RetryPolicy {
    /// The jittered backoff before retry number `attempt` (1-based).
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let step = self
            .base_backoff_ms
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.max_backoff_ms)
            .max(1);
        // Deterministic jitter: xorshift64 on (seed, attempt) — spreads
        // concurrent clients without a randomness dependency.
        let mut x = self.jitter_seed ^ (u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        step / 2 + x % (step / 2 + 1)
    }
}

/// Why a client call failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// Every attempt failed transiently (I/O, torn response, shed).
    Exhausted {
        /// Attempts made.
        attempts: u32,
        /// The last transient failure.
        last: String,
    },
    /// The server answered with a non-retryable structured error.
    Rejected {
        /// Failure class.
        kind: ErrorKind,
        /// Server-provided reason.
        message: String,
    },
    /// The server answered something structurally impossible.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
            ClientError::Rejected { kind, message } => {
                write!(f, "server rejected ({}): {message}", kind.as_wire())
            }
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

/// A completed submission.
#[derive(Debug, Clone, PartialEq)]
pub struct Submission {
    /// The simulation outcome.
    pub result: JobResult,
    /// Whether the server served it from its result cache.
    pub cache_hit: bool,
    /// Progress lines received before completion.
    pub progress_updates: u64,
    /// Attempts used (1 = first try).
    pub attempts: u32,
}

/// The retrying client.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    policy: RetryPolicy,
    /// Socket read deadline per response line, ms.
    pub read_timeout_ms: u64,
}

/// One attempt's terminal outcome, before retry classification.
enum Attempt<T> {
    Done(T),
    Transient(String),
    Fatal(ClientError),
}

impl Client {
    /// A client for `addr` with the given retry schedule.
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> Self {
        Client {
            addr: addr.into(),
            policy,
            read_timeout_ms: 60_000,
        }
    }

    /// Submits a job and waits for its terminal response, retrying
    /// transient failures.
    ///
    /// # Errors
    /// [`ClientError::Rejected`] on structured non-retryable errors,
    /// [`ClientError::Exhausted`] when every attempt failed transiently.
    pub fn submit(&self, spec: &JobSpec) -> Result<Submission, ClientError> {
        let request = Request::Submit(spec.clone()).encode();
        let mut last = String::new();
        for attempt in 1..=self.policy.max_attempts.max(1) {
            match self.submit_once(&request) {
                Attempt::Done((result, cache_hit, progress_updates)) => {
                    return Ok(Submission {
                        result,
                        cache_hit,
                        progress_updates,
                        attempts: attempt,
                    })
                }
                Attempt::Fatal(err) => return Err(err),
                Attempt::Transient(reason) => {
                    last = reason;
                    if attempt < self.policy.max_attempts {
                        clock::sleep_ms(self.policy.backoff_ms(attempt));
                    }
                }
            }
        }
        Err(ClientError::Exhausted {
            attempts: self.policy.max_attempts.max(1),
            last,
        })
    }

    fn submit_once(&self, request_line: &str) -> Attempt<(JobResult, bool, u64)> {
        let mut reader = match self.open_and_send(request_line) {
            Ok(reader) => reader,
            Err(reason) => return Attempt::Transient(reason),
        };
        let mut progress_updates = 0u64;
        loop {
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(0) => return Attempt::Transient("connection closed mid-job".to_string()),
                Ok(_) => {}
                Err(e) => return Attempt::Transient(format!("read failed: {e}")),
            }
            match parse_response(line.trim_end()) {
                // A torn line (short-write fault, mid-line crash) parses
                // as garbage: that is a transient server-side failure.
                Err(reason) => {
                    return Attempt::Transient(format!("unparseable response: {reason}"))
                }
                Ok(Response::Progress { .. }) => progress_updates += 1,
                Ok(Response::Done { cache_hit, result }) => {
                    return Attempt::Done((result, cache_hit, progress_updates))
                }
                Ok(Response::Error {
                    kind: ErrorKind::Overloaded,
                    message,
                    retry_after_ms,
                }) => {
                    // Honor the server's hint before the regular backoff.
                    if let Some(ms) = retry_after_ms {
                        clock::sleep_ms(ms);
                    }
                    return Attempt::Transient(format!("shed: {message}"));
                }
                Ok(Response::Error { kind, message, .. }) => {
                    return Attempt::Fatal(ClientError::Rejected { kind, message })
                }
                Ok(other) => {
                    return Attempt::Fatal(ClientError::Protocol(format!(
                        "unexpected response to submit: {other:?}"
                    )))
                }
            }
        }
    }

    /// Liveness probe (no retries — the caller is usually asking exactly
    /// whether the server is up right now).
    ///
    /// # Errors
    /// Any transport or protocol failure, as a description.
    pub fn ping(&self) -> Result<(), String> {
        match self.call_simple(&Request::Ping.encode())? {
            Response::Pong => Ok(()),
            other => Err(format!("unexpected ping reply: {other:?}")),
        }
    }

    /// Fetches the server's stats snapshot.
    ///
    /// # Errors
    /// Any transport or protocol failure, as a description.
    pub fn server_stats(&self) -> Result<ServeStats, String> {
        match self.call_simple(&Request::Stats.encode())? {
            Response::Stats(stats) => Ok(stats),
            other => Err(format!("unexpected stats reply: {other:?}")),
        }
    }

    /// Asks the server to shut down.
    ///
    /// # Errors
    /// Any transport or protocol failure, as a description.
    pub fn shutdown_server(&self) -> Result<(), String> {
        match self.call_simple(&Request::Shutdown.encode())? {
            Response::ShutdownAck => Ok(()),
            other => Err(format!("unexpected shutdown reply: {other:?}")),
        }
    }

    fn call_simple(&self, request_line: &str) -> Result<Response, String> {
        let mut reader = self.open_and_send(request_line)?;
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("read failed: {e}"))?;
        parse_response(line.trim_end())
    }

    fn open_and_send(&self, request_line: &str) -> Result<BufReader<TcpStream>, String> {
        let stream =
            TcpStream::connect(&self.addr).map_err(|e| format!("connect {}: {e}", self.addr))?;
        stream
            .set_read_timeout(Some(Duration::from_millis(self.read_timeout_ms)))
            .map_err(|e| e.to_string())?;
        let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
        writer
            .write_all(format!("{request_line}\n").as_bytes())
            .map_err(|e| format!("write failed: {e}"))?;
        Ok(BufReader::new(stream))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_jittered_and_deterministic() {
        let policy = RetryPolicy::default();
        for attempt in 1..10 {
            let a = policy.backoff_ms(attempt);
            let b = policy.backoff_ms(attempt);
            assert_eq!(a, b, "same seed, same schedule");
            assert!(a <= policy.max_backoff_ms, "capped");
        }
        // Different seeds de-correlate concurrent clients.
        let other = RetryPolicy {
            jitter_seed: 7,
            ..RetryPolicy::default()
        };
        assert!((1..10).any(|n| policy.backoff_ms(n) != other.backoff_ms(n)));
    }
}
