//! The TCP job server: accept loop, per-connection protocol driver, and
//! the worker pool that executes (or batches) simulation jobs.
//!
//! Robustness invariants, each enforced by `tests/service.rs`:
//! - **Bounded everything**: the job queue is a fixed-capacity
//!   [`BoundedQueue`]; a full queue sheds the job with an `overloaded`
//!   response and a `retry_after_ms` hint. Connections above
//!   `max_connections` are refused the same way.
//! - **A stalled client cannot wedge a worker**: workers publish results
//!   through an unbounded in-process channel and never touch sockets;
//!   connection threads write with an OS-level write deadline and treat a
//!   failed write as a cooperative cancel of the in-flight job.
//! - **Worker panics are isolated**: job execution runs under
//!   `catch_unwind`; a panic poisons only that job batch (each affected
//!   job gets a structured `worker-panic` error) and the worker keeps
//!   draining the queue.
//! - **Damaged cache entries are never served**: see `cache.rs`.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

use koc_sim::{LockstepSweep, Processor, SliceOutcome};

use crate::cache::{Lookup, ResultCache};
use crate::clock::{Duration, ServeClock};
use crate::fault::FaultPlan;
use crate::protocol::{parse_request, ErrorKind, JobResult, JobSpec, Request, Response};
use crate::queue::BoundedQueue;
use crate::stats::{Counter, ServeStats, StatsRecorder};

/// How long a connection thread blocks in one socket read before polling
/// its worker channel and the shutdown flag again.
const POLL_MS: u64 = 25;

/// How long a worker blocks waiting for a job before re-checking the
/// shutdown flag.
const WORKER_POLL_MS: u64 = 50;

/// Tunable service limits. `Default` matches the README runbook.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Bounded job-queue depth; submits beyond it are shed.
    pub queue_depth: usize,
    /// Concurrent connections; accepts beyond it are refused with
    /// `overloaded`.
    pub max_connections: usize,
    /// Idle-connection read deadline (ms): a connection with no complete
    /// request and no running job for this long is closed.
    pub read_timeout_ms: u64,
    /// Per-write socket deadline (ms): a client that stops draining its
    /// socket is disconnected, not waited on.
    pub write_timeout_ms: u64,
    /// Simulated cycles per scheduling slice — the granularity at which
    /// deadlines, cancellation, and progress are checked.
    pub slice_cycles: u64,
    /// `retry_after_ms` hint attached to shed responses.
    pub retry_after_ms: u64,
    /// Largest accepted `trace_len` (bigger submits are bad requests).
    pub max_trace_len: usize,
    /// Largest lockstep batch formed from compatible queued jobs (1
    /// disables batching).
    pub max_batch: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_depth: 32,
            max_connections: 64,
            read_timeout_ms: 10_000,
            write_timeout_ms: 10_000,
            slice_cycles: 100_000,
            retry_after_ms: 100,
            max_trace_len: 2_000_000,
            max_batch: 8,
        }
    }
}

/// What a worker sends back to the connection that owns a job.
enum WorkerMsg {
    /// Heartbeat for a running job (forwarded when the job asked for
    /// progress streaming).
    Progress { cycles: u64, committed: u64 },
    /// Terminal response for the job.
    Done(Response),
}

/// A job queued for execution.
struct QueuedJob {
    spec: JobSpec,
    submitted_ms: u64,
    cancel: Arc<AtomicBool>,
    reply: mpsc::Sender<WorkerMsg>,
}

/// State shared by every server thread.
struct Shared {
    config: ServerConfig,
    running: AtomicBool,
    clock: ServeClock,
    plan: Arc<FaultPlan>,
    cache: ResultCache,
    queue: BoundedQueue<QueuedJob>,
    stats: StatsRecorder,
    conns: AtomicUsize,
    local_addr: SocketAddr,
}

impl Shared {
    fn begin_shutdown(&self) {
        self.running.store(false, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
    }
}

/// A running server; dropping the handle does not stop it — call
/// [`stop`](ServerHandle::stop) or send a `shutdown` request.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// A point-in-time stats snapshot.
    pub fn snapshot(&self) -> ServeStats {
        self.shared.stats.snapshot(self.shared.clock.now_ms())
    }

    /// Stops the server and joins the accept and worker threads.
    pub fn stop(self) {
        self.shared.begin_shutdown();
        self.join_all();
    }

    /// Blocks until the server shuts down (via a `shutdown` request),
    /// then joins its threads.
    pub fn wait(self) {
        self.join_all();
    }

    fn join_all(self) {
        let _ = self.accept.join();
        for w in self.workers {
            let _ = w.join();
        }
        // Fail queued-but-never-executed jobs so their clients are not
        // left waiting for a worker that no longer exists.
        while let Some(job) = self.shared.queue.claim_timeout(0) {
            let _ = job.reply.send(WorkerMsg::Done(shutdown_error()));
        }
    }
}

fn shutdown_error() -> Response {
    Response::Error {
        kind: ErrorKind::Shutdown,
        message: "server is shutting down".to_string(),
        retry_after_ms: None,
    }
}

/// Binds `addr` and starts the accept loop and worker pool.
///
/// # Errors
/// Returns the underlying I/O error if the cache directory or listener
/// cannot be set up.
pub fn serve(
    addr: &str,
    cache_dir: &Path,
    config: ServerConfig,
    plan: FaultPlan,
) -> std::io::Result<ServerHandle> {
    let plan = Arc::new(plan);
    let cache = ResultCache::open(cache_dir, Arc::clone(&plan))?;
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        queue: BoundedQueue::bounded(config.queue_depth),
        clock: ServeClock::with_skew(plan.clock_skew_ms),
        config,
        running: AtomicBool::new(true),
        plan,
        cache,
        stats: StatsRecorder::default(),
        conns: AtomicUsize::new(0),
        local_addr,
    });
    let workers = (0..shared.config.workers.max(1))
        .map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(&shared))
        })
        .collect();
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(&listener, &shared))
    };
    Ok(ServerHandle {
        shared,
        accept,
        workers,
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if !shared.running.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if !shared.running.load(Ordering::SeqCst) {
            return;
        }
        if shared.conns.load(Ordering::SeqCst) >= shared.config.max_connections {
            shared.stats.bump(Counter::Shed);
            refuse_connection(stream, shared);
            continue;
        }
        let shared = Arc::clone(shared);
        std::thread::spawn(move || handle_connection(stream, &shared));
    }
}

fn refuse_connection(mut stream: TcpStream, shared: &Shared) {
    let resp = Response::Error {
        kind: ErrorKind::Overloaded,
        message: "connection limit reached".to_string(),
        retry_after_ms: Some(shared.config.retry_after_ms),
    };
    let _ = stream.set_write_timeout(Some(Duration::from_millis(shared.config.write_timeout_ms)));
    let mut line = resp.encode();
    line.push('\n');
    let _ = stream.write_all(line.as_bytes());
}

/// Decrements the live-connection gauge when a connection thread exits,
/// however it exits.
struct ConnGuard<'a>(&'a Shared);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.0.conns.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A connection's in-flight job: the worker channel to drain and the
/// cooperative cancel flag shared with the worker.
struct InFlight {
    cancel: Arc<AtomicBool>,
    updates: mpsc::Receiver<WorkerMsg>,
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    shared.conns.fetch_add(1, Ordering::SeqCst);
    let _guard = ConnGuard(shared);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(POLL_MS)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(shared.config.write_timeout_ms)));
    let mut buf: Vec<u8> = Vec::new();
    let mut inflight: Option<InFlight> = None;
    let mut last_activity = shared.clock.now_ms();
    let mut chunk = [0u8; 4096];
    loop {
        // Forward anything the worker produced for the in-flight job.
        if let Some(fl) = &inflight {
            loop {
                match fl.updates.try_recv() {
                    Ok(WorkerMsg::Progress { cycles, committed }) => {
                        if !send_line(
                            &mut stream,
                            shared,
                            &Response::Progress { cycles, committed },
                        ) {
                            // The client stopped draining: cancel the job
                            // rather than wait on the socket.
                            fl.cancel.store(true, Ordering::SeqCst);
                            return;
                        }
                    }
                    Ok(WorkerMsg::Done(resp)) => {
                        let ok = send_line(&mut stream, shared, &resp);
                        inflight = None;
                        last_activity = shared.clock.now_ms();
                        if !ok {
                            return;
                        }
                        break;
                    }
                    Err(mpsc::TryRecvError::Empty) => break,
                    Err(mpsc::TryRecvError::Disconnected) => {
                        // The worker vanished without a terminal response —
                        // only possible if its thread died outside the
                        // panic isolation. Tell the client instead of
                        // hanging it.
                        let resp = Response::Error {
                            kind: ErrorKind::WorkerPanic,
                            message: "worker disappeared mid-job".to_string(),
                            retry_after_ms: None,
                        };
                        inflight = None;
                        if !send_line(&mut stream, shared, &resp) {
                            return;
                        }
                        break;
                    }
                }
            }
        }
        if !shared.running.load(Ordering::SeqCst) {
            let _ = send_line(&mut stream, shared, &shutdown_error());
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                // Client closed: cooperatively cancel whatever it owned.
                if let Some(fl) = &inflight {
                    fl.cancel.store(true, Ordering::SeqCst);
                }
                return;
            }
            Ok(n) => {
                last_activity = shared.clock.now_ms();
                buf.extend_from_slice(&chunk[..n]);
                while let Some(line) = take_line(&mut buf) {
                    if !handle_line(&line, &mut stream, shared, &mut inflight) {
                        return;
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle-connection deadline: only enforced with no job in
                // flight (a long job is activity by definition).
                if inflight.is_none()
                    && shared.clock.now_ms().saturating_sub(last_activity)
                        > shared.config.read_timeout_ms
                {
                    let resp = Response::Error {
                        kind: ErrorKind::Timeout,
                        message: "idle connection closed".to_string(),
                        retry_after_ms: None,
                    };
                    let _ = send_line(&mut stream, shared, &resp);
                    return;
                }
            }
            Err(_) => {
                if let Some(fl) = &inflight {
                    fl.cancel.store(true, Ordering::SeqCst);
                }
                return;
            }
        }
    }
}

/// Splits one complete `\n`-terminated line off the front of `buf`.
fn take_line(buf: &mut Vec<u8>) -> Option<String> {
    let nl = buf.iter().position(|&b| b == b'\n')?;
    let line: Vec<u8> = buf.drain(..=nl).collect();
    Some(String::from_utf8_lossy(&line[..nl]).into_owned())
}

/// Handles one request line; `false` means the connection must close.
fn handle_line(
    line: &str,
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    inflight: &mut Option<InFlight>,
) -> bool {
    shared.stats.bump(Counter::Request);
    let request = match parse_request(line) {
        Ok(request) => request,
        Err(message) => {
            shared.stats.bump(Counter::ParseError);
            let resp = Response::Error {
                kind: ErrorKind::Parse,
                message,
                retry_after_ms: None,
            };
            // A malformed line is the client's problem, not grounds to
            // drop the connection: answer and keep reading.
            return send_line(stream, shared, &resp);
        }
    };
    match request {
        Request::Ping => send_line(stream, shared, &Response::Pong),
        Request::Stats => {
            let snap = shared.stats.snapshot(shared.clock.now_ms());
            send_line(stream, shared, &Response::Stats(snap))
        }
        Request::Shutdown => {
            let ok = send_line(stream, shared, &Response::ShutdownAck);
            shared.begin_shutdown();
            ok
        }
        Request::Cancel => match inflight {
            Some(fl) => {
                fl.cancel.store(true, Ordering::SeqCst);
                true
            }
            None => {
                shared.stats.bump(Counter::BadRequest);
                let resp = Response::Error {
                    kind: ErrorKind::BadRequest,
                    message: "no job in flight to cancel".to_string(),
                    retry_after_ms: None,
                };
                send_line(stream, shared, &resp)
            }
        },
        Request::Submit(spec) => submit(spec, stream, shared, inflight),
    }
}

fn submit(
    spec: JobSpec,
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    inflight: &mut Option<InFlight>,
) -> bool {
    let rejection = if inflight.is_some() {
        Some("a job is already in flight on this connection".to_string())
    } else if spec.trace_len == 0 || spec.trace_len > shared.config.max_trace_len {
        Some(format!(
            "trace_len must be in 1..={}",
            shared.config.max_trace_len
        ))
    } else {
        spec.processor_config()
            .err()
            .or_else(|| spec.workload_spec().err())
    };
    if let Some(message) = rejection {
        shared.stats.bump(Counter::BadRequest);
        let resp = Response::Error {
            kind: ErrorKind::BadRequest,
            message,
            retry_after_ms: None,
        };
        return send_line(stream, shared, &resp);
    }
    let (reply, updates) = mpsc::channel();
    let cancel = Arc::new(AtomicBool::new(false));
    let job = QueuedJob {
        spec,
        submitted_ms: shared.clock.now_ms(),
        cancel: Arc::clone(&cancel),
        reply,
    };
    match shared.queue.offer(job) {
        Ok(()) => {
            *inflight = Some(InFlight { cancel, updates });
            true
        }
        Err(_rejected) => {
            shared.stats.bump(Counter::Shed);
            let resp = Response::Error {
                kind: ErrorKind::Overloaded,
                message: format!("job queue full ({} deep)", shared.config.queue_depth),
                retry_after_ms: Some(shared.config.retry_after_ms),
            };
            send_line(stream, shared, &resp)
        }
    }
}

/// Writes one response line, honoring the write deadline and the
/// short-write fault injection. `false` means the connection is unusable.
fn send_line(stream: &mut TcpStream, shared: &Shared, resp: &Response) -> bool {
    let mut line = resp.encode();
    line.push('\n');
    if shared.plan.short_response_write.trip() {
        // Injected fault: half a line, then a dead socket — the client
        // must treat the torn response as retryable.
        let half = &line.as_bytes()[..line.len() / 2];
        let _ = stream.write_all(half);
        let _ = stream.shutdown(Shutdown::Both);
        return false;
    }
    stream.write_all(line.as_bytes()).is_ok()
}

fn worker_loop(shared: &Arc<Shared>) {
    while shared.running.load(Ordering::SeqCst) {
        let Some(job) = shared.queue.claim_timeout(WORKER_POLL_MS) else {
            continue;
        };
        process_job(job, shared);
    }
}

/// Executes one claimed job: cache probe, batch formation, isolated
/// execution, cache fill, response.
fn process_job(job: QueuedJob, shared: &Arc<Shared>) {
    if shared.plan.stall_worker.trip() {
        // Injected fault: a wedged worker (drives queue-overflow tests).
        crate::clock::sleep_ms(shared.plan.stall_ms);
    }
    let Some(job) = respond_if_cached(job, shared) else {
        return;
    };
    let mut batch = vec![job];
    if batch[0].spec.batchable() && shared.config.max_batch > 1 {
        let anchor = batch[0].spec.clone();
        let peers = shared
            .queue
            .claim_matching(shared.config.max_batch - 1, |j| {
                j.spec.batchable() && j.spec.shares_stream_with(&anchor)
            });
        for peer in peers {
            if let Some(peer) = respond_if_cached(peer, shared) {
                batch.push(peer);
            }
        }
        if batch.len() > 1 {
            shared.stats.record_batch(batch.len() as u64);
        }
    }
    let outcomes = catch_unwind(AssertUnwindSafe(|| execute_batch(&batch, shared)));
    match outcomes {
        Ok(outcomes) => {
            for (job, outcome) in batch.into_iter().zip(outcomes) {
                match outcome {
                    Ok(result) => {
                        // A failed store is a miss next time, not an error
                        // now.
                        let _ = shared.cache.store(&job.spec.cache_key(), &result);
                        finish(
                            job,
                            Response::Done {
                                cache_hit: false,
                                result,
                            },
                            shared,
                        );
                    }
                    Err((kind, message)) => {
                        shared.stats.bump(match kind {
                            ErrorKind::Timeout => Counter::Timeout,
                            ErrorKind::Cancelled => Counter::Cancelled,
                            _ => Counter::BadRequest,
                        });
                        finish(
                            job,
                            Response::Error {
                                kind,
                                message,
                                retry_after_ms: None,
                            },
                            shared,
                        );
                    }
                }
            }
        }
        Err(_panic) => {
            // Panic isolation: the batch is poisoned, the server is not.
            shared.stats.bump(Counter::WorkerPanic);
            for job in batch {
                finish(
                    job,
                    Response::Error {
                        kind: ErrorKind::WorkerPanic,
                        message: "worker panicked while executing this job".to_string(),
                        retry_after_ms: None,
                    },
                    shared,
                );
            }
        }
    }
}

/// Answers `job` straight from the cache when possible; `None` means it
/// was answered, `Some(job)` hands it back for execution.
fn respond_if_cached(job: QueuedJob, shared: &Arc<Shared>) -> Option<QueuedJob> {
    if !job.spec.fresh {
        match shared.cache.probe(&job.spec.cache_key()) {
            Lookup::Hit(result) => {
                shared.stats.bump(Counter::CacheHit);
                finish(
                    job,
                    Response::Done {
                        cache_hit: true,
                        result,
                    },
                    shared,
                );
                return None;
            }
            Lookup::Quarantined => {
                shared.stats.bump(Counter::CacheQuarantined);
            }
            Lookup::Miss => {}
        }
    }
    shared.stats.bump(Counter::CacheMiss);
    Some(job)
}

/// Sends a job its terminal response and books the latency.
fn finish(job: QueuedJob, resp: Response, shared: &Shared) {
    if matches!(resp, Response::Done { .. }) {
        shared.stats.bump(Counter::Ok);
    }
    shared
        .stats
        .record_latency_ms(shared.clock.now_ms().saturating_sub(job.submitted_ms));
    // The owning connection may already be gone; that is its problem.
    let _ = job.reply.send(WorkerMsg::Done(resp));
}

type Outcome = Result<JobResult, (ErrorKind, String)>;

/// Runs a batch (1 lane = sliced solo run with deadline/cancel/progress;
/// 2+ lanes = lockstep sweep). Runs under `catch_unwind`.
fn execute_batch(batch: &[QueuedJob], shared: &Shared) -> Vec<Outcome> {
    if shared.plan.worker_panic.trip() {
        panic!("injected worker panic"); // koc-lint: allow(panic, "deterministic fault injection: the worker_panic fault class exists to prove catch_unwind isolation")
    }
    if batch.len() == 1 {
        return vec![execute_solo(&batch[0], shared)];
    }
    let mut configs = Vec::with_capacity(batch.len());
    let mut budgets = Vec::with_capacity(batch.len());
    for job in batch {
        match job.spec.processor_config() {
            Ok(config) => {
                configs.push(config);
                budgets.push(job.spec.cycle_budget);
            }
            Err(message) => {
                // Validated at submit; a mismatch here means the spec
                // mutated, which is a bug — fail the whole batch loudly.
                return batch
                    .iter()
                    .map(|_| Err((ErrorKind::BadRequest, message.clone())))
                    .collect();
            }
        }
    }
    let wspec = match batch[0].spec.workload_spec() {
        Ok(wspec) => wspec,
        Err(message) => {
            return batch
                .iter()
                .map(|_| Err((ErrorKind::BadRequest, message.clone())))
                .collect();
        }
    };
    LockstepSweep::new(&configs, wspec.source())
        .budgets(&budgets)
        .run()
        .iter()
        .map(|stats| Ok(JobResult::from_sim_stats(stats)))
        .collect()
}

/// One lane, sliced by `slice_cycles` so deadline, cancellation, and
/// progress are observed between slices without perturbing the
/// simulation.
fn execute_solo(job: &QueuedJob, shared: &Shared) -> Outcome {
    let spec = &job.spec;
    let config = spec.processor_config().map_err(bad_request)?;
    let wspec = spec.workload_spec().map_err(bad_request)?;
    let mut proc = Processor::new(config, wspec.source());
    let deadline_at = spec.deadline_ms.map(|d| job.submitted_ms.saturating_add(d));
    loop {
        if job.cancel.load(Ordering::SeqCst) {
            return Err((ErrorKind::Cancelled, "job cancelled".to_string()));
        }
        if deadline_at.is_some_and(|d| shared.clock.deadline_expired(d)) {
            return Err((
                ErrorKind::Timeout,
                format!("deadline of {} ms exceeded", spec.deadline_ms.unwrap_or(0)),
            ));
        }
        let target = proc
            .cycle()
            .saturating_add(shared.config.slice_cycles.max(1));
        match proc.advance_slice(usize::MAX, target, spec.cycle_budget) {
            SliceOutcome::Complete | SliceOutcome::BudgetExhausted => break,
            SliceOutcome::CycleTarget | SliceOutcome::FetchTarget => {
                if spec.progress {
                    let _ = job.reply.send(WorkerMsg::Progress {
                        cycles: proc.cycle(),
                        committed: proc.stats().committed_instructions,
                    });
                }
            }
        }
    }
    Ok(JobResult::from_sim_stats(&proc.into_stats()))
}

fn bad_request(message: String) -> (ErrorKind, String) {
    (ErrorKind::BadRequest, message)
}
