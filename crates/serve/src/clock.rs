//! The service's only window onto wall-clock time.
//!
//! Simulation results must stay a pure function of (config, workload seed),
//! so the determinism lint bans `std::time` across `koc-serve` — except in
//! this file, which is exempted by `lint.toml`'s scoped
//! `wall_clock_files` entry. Everything operational (connection deadlines,
//! job deadlines, retry backoff, latency accounting) goes through
//! [`ServeClock`] or the free helpers here, which keeps the exemption
//! auditable: one file, one import.
//!
//! Deadline *skew* is part of the fault-injection surface: a
//! [`ServeClock`] built with a non-zero skew behaves like a worker whose
//! clock runs ahead by that many milliseconds, so deadlines expire early.
//! Skew never feeds into simulation state — only into expiry checks.

use std::time::Instant;

pub use std::time::Duration;

/// Monotonic service clock with injectable skew.
#[derive(Debug)]
pub struct ServeClock {
    origin: Instant,
    skew_ms: u64,
}

impl ServeClock {
    /// A clock reading zero now, with deadline checks skewed forward by
    /// `skew_ms` (0 for an honest clock).
    pub fn with_skew(skew_ms: u64) -> Self {
        ServeClock {
            origin: Instant::now(),
            skew_ms,
        }
    }

    /// Milliseconds elapsed since the clock was created (unskewed — used
    /// for latency accounting and timestamps).
    pub fn now_ms(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Whether a deadline (a [`now_ms`](Self::now_ms) timestamp) has
    /// passed, as seen by the possibly skewed clock.
    pub fn deadline_expired(&self, deadline_at_ms: u64) -> bool {
        self.now_ms().saturating_add(self.skew_ms) > deadline_at_ms
    }
}

/// Blocks the calling thread for `ms` milliseconds (retry backoff, fault
/// stalls).
pub fn sleep_ms(ms: u64) {
    std::thread::sleep(Duration::from_millis(ms));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_expires_deadlines_early() {
        let honest = ServeClock::with_skew(0);
        let skewed = ServeClock::with_skew(3_600_000);
        let deadline = honest.now_ms() + 60_000;
        assert!(!honest.deadline_expired(deadline));
        assert!(skewed.deadline_expired(deadline));
    }
}
