#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `koc-serve`: the simulator as a fault-tolerant network service.
//!
//! A std-only TCP job server over the `koc-sim` session stack: clients
//! submit (engine config, workload) jobs as newline-delimited
//! `koc-serve/1` JSON; the server answers from a content-addressed
//! crash-safe result cache when it can, batches compatible queued jobs
//! into lockstep sweeps when it can't, and slices long solo runs through
//! `Processor::advance_slice` so every job supports wall-clock deadlines,
//! cooperative cancellation, and progress streaming.
//!
//! The robustness machinery is the point (see `server.rs` for the
//! invariants and `tests/service.rs` for their proofs): bounded queues
//! with explicit load shedding, per-connection read/write deadlines,
//! worker panic isolation, a retrying client with capped jittered
//! backoff, and a deterministic [`fault::FaultPlan`] that injects torn
//! cache writes, skipped renames, worker panics, short response writes,
//! wedged workers, and clock skew on a replayable schedule.
//!
//! Wall-clock time is confined to [`clock`]; everything else in the crate
//! is deterministic and lint-enforced as such.

pub mod cache;
pub mod client;
pub mod clock;
pub mod fault;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod stats;

pub use cache::{Lookup, ResultCache};
pub use client::{Client, ClientError, RetryPolicy, Submission};
pub use fault::{FaultPlan, FaultSet};
pub use protocol::{ErrorKind, JobResult, JobSpec, Request, Response};
pub use server::{serve, ServerConfig, ServerHandle};
pub use stats::ServeStats;
