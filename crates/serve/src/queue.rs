//! A bounded MPMC job queue with explicit load shedding.
//!
//! The queue never grows past its capacity: a submit against a full queue
//! is *rejected immediately* (the server turns that into a 429-style
//! `overloaded` response with a `Retry-After` hint) instead of queueing
//! unbounded work the server cannot finish. Workers block on a condvar
//! with a timeout so shutdown is prompt, and the batching path can pull
//! every queued job matching a predicate in one critical section.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

use crate::clock::Duration;

/// A bounded multi-producer multi-consumer queue.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<VecDeque<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn bounded(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues `item`, or hands it back when the queue is full (the
    /// load-shedding signal — nothing ever blocks or grows).
    ///
    /// # Errors
    /// Returns `item` itself when the queue is at capacity.
    pub fn offer(&self, item: T) -> Result<(), T> {
        let mut q = self.guard();
        if q.len() >= self.capacity {
            return Err(item);
        }
        q.push_back(item);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, waiting up to `timeout_ms` for one.
    pub fn claim_timeout(&self, timeout_ms: u64) -> Option<T> {
        let mut q = self.guard();
        if let Some(item) = q.pop_front() {
            return Some(item);
        }
        // Condvar poisoning mirrors the queue-lock poisoning case: another
        // worker already panicked; recovering the guard keeps the server
        // draining.
        let (mut q, _timed_out) = match self
            .ready
            .wait_timeout(q, Duration::from_millis(timeout_ms))
        {
            Ok(pair) => pair,
            Err(poisoned) => poisoned.into_inner(),
        };
        q.pop_front()
    }

    /// Removes and returns every queued item matching `keep`, oldest
    /// first, up to `limit` — the lockstep batch-formation primitive.
    pub fn claim_matching(&self, limit: usize, mut keep: impl FnMut(&T) -> bool) -> Vec<T> {
        let mut q = self.guard();
        let mut taken = Vec::new();
        let mut rest = VecDeque::with_capacity(q.len());
        while let Some(item) = q.pop_front() {
            if taken.len() < limit && keep(&item) {
                taken.push(item);
            } else {
                rest.push_back(item);
            }
        }
        *q = rest;
        taken
    }

    /// Items currently queued.
    pub fn depth(&self) -> usize {
        self.guard().len()
    }

    fn guard(&self) -> MutexGuard<'_, VecDeque<T>> {
        // A poisoned queue lock means a producer or worker panicked
        // mid-push/pop of a plain VecDeque; the structure is still valid,
        // and recovering keeps the server serving (panic isolation is the
        // crate's contract).
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_queue_sheds_instead_of_growing() {
        let q = BoundedQueue::bounded(2);
        assert!(q.offer(1).is_ok());
        assert!(q.offer(2).is_ok());
        assert_eq!(q.offer(3), Err(3));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.claim_timeout(0), Some(1));
        assert!(q.offer(3).is_ok());
    }

    #[test]
    fn claim_matching_takes_only_matches_in_order() {
        let q = BoundedQueue::bounded(8);
        for i in 0..6 {
            q.offer(i).unwrap();
        }
        let even = q.claim_matching(2, |i| i % 2 == 0);
        assert_eq!(even, vec![0, 2]);
        assert_eq!(q.depth(), 4);
        let rest = q.claim_matching(usize::MAX, |_| true);
        assert_eq!(rest, vec![1, 3, 4, 5]);
    }

    #[test]
    fn claim_timeout_wakes_on_offer() {
        use std::sync::Arc;
        let q = Arc::new(BoundedQueue::bounded(1));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.claim_timeout(2_000));
        crate::clock::sleep_ms(20);
        q.offer(42).unwrap();
        assert_eq!(t.join().unwrap(), Some(42));
    }
}
