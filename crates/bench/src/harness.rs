//! The machine-readable performance harness: a canonical quick-suite over
//! both commit engines, timed end to end, emitted as `BENCH_<n>.json`, and
//! diffable against a committed baseline with separate thresholds for
//! cycle-accuracy and wall-clock speed.
//!
//! Two consumers drive this module:
//!
//! * **`koc-bench harness`** runs the suite and writes the JSON report.
//!   Cycle counts and retired-instruction counts are fully deterministic
//!   (seeded workload generation, deterministic simulation), so they double
//!   as an accuracy fingerprint of the simulator. Wall-clock figures
//!   (Mcycles/s, MIPS) record the perf trajectory of the simulator itself.
//! * **`koc-bench compare`** diffs a fresh report against
//!   `bench/baseline.json`. Cycle drift fails at zero tolerance by default
//!   — any change to simulated timing must be intentional and re-baselined
//!   — while wall-clock regression has its own, optional thresholds
//!   (machine-dependent, so CI gates on cycles and soft-checks speed).
//!
//! The JSON schema (`koc-bench-harness/1`):
//!
//! ```json
//! {
//!   "schema": "koc-bench-harness/1",
//!   "suite": "quick",
//!   "trace_len": 8000,
//!   "source": "materialized",
//!   "filter": null,
//!   "engine_filter": null,
//!   "results": [
//!     {"workload": "stream_add", "engine": "baseline", "cycles": 123,
//!      "retired": 8000, "ipc": 0.5, "wall_seconds": 0.01,
//!      "mcycles_per_sec": 12.3, "mips": 0.8, "peak_inflight": 128}
//!   ]
//! }
//! ```
//!
//! `filter` echoes `--only`, `engine_filter` echoes `--engine`; both are
//! `null` for full runs and absent in pre-filter baselines (the parser
//! defaults them).
//!
//! # Timing methodology
//!
//! `wall_seconds` covers **simulation only**: the timer starts after the
//! workload (materialized mode) or its streaming source (streamed mode)
//! has been constructed, so materialized and streamed figures are
//! comparable — a streamed run's timed region still includes the lazy
//! per-instruction generation it performs while simulating, which *is*
//! its ingestion cost, but no longer the source setup. The harness also
//! runs one small untimed simulation per engine up front so the first
//! timed run does not absorb one-time process warm-up (page faults,
//! allocator growth), which would otherwise skew the first row of every
//! report.

use crate::report::Report;
use koc_isa::json::{parse_versioned, Json};
use koc_sim::{run_lockstep, Processor, ProcessorConfig, SimStats, SourceMode};
use koc_workloads::{Suite, Workload, WorkloadSpec};
use serde::Serialize;
use std::time::Instant;

/// Dynamic trace length of the quick suite (CI's accuracy gate).
pub const QUICK_TRACE_LEN: usize = 8_000;
/// Dynamic trace length of the full suite.
pub const FULL_TRACE_LEN: usize = 30_000;

/// Schema identifier embedded in every report.
pub const SCHEMA: &str = "koc-bench-harness/1";

/// One timed simulation: a workload under one commit engine.
#[derive(Debug, Clone, Serialize)]
pub struct BenchEntry {
    /// Workload name (suite name of the kernel).
    pub workload: String,
    /// Commit engine: `"baseline"` (in-order ROB) or `"cooo"`
    /// (checkpointed out-of-order).
    pub engine: String,
    /// Simulated cycles (deterministic; the accuracy fingerprint).
    pub cycles: u64,
    /// Retired (committed) instructions (deterministic).
    pub retired: u64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Host wall-clock seconds for the run.
    pub wall_seconds: f64,
    /// Simulation throughput in millions of simulated cycles per
    /// wall-clock second.
    pub mcycles_per_sec: f64,
    /// Simulation throughput in millions of retired instructions per
    /// wall-clock second.
    pub mips: f64,
    /// Peak window occupancy (maximum simultaneously in-flight
    /// instructions; deterministic).
    pub peak_inflight: usize,
}

/// A full harness run: every selected workload of the canonical suite under
/// both commit engines.
#[derive(Debug, Clone, Serialize)]
pub struct BenchReport {
    /// Schema identifier ([`SCHEMA`]).
    pub schema: String,
    /// `"quick"` or `"full"`.
    pub suite: String,
    /// Dynamic trace length every workload was generated at.
    pub trace_len: usize,
    /// How workloads were fed to the pipeline: `"materialized"` (traces
    /// generated up front) or `"streamed"` (pulled lazily through the
    /// replay window). Cycle counts are identical either way; wall-clock
    /// figures for streamed runs include generation.
    pub source: String,
    /// The `--only` workload filter this report was produced with, if any
    /// (`null` = the whole canonical suite).
    pub filter: Option<String>,
    /// The `--engine` filter this report was produced with, if any
    /// (`null` = both engines).
    pub engine_filter: Option<String>,
    /// Lane count of a `--grid <n>` run (`null` for plain harness runs;
    /// absent in older reports, defaulted by the parser).
    pub grid_lanes: Option<usize>,
    /// Aggregate lockstep-over-per-config speedup of a grid run (`null`
    /// for plain harness runs).
    pub grid_speedup: Option<f64>,
    /// One entry per (workload, engine), in suite-then-engine order.
    pub results: Vec<BenchEntry>,
}

impl BenchReport {
    /// The entry for `(workload, engine)`, if present.
    pub fn entry(&self, workload: &str, engine: &str) -> Option<&BenchEntry> {
        self.results
            .iter()
            .find(|e| e.workload == workload && e.engine == engine)
    }

    /// Renders the report as the aligned plain-text table the experiment
    /// driver prints (one formatting path for humans, JSON for machines).
    pub fn to_table(&self) -> Report {
        let mut filter = self
            .filter
            .as_deref()
            .map(|f| format!(", only {f}"))
            .unwrap_or_default();
        if let Some(engine) = &self.engine_filter {
            filter.push_str(&format!(", engine {engine}"));
        }
        let mut r = Report::new(
            format!(
                "harness — {} suite (trace_len {}, {} sources{filter})",
                self.suite, self.trace_len, self.source
            ),
            &[
                "workload",
                "engine",
                "cycles",
                "retired",
                "IPC",
                "Mcyc/s",
                "MIPS",
                "peak-window",
            ],
        );
        for e in &self.results {
            r.push_row(vec![
                e.workload.clone(),
                e.engine.clone(),
                e.cycles.to_string(),
                e.retired.to_string(),
                format!("{:.3}", e.ipc),
                format!("{:.1}", e.mcycles_per_sec),
                format!("{:.2}", e.mips),
                e.peak_inflight.to_string(),
            ]);
        }
        r.push_note("cycles/retired/peak-window are deterministic (accuracy gate);");
        r.push_note("Mcyc/s and MIPS are host wall-clock (perf trajectory).");
        r
    }
}

/// The two canonical machines the harness times: the Table 1 in-order
/// baseline and the paper's headline checkpointed configuration, both at
/// 1000-cycle memory.
pub fn engines() -> [(&'static str, ProcessorConfig); 2] {
    [
        ("baseline", ProcessorConfig::baseline(128, 1000)),
        ("cooo", ProcessorConfig::cooo(128, 2048, 1000)),
    ]
}

/// The canonical workload list as lazy specs: the paper's five-kernel suite
/// plus the MLP-contrast pair (`pointer_chase` is the memory-bound case the
/// event-driven fast-forward exists for).
pub fn specs(trace_len: usize) -> Vec<WorkloadSpec> {
    let mut all = Suite::paper().specs(trace_len);
    all.extend(Suite::mlp_contrast().specs(trace_len));
    all
}

/// The canonical workload list, materialized.
pub fn workloads(trace_len: usize) -> Vec<Workload> {
    specs(trace_len).iter().map(|s| s.materialize()).collect()
}

/// The canonical workload names, for `--list` and `--only` validation.
pub fn workload_names() -> Vec<String> {
    // The names do not depend on the trace length.
    specs(QUICK_TRACE_LEN)
        .iter()
        .map(|s| s.name().to_string())
        .collect()
}

/// What [`run_with`] should run.
#[derive(Debug, Clone, Default)]
pub struct HarnessOptions {
    /// `false` runs the full suite length ([`FULL_TRACE_LEN`]).
    pub quick: bool,
    /// Restrict the run to one workload of the canonical suite
    /// (`--only <workload>`); `None` runs everything.
    pub only: Option<String>,
    /// Restrict the run to one commit engine (`--engine baseline|cooo`);
    /// `None` runs both. CI and local profiling use this to time one
    /// engine without paying for the other.
    pub engine: Option<String>,
    /// Feed runs from materialized traces or stream them on demand
    /// (`--source`). Cycle counts are identical; streamed wall-clock
    /// includes generation.
    pub source: SourceMode,
}

/// Runs the canonical suite under both engines, timing each run, and
/// returns the report. Runs are sequential so the wall-clock figures
/// measure the simulator, not the host's core count.
pub fn run(quick: bool) -> BenchReport {
    run_with(&HarnessOptions {
        quick,
        ..HarnessOptions::default()
    })
    .expect("an unfiltered harness run cannot fail")
}

/// Runs the harness as described by `options` (see [`run`]).
///
/// # Errors
/// Returns a message naming the available workloads when
/// [`HarnessOptions::only`] does not match any of them.
pub fn run_with(options: &HarnessOptions) -> Result<BenchReport, String> {
    let trace_len = if options.quick {
        QUICK_TRACE_LEN
    } else {
        FULL_TRACE_LEN
    };
    let mut specs = specs(trace_len);
    if let Some(only) = &options.only {
        specs.retain(|s| s.name() == only);
        if specs.is_empty() {
            return Err(format!(
                "unknown workload '{only}' (available: {})",
                workload_names().join(", ")
            ));
        }
    }
    let mut selected = engines().to_vec();
    if let Some(engine) = &options.engine {
        selected.retain(|(name, _)| *name == engine.as_str());
        if selected.is_empty() {
            return Err(format!(
                "unknown engine '{engine}' (available: {})",
                engines()
                    .iter()
                    .map(|(n, _)| *n)
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
    }
    // One small untimed run per engine primes the process (page faults,
    // allocator growth, instruction cache) so the first timed row is
    // measured under the same conditions as the rest. The cycle cap keeps
    // the warm-up negligible even for --full or long-running workloads.
    for (_, config) in &selected {
        let warmup = specs[0].materialize();
        let _ = Processor::new(*config, &warmup.trace).run_capped(Some(2_000));
    }
    let mut results = Vec::new();
    for spec in &specs {
        // In materialized mode the trace is generated once, outside the
        // timed region, and shared by both engines — the historical
        // behaviour. In streamed mode every run pulls a fresh source; the
        // timed region covers the lazy generation performed while
        // simulating (that *is* the streamed ingestion cost) but not the
        // source construction itself.
        let materialized = match options.source {
            SourceMode::Materialized => Some(spec.materialize()),
            SourceMode::Streamed => None,
        };
        for (engine, config) in &selected {
            let stats: SimStats;
            let wall = match &materialized {
                Some(w) => {
                    let start = Instant::now();
                    stats = Processor::new(*config, &w.trace).run();
                    start.elapsed().as_secs_f64()
                }
                None => {
                    let source = spec.source();
                    let start = Instant::now();
                    stats = Processor::new(*config, source).run();
                    start.elapsed().as_secs_f64()
                }
            };
            // Release-mode guard for the checkpoint-lifecycle invariant
            // (debug builds assert it at engine teardown): every checkpoint
            // a completed run took must have committed or been squashed.
            if *engine == "cooo" {
                assert_eq!(
                    stats.checkpoints_taken,
                    stats.checkpoints_committed + stats.checkpoints_squashed,
                    "{}: checkpoint lifecycle must balance",
                    spec.name()
                );
            }
            results.push(BenchEntry {
                workload: spec.name().to_string(),
                engine: engine.to_string(),
                cycles: stats.cycles,
                retired: stats.committed_instructions,
                ipc: stats.ipc(),
                wall_seconds: wall,
                mcycles_per_sec: stats.cycles as f64 / 1e6 / wall.max(1e-9),
                mips: stats.committed_instructions as f64 / 1e6 / wall.max(1e-9),
                peak_inflight: stats.inflight.max(),
            });
        }
    }
    Ok(BenchReport {
        schema: SCHEMA.to_string(),
        suite: if options.quick { "quick" } else { "full" }.to_string(),
        trace_len,
        source: match options.source {
            SourceMode::Materialized => "materialized",
            SourceMode::Streamed => "streamed",
        }
        .to_string(),
        filter: options.only.clone(),
        engine_filter: options.engine.clone(),
        grid_lanes: None,
        grid_speedup: None,
        results,
    })
}

// ---------------------------------------------------------------------
// Grid mode: lockstep batched sweeps vs the per-config fan-out
// ---------------------------------------------------------------------

/// The canonical lane ladder for `--grid <n>`: lane 0 is the paper's
/// headline checkpointed machine, every further lane varies the checkpoint
/// count, window size and SLIQ depth so the grid exercises genuinely
/// different configurations (a sweep, not `n` copies of one machine).
pub fn grid_configs(lanes: usize) -> Vec<ProcessorConfig> {
    (0..lanes)
        .map(|k| {
            if k == 0 {
                ProcessorConfig::cooo(128, 2048, 1000)
            } else {
                let checkpoints = [8, 4, 16, 32][k % 4];
                let window = [128, 64][(k / 4) % 2];
                let sliq = [2048, 1024][(k / 8) % 2];
                ProcessorConfig::cooo(window, sliq, 1000).with_checkpoints(checkpoints)
            }
        })
        .collect()
}

/// Aggregate figures of one grid run, for the human-readable summary
/// (`crate::report::grid_table`) — every public field here is covered by
/// the `stats-coverage` lint rule, like [`SimStats`] itself.
#[derive(Debug, Clone, Serialize)]
pub struct GridSummary {
    /// Number of configurations (lanes) in the grid.
    pub lanes: usize,
    /// Number of workloads the grid ran over.
    pub workloads: usize,
    /// Total wall-clock seconds of the per-config fan-out (sum over
    /// workloads; each lane times its own run, including its own source
    /// in streamed mode).
    pub per_config_wall_seconds: f64,
    /// Total wall-clock seconds of the lockstep executor (sum over
    /// workloads; one timed region per workload covers all lanes and the
    /// single shared source).
    pub lockstep_wall_seconds: f64,
    /// Aggregate simulated-cycle throughput of the per-config fan-out,
    /// in millions of cycles per second across all lanes and workloads.
    pub per_config_mcycles_per_sec: f64,
    /// Aggregate simulated-cycle throughput of the lockstep executor.
    pub lockstep_mcycles_per_sec: f64,
    /// `lockstep_mcycles_per_sec / per_config_mcycles_per_sec` — how much
    /// faster decode-once batching is than the fan-out on this host.
    pub speedup: f64,
}

/// Runs the canonical suite over a `lanes`-configuration grid in **both**
/// execution modes — the per-config fan-out and the lockstep batched
/// executor — timing each, and hard-checks that every lane's statistics
/// are bit-identical between the modes before reporting anything.
///
/// Report shape (schema unchanged): one row per (workload, lane, mode)
/// with `workload` = `"<name>#<lane>"` and `engine` = `"per-config"` or
/// `"lockstep"`, plus one `"aggregate"` row per mode (`engine` =
/// `"per-config-aggregate"` / `"lockstep-aggregate"`) carrying the
/// whole-grid throughput — the row `compare --min-mcps
/// lockstep-aggregate:<floor>` gates on. Lane rows are the accuracy
/// fingerprint; their wall clock is the per-workload mode wall (lanes of
/// one batch are not separately timeable), so per-lane `mcycles_per_sec`
/// is only meaningful in aggregate.
///
/// # Errors
/// Returns a message on an unknown `--only` filter, on a zero-lane grid,
/// and — the hard gate — on any statistics drift between the two modes.
pub fn run_grid_with(
    options: &HarnessOptions,
    lanes: usize,
) -> Result<(BenchReport, GridSummary), String> {
    if lanes == 0 {
        return Err("--grid requires at least one lane".into());
    }
    if options.engine.is_some() {
        return Err("--engine does not apply to --grid (the lane ladder fixes the configs)".into());
    }
    let trace_len = if options.quick {
        QUICK_TRACE_LEN
    } else {
        FULL_TRACE_LEN
    };
    let mut specs = specs(trace_len);
    if let Some(only) = &options.only {
        specs.retain(|s| s.name() == only);
        if specs.is_empty() {
            return Err(format!(
                "unknown workload '{only}' (available: {})",
                workload_names().join(", ")
            ));
        }
    }
    let configs = grid_configs(lanes);
    // Same warm-up rationale as `run_with`: prime the process so the first
    // timed region is measured like the rest.
    {
        let warmup = specs[0].materialize();
        let _ = Processor::new(configs[0], &warmup.trace).run_capped(Some(2_000));
    }
    let mut results = Vec::new();
    let mut totals = [(0u64, 0u64, 0f64, 0usize); 2]; // (cycles, retired, wall, peak) per mode
    for spec in &specs {
        let materialized = match options.source {
            SourceMode::Materialized => Some(spec.materialize()),
            SourceMode::Streamed => None,
        };
        // Per-config fan-out: every lane pays for its own ingestion (in
        // streamed mode, its own full generation pass).
        let mut per_config = Vec::with_capacity(lanes);
        let start = Instant::now();
        for config in &configs {
            per_config.push(match &materialized {
                Some(w) => Processor::new(*config, &w.trace).run(),
                None => Processor::new(*config, spec.source()).run(),
            });
        }
        let per_config_wall = start.elapsed().as_secs_f64();
        // Lockstep: one shared stream forked across all lanes.
        let start = Instant::now();
        let lockstep = match &materialized {
            Some(w) => run_lockstep(&configs, &w.trace, None),
            None => run_lockstep(&configs, spec.source(), None),
        };
        let lockstep_wall = start.elapsed().as_secs_f64();
        // The zero-tolerance identity gate: lockstep is a scheduling
        // change, so any drift at all is a bug — refuse to report.
        for (lane, (p, l)) in per_config.iter().zip(&lockstep).enumerate() {
            if p != l {
                return Err(format!(
                    "{}#{lane:02}: lockstep drifted from per-config \
                     (cycles {} vs {}, retired {} vs {})",
                    spec.name(),
                    l.cycles,
                    p.cycles,
                    l.committed_instructions,
                    p.committed_instructions
                ));
            }
        }
        for (mode, stats, wall) in [
            ("per-config", &per_config, per_config_wall),
            ("lockstep", &lockstep, lockstep_wall),
        ] {
            let totals = &mut totals[usize::from(mode == "lockstep")];
            for (lane, s) in stats.iter().enumerate() {
                totals.0 += s.cycles;
                totals.1 += s.committed_instructions;
                totals.3 = totals.3.max(s.inflight.max());
                results.push(BenchEntry {
                    workload: format!("{}#{lane:02}", spec.name()),
                    engine: mode.to_string(),
                    cycles: s.cycles,
                    retired: s.committed_instructions,
                    ipc: s.ipc(),
                    wall_seconds: wall,
                    mcycles_per_sec: s.cycles as f64 / 1e6 / wall.max(1e-9),
                    mips: s.committed_instructions as f64 / 1e6 / wall.max(1e-9),
                    peak_inflight: s.inflight.max(),
                });
            }
            totals.2 += wall;
        }
    }
    let mcps = |t: &(u64, u64, f64, usize)| t.0 as f64 / 1e6 / t.2.max(1e-9);
    let summary = GridSummary {
        lanes,
        workloads: specs.len(),
        per_config_wall_seconds: totals[0].2,
        lockstep_wall_seconds: totals[1].2,
        per_config_mcycles_per_sec: mcps(&totals[0]),
        lockstep_mcycles_per_sec: mcps(&totals[1]),
        speedup: mcps(&totals[1]) / mcps(&totals[0]).max(1e-9),
    };
    for (i, mode) in ["per-config", "lockstep"].iter().enumerate() {
        let (cycles, retired, wall, peak) = totals[i];
        results.push(BenchEntry {
            workload: "aggregate".to_string(),
            engine: format!("{mode}-aggregate"),
            cycles,
            retired,
            ipc: retired as f64 / cycles.max(1) as f64,
            wall_seconds: wall,
            mcycles_per_sec: cycles as f64 / 1e6 / wall.max(1e-9),
            mips: retired as f64 / 1e6 / wall.max(1e-9),
            peak_inflight: peak,
        });
    }
    let report = BenchReport {
        schema: SCHEMA.to_string(),
        suite: format!("grid{lanes}"),
        trace_len,
        source: match options.source {
            SourceMode::Materialized => "materialized",
            SourceMode::Streamed => "streamed",
        }
        .to_string(),
        filter: options.only.clone(),
        engine_filter: None,
        grid_lanes: Some(lanes),
        grid_speedup: Some(summary.speedup),
        results,
    };
    Ok((report, summary))
}

/// Picks the default output name `BENCH_<n>.json`: one past the highest
/// index already present in `dir`, starting at 3 (the index of the PR that
/// introduced the harness) when none exist.
pub fn next_bench_path(dir: &std::path::Path) -> std::path::PathBuf {
    let mut next = 3u64;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(idx) = name
                .strip_prefix("BENCH_")
                .and_then(|s| s.strip_suffix(".json"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                next = next.max(idx + 1);
            }
        }
    }
    dir.join(format!("BENCH_{next}.json"))
}

// ---------------------------------------------------------------------
// Comparison against a committed baseline
// ---------------------------------------------------------------------

/// Thresholds for [`compare`].
#[derive(Debug, Clone)]
pub struct CompareThresholds {
    /// Allowed relative drift in `cycles` and `retired` (0.0 = exact,
    /// the default: the simulator is deterministic, so any drift is a
    /// behaviour change).
    pub cycle_tolerance: f64,
    /// Allowed wall-clock slowdown as a fraction of the baseline's
    /// `mcycles_per_sec` (e.g. `Some(0.5)` fails when the current run is
    /// less than half the baseline's speed). `None` disables the perf
    /// gate — the right setting for heterogeneous CI machines.
    pub max_slowdown: Option<f64>,
    /// Absolute host-throughput floors per engine (`--min-mcps
    /// <engine>:<value>`): every current entry of that engine must reach
    /// `value` Mcycles/s. Empty disables the check. CI runs this as a
    /// soft gate (shared runners vary), so a violation there warns rather
    /// than blocks; the cycle gate stays hard either way.
    pub min_mcps: Vec<(String, f64)>,
}

impl Default for CompareThresholds {
    fn default() -> Self {
        CompareThresholds {
            cycle_tolerance: 0.0,
            max_slowdown: None,
            min_mcps: Vec::new(),
        }
    }
}

/// The outcome of a comparison: hard failures (gate the build) and notes
/// (informational, e.g. speed deltas when the perf gate is off).
#[derive(Debug, Clone, Default)]
pub struct CompareOutcome {
    /// Threshold violations; non-empty means the comparison failed.
    pub failures: Vec<String>,
    /// Informational observations.
    pub notes: Vec<String>,
}

impl CompareOutcome {
    /// Whether every gate passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Compares a freshly generated report (JSON text) against a baseline
/// (JSON text).
///
/// # Errors
/// Returns a description of the first structural problem (unparseable
/// JSON, wrong schema) — distinct from threshold failures, which are
/// collected in the returned [`CompareOutcome`].
pub fn compare(
    baseline: &str,
    current: &str,
    thresholds: &CompareThresholds,
) -> Result<CompareOutcome, String> {
    let baseline = parse_report(baseline).map_err(|e| format!("baseline: {e}"))?;
    let current = parse_report(current).map_err(|e| format!("current: {e}"))?;
    Ok(compare_parsed(&baseline, &current, thresholds))
}

/// Reads and compares two report **files**, naming the offending file in
/// every structural error — the form CI and humans debug from. A missing,
/// truncated, or corrupt `BENCH_*.json` / `bench/baseline.json` comes back
/// as `Err` with the path and the reason; it never panics and never turns
/// into a bogus threshold verdict.
///
/// # Errors
/// A message of the form `<role> report <path>: <reason>` when either file
/// cannot be read or is not a well-formed `koc-bench-harness/1` document.
pub fn compare_files(
    baseline: &std::path::Path,
    current: &std::path::Path,
    thresholds: &CompareThresholds,
) -> Result<CompareOutcome, String> {
    let load = |role: &str, path: &std::path::Path| -> Result<BenchReport, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("{role} report {}: {e}", path.display()))?;
        parse_report(&text).map_err(|e| format!("{role} report {}: {e}", path.display()))
    };
    let baseline = load("baseline", baseline)?;
    let current = load("current", current)?;
    Ok(compare_parsed(&baseline, &current, thresholds))
}

fn compare_parsed(
    baseline: &BenchReport,
    current: &BenchReport,
    thresholds: &CompareThresholds,
) -> CompareOutcome {
    let mut outcome = CompareOutcome::default();
    if baseline.suite != current.suite || baseline.trace_len != current.trace_len {
        outcome.failures.push(format!(
            "suite mismatch: baseline {}@{} vs current {}@{} (regenerate the baseline)",
            baseline.suite, baseline.trace_len, current.suite, current.trace_len
        ));
        return outcome;
    }
    if baseline.engine_filter != current.engine_filter {
        outcome.notes.push(format!(
            "engine filters differ: baseline {:?} vs current {:?}",
            baseline.engine_filter, current.engine_filter
        ));
    }
    if baseline.source != current.source {
        // Streamed and materialized ingestion must agree cycle for cycle —
        // comparing across modes is exactly how CI asserts that — so a
        // source difference is informational, never a gate.
        outcome.notes.push(format!(
            "comparing across source modes: baseline {} vs current {}",
            baseline.source, current.source
        ));
    }
    for b in &baseline.results {
        let Some(c) = current.entry(&b.workload, &b.engine) else {
            outcome.failures.push(format!(
                "{}/{}: missing from current run",
                b.workload, b.engine
            ));
            continue;
        };
        check_count(
            &mut outcome,
            &b.workload,
            &b.engine,
            "cycles",
            b.cycles,
            c.cycles,
            thresholds.cycle_tolerance,
        );
        check_count(
            &mut outcome,
            &b.workload,
            &b.engine,
            "retired",
            b.retired,
            c.retired,
            thresholds.cycle_tolerance,
        );
        let speed_delta = if b.mcycles_per_sec > 0.0 {
            c.mcycles_per_sec / b.mcycles_per_sec - 1.0
        } else {
            0.0
        };
        match thresholds.max_slowdown {
            Some(max) if speed_delta < -max => outcome.failures.push(format!(
                "{}/{}: {:.1}% slower than baseline ({:.1} vs {:.1} Mcyc/s, limit {:.0}%)",
                b.workload,
                b.engine,
                -speed_delta * 100.0,
                c.mcycles_per_sec,
                b.mcycles_per_sec,
                max * 100.0
            )),
            _ => outcome.notes.push(format!(
                "{}/{}: {:+.1}% speed vs baseline ({:.1} Mcyc/s)",
                b.workload,
                b.engine,
                speed_delta * 100.0,
                c.mcycles_per_sec
            )),
        }
    }
    for c in &current.results {
        if baseline.entry(&c.workload, &c.engine).is_none() {
            outcome.notes.push(format!(
                "{}/{}: new entry (not in baseline)",
                c.workload, c.engine
            ));
        }
    }
    for (engine, floor) in &thresholds.min_mcps {
        let mut matched = false;
        for c in current.results.iter().filter(|c| &c.engine == engine) {
            matched = true;
            if c.mcycles_per_sec < *floor {
                outcome.failures.push(format!(
                    "{}/{}: {:.2} Mcyc/s below the {:.2} floor",
                    c.workload, c.engine, c.mcycles_per_sec, floor
                ));
            }
        }
        if !matched {
            // A floor that matches nothing is a misconfiguration (typo or
            // an engine-filtered report), not a pass.
            outcome.failures.push(format!(
                "--min-mcps {engine}:{floor}: no entries for engine '{engine}' in the current report"
            ));
        }
    }
    outcome
}

fn parse_report(text: &str) -> Result<BenchReport, String> {
    // The shared versioned front door: one place rejects empty files,
    // truncated JSON, depth bombs, and wrong/missing schema fields with
    // the same wording every `koc-*/N` document gets.
    let json = parse_versioned(text, SCHEMA)?;
    let field_str = |key: &str| -> Result<String, String> {
        Ok(json
            .get(key)
            .and_then(Json::as_str)
            .ok_or(format!("missing {key}"))?
            .to_string())
    };
    let results = match json.get("results") {
        Some(Json::Arr(items)) => items
            .iter()
            .map(parse_entry)
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err("missing results array".into()),
    };
    Ok(BenchReport {
        schema: SCHEMA.to_string(),
        suite: field_str("suite")?,
        trace_len: json
            .get("trace_len")
            .and_then(Json::as_u64)
            .ok_or("missing trace_len")? as usize,
        // Reports predating the streaming API carry neither field: they
        // were materialized, unfiltered runs.
        source: json
            .get("source")
            .and_then(Json::as_str)
            .unwrap_or("materialized")
            .to_string(),
        filter: json
            .get("filter")
            .and_then(Json::as_str)
            .map(str::to_string),
        engine_filter: json
            .get("engine_filter")
            .and_then(Json::as_str)
            .map(str::to_string),
        // Reports predating the grid mode carry neither field.
        grid_lanes: json
            .get("grid_lanes")
            .and_then(Json::as_u64)
            .map(|n| n as usize),
        grid_speedup: json.get("grid_speedup").and_then(Json::as_f64),
        results,
    })
}

fn parse_entry(json: &Json) -> Result<BenchEntry, String> {
    let int = |key: &str| -> Result<u64, String> {
        json.get(key)
            .and_then(Json::as_u64)
            .ok_or(format!("entry missing {key}"))
    };
    let num = |key: &str| -> Result<f64, String> {
        json.get(key)
            .and_then(Json::as_f64)
            .ok_or(format!("entry missing {key}"))
    };
    Ok(BenchEntry {
        workload: json
            .get("workload")
            .and_then(Json::as_str)
            .ok_or("entry missing workload")?
            .to_string(),
        engine: json
            .get("engine")
            .and_then(Json::as_str)
            .ok_or("entry missing engine")?
            .to_string(),
        cycles: int("cycles")?,
        retired: int("retired")?,
        ipc: num("ipc")?,
        wall_seconds: num("wall_seconds")?,
        mcycles_per_sec: num("mcycles_per_sec")?,
        mips: num("mips")?,
        peak_inflight: int("peak_inflight")? as usize,
    })
}

fn check_count(
    outcome: &mut CompareOutcome,
    workload: &str,
    engine: &str,
    what: &str,
    baseline: u64,
    current: u64,
    tolerance: f64,
) {
    let drift = if baseline == 0 {
        if current == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (current as f64 - baseline as f64).abs() / baseline as f64
    };
    if drift > tolerance {
        outcome.failures.push(format!(
            "{workload}/{engine}: {what} drifted {current} vs baseline {baseline} \
             ({:+.4}%, tolerance {:.4}%)",
            (current as f64 / baseline as f64 - 1.0) * 100.0,
            tolerance * 100.0
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> BenchReport {
        BenchReport {
            schema: SCHEMA.to_string(),
            suite: "quick".to_string(),
            trace_len: 100,
            source: "materialized".to_string(),
            filter: None,
            engine_filter: None,
            grid_lanes: None,
            grid_speedup: None,
            results: vec![BenchEntry {
                workload: "stream_add".to_string(),
                engine: "baseline".to_string(),
                cycles: 1000,
                retired: 100,
                ipc: 0.1,
                wall_seconds: 0.5,
                mcycles_per_sec: 2.0,
                mips: 0.2,
                peak_inflight: 64,
            }],
        }
    }

    #[test]
    fn report_json_round_trips_through_the_parser() {
        let report = tiny_report();
        let json = report.to_json();
        let back = parse_report(&json).unwrap();
        assert_eq!(back.suite, "quick");
        assert_eq!(back.trace_len, 100);
        let e = back.entry("stream_add", "baseline").unwrap();
        assert_eq!(e.cycles, 1000);
        assert_eq!(e.retired, 100);
        assert_eq!(e.peak_inflight, 64);
        assert!((e.mcycles_per_sec - 2.0).abs() < 1e-12);
    }

    #[test]
    fn identical_reports_compare_clean() {
        let json = tiny_report().to_json();
        let outcome = compare(&json, &json, &CompareThresholds::default()).unwrap();
        assert!(outcome.passed(), "{:?}", outcome.failures);
        assert!(!outcome.notes.is_empty(), "speed note expected");
    }

    #[test]
    fn cycle_drift_fails_at_zero_tolerance_and_passes_within_tolerance() {
        let base = tiny_report();
        let mut drifted = base.clone();
        drifted.results[0].cycles = 1001;
        let (bj, dj) = (base.to_json(), drifted.to_json());
        let strict = compare(&bj, &dj, &CompareThresholds::default()).unwrap();
        assert!(!strict.passed());
        assert!(
            strict.failures[0].contains("cycles drifted"),
            "{:?}",
            strict.failures
        );
        let loose = compare(
            &bj,
            &dj,
            &CompareThresholds {
                cycle_tolerance: 0.01,
                ..CompareThresholds::default()
            },
        )
        .unwrap();
        assert!(loose.passed(), "{:?}", loose.failures);
    }

    #[test]
    fn slowdown_gate_is_optional_and_directional() {
        let base = tiny_report();
        let mut slower = base.clone();
        slower.results[0].mcycles_per_sec = 0.5; // 4x slower
        let (bj, sj) = (base.to_json(), slower.to_json());
        let off = compare(&bj, &sj, &CompareThresholds::default()).unwrap();
        assert!(off.passed(), "perf gate off by default");
        let on = compare(
            &bj,
            &sj,
            &CompareThresholds {
                max_slowdown: Some(0.5),
                ..CompareThresholds::default()
            },
        )
        .unwrap();
        assert!(!on.passed());
        assert!(on.failures[0].contains("slower"), "{:?}", on.failures);
        // A faster run never fails the perf gate.
        let faster_outcome = compare(
            &sj,
            &bj,
            &CompareThresholds {
                max_slowdown: Some(0.5),
                ..CompareThresholds::default()
            },
        )
        .unwrap();
        assert!(faster_outcome.passed());
    }

    #[test]
    fn missing_entries_fail_and_new_entries_note() {
        let base = tiny_report();
        let mut extended = base.clone();
        extended.results.push(BenchEntry {
            workload: "gather".to_string(),
            engine: "cooo".to_string(),
            ..base.results[0].clone()
        });
        let outcome = compare(
            &extended.to_json(),
            &base.to_json(),
            &CompareThresholds::default(),
        )
        .unwrap();
        assert!(!outcome.passed(), "baseline entry missing from current");
        let outcome = compare(
            &base.to_json(),
            &extended.to_json(),
            &CompareThresholds::default(),
        )
        .unwrap();
        assert!(outcome.passed());
        assert!(outcome.notes.iter().any(|n| n.contains("new entry")));
    }

    #[test]
    fn quick_harness_runs_are_deterministic_in_their_counts() {
        // A scaled-down harness invocation (single short workload) so the
        // test stays fast: same counts on every run.
        let w = &workloads(400)[0];
        let (name, config) = &engines()[0];
        let a = Processor::new(*config, &w.trace).run();
        let b = Processor::new(*config, &w.trace).run();
        assert_eq!(a.cycles, b.cycles, "{name} must be deterministic");
        assert_eq!(a, b);
    }

    #[test]
    fn old_reports_without_source_or_filter_still_parse() {
        let mut report = tiny_report();
        report.source = "ignored".to_string();
        let json = report.to_json();
        // Strip the new fields to emulate a pre-streaming baseline file.
        let legacy = json
            .replace(",\"source\":\"ignored\"", "")
            .replace(",\"filter\":null", "");
        assert!(!legacy.contains("source"), "{legacy}");
        let back = parse_report(&legacy).unwrap();
        assert_eq!(back.source, "materialized");
        assert_eq!(back.filter, None);
    }

    #[test]
    fn comparing_across_source_modes_notes_but_does_not_gate() {
        let base = tiny_report();
        let mut streamed = base.clone();
        streamed.source = "streamed".to_string();
        let outcome = compare(
            &base.to_json(),
            &streamed.to_json(),
            &CompareThresholds::default(),
        )
        .unwrap();
        assert!(outcome.passed(), "{:?}", outcome.failures);
        assert!(
            outcome.notes.iter().any(|n| n.contains("source modes")),
            "{:?}",
            outcome.notes
        );
    }

    #[test]
    fn only_filter_restricts_the_run_and_lands_in_the_json() {
        let report = run_with(&HarnessOptions {
            quick: true,
            only: Some("pointer_chase".to_string()),
            source: SourceMode::Streamed,
            ..HarnessOptions::default()
        })
        .unwrap();
        assert_eq!(report.filter.as_deref(), Some("pointer_chase"));
        assert_eq!(report.source, "streamed");
        assert_eq!(report.results.len(), 2, "one workload x two engines");
        assert!(report.results.iter().all(|e| e.workload == "pointer_chase"));
        let parsed = parse_report(&report.to_json()).unwrap();
        assert_eq!(parsed.filter.as_deref(), Some("pointer_chase"));
        assert_eq!(parsed.source, "streamed");
    }

    #[test]
    fn engine_filter_restricts_the_run_and_lands_in_the_json() {
        let report = run_with(&HarnessOptions {
            quick: true,
            only: Some("pointer_chase".to_string()),
            engine: Some("cooo".to_string()),
            source: SourceMode::Streamed,
        })
        .unwrap();
        assert_eq!(report.engine_filter.as_deref(), Some("cooo"));
        assert_eq!(report.results.len(), 1, "one workload x one engine");
        assert!(report.results.iter().all(|e| e.engine == "cooo"));
        let parsed = parse_report(&report.to_json()).unwrap();
        assert_eq!(parsed.engine_filter.as_deref(), Some("cooo"));
        assert!(report.to_table().to_string().contains("engine cooo"));
    }

    #[test]
    fn unknown_engine_filter_lists_the_engines() {
        let err = run_with(&HarnessOptions {
            quick: true,
            engine: Some("vliw".to_string()),
            ..HarnessOptions::default()
        })
        .unwrap_err();
        assert!(err.contains("unknown engine 'vliw'"), "{err}");
        assert!(err.contains("baseline"), "{err}");
        assert!(err.contains("cooo"), "{err}");
    }

    #[test]
    fn min_mcps_floor_gates_the_named_engine_only() {
        let base = tiny_report(); // baseline entry at 2.0 Mcyc/s
        let json = base.to_json();
        let passing = CompareThresholds {
            min_mcps: vec![("baseline".to_string(), 1.0)],
            ..CompareThresholds::default()
        };
        assert!(compare(&json, &json, &passing).unwrap().passed());
        let failing = CompareThresholds {
            min_mcps: vec![("baseline".to_string(), 5.0)],
            ..CompareThresholds::default()
        };
        let outcome = compare(&json, &json, &failing).unwrap();
        assert!(!outcome.passed());
        assert!(
            outcome.failures[0].contains("below the 5.00 floor"),
            "{:?}",
            outcome.failures
        );
        // A floor that matches no entries is a misconfiguration, not a
        // silent pass (a typo must not disable the gate forever).
        let other = CompareThresholds {
            min_mcps: vec![("coo".to_string(), 99.0)],
            ..CompareThresholds::default()
        };
        let outcome = compare(&json, &json, &other).unwrap();
        assert!(!outcome.passed());
        assert!(
            outcome.failures[0].contains("no entries for engine 'coo'"),
            "{:?}",
            outcome.failures
        );
    }

    #[test]
    fn unknown_only_filter_lists_the_workloads() {
        let err = run_with(&HarnessOptions {
            quick: true,
            only: Some("swim".to_string()),
            ..HarnessOptions::default()
        })
        .unwrap_err();
        assert!(err.contains("unknown workload 'swim'"), "{err}");
        assert!(err.contains("stream_add"), "{err}");
        assert!(err.contains("pointer_chase"), "{err}");
    }

    #[test]
    fn streamed_and_materialized_runs_have_identical_counts() {
        let base = HarnessOptions {
            quick: true,
            only: Some("reduction".to_string()),
            source: SourceMode::Materialized,
            ..HarnessOptions::default()
        };
        let materialized = run_with(&base).unwrap();
        let streamed = run_with(&HarnessOptions {
            source: SourceMode::Streamed,
            ..base
        })
        .unwrap();
        for (m, s) in materialized.results.iter().zip(&streamed.results) {
            assert_eq!((m.cycles, m.retired), (s.cycles, s.retired), "{}", m.engine);
            assert_eq!(m.peak_inflight, s.peak_inflight);
        }
    }

    #[test]
    fn grid_configs_ladder_is_distinct_and_anchored() {
        let configs = grid_configs(16);
        assert_eq!(configs.len(), 16);
        assert_eq!(configs[0], ProcessorConfig::cooo(128, 2048, 1000));
        // Every lane must be a genuinely different machine — a grid of
        // clones would make the identity gate vacuous.
        for (i, a) in configs.iter().enumerate() {
            for b in &configs[i + 1..] {
                assert_ne!(a, b, "duplicate lane in the grid ladder");
            }
        }
    }

    #[test]
    fn grid_run_reports_lanes_aggregates_and_speedup() {
        let (report, summary) = run_grid_with(
            &HarnessOptions {
                quick: true,
                only: Some("stream_add".to_string()),
                source: SourceMode::Streamed,
                ..HarnessOptions::default()
            },
            3,
        )
        .unwrap();
        assert_eq!(report.suite, "grid3");
        assert_eq!(report.grid_lanes, Some(3));
        assert_eq!(report.grid_speedup, Some(summary.speedup));
        // 3 lanes x 2 modes + 2 aggregate rows.
        assert_eq!(report.results.len(), 8);
        for lane in 0..3 {
            let w = format!("stream_add#{lane:02}");
            let p = report.entry(&w, "per-config").unwrap();
            let l = report.entry(&w, "lockstep").unwrap();
            assert_eq!((p.cycles, p.retired), (l.cycles, l.retired));
        }
        let p = report.entry("aggregate", "per-config-aggregate").unwrap();
        let l = report.entry("aggregate", "lockstep-aggregate").unwrap();
        assert_eq!((p.cycles, p.retired), (l.cycles, l.retired));
        assert!(summary.speedup > 0.0);
        assert_eq!(summary.lanes, 3);
        assert_eq!(summary.workloads, 1);
        // The report round-trips with the new fields intact.
        let parsed = parse_report(&report.to_json()).unwrap();
        assert_eq!(parsed.grid_lanes, Some(3));
        assert!(parsed.grid_speedup.is_some());
    }

    #[test]
    fn grid_rejects_zero_lanes_and_engine_filters() {
        let options = HarnessOptions {
            quick: true,
            ..HarnessOptions::default()
        };
        assert!(run_grid_with(&options, 0)
            .unwrap_err()
            .contains("at least one lane"));
        let filtered = HarnessOptions {
            engine: Some("cooo".to_string()),
            ..options
        };
        assert!(run_grid_with(&filtered, 2)
            .unwrap_err()
            .contains("does not apply"));
    }

    #[test]
    fn hostile_report_files_fail_with_the_path_and_reason_not_a_panic() {
        let dir = std::env::temp_dir().join(format!("koc-bench-hostile-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.json");
        std::fs::write(&good, tiny_report().to_json()).unwrap();

        // Missing file: the path and the OS reason, non-zero (Err), no panic.
        let missing = dir.join("nope.json");
        let err = compare_files(&missing, &good, &CompareThresholds::default()).unwrap_err();
        assert!(err.contains("nope.json"), "{err}");
        assert!(err.starts_with("baseline report"), "{err}");

        // Truncated mid-document (a torn write or interrupted download).
        let torn = dir.join("torn.json");
        let full = tiny_report().to_json();
        std::fs::write(&torn, &full[..full.len() / 2]).unwrap();
        let err = compare_files(&good, &torn, &CompareThresholds::default()).unwrap_err();
        assert!(err.contains("torn.json"), "{err}");
        assert!(err.starts_with("current report"), "{err}");

        // Garbage bytes that are not JSON at all.
        let garbage = dir.join("garbage.json");
        std::fs::write(&garbage, b"\x00\xffnot json at all").unwrap();
        let err = compare_files(&garbage, &good, &CompareThresholds::default()).unwrap_err();
        assert!(err.contains("garbage.json"), "{err}");

        // A nesting bomb must be rejected by the depth cap, not overflow
        // the stack.
        let bomb = dir.join("bomb.json");
        std::fs::write(&bomb, "[".repeat(200_000)).unwrap();
        let err = compare_files(&good, &bomb, &CompareThresholds::default()).unwrap_err();
        assert!(err.contains("bomb.json"), "{err}");
        assert!(err.contains("nesting"), "{err}");

        // Valid JSON of the wrong schema names both schemas.
        let wrong = dir.join("wrong.json");
        std::fs::write(&wrong, "{\"schema\":\"koc-timeline/1\"}").unwrap();
        let err = compare_files(&good, &wrong, &CompareThresholds::default()).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
        assert!(err.contains(SCHEMA), "{err}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_and_schemaless_report_texts_are_structural_errors() {
        let thresholds = CompareThresholds::default();
        let good = tiny_report().to_json();
        for (label, bad) in [
            ("empty", ""),
            ("whitespace", "  \n "),
            ("schemaless object", "{\"results\":[]}"),
            ("non-object", "[1,2,3]"),
            ("truncated", "{\"schema\":\"koc-bench-harness/1\",\"res"),
        ] {
            let err = compare(&good, bad, &thresholds).unwrap_err();
            assert!(err.starts_with("current:"), "{label}: {err}");
            let err = compare(bad, &good, &thresholds).unwrap_err();
            assert!(err.starts_with("baseline:"), "{label}: {err}");
        }
    }

    #[test]
    fn next_bench_path_starts_at_three_and_increments() {
        let dir = std::env::temp_dir().join(format!("koc-bench-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(next_bench_path(&dir).ends_with("BENCH_3.json"));
        std::fs::write(dir.join("BENCH_7.json"), "{}").unwrap();
        assert!(next_bench_path(&dir).ends_with("BENCH_8.json"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
