//! # koc-bench
//!
//! The experiment harness: one module per table/figure of the paper's
//! evaluation, each of which re-runs the corresponding parameter sweep on the
//! SPEC2000fp-like suite and prints the same rows/series the paper reports.
//!
//! * `koc-experiments <experiment> [--len N]` — the command-line driver
//!   (`all`, `table1`, `fig1`, `fig7`, `fig9`, `fig10`, `fig11`, `fig12`,
//!   `fig13`, `fig14`).
//! * `koc-bench harness [--quick|--full]` — the machine-readable
//!   performance harness (the [`harness`] module): runs the canonical
//!   suite under both commit engines and writes `BENCH_<n>.json`;
//!   `koc-bench compare` diffs two reports with separate cycle-accuracy
//!   and wall-clock thresholds (CI's `bench-regression` gate).
//! * `cargo bench` — Criterion benchmarks, one per figure, that time a
//!   reduced version of each sweep (and print its rows once).
//!
//! `EXPERIMENTS.md` at the repository root records paper-vs-measured numbers
//! produced by this harness; `bench/baseline.json` is the committed
//! regression baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod report;

pub use harness::{BenchEntry, BenchReport, CompareOutcome, CompareThresholds};
pub use report::Report;

/// Default dynamic trace length per workload used by the command-line driver.
pub const DEFAULT_TRACE_LEN: usize = 20_000;

/// Reduced trace length used by the Criterion benchmarks so a full
/// `cargo bench` finishes in minutes.
pub const BENCH_TRACE_LEN: usize = 3_000;
