//! Figure 14 — combining out-of-order commit and SLIQ with ephemeral /
//! virtual registers: virtual tags {512, 1024, 2048} × physical registers
//! {256, 512} × memory latency {100, 500, 1000}, against the 128-entry
//! baseline and the fully up-sized limit.

use crate::Report;
use koc_sim::{ProcessorConfig, RegisterModel, Suite, Sweep};

/// Virtual-tag counts swept.
pub const VIRTUAL_TAGS: &[usize] = &[512, 1024, 2048];
/// Physical-register counts swept.
pub const PHYS_REGS: &[usize] = &[256, 512];
/// Memory latencies swept.
pub const LATENCIES: &[u32] = &[100, 500, 1000];

/// Runs the Figure 14 sweep.
pub fn run(trace_len: usize) -> Report {
    // Per latency: the two reference machines, then the virtual-register
    // grid (tags x phys) in row-major order.
    let configs = LATENCIES.iter().flat_map(|&latency| {
        [
            ProcessorConfig::baseline(128, latency),
            ProcessorConfig::baseline(4096, latency),
        ]
        .into_iter()
        .chain(VIRTUAL_TAGS.iter().flat_map(move |&vtags| {
            PHYS_REGS.iter().map(move |&phys| {
                ProcessorConfig::cooo(128, 2048, latency).with_registers(RegisterModel::Virtual {
                    virtual_tags: vtags,
                    phys_regs: phys,
                })
            })
        }))
    });
    let results = Sweep::over(configs)
        .workloads(Suite::paper())
        .trace_len(trace_len)
        .run();

    let mut report = Report::new(
        "Figure 14 — out-of-order commit + SLIQ + virtual (ephemeral) registers",
        &[
            "memory",
            "virtual tags",
            "256 phys",
            "512 phys",
            "baseline 128",
            "limit 4096",
        ],
    );
    let per_latency = 2 + VIRTUAL_TAGS.len() * PHYS_REGS.len();
    for (li, &latency) in LATENCIES.iter().enumerate() {
        let block = &results[li * per_latency..(li + 1) * per_latency];
        let (baseline, limit) = (&block[0], &block[1]);
        for (vi, &vtags) in VIRTUAL_TAGS.iter().enumerate() {
            let mut row = vec![latency.to_string(), vtags.to_string()];
            for pi in 0..PHYS_REGS.len() {
                row.push(format!(
                    "{:.2}",
                    block[2 + vi * PHYS_REGS.len() + pi].mean_ipc()
                ));
            }
            row.push(format!("{:.2}", baseline.mean_ipc()));
            row.push(format!("{:.2}", limit.mean_ipc()));
            report.push_row(row);
        }
    }
    report.push_note(
        "paper shape: with a few hundred physical registers plus virtual tags, the combined \
         machine stays well above the 128-entry baseline and approaches the up-sized limit as \
         virtual tags grow, at every memory latency",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_sweeps_every_latency_and_tag_count() {
        let r = run(1_000);
        assert_eq!(r.rows.len(), LATENCIES.len() * VIRTUAL_TAGS.len());
        assert_eq!(r.headers.len(), 2 + PHYS_REGS.len() + 2);
    }
}
