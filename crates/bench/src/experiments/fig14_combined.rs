//! Figure 14 — combining out-of-order commit and SLIQ with ephemeral /
//! virtual registers: virtual tags {512, 1024, 2048} × physical registers
//! {256, 512} × memory latency {100, 500, 1000}, against the 128-entry
//! baseline and the fully up-sized limit.

use crate::Report;
use koc_sim::{run_workloads, ProcessorConfig, RegisterModel};
use koc_workloads::spec2000fp_like_suite;

/// Virtual-tag counts swept.
pub const VIRTUAL_TAGS: &[usize] = &[512, 1024, 2048];
/// Physical-register counts swept.
pub const PHYS_REGS: &[usize] = &[256, 512];
/// Memory latencies swept.
pub const LATENCIES: &[u32] = &[100, 500, 1000];

/// Runs the Figure 14 sweep.
pub fn run(trace_len: usize) -> Report {
    let workloads = spec2000fp_like_suite(trace_len);
    let mut report = Report::new(
        "Figure 14 — out-of-order commit + SLIQ + virtual (ephemeral) registers",
        &["memory", "virtual tags", "256 phys", "512 phys", "baseline 128", "limit 4096"],
    );
    for &latency in LATENCIES {
        let baseline = run_workloads(ProcessorConfig::baseline(128, latency), &workloads);
        let limit = run_workloads(ProcessorConfig::baseline(4096, latency), &workloads);
        for &vtags in VIRTUAL_TAGS {
            let mut row = vec![latency.to_string(), vtags.to_string()];
            for &phys in PHYS_REGS {
                let config = ProcessorConfig::cooo(128, 2048, latency)
                    .with_registers(RegisterModel::Virtual { virtual_tags: vtags, phys_regs: phys });
                let r = run_workloads(config, &workloads);
                row.push(format!("{:.2}", r.mean_ipc()));
            }
            row.push(format!("{:.2}", baseline.mean_ipc()));
            row.push(format!("{:.2}", limit.mean_ipc()));
            report.push_row(row);
        }
    }
    report.push_note(
        "paper shape: with a few hundred physical registers plus virtual tags, the combined \
         machine stays well above the 128-entry baseline and approaches the up-sized limit as \
         virtual tags grow, at every memory latency",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_sweeps_every_latency_and_tag_count() {
        let r = run(1_000);
        assert_eq!(r.rows.len(), LATENCIES.len() * VIRTUAL_TAGS.len());
        assert_eq!(r.headers.len(), 2 + PHYS_REGS.len() + 2);
    }
}
