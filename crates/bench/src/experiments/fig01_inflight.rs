//! Figure 1 — IPC as a function of the number of in-flight instructions a
//! conventional processor supports (128…4096 entries, all resources scaled)
//! for perfect L2 and 100/500/1000-cycle main-memory latencies.

use crate::Report;
use koc_sim::{run_workloads, ProcessorConfig};
use koc_workloads::spec2000fp_like_suite;

/// Window sizes swept by the figure.
pub const WINDOWS: &[usize] = &[128, 256, 512, 1024, 2048, 4096];
/// Memory latencies swept by the figure (plus the perfect-L2 column).
pub const LATENCIES: &[u32] = &[100, 500, 1000];

/// Runs the Figure 1 sweep.
pub fn run(trace_len: usize) -> Report {
    let workloads = spec2000fp_like_suite(trace_len);
    let mut report = Report::new(
        "Figure 1 — IPC vs in-flight instructions and memory latency (suite average)",
        &["in-flight", "L2 perfect", "100", "500", "1000"],
    );
    for &window in WINDOWS {
        let mut row = vec![window.to_string()];
        let perfect = run_workloads(ProcessorConfig::baseline_perfect_l2(window), &workloads);
        row.push(format!("{:.2}", perfect.mean_ipc()));
        for &lat in LATENCIES {
            let r = run_workloads(ProcessorConfig::baseline(window, lat), &workloads);
            row.push(format!("{:.2}", r.mean_ipc()));
        }
        report.push_row(row);
    }
    report.push_note(
        "paper shape: at 128 entries the 1000-cycle machine is ~3.5x slower than perfect L2; \
         by 4096 entries the gap nearly closes",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_one_row_per_window() {
        let r = run(1_500);
        assert_eq!(r.rows.len(), WINDOWS.len());
        assert_eq!(r.headers.len(), 2 + LATENCIES.len());
    }
}
