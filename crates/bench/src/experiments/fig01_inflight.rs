//! Figure 1 — IPC as a function of the number of in-flight instructions a
//! conventional processor supports (128…4096 entries, all resources scaled)
//! for perfect L2 and 100/500/1000-cycle main-memory latencies.

use crate::Report;
use koc_sim::{ProcessorConfig, Suite, Sweep};

/// Window sizes swept by the figure.
pub const WINDOWS: &[usize] = &[128, 256, 512, 1024, 2048, 4096];
/// Memory latencies swept by the figure (plus the perfect-L2 column).
pub const LATENCIES: &[u32] = &[100, 500, 1000];

/// Runs the Figure 1 sweep.
pub fn run(trace_len: usize) -> Report {
    // One flat grid: per window, the perfect-L2 machine followed by one
    // machine per memory latency. `Sweep` preserves input order.
    let configs = WINDOWS.iter().flat_map(|&window| {
        std::iter::once(ProcessorConfig::baseline_perfect_l2(window)).chain(
            LATENCIES
                .iter()
                .map(move |&lat| ProcessorConfig::baseline(window, lat)),
        )
    });
    let results = Sweep::over(configs)
        .workloads(Suite::paper())
        .trace_len(trace_len)
        .run();

    let mut report = Report::new(
        "Figure 1 — IPC vs in-flight instructions and memory latency (suite average)",
        &["in-flight", "L2 perfect", "100", "500", "1000"],
    );
    let per_window = 1 + LATENCIES.len();
    for (wi, &window) in WINDOWS.iter().enumerate() {
        let mut row = vec![window.to_string()];
        for r in &results[wi * per_window..(wi + 1) * per_window] {
            row.push(format!("{:.2}", r.mean_ipc()));
        }
        report.push_row(row);
    }
    report.push_note(
        "paper shape: at 128 entries the 1000-cycle machine is ~3.5x slower than perfect L2; \
         by 4096 entries the gap nearly closes",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_one_row_per_window() {
        let r = run(1_500);
        assert_eq!(r.rows.len(), WINDOWS.len());
        assert_eq!(r.headers.len(), 2 + LATENCIES.len());
    }
}
