//! Table 1 — architectural parameters of the simulated baseline.

use crate::Report;
use koc_sim::{CommitConfig, ProcessorConfig, RegisterModel};

/// Prints the Table 1 parameters as encoded in
/// [`ProcessorConfig::table1`], so a reader can diff them against the paper.
pub fn run() -> Report {
    let c = ProcessorConfig::table1();
    let mut r = Report::new(
        "Table 1 — architectural parameters",
        &["parameter", "value"],
    );
    let rob = match c.commit {
        CommitConfig::InOrderRob { rob_size } => rob_size,
        CommitConfig::Checkpointed { .. } => 0,
    };
    let phys = match c.registers {
        RegisterModel::Conventional { phys_regs } => phys_regs,
        RegisterModel::Virtual { phys_regs, .. } => phys_regs,
    };
    let rows: Vec<(&str, String)> = vec![
        (
            "Simulation strategy",
            "trace-driven (execution-driven in the paper)".into(),
        ),
        ("Issue policy", "out-of-order".into()),
        (
            "Fetch/Commit width",
            format!("{} insns/cycle", c.fetch_width),
        ),
        ("Branch predictor", "16K-entry gshare".into()),
        (
            "Branch predictor penalty",
            format!("{} cycles", c.mispredict_penalty),
        ),
        ("I-L1 size", "32 KB 4-way, 32-byte lines".into()),
        ("I-L1 latency", format!("{} cycles", c.memory.il1.latency)),
        ("D-L1 size", "32 KB 4-way, 32-byte lines".into()),
        ("D-L1 latency", format!("{} cycles", c.memory.dl1.latency)),
        ("L2 size", "512 KB 4-way, 64-byte lines".into()),
        ("L2 latency", format!("{} cycles", c.memory.l2.latency)),
        (
            "Memory latency",
            format!("{} cycles", c.memory.memory_latency),
        ),
        ("Memory ports", format!("{}", c.mem_ports)),
        ("Physical registers", format!("{phys} entries")),
        ("Load/Store queue", format!("{} entries", c.lsq_size)),
        ("Integer queue", format!("{} entries", c.iq_size)),
        ("Floating point queue", format!("{} entries", c.iq_size)),
        ("Reorder buffer", format!("{rob} entries")),
        (
            "Integer general units",
            format!("{} (lat/rep 1/1)", c.int_alu_units),
        ),
        (
            "Integer mult/div units",
            format!("{} (lat/rep 3/1 and 20/20)", c.int_mul_units),
        ),
        (
            "FP functional units",
            format!("{} (lat/rep 2/1)", c.fp_units),
        ),
    ];
    for (k, v) in rows {
        r.push_row(vec![k.to_string(), v]);
    }
    r.push_note("values are asserted against the paper in crates/sim/src/config.rs unit tests");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_lists_all_paper_parameters() {
        let r = run();
        assert_eq!(r.rows.len(), 21);
        let text = r.render();
        assert!(text.contains("1000 cycles"));
        assert!(text.contains("4096 entries"));
    }
}
