//! Figure 10 — sensitivity to the SLIQ → instruction-queue re-insertion
//! delay (1 / 4 / 8 / 12 cycles), with a 1024-entry SLIQ and 32/64/128-entry
//! pseudo-ROB and instruction queues.

use crate::Report;
use koc_sim::{ProcessorConfig, Suite, Sweep};

/// Re-insertion delays swept (cycles).
pub const DELAYS: &[u32] = &[1, 4, 8, 12];
/// Instruction-queue sizes swept.
pub const IQ_SIZES: &[usize] = &[32, 64, 128];
/// SLIQ size used by the figure.
pub const SLIQ_SIZE: usize = 1024;
/// Memory latency used by the figure.
pub const MEMORY_LATENCY: u32 = 1000;

/// Runs the Figure 10 sweep.
pub fn run(trace_len: usize) -> Report {
    let configs = IQ_SIZES.iter().flat_map(|&iq| {
        DELAYS.iter().map(move |&delay| {
            ProcessorConfig::cooo(iq, SLIQ_SIZE, MEMORY_LATENCY).with_reinsert_delay(delay)
        })
    });
    let results = Sweep::over(configs)
        .workloads(Suite::paper())
        .trace_len(trace_len)
        .run();

    let mut report = Report::new(
        "Figure 10 — sensitivity to the SLIQ re-insertion delay (1024-entry SLIQ)",
        &[
            "IQ",
            "delay 1",
            "delay 4",
            "delay 8",
            "delay 12",
            "worst-case loss",
        ],
    );
    for (ii, &iq) in IQ_SIZES.iter().enumerate() {
        let ipcs: Vec<f64> = results[ii * DELAYS.len()..(ii + 1) * DELAYS.len()]
            .iter()
            .map(|r| r.mean_ipc())
            .collect();
        let best = ipcs.iter().cloned().fold(f64::MIN, f64::max);
        let worst = ipcs.iter().cloned().fold(f64::MAX, f64::min);
        let mut row = vec![iq.to_string()];
        row.extend(ipcs.iter().map(|v| format!("{v:.2}")));
        row.push(format!("{:.1}%", 100.0 * (1.0 - worst / best)));
        report.push_row(row);
    }
    report.push_note(
        "paper shape: even a 12-cycle delay costs only ~1%, so a slow secondary buffer works",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_has_one_row_per_iq_size() {
        let r = run(1_200);
        assert_eq!(r.rows.len(), IQ_SIZES.len());
        assert_eq!(r.headers.len(), DELAYS.len() + 2);
    }
}
