//! Figure 7 — distribution of live (not yet issued) instructions with respect
//! to the number of in-flight instructions, on a 2048-entry machine with
//! 500-cycle memory.

use crate::Report;
use koc_sim::{SimBuilder, SimStats, Suite};

/// The percentiles Figure 7 reports.
pub const PERCENTILES: &[(&str, f64)] = &[
    ("10%", 0.10),
    ("25%", 0.25),
    ("50%", 0.50),
    ("75%", 0.75),
    ("90%", 0.90),
];

/// Runs the Figure 7 measurement.
pub fn run(trace_len: usize) -> Report {
    let result = SimBuilder::baseline(2048)
        .memory_latency(500)
        .workloads(Suite::paper())
        .trace_len(trace_len)
        .build()
        .run();
    let mut report = Report::new(
        "Figure 7 — live instructions vs in-flight instructions (2048-entry window, 500-cycle memory)",
        &["percentile", "in-flight", "live", "blocked-long", "blocked-short"],
    );

    // Average the per-workload distributions, mirroring the paper's averaging
    // over SPEC2000fp.
    let stats: Vec<&SimStats> = result.per_workload.iter().map(|w| &w.stats).collect();
    let avg =
        |f: &dyn Fn(&SimStats) -> f64| stats.iter().map(|s| f(s)).sum::<f64>() / stats.len() as f64;
    for (label, p) in PERCENTILES {
        let inflight = avg(&|s| s.inflight.percentile(*p) as f64);
        let live = avg(&|s| s.live.percentile(*p) as f64);
        let long = avg(&|s| s.live_long.percentile(*p) as f64);
        let short = avg(&|s| s.live_short.percentile(*p) as f64);
        report.push_row(vec![
            label.to_string(),
            format!("{inflight:.0}"),
            format!("{live:.0}"),
            format!("{long:.0}"),
            format!("{short:.0}"),
        ]);
    }
    report.push_note(
        "paper shape: live instructions are a small fraction of in-flight instructions \
         (~70-75% of in-flight instructions have executed but cannot commit), and most live \
         instructions are blocked on long-latency loads",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_one_row_per_percentile() {
        let r = run(1_200);
        assert_eq!(r.rows.len(), PERCENTILES.len());
    }
}
