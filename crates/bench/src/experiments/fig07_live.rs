//! Figure 7 — distribution of live (not yet issued) instructions with respect
//! to the number of in-flight instructions, on a 2048-entry machine with
//! 500-cycle memory.

use crate::Report;
use koc_sim::{run_trace, ProcessorConfig};
use koc_workloads::spec2000fp_like_suite;

/// The percentiles Figure 7 reports.
pub const PERCENTILES: &[(&str, f64)] =
    &[("10%", 0.10), ("25%", 0.25), ("50%", 0.50), ("75%", 0.75), ("90%", 0.90)];

/// Runs the Figure 7 measurement.
pub fn run(trace_len: usize) -> Report {
    let workloads = spec2000fp_like_suite(trace_len);
    let config = ProcessorConfig::baseline(2048, 500);
    let mut report = Report::new(
        "Figure 7 — live instructions vs in-flight instructions (2048-entry window, 500-cycle memory)",
        &["percentile", "in-flight", "live", "blocked-long", "blocked-short"],
    );

    // Average the per-workload distributions, mirroring the paper's averaging
    // over SPEC2000fp.
    let stats: Vec<_> = workloads.iter().map(|w| run_trace(config, &w.trace)).collect();
    for (label, p) in PERCENTILES {
        let inflight =
            stats.iter().map(|s| s.inflight.percentile(*p) as f64).sum::<f64>() / stats.len() as f64;
        let live = stats.iter().map(|s| s.live.percentile(*p) as f64).sum::<f64>() / stats.len() as f64;
        let long =
            stats.iter().map(|s| s.live_long.percentile(*p) as f64).sum::<f64>() / stats.len() as f64;
        let short =
            stats.iter().map(|s| s.live_short.percentile(*p) as f64).sum::<f64>() / stats.len() as f64;
        report.push_row(vec![
            label.to_string(),
            format!("{inflight:.0}"),
            format!("{live:.0}"),
            format!("{long:.0}"),
            format!("{short:.0}"),
        ]);
    }
    report.push_note(
        "paper shape: live instructions are a small fraction of in-flight instructions \
         (~70-75% of in-flight instructions have executed but cannot commit), and most live \
         instructions are blocked on long-latency loads",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_one_row_per_percentile() {
        let r = run(1_200);
        assert_eq!(r.rows.len(), PERCENTILES.len());
    }
}
