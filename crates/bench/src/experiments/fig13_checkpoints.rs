//! Figure 13 — sensitivity of the commit mechanism to the number of available
//! checkpoints (4…128), with 2048-entry instruction queues and 2048 physical
//! registers, against the 4096-entry ROB limit.

use crate::Report;
use koc_sim::{ProcessorConfig, RegisterModel, Suite, Sweep};

/// Checkpoint counts swept by the figure.
pub const CHECKPOINTS: &[usize] = &[4, 8, 16, 32, 64, 128];
/// Instruction-queue size used by the figure (the paper uses 2048 to isolate
/// the checkpoint count as the only constraint).
pub const IQ_SIZE: usize = 2048;
/// Physical registers used by the figure.
pub const PHYS_REGS: usize = 2048;
/// Memory latency used by the figure.
pub const MEMORY_LATENCY: u32 = 1000;

/// Runs the Figure 13 sweep.
pub fn run(trace_len: usize) -> Report {
    let configs = std::iter::once(
        ProcessorConfig::baseline(4096, MEMORY_LATENCY)
            .with_registers(RegisterModel::Conventional { phys_regs: 4096 }),
    )
    .chain(CHECKPOINTS.iter().map(|&n| {
        ProcessorConfig::cooo(IQ_SIZE, 2048, MEMORY_LATENCY)
            .with_checkpoints(n)
            .with_registers(RegisterModel::Conventional {
                phys_regs: PHYS_REGS,
            })
    }));
    let results = Sweep::over(configs)
        .workloads(Suite::paper())
        .trace_len(trace_len)
        .run();
    let limit = &results[0];

    let mut report = Report::new(
        "Figure 13 — sensitivity to the number of checkpoints (2048-entry IQ, 2048 physical registers)",
        &["checkpoints", "IPC", "slowdown vs limit"],
    );
    report.push_row(vec![
        "limit (4096 ROB)".into(),
        format!("{:.2}", limit.mean_ipc()),
        "0.0%".into(),
    ]);
    for (&n, r) in CHECKPOINTS.iter().zip(&results[1..]) {
        report.push_row(vec![
            n.to_string(),
            format!("{:.2}", r.mean_ipc()),
            format!("{:.1}%", 100.0 * (1.0 - r.mean_ipc() / limit.mean_ipc())),
        ]);
    }
    report.push_note(
        "paper shape: 4 checkpoints cost ~20%, 8 checkpoints ~9%, and 32 or more level off around 6%",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_has_limit_plus_one_row_per_checkpoint_count() {
        let r = run(1_200);
        assert_eq!(r.rows.len(), CHECKPOINTS.len() + 1);
    }
}
