//! Figure 11 — average number of in-flight instructions for the same
//! configurations as Figure 9.

use crate::experiments::fig09_main::{collect, IQ_SIZES, SLIQ_SIZES};
use crate::Report;
use koc_workloads::spec2000fp_like_suite;

/// Runs the Figure 11 measurement.
pub fn run(trace_len: usize) -> Report {
    let workloads = spec2000fp_like_suite(trace_len);
    let data = collect(&workloads);
    let mut report = Report::new(
        "Figure 11 — average in-flight instructions (same configurations as Figure 9)",
        &[
            "SLIQ",
            "COoO 32",
            "COoO 64",
            "COoO 128",
            "Baseline 128",
            "Baseline 4096",
        ],
    );
    for (si, &sliq) in SLIQ_SIZES.iter().enumerate() {
        let mut row = vec![sliq.to_string()];
        for (ii, _) in IQ_SIZES.iter().enumerate() {
            row.push(format!("{:.0}", data.cooo[si][ii].mean_inflight()));
        }
        row.push(format!("{:.0}", data.baseline_128.mean_inflight()));
        row.push(format!("{:.0}", data.baseline_4096.mean_inflight()));
        report.push_row(row);
    }
    report.push_note(
        "paper shape: the checkpointed machine sustains thousands of in-flight instructions with \
         an 8-entry checkpoint table, approaching (and in some configurations exceeding) the \
         4096-entry baseline",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_has_one_row_per_sliq_size() {
        let r = run(1_200);
        assert_eq!(r.rows.len(), SLIQ_SIZES.len());
    }
}
