//! Ablation study (not a paper figure): which parts of the proposal matter?
//!
//! The paper motivates three design choices that this module isolates on the
//! headline configuration (128-entry IQ, 2048-entry SLIQ, 8 checkpoints,
//! 1000-cycle memory):
//!
//! 1. the checkpoint-placement heuristic (branches after 64 instructions vs.
//!    fixed-interval policies),
//! 2. the SLIQ itself (disable the secondary buffer and keep everything in
//!    the small instruction queues),
//! 3. the pseudo-ROB size (which bounds both classification lag and cheap
//!    branch recovery).

use crate::Report;
use koc_core::CheckpointPolicy;
use koc_sim::{run_workloads, CommitConfig, ProcessorConfig};
use koc_workloads::{spec2000fp_like_suite, Workload};

/// Memory latency used by the study.
pub const MEMORY_LATENCY: u32 = 1000;

fn with_policy(mut config: ProcessorConfig, policy: CheckpointPolicy) -> ProcessorConfig {
    if let CommitConfig::Checkpointed { policy: p, .. } = &mut config.commit {
        *p = policy;
    }
    config
}

fn ipc(config: ProcessorConfig, workloads: &[Workload]) -> f64 {
    run_workloads(config, workloads).mean_ipc()
}

/// Runs the ablation study.
pub fn run(trace_len: usize) -> Report {
    let workloads = spec2000fp_like_suite(trace_len);
    let reference = ProcessorConfig::cooo(128, 2048, MEMORY_LATENCY);
    let reference_ipc = ipc(reference, &workloads);

    let mut report = Report::new(
        "Ablation — contribution of each design choice (128 IQ / 2048 SLIQ / 8 checkpoints)",
        &["variant", "IPC", "vs reference"],
    );
    let push = |report: &mut Report, name: &str, value: f64| {
        report.push_row(vec![
            name.to_string(),
            format!("{value:.2}"),
            format!("{:+.1}%", 100.0 * (value / reference_ipc - 1.0)),
        ]);
    };

    push(&mut report, "reference (paper policy)", reference_ipc);
    push(
        &mut report,
        "checkpoint every 64 insns",
        ipc(with_policy(reference, CheckpointPolicy::every_n(64)), &workloads),
    );
    push(
        &mut report,
        "checkpoint every 512 insns",
        ipc(with_policy(reference, CheckpointPolicy::every_n(512)), &workloads),
    );
    // A crippled SLIQ (capacity 1) approximates removing the mechanism: the
    // small instruction queues must then hold every waiting instruction.
    let mut no_sliq = reference;
    if let CommitConfig::Checkpointed { sliq, .. } = &mut no_sliq.commit {
        sliq.capacity = 1;
    }
    push(&mut report, "SLIQ disabled (capacity 1)", ipc(no_sliq, &workloads));
    // Pseudo-ROB size ablation: shrink it to 16 while keeping the IQ at 128.
    let mut small_prob = reference;
    if let CommitConfig::Checkpointed { pseudo_rob_size, .. } = &mut small_prob.commit {
        *pseudo_rob_size = 16;
    }
    push(&mut report, "pseudo-ROB shrunk to 16", ipc(small_prob, &workloads));
    // Fewer checkpoints.
    push(&mut report, "4 checkpoints", ipc(reference.with_checkpoints(4), &workloads));

    report.push_note(
        "expected shape: disabling the SLIQ hurts the most on memory-bound kernels; the \
         checkpoint policy matters less as long as windows stay a few hundred instructions long",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_produces_all_variants() {
        let r = run(1_000);
        assert_eq!(r.rows.len(), 6);
        assert!(r.rows[0][0].contains("reference"));
    }
}
