//! Ablation study (not a paper figure): which parts of the proposal matter?
//!
//! The paper motivates three design choices that this module isolates on the
//! headline configuration (128-entry IQ, 2048-entry SLIQ, 8 checkpoints,
//! 1000-cycle memory):
//!
//! 1. the checkpoint-placement heuristic (branches after 64 instructions vs.
//!    fixed-interval policies),
//! 2. the SLIQ itself (disable the secondary buffer and keep everything in
//!    the small instruction queues),
//! 3. the pseudo-ROB size (which bounds both classification lag and cheap
//!    branch recovery).

use crate::Report;
use koc_core::CheckpointPolicy;
use koc_sim::{CommitConfig, ProcessorConfig, SimBuilder, Suite, Sweep};

/// Memory latency used by the study.
pub const MEMORY_LATENCY: u32 = 1000;

/// Runs the ablation study.
pub fn run(trace_len: usize) -> Report {
    let reference = SimBuilder::cooo().memory_latency(MEMORY_LATENCY);

    // A crippled SLIQ (capacity 1) approximates removing the mechanism: the
    // small instruction queues must then hold every waiting instruction.
    let no_sliq = reference.clone().sliq(1);
    // Pseudo-ROB size ablation: shrink it to 16 while keeping the IQ at 128.
    let mut small_prob = *reference.config();
    if let CommitConfig::Checkpointed {
        pseudo_rob_size, ..
    } = &mut small_prob.commit
    {
        *pseudo_rob_size = 16;
    }

    let variants: Vec<(&str, ProcessorConfig)> = vec![
        ("reference (paper policy)", *reference.config()),
        (
            "checkpoint every 64 insns",
            *reference
                .clone()
                .checkpoint_policy(CheckpointPolicy::every_n(64))
                .config(),
        ),
        (
            "checkpoint every 512 insns",
            *reference
                .clone()
                .checkpoint_policy(CheckpointPolicy::every_n(512))
                .config(),
        ),
        ("SLIQ disabled (capacity 1)", *no_sliq.config()),
        ("pseudo-ROB shrunk to 16", small_prob),
        ("4 checkpoints", *reference.clone().checkpoints(4).config()),
    ];

    let results = Sweep::over(variants.iter().map(|(_, c)| *c))
        .workloads(Suite::paper())
        .trace_len(trace_len)
        .run();
    let reference_ipc = results[0].mean_ipc();

    let mut report = Report::new(
        "Ablation — contribution of each design choice (128 IQ / 2048 SLIQ / 8 checkpoints)",
        &["variant", "IPC", "vs reference"],
    );
    for ((name, _), result) in variants.iter().zip(&results) {
        let value = result.mean_ipc();
        report.push_row(vec![
            name.to_string(),
            format!("{value:.2}"),
            format!("{:+.1}%", 100.0 * (value / reference_ipc - 1.0)),
        ]);
    }
    report.push_note(
        "expected shape: disabling the SLIQ hurts the most on memory-bound kernels; the \
         checkpoint policy matters less as long as windows stay a few hundred instructions long",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_produces_all_variants() {
        let r = run(1_000);
        assert_eq!(r.rows.len(), 6);
        assert!(r.rows[0][0].contains("reference"));
    }
}
