//! Figure 12 — breakdown of the status of instructions when they are retired
//! from the pseudo-ROB, for every (IQ, SLIQ) configuration of Figure 9.

use crate::Report;
use koc_core::RetireClass;
use koc_sim::{ProcessorConfig, Suite, Sweep};

/// Instruction-queue sizes swept.
pub const IQ_SIZES: &[usize] = &[32, 64, 128];
/// SLIQ sizes swept.
pub const SLIQ_SIZES: &[usize] = &[512, 1024, 2048];
/// Memory latency used by the figure.
pub const MEMORY_LATENCY: u32 = 1000;

/// Runs the Figure 12 measurement.
pub fn run(trace_len: usize) -> Report {
    let configs = SLIQ_SIZES.iter().flat_map(|&sliq| {
        IQ_SIZES
            .iter()
            .map(move |&iq| ProcessorConfig::cooo(iq, sliq, MEMORY_LATENCY))
    });
    let results = Sweep::over(configs)
        .workloads(Suite::paper())
        .trace_len(trace_len)
        .run();

    let mut report = Report::new(
        "Figure 12 — breakdown of instructions retired from the pseudo-ROB (percent)",
        &[
            "SLIQ/IQ",
            "moved",
            "finished",
            "short-lat",
            "finished loads",
            "long-lat loads",
            "stores",
        ],
    );
    let mut results = results.iter();
    for &sliq in SLIQ_SIZES {
        for &iq in IQ_SIZES {
            let result = results.next().expect("one result per configuration");
            // Aggregate the breakdown over the suite.
            let mut counts = [0u64; RetireClass::COUNT];
            for w in &result.per_workload {
                for &class in RetireClass::all() {
                    counts[class.index()] += w.stats.retire_breakdown.count(class);
                }
            }
            let total: u64 = counts.iter().sum::<u64>().max(1);
            let pct = |class: RetireClass| 100.0 * counts[class.index()] as f64 / total as f64;
            report.push_row(vec![
                format!("{sliq}/{iq}"),
                format!("{:.1}", pct(RetireClass::Moved)),
                format!("{:.1}", pct(RetireClass::Finished)),
                format!("{:.1}", pct(RetireClass::ShortLat)),
                format!("{:.1}", pct(RetireClass::FinishedLoad)),
                format!("{:.1}", pct(RetireClass::LongLatLoad)),
                format!("{:.1}", pct(RetireClass::Store)),
            ]);
        }
    }
    report.push_note(
        "paper shape: moved instructions are ~20-30% of retirements but need most of the storage; \
         long-latency loads are ~10% and are the root cause",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_every_configuration_and_sum_to_100() {
        let r = run(1_200);
        assert_eq!(r.rows.len(), SLIQ_SIZES.len() * IQ_SIZES.len());
        for row in &r.rows {
            let sum: f64 = row[1..].iter().map(|c| c.parse::<f64>().unwrap()).sum();
            assert!(
                (sum - 100.0).abs() < 1.0,
                "breakdown should sum to ~100%, got {sum}"
            );
        }
    }
}
