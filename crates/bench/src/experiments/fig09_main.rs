//! Figure 9 — the main performance result: out-of-order commit processors
//! with 32/64/128-entry pseudo-ROB + instruction queues and 512/1024/2048
//! SLIQ entries, against the 128- and 4096-entry conventional baselines.

use crate::Report;
use koc_sim::{ProcessorConfig, SuiteResult, Sweep};
use koc_workloads::{spec2000fp_like_suite, Workload};

/// Instruction-queue (and pseudo-ROB) sizes swept.
pub const IQ_SIZES: &[usize] = &[32, 64, 128];
/// SLIQ sizes swept.
pub const SLIQ_SIZES: &[usize] = &[512, 1024, 2048];
/// Main-memory latency used by the figure.
pub const MEMORY_LATENCY: u32 = 1000;

/// The raw results behind the figure (used by Figure 11 and 12 as well).
pub struct Fig9Data {
    /// Baseline with 128-entry ROB and queues.
    pub baseline_128: SuiteResult,
    /// Baseline with 4096-entry ROB and queues (unrealistic upper line).
    pub baseline_4096: SuiteResult,
    /// COoO results indexed by `[sliq][iq]` following the constant orders.
    pub cooo: Vec<Vec<SuiteResult>>,
}

/// Runs every configuration of the figure as one parallel sweep.
pub fn collect(workloads: &[Workload]) -> Fig9Data {
    let configs = [
        ProcessorConfig::baseline(128, MEMORY_LATENCY),
        ProcessorConfig::baseline(4096, MEMORY_LATENCY),
    ]
    .into_iter()
    .chain(SLIQ_SIZES.iter().flat_map(|&sliq| {
        IQ_SIZES
            .iter()
            .map(move |&iq| ProcessorConfig::cooo(iq, sliq, MEMORY_LATENCY))
    }));
    let mut results = Sweep::over(configs).run_on(workloads).into_iter();
    let baseline_128 = results.next().expect("baseline-128 result");
    let baseline_4096 = results.next().expect("baseline-4096 result");
    let cooo = SLIQ_SIZES
        .iter()
        .map(|_| {
            IQ_SIZES
                .iter()
                .map(|_| results.next().expect("COoO result"))
                .collect()
        })
        .collect();
    Fig9Data {
        baseline_128,
        baseline_4096,
        cooo,
    }
}

/// Runs the Figure 9 sweep and formats it.
pub fn run(trace_len: usize) -> Report {
    let workloads = spec2000fp_like_suite(trace_len);
    let data = collect(&workloads);
    let mut report = Report::new(
        "Figure 9 — main performance results (suite-average IPC, 1000-cycle memory)",
        &[
            "SLIQ",
            "COoO 32",
            "COoO 64",
            "COoO 128",
            "Baseline 128",
            "Baseline 4096",
        ],
    );
    for (si, &sliq) in SLIQ_SIZES.iter().enumerate() {
        let mut row = vec![sliq.to_string()];
        for (ii, _) in IQ_SIZES.iter().enumerate() {
            row.push(format!("{:.2}", data.cooo[si][ii].mean_ipc()));
        }
        row.push(format!("{:.2}", data.baseline_128.mean_ipc()));
        row.push(format!("{:.2}", data.baseline_4096.mean_ipc()));
        report.push_row(row);
    }
    let best = data.cooo[SLIQ_SIZES.len() - 1][IQ_SIZES.len() - 1].mean_ipc();
    let simplest = data.cooo[0][0].mean_ipc();
    report.push_note(format!(
        "largest COoO config reaches {:.0}% of the unrealistic 4096-entry baseline and is {:.0}% \
         faster than the 128-entry baseline (paper: ~90% and ~204%)",
        100.0 * best / data.baseline_4096.mean_ipc(),
        100.0 * (best / data.baseline_128.mean_ipc() - 1.0),
    ));
    report.push_note(format!(
        "simplest COoO config (32-entry IQ, 512-entry SLIQ) is {:.0}% faster than the 128-entry \
         baseline (paper: ~110%)",
        100.0 * (simplest / data.baseline_128.mean_ipc() - 1.0),
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_has_one_row_per_sliq_size() {
        let r = run(1_200);
        assert_eq!(r.rows.len(), SLIQ_SIZES.len());
        assert_eq!(r.notes.len(), 2);
    }

    #[test]
    fn collect_labels_results_with_their_configs() {
        let workloads = spec2000fp_like_suite(600);
        let data = collect(&workloads);
        assert_eq!(data.baseline_128.config.iq_size, 128);
        assert_eq!(data.baseline_4096.config.iq_size, 4096);
        assert_eq!(data.cooo[0][1].config.iq_size, IQ_SIZES[1]);
    }
}
