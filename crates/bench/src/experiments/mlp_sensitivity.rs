//! MLP sensitivity — how much of the kilo-instruction window's advantage
//! survives a *limited* memory system.
//!
//! The paper models main memory as a flat latency with unlimited
//! outstanding misses, so the checkpointed engine's memory-level
//! parallelism is bounded only by the window. This experiment replaces the
//! backend with banked DRAM and sweeps the MSHR count × main-memory
//! latency for both commit engines on the MLP-contrast workloads: on
//! `stream_mlp` (independent line-stride misses) the checkpointed engine's
//! IPC should climb with the MSHR count until the window, not the MSHR
//! file, is the limit again — while `pointer_chase` (MLP = 1) stays flat,
//! confirming the effect is memory-level parallelism and not raw latency.

use crate::Report;
use koc_sim::{DramConfig, ProcessorConfig, SuiteResult, Sweep};
use koc_workloads::Suite;

/// MSHR counts swept.
pub const MSHR_COUNTS: &[usize] = &[1, 2, 4, 8, 16, 32];
/// Main-memory latencies swept (the paper's three machines).
pub const MEMORY_LATENCIES: &[u32] = &[100, 500, 1000];

/// The DRAM part used by the sweep, with the given MSHR file size: enough
/// banks that the MSHR count is the binding limit.
pub fn dram(mshr_entries: usize) -> DramConfig {
    DramConfig {
        mshr_entries,
        banks: 16,
        row_bytes: 4096,
        act_latency: 40,
        precharge_latency: 40,
        bank_busy: 4,
    }
}

/// The two machines compared at each grid point: both have 32-entry
/// instruction queues, so the conventional ROB bounds the baseline's MLP
/// (a 32-entry window holds only a handful of loads) while the
/// checkpointed engine's effective kilo-window can keep every MSHR busy —
/// the axis along which the two separate.
fn engines(memory_latency: u32) -> [ProcessorConfig; 2] {
    [
        ProcessorConfig::baseline(32, memory_latency),
        ProcessorConfig::cooo(32, 2048, memory_latency),
    ]
}

/// Raw results: `results[latency][mshr]` = `[baseline, cooo]`, each over
/// the MLP-contrast suite (`pointer_chase`, `stream_mlp`).
pub struct MlpData {
    /// Results following [`MEMORY_LATENCIES`] × [`MSHR_COUNTS`] × engine.
    pub grid: Vec<Vec<[SuiteResult; 2]>>,
}

impl MlpData {
    /// IPC of workload `w` (0 = `pointer_chase`, 1 = `stream_mlp`) for the
    /// given grid point and engine (0 = baseline, 1 = checkpointed).
    pub fn ipc(&self, latency_idx: usize, mshr_idx: usize, engine: usize, w: usize) -> f64 {
        self.grid[latency_idx][mshr_idx][engine].per_workload[w]
            .stats
            .ipc()
    }
}

/// Runs the whole grid as one parallel sweep.
pub fn collect(trace_len: usize) -> MlpData {
    let configs = MEMORY_LATENCIES.iter().flat_map(|&lat| {
        MSHR_COUNTS.iter().flat_map(move |&mshr| {
            engines(lat).into_iter().map(move |mut c| {
                c.memory = c.memory.with_dram(dram(mshr));
                c
            })
        })
    });
    let mut results = Sweep::over(configs)
        .workloads(Suite::mlp_contrast())
        .trace_len(trace_len)
        .run()
        .into_iter();
    let grid = MEMORY_LATENCIES
        .iter()
        .map(|_| {
            MSHR_COUNTS
                .iter()
                .map(|_| {
                    let base = results.next().expect("baseline result");
                    let cooo = results.next().expect("COoO result");
                    [base, cooo]
                })
                .collect()
        })
        .collect();
    MlpData { grid }
}

/// Runs the MLP-sensitivity sweep and formats it.
pub fn run(trace_len: usize) -> Report {
    let data = collect(trace_len);
    let mut report = Report::new(
        "MLP sensitivity — IPC on stream_mlp (pointer_chase) vs MSHR count, banked DRAM",
        &[
            "MSHRs",
            "base@100",
            "COoO@100",
            "base@500",
            "COoO@500",
            "base@1000",
            "COoO@1000",
        ],
    );
    for (mi, &mshr) in MSHR_COUNTS.iter().enumerate() {
        let mut row = vec![mshr.to_string()];
        for (li, _) in MEMORY_LATENCIES.iter().enumerate() {
            for engine in 0..2 {
                row.push(format!(
                    "{:.3} ({:.3})",
                    data.ipc(li, mi, engine, 1),
                    data.ipc(li, mi, engine, 0),
                ));
            }
        }
        report.push_row(row);
    }
    let li = MEMORY_LATENCIES.len() - 1;
    let first = data.ipc(li, 0, 1, 1);
    let last = data.ipc(li, MSHR_COUNTS.len() - 1, 1, 1);
    report.push_note(format!(
        "checkpointed engine on stream_mlp at 1000-cycle memory: {:.3} IPC with {} MSHR -> \
         {:.3} IPC with {} MSHRs ({:.1}x from memory-level parallelism)",
        first,
        MSHR_COUNTS[0],
        last,
        MSHR_COUNTS[MSHR_COUNTS.len() - 1],
        last / first.max(f64::MIN_POSITIVE),
    ));
    let pc_first = data.ipc(li, 0, 1, 0);
    let pc_last = data.ipc(li, MSHR_COUNTS.len() - 1, 1, 0);
    report.push_note(format!(
        "pointer_chase is MSHR-insensitive (MLP = 1): {pc_first:.3} -> {pc_last:.3} IPC",
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use koc_workloads::kernels;

    /// Runs the checkpointed engine on one kernel at the two MSHR extremes
    /// (500-cycle memory, so the dependent chain stays fast in debug builds).
    fn mshr_extremes(kernel: &'static str, trace_len: usize) -> (f64, f64) {
        let configs = [MSHR_COUNTS[0], MSHR_COUNTS[MSHR_COUNTS.len() - 1]].map(|mshr| {
            let mut c = ProcessorConfig::cooo(128, 2048, 500);
            c.memory = c.memory.with_dram(dram(mshr));
            c
        });
        let (name, config) = kernels::mlp_contrast()
            .into_iter()
            .find(|(n, _)| *n == kernel)
            .expect("known kernel");
        let results = Sweep::over(configs)
            .workloads(Suite::kernel(name, config))
            .trace_len(trace_len)
            .run();
        (
            results[0].per_workload[0].stats.ipc(),
            results[1].per_workload[0].stats.ipc(),
        )
    }

    #[test]
    fn checkpointed_ipc_grows_with_mshrs_on_the_streaming_workload() {
        let (one, many) = mshr_extremes("stream_mlp", 2_000);
        assert!(
            many > one * 2.0,
            "stream_mlp must scale with MSHRs: 1 MSHR {one:.3} vs 32 MSHRs {many:.3}"
        );
    }

    #[test]
    fn pointer_chase_is_insensitive_to_mshrs() {
        let (one, many) = mshr_extremes("pointer_chase", 800);
        let ratio = many / one.max(f64::MIN_POSITIVE);
        assert!(
            (0.95..=1.05).contains(&ratio),
            "MLP=1 cannot profit from MSHRs: {one:.3} vs {many:.3}"
        );
    }

    #[test]
    fn report_has_one_row_per_mshr_count() {
        let r = run(400);
        assert_eq!(r.rows.len(), MSHR_COUNTS.len());
        assert_eq!(r.headers.len(), 1 + 2 * MEMORY_LATENCIES.len());
        assert_eq!(r.notes.len(), 2);
    }
}
