//! One module per table/figure of the paper's evaluation section.
//!
//! Every module exposes `run(trace_len) -> Report`; the report's rows mirror
//! the bars/lines of the corresponding figure. The `EXPERIMENTS.md` file at
//! the repository root records a paper-vs-measured comparison for each.

pub mod ablation;
pub mod fig01_inflight;
pub mod fig07_live;
pub mod fig09_main;
pub mod fig10_reinsert;
pub mod fig11_inflight;
pub mod fig12_breakdown;
pub mod fig13_checkpoints;
pub mod fig14_combined;
pub mod mlp_sensitivity;
pub mod table1_params;

use crate::Report;

/// Names of all experiments, in paper order, plus the extra ablation study
/// and the memory-backend MLP-sensitivity sweep.
pub const ALL: &[&str] = &[
    "table1",
    "fig1",
    "fig7",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "ablation",
    "mlp_sensitivity",
];

/// Runs one experiment by name.
///
/// # Errors
/// Returns an error string if the name is unknown.
pub fn run_by_name(name: &str, trace_len: usize) -> Result<Report, String> {
    match name {
        "table1" => Ok(table1_params::run()),
        "fig1" => Ok(fig01_inflight::run(trace_len)),
        "fig7" => Ok(fig07_live::run(trace_len)),
        "fig9" => Ok(fig09_main::run(trace_len)),
        "fig10" => Ok(fig10_reinsert::run(trace_len)),
        "fig11" => Ok(fig11_inflight::run(trace_len)),
        "fig12" => Ok(fig12_breakdown::run(trace_len)),
        "fig13" => Ok(fig13_checkpoints::run(trace_len)),
        "fig14" => Ok(fig14_combined::run(trace_len)),
        "ablation" => Ok(ablation::run(trace_len)),
        "mlp_sensitivity" => Ok(mlp_sensitivity::run(trace_len)),
        other => Err(format!(
            "unknown experiment '{other}'; expected one of {ALL:?}"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_is_rejected() {
        assert!(run_by_name("fig99", 100).is_err());
    }

    #[test]
    fn table1_runs_without_simulation() {
        let r = run_by_name("table1", 0).unwrap();
        assert!(!r.rows.is_empty());
    }
}
