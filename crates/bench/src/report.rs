//! Plain-text tabular reports, one per experiment, plus the full
//! per-run statistics table ([`stats_table`]) that gives every public
//! counter in [`SimStats`] a formatted row. `koc-lint`'s `stats-coverage`
//! rule checks this file mentions every public stat field, so a newly
//! added counter cannot silently stay invisible in bench output.

use koc_core::RetireClass;
use koc_serve::ServeStats;
use koc_sim::{CycleBuckets, Distribution, IntervalRecord, SimStats};

/// A formatted experiment report: a title, column headers, data rows and
/// free-form notes relating the result to the paper.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Experiment title (e.g. `"Figure 9 — main performance results"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted as strings).
    pub rows: Vec<Vec<String>>,
    /// Notes on how to read the result against the paper.
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Report {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row.
    pub fn push_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Appends a note.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders the report as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&format_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format_row(row, &widths));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }
}

/// Right-aligns one row (header or data) to the column widths — the single
/// formatting path for every line of a report.
fn format_row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .enumerate()
        .map(|(i, cell)| {
            format!(
                "{:>width$}",
                cell,
                width = widths.get(i).copied().unwrap_or(cell.len())
            )
        })
        .collect::<Vec<_>>()
        .join("  ")
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats one [`Distribution`] field as mean / p50 / p90 / max rows.
fn distribution_rows(prefix: &str, d: &Distribution, rows: &mut Vec<(String, String)>) {
    rows.push((format!("{prefix}.mean"), format!("{:.2}", d.mean())));
    rows.push((format!("{prefix}.p50"), d.percentile(0.50).to_string()));
    rows.push((format!("{prefix}.p90"), d.percentile(0.90).to_string()));
    rows.push((format!("{prefix}.max"), d.max().to_string()));
}

/// Every public field of [`SimStats`] (including the nested recovery,
/// stall, branch and memory statistics) as `(name, formatted value)` rows.
///
/// This is the exhaustive-coverage point the `stats-coverage` lint rule
/// anchors on: adding a public field to a stats struct without formatting
/// it here fails `koc-lint`.
pub fn stats_rows(stats: &SimStats) -> Vec<(String, String)> {
    let mut rows: Vec<(String, String)> = Vec::new();
    let mut push = |name: &str, value: String| rows.push((name.to_string(), value));

    push("cycles", stats.cycles.to_string());
    push(
        "committed_instructions",
        stats.committed_instructions.to_string(),
    );
    push(
        "dispatched_instructions",
        stats.dispatched_instructions.to_string(),
    );
    push("ipc", format!("{:.4}", stats.ipc()));
    push("checkpoints_taken", stats.checkpoints_taken.to_string());
    push(
        "checkpoints_committed",
        stats.checkpoints_committed.to_string(),
    );
    push(
        "checkpoints_squashed",
        stats.checkpoints_squashed.to_string(),
    );
    push("sliq_moved", stats.sliq_moved.to_string());
    push("sliq_high_water", stats.sliq_high_water.to_string());
    push("replay_window_peak", stats.replay_window_peak.to_string());
    push("budget_exhausted", stats.budget_exhausted.to_string());

    distribution_rows("inflight", &stats.inflight, &mut rows);
    distribution_rows("live", &stats.live, &mut rows);
    distribution_rows("live_long", &stats.live_long, &mut rows);
    distribution_rows("live_short", &stats.live_short, &mut rows);

    let mut push = |name: &str, value: String| rows.push((name.to_string(), value));
    for &class in RetireClass::all() {
        push(
            &format!("retire_breakdown.{class:?}"),
            format!("{:.4}", stats.retire_breakdown.fraction(class)),
        );
    }

    push("branches.predicted", stats.branches.predicted.to_string());
    push(
        "branches.mispredicted",
        stats.branches.mispredicted.to_string(),
    );

    let r = &stats.recoveries;
    push("recoveries.near_recoveries", r.near_recoveries.to_string());
    push(
        "recoveries.checkpoint_rollbacks",
        r.checkpoint_rollbacks.to_string(),
    );
    push("recoveries.exceptions", r.exceptions.to_string());
    push(
        "recoveries.squashed_instructions",
        r.squashed_instructions.to_string(),
    );
    push(
        "recoveries.reexecuted_instructions",
        r.reexecuted_instructions.to_string(),
    );

    let s = &stats.stalls;
    push("stalls.iq_full", s.iq_full.to_string());
    push("stalls.rob_full", s.rob_full.to_string());
    push("stalls.lsq_full", s.lsq_full.to_string());
    push("stalls.regs_full", s.regs_full.to_string());
    push("stalls.redirect", s.redirect.to_string());
    push("stalls.checkpoint_full", s.checkpoint_full.to_string());

    let m = &stats.memory;
    push("memory.data_accesses", m.data_accesses.to_string());
    push("memory.store_accesses", m.store_accesses.to_string());
    push("memory.inst_accesses", m.inst_accesses.to_string());
    push("memory.dl1_hits", m.dl1_hits.to_string());
    push("memory.dl1_misses", m.dl1_misses.to_string());
    push("memory.l2_hits", m.l2_hits.to_string());
    push("memory.l2_misses", m.l2_misses.to_string());
    push("memory.mshr_full_stalls", m.mshr_full_stalls.to_string());
    push("memory.row_buffer_hits", m.row_buffer_hits.to_string());
    push("memory.row_buffer_misses", m.row_buffer_misses.to_string());
    push(
        "memory.row_buffer_conflicts",
        m.row_buffer_conflicts.to_string(),
    );
    push("memory.prefetch_issued", m.prefetch_issued.to_string());
    push("memory.prefetch_useful", m.prefetch_useful.to_string());

    rows
}

/// The full per-run statistics as a rendered [`Report`].
pub fn stats_table(title: impl Into<String>, stats: &SimStats) -> Report {
    let mut report = Report::new(title, &["stat", "value"]);
    for (name, value) in stats_rows(stats) {
        report.push_row(vec![name, value]);
    }
    report.push_note("every public SimStats field has a row (enforced by koc-lint stats-coverage)");
    report
}

/// The aggregate figures of a `--grid` harness run as a rendered
/// [`Report`]: both execution modes side by side plus the speedup. Every
/// public field of [`GridSummary`](crate::harness::GridSummary) has a row
/// here (enforced by the `stats-coverage` lint rule, like [`stats_rows`]).
pub fn grid_table(summary: &crate::harness::GridSummary) -> Report {
    let mut report = Report::new(
        format!(
            "grid — {} lanes x {} workloads, lockstep vs per-config",
            summary.lanes, summary.workloads
        ),
        &["mode", "wall (s)", "aggregate Mcyc/s"],
    );
    report.push_row(vec![
        "per-config".to_string(),
        format!("{:.3}", summary.per_config_wall_seconds),
        format!("{:.2}", summary.per_config_mcycles_per_sec),
    ]);
    report.push_row(vec![
        "lockstep".to_string(),
        format!("{:.3}", summary.lockstep_wall_seconds),
        format!("{:.2}", summary.lockstep_mcycles_per_sec),
    ]);
    report.push_note(format!(
        "lockstep speedup: {:.2}x aggregate simulated-cycle throughput",
        summary.speedup
    ));
    report.push_note("per-lane statistics are bit-identical between modes (hard-checked)");
    report
}

/// Every public field of [`CycleBuckets`] — the top-down cycle-accounting
/// result — as `(bucket, formatted value)` rows, each with its share of the
/// total. Anchored by the `stats-coverage` lint rule exactly like
/// [`stats_rows`]: a new bucket cannot stay invisible in bench output.
pub fn accounting_rows(buckets: &CycleBuckets) -> Vec<(String, String)> {
    let total = buckets.total();
    let mut rows: Vec<(String, String)> = Vec::new();
    let mut push = |name: &str, value: u64| {
        let pct = if total == 0 {
            0.0
        } else {
            value as f64 * 100.0 / total as f64
        };
        rows.push((name.to_string(), format!("{value} ({pct:.1}%)")));
    };
    push("committing", buckets.committing);
    push("window_full", buckets.window_full);
    push("iq_full", buckets.iq_full);
    push("regfile_exhausted", buckets.regfile_exhausted);
    push("checkpoint_table_full", buckets.checkpoint_table_full);
    push("mshr_full", buckets.mshr_full);
    push("memory_wait", buckets.memory_wait);
    push("fetch_starved", buckets.fetch_starved);
    push("execute_wait", buckets.execute_wait);
    rows
}

/// The top-down cycle-accounting result as a rendered [`Report`], one row
/// per bucket plus the total (which equals the run's cycle count — every
/// cycle lands in exactly one bucket).
pub fn accounting_table(title: impl Into<String>, buckets: &CycleBuckets) -> Report {
    let mut report = Report::new(title, &["bucket", "cycles"]);
    for (name, value) in accounting_rows(buckets) {
        report.push_row(vec![name, value]);
    }
    report.push_row(vec!["total".to_string(), buckets.total().to_string()]);
    report.push_note("buckets partition the run: their sum equals total cycles exactly");
    report
}

/// Every public field of [`ServeStats`] — the job server's lifetime
/// counters — as `(name, formatted value)` rows. Anchored by the
/// `stats-coverage` lint rule exactly like [`stats_rows`]: a counter added
/// to the service cannot stay invisible in its report.
pub fn serve_rows(stats: &ServeStats) -> Vec<(String, String)> {
    let mut rows: Vec<(String, String)> = Vec::new();
    let mut push = |name: &str, value: String| rows.push((name.to_string(), value));
    push("requests", stats.requests.to_string());
    push("ok", stats.ok.to_string());
    push("parse_errors", stats.parse_errors.to_string());
    push("bad_requests", stats.bad_requests.to_string());
    push("shed", stats.shed.to_string());
    push("cache_hits", stats.cache_hits.to_string());
    push("cache_misses", stats.cache_misses.to_string());
    let hit_rate = stats.cache_hits as f64 / (stats.cache_hits + stats.cache_misses).max(1) as f64;
    push("cache_hit_rate", format!("{:.3}", hit_rate));
    push("cache_quarantined", stats.cache_quarantined.to_string());
    push("timeouts", stats.timeouts.to_string());
    push("cancelled", stats.cancelled.to_string());
    push("worker_panics", stats.worker_panics.to_string());
    push("batches", stats.batches.to_string());
    push("batched_lanes", stats.batched_lanes.to_string());
    push("wall_ms", stats.wall_ms.to_string());
    push("requests_per_sec", format!("{:.2}", stats.requests_per_sec));
    push("p50_ms", format!("{:.1}", stats.p50_ms));
    push("p99_ms", format!("{:.1}", stats.p99_ms));
    rows
}

/// The job server's counters as a rendered [`Report`] — what the load
/// generator prints and what CI archives as the serve report.
pub fn serve_table(title: impl Into<String>, stats: &ServeStats) -> Report {
    let mut report = Report::new(title, &["stat", "value"]);
    for (name, value) in serve_rows(stats) {
        report.push_row(vec![name, value]);
    }
    report
        .push_note("every public ServeStats field has a row (enforced by koc-lint stats-coverage)");
    report.push_note(
        "wall-clock figures (requests/s, p50/p99) are host-dependent; counters are exact",
    );
    report
}

/// An interval time-series (see `koc_obs::TimelineRecorder`) as a rendered
/// [`Report`]: one row per interval with per-cycle rates derived from each
/// [`IntervalRecord`]'s sums, plus the interval's dominant stall bucket.
pub fn timeline_table(title: impl Into<String>, records: &[IntervalRecord]) -> Report {
    let mut report = Report::new(
        title,
        &[
            "start",
            "cycles",
            "IPC",
            "disp/cyc",
            "inflight",
            "live",
            "ckpts",
            "mshr",
            "replay",
            "top-stall",
        ],
    );
    for r in records {
        let per_cycle = |sum: u64| sum as f64 / r.cycles.max(1) as f64;
        let (top_name, top_cycles) = r
            .stall
            .named()
            .into_iter()
            .max_by_key(|&(_, v)| v)
            .unwrap_or(("-", 0));
        report.push_row(vec![
            r.start_cycle.to_string(),
            r.cycles.to_string(),
            format!("{:.3}", per_cycle(r.committed)),
            format!("{:.3}", per_cycle(r.dispatched)),
            format!("{:.1}", per_cycle(r.inflight_sum)),
            format!("{:.1}", per_cycle(r.live_sum)),
            format!("{:.2}", per_cycle(r.live_checkpoints_sum)),
            format!("{:.2}", per_cycle(r.mshr_sum)),
            format!("{:.1}", per_cycle(r.replay_window_sum)),
            if top_cycles == 0 {
                "-".to_string()
            } else {
                top_name.to_string()
            },
        ]);
    }
    report.push_note(
        "occupancy columns are interval means (sums / cycles); IPC is committed / cycles",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns_and_includes_notes() {
        let mut r = Report::new("Figure X", &["config", "IPC"]);
        r.push_row(vec!["baseline 128".into(), "0.41".into()]);
        r.push_row(vec!["COoO".into(), "1.25".into()]);
        r.push_note("higher is better");
        let text = r.render();
        assert!(text.contains("== Figure X =="));
        assert!(text.contains("baseline 128"));
        assert!(text.contains("note: higher is better"));
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 5);
    }

    #[test]
    fn display_matches_render() {
        let r = Report::new("T", &["a"]);
        assert_eq!(r.to_string(), r.render());
    }

    #[test]
    fn stats_rows_cover_every_top_level_field_and_nested_group() {
        let rows = stats_rows(&SimStats::default());
        let names: Vec<&str> = rows.iter().map(|(n, _)| n.as_str()).collect();
        for expected in [
            "cycles",
            "committed_instructions",
            "dispatched_instructions",
            "checkpoints_taken",
            "checkpoints_committed",
            "checkpoints_squashed",
            "sliq_moved",
            "sliq_high_water",
            "replay_window_peak",
            "budget_exhausted",
            "inflight.mean",
            "live.mean",
            "live_long.mean",
            "live_short.mean",
            "retire_breakdown.Moved",
            "branches.predicted",
            "branches.mispredicted",
            "recoveries.near_recoveries",
            "stalls.iq_full",
            "memory.prefetch_useful",
        ] {
            assert!(names.contains(&expected), "missing row {expected}");
        }
        // One row per value: no duplicates that could mask a missing field.
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }

    #[test]
    fn accounting_rows_cover_every_bucket_and_sum_to_total() {
        let buckets = CycleBuckets {
            committing: 10,
            window_full: 2,
            iq_full: 3,
            regfile_exhausted: 1,
            checkpoint_table_full: 4,
            mshr_full: 5,
            memory_wait: 6,
            fetch_starved: 7,
            execute_wait: 8,
        };
        let rows = accounting_rows(&buckets);
        assert_eq!(rows.len(), 9, "one row per bucket");
        let table = accounting_table("Cycle accounting", &buckets).render();
        assert!(table.contains("committing"));
        assert!(table.contains("execute_wait"));
        assert!(table.contains("46"), "total row: {table}");
    }

    #[test]
    fn timeline_table_reports_interval_rates() {
        let mut r = IntervalRecord {
            start_cycle: 1,
            cycles: 100,
            committed: 50,
            dispatched: 60,
            inflight_sum: 1000,
            live_sum: 500,
            live_checkpoints_sum: 200,
            mshr_sum: 100,
            replay_window_sum: 3000,
            ..Default::default()
        };
        r.stall.memory_wait = 40;
        let text = timeline_table("Timeline", &[r]).render();
        assert!(text.contains("0.500"), "IPC column: {text}");
        assert!(text.contains("10.0"), "inflight mean: {text}");
        assert!(text.contains("memory_wait"), "dominant stall: {text}");
    }

    #[test]
    fn serve_rows_cover_every_serve_stat_field() {
        let stats = ServeStats {
            requests: 10,
            ok: 8,
            cache_hits: 4,
            cache_misses: 4,
            requests_per_sec: 12.5,
            ..ServeStats::default()
        };
        let rows = serve_rows(&stats);
        let names: Vec<&str> = rows.iter().map(|(n, _)| n.as_str()).collect();
        for expected in [
            "requests",
            "ok",
            "parse_errors",
            "bad_requests",
            "shed",
            "cache_hits",
            "cache_misses",
            "cache_hit_rate",
            "cache_quarantined",
            "timeouts",
            "cancelled",
            "worker_panics",
            "batches",
            "batched_lanes",
            "wall_ms",
            "requests_per_sec",
            "p50_ms",
            "p99_ms",
        ] {
            assert!(names.contains(&expected), "missing row {expected}");
        }
        let text = serve_table("Serve report", &stats).render();
        assert!(text.contains("0.500"), "hit rate row: {text}");
        assert!(text.contains("12.50"), "requests/s row: {text}");
    }

    #[test]
    fn stats_table_renders_all_rows() {
        let stats = SimStats {
            cycles: 100,
            committed_instructions: 250,
            ..Default::default()
        };
        let table = stats_table("Run stats", &stats);
        let text = table.render();
        assert!(text.contains("== Run stats =="));
        assert!(text.contains("ipc"));
        assert!(text.contains("2.5000"));
        assert_eq!(table.rows.len(), stats_rows(&stats).len());
    }
}
