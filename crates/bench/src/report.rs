//! Plain-text tabular reports, one per experiment.

/// A formatted experiment report: a title, column headers, data rows and
/// free-form notes relating the result to the paper.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Experiment title (e.g. `"Figure 9 — main performance results"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted as strings).
    pub rows: Vec<Vec<String>>,
    /// Notes on how to read the result against the paper.
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Report {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row.
    pub fn push_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Appends a note.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders the report as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&format_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format_row(row, &widths));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }
}

/// Right-aligns one row (header or data) to the column widths — the single
/// formatting path for every line of a report.
fn format_row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .enumerate()
        .map(|(i, cell)| {
            format!(
                "{:>width$}",
                cell,
                width = widths.get(i).copied().unwrap_or(cell.len())
            )
        })
        .collect::<Vec<_>>()
        .join("  ")
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns_and_includes_notes() {
        let mut r = Report::new("Figure X", &["config", "IPC"]);
        r.push_row(vec!["baseline 128".into(), "0.41".into()]);
        r.push_row(vec!["COoO".into(), "1.25".into()]);
        r.push_note("higher is better");
        let text = r.render();
        assert!(text.contains("== Figure X =="));
        assert!(text.contains("baseline 128"));
        assert!(text.contains("note: higher is better"));
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 5);
    }

    #[test]
    fn display_matches_render() {
        let r = Report::new("T", &["a"]);
        assert_eq!(r.to_string(), r.render());
    }
}
