//! Command-line driver for the performance harness.
//!
//! ```text
//! koc-bench harness --quick                   # run, write BENCH_<n>.json
//! koc-bench harness --quick --out fresh.json  # explicit output path
//! koc-bench harness --full
//! koc-bench harness --list                    # canonical workload names
//! koc-bench harness --only gather             # one workload only
//! koc-bench harness --engine cooo             # one commit engine only
//! koc-bench harness --source streamed         # lazy O(window) ingestion
//! koc-bench harness --quick --grid 16         # lockstep vs per-config sweep
//! koc-bench trace --workload gather --format kanata   # pipeline event trace
//! koc-bench timeline --workload gather --interval 256  # interval time-series
//! koc-bench compare --baseline bench/baseline.json --current fresh.json
//! koc-bench compare ... --max-slowdown 0.5    # also gate wall-clock speed
//! koc-bench compare ... --cycle-tolerance 0.001
//! koc-bench compare ... --min-mcps cooo:1.0   # host-throughput floor
//! ```
//!
//! `harness` prints the human-readable table and writes the JSON report;
//! `compare` exits non-zero on any threshold violation (CI's regression
//! gate: cycle drift is an accuracy bug, wall-clock drift a perf one).
//! Streamed and materialized harness runs must agree cycle for cycle, so
//! CI cross-compares one against the other.

use koc_bench::harness::{self, CompareThresholds, HarnessOptions};
use koc_isa::json::{parse_json, Json};
use koc_obs::{timeline_json, CycleAccounting, PipelineTracer, TimelineRecorder};
use koc_sim::{Processor, SourceMode};
use serde::Serialize;
use std::path::PathBuf;
use std::process::ExitCode;

fn print_usage() {
    eprintln!("usage: koc-bench harness [--quick|--full] [--out PATH] [--list]");
    eprintln!("                         [--only WORKLOAD] [--engine baseline|cooo]");
    eprintln!("                         [--source streamed|materialized]");
    eprintln!("                         [--grid N]   (lockstep vs per-config over N configs)");
    eprintln!("       koc-bench stats [--workload NAME] [--engine baseline|cooo] [--full]");
    eprintln!("       koc-bench trace [--workload NAME] [--engine baseline|cooo] [--len N]");
    eprintln!("                       [--format ptrace|kanata] [--out PATH]");
    eprintln!("       koc-bench timeline [--workload NAME] [--engine baseline|cooo] [--len N]");
    eprintln!("                          [--interval N] [--out PATH]");
    eprintln!("       koc-bench compare --baseline PATH --current PATH");
    eprintln!("                         [--cycle-tolerance F] [--max-slowdown F]");
    eprintln!("                         [--min-mcps ENGINE:F]...");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("harness") => run_harness(&args[1..]),
        Some("stats") => run_stats(&args[1..]),
        Some("trace") => run_trace(&args[1..]),
        Some("timeline") => run_timeline(&args[1..]),
        Some("compare") => run_compare(&args[1..]),
        Some("--help") | Some("-h") => {
            print_usage();
            ExitCode::SUCCESS
        }
        _ => {
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn run_harness(args: &[String]) -> ExitCode {
    let mut options = HarnessOptions {
        quick: true,
        ..HarnessOptions::default()
    };
    let mut out: Option<PathBuf> = None;
    let mut grid: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                options.quick = true;
                i += 1;
            }
            "--grid" => {
                let Some(n) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                    eprintln!("--grid requires a lane count (e.g. --grid 16)");
                    return ExitCode::FAILURE;
                };
                grid = Some(n);
                i += 2;
            }
            "--full" => {
                options.quick = false;
                i += 1;
            }
            "--list" => {
                for name in harness::workload_names() {
                    println!("{name}");
                }
                return ExitCode::SUCCESS;
            }
            "--only" => {
                let Some(name) = args.get(i + 1) else {
                    eprintln!("--only requires a workload name (see --list)");
                    return ExitCode::FAILURE;
                };
                options.only = Some(name.clone());
                i += 2;
            }
            "--engine" => {
                let Some(name) = args.get(i + 1) else {
                    eprintln!("--engine requires 'baseline' or 'cooo'");
                    return ExitCode::FAILURE;
                };
                options.engine = Some(name.clone());
                i += 2;
            }
            "--source" => {
                options.source = match args.get(i + 1).map(String::as_str) {
                    Some("streamed") => SourceMode::Streamed,
                    Some("materialized") => SourceMode::Materialized,
                    other => {
                        eprintln!("--source requires 'streamed' or 'materialized', got {other:?}");
                        return ExitCode::FAILURE;
                    }
                };
                i += 2;
            }
            "--out" => {
                let Some(path) = args.get(i + 1) else {
                    eprintln!("--out requires a path");
                    return ExitCode::FAILURE;
                };
                out = Some(PathBuf::from(path));
                i += 2;
            }
            other => {
                eprintln!("unknown harness option '{other}'");
                print_usage();
                return ExitCode::FAILURE;
            }
        }
    }
    let report = match grid {
        // Grid runs hard-check lockstep-vs-per-config identity in-process:
        // any statistics drift between the modes comes back as Err here
        // and exits non-zero (CI's batching-correctness gate).
        Some(lanes) => match harness::run_grid_with(&options, lanes) {
            Ok((report, summary)) => {
                println!("{}", koc_bench::report::grid_table(&summary));
                report
            }
            Err(e) => {
                eprintln!("harness: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => match harness::run_with(&options) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("harness: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    println!("{}", report.to_table());
    let path = out.unwrap_or_else(|| harness::next_bench_path(std::path::Path::new(".")));
    if let Err(e) = std::fs::write(&path, report.to_json()) {
        eprintln!("failed to write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", path.display());
    ExitCode::SUCCESS
}

/// `koc-bench stats`: run one (workload, engine) pair and print the full
/// per-run statistics table — every public `SimStats` counter, one row
/// each (see `report::stats_table`).
fn run_stats(args: &[String]) -> ExitCode {
    let mut workload: Option<String> = None;
    let mut engine_name = "cooo".to_string();
    let mut quick = true;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workload" => {
                let Some(name) = args.get(i + 1) else {
                    eprintln!("--workload requires a name (see harness --list)");
                    return ExitCode::FAILURE;
                };
                workload = Some(name.clone());
                i += 2;
            }
            "--engine" => {
                let Some(name) = args.get(i + 1) else {
                    eprintln!("--engine requires 'baseline' or 'cooo'");
                    return ExitCode::FAILURE;
                };
                engine_name = name.clone();
                i += 2;
            }
            "--quick" => {
                quick = true;
                i += 1;
            }
            "--full" => {
                quick = false;
                i += 1;
            }
            other => {
                eprintln!("unknown stats option '{other}'");
                print_usage();
                return ExitCode::FAILURE;
            }
        }
    }
    let trace_len = if quick {
        harness::QUICK_TRACE_LEN
    } else {
        harness::FULL_TRACE_LEN
    };
    let mut specs = harness::specs(trace_len);
    if let Some(only) = &workload {
        specs.retain(|s| s.name() == only);
    }
    let Some(spec) = specs.first() else {
        eprintln!(
            "unknown workload {:?} (available: {})",
            workload,
            harness::workload_names().join(", ")
        );
        return ExitCode::FAILURE;
    };
    let Some((engine, config)) = harness::engines()
        .into_iter()
        .find(|(n, _)| *n == engine_name)
    else {
        eprintln!("unknown engine '{engine_name}' (available: baseline, cooo)");
        return ExitCode::FAILURE;
    };
    let w = spec.materialize();
    let stats = koc_sim::Processor::new(config, &w.trace).run();
    let title = format!("Run statistics — {} / {engine}", spec.name());
    println!("{}", koc_bench::report::stats_table(title, &stats));
    ExitCode::SUCCESS
}

/// Resolves a `(workload, engine)` selection shared by the observability
/// subcommands. Errors are printed; `None` means exit with failure.
fn resolve_run(
    workload: &Option<String>,
    engine_name: &str,
    trace_len: usize,
) -> Option<(koc_workloads::WorkloadSpec, koc_sim::ProcessorConfig)> {
    let mut specs = harness::specs(trace_len);
    if let Some(only) = workload {
        specs.retain(|s| s.name() == only);
    }
    let Some(spec) = specs.into_iter().next() else {
        eprintln!(
            "unknown workload {:?} (available: {})",
            workload,
            harness::workload_names().join(", ")
        );
        return None;
    };
    let Some((_, config)) = harness::engines()
        .into_iter()
        .find(|(n, _)| *n == engine_name)
    else {
        eprintln!("unknown engine '{engine_name}' (available: baseline, cooo)");
        return None;
    };
    Some((spec, config))
}

/// Writes `text` to `out` if given, otherwise prints it.
fn emit(out: Option<PathBuf>, text: &str) -> ExitCode {
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, text) {
                eprintln!("failed to write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("wrote {}", path.display());
            ExitCode::SUCCESS
        }
        None => {
            println!("{text}");
            ExitCode::SUCCESS
        }
    }
}

/// `koc-bench trace`: run one (workload, engine) pair with the pipeline
/// event tracer attached and emit the stream as `koc-ptrace/1` JSON or
/// Kanata/Konata text. Attaching the tracer never perturbs simulated time.
fn run_trace(args: &[String]) -> ExitCode {
    let mut workload: Option<String> = None;
    let mut engine_name = "cooo".to_string();
    let mut trace_len = 2_000usize;
    let mut format = "ptrace".to_string();
    let mut out: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workload" => {
                let Some(name) = args.get(i + 1) else {
                    eprintln!("--workload requires a name (see harness --list)");
                    return ExitCode::FAILURE;
                };
                workload = Some(name.clone());
                i += 2;
            }
            "--engine" => {
                let Some(name) = args.get(i + 1) else {
                    eprintln!("--engine requires 'baseline' or 'cooo'");
                    return ExitCode::FAILURE;
                };
                engine_name = name.clone();
                i += 2;
            }
            "--len" => {
                let Some(n) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                    eprintln!("--len requires an instruction count");
                    return ExitCode::FAILURE;
                };
                trace_len = n;
                i += 2;
            }
            "--format" => {
                let Some(f) = args.get(i + 1).filter(|f| *f == "ptrace" || *f == "kanata") else {
                    eprintln!("--format requires 'ptrace' or 'kanata'");
                    return ExitCode::FAILURE;
                };
                format = f.clone();
                i += 2;
            }
            "--out" => {
                let Some(path) = args.get(i + 1) else {
                    eprintln!("--out requires a path");
                    return ExitCode::FAILURE;
                };
                out = Some(PathBuf::from(path));
                i += 2;
            }
            other => {
                eprintln!("unknown trace option '{other}'");
                print_usage();
                return ExitCode::FAILURE;
            }
        }
    }
    let Some((spec, config)) = resolve_run(&workload, &engine_name, trace_len) else {
        return ExitCode::FAILURE;
    };
    let w = spec.materialize();
    let (stats, tracer) =
        Processor::with_observer(config, &w.trace, PipelineTracer::new()).run_observed();
    eprintln!(
        "traced {} / {engine_name}: {} events over {} cycles",
        spec.name(),
        tracer.len(),
        stats.cycles
    );
    let text = if format == "kanata" {
        tracer.to_kanata()
    } else {
        let json = tracer.to_ptrace_json();
        // Self-validation: the emitted document must round-trip through the
        // workspace JSON parser before anything downstream consumes it.
        if let Err(e) = parse_json(&json) {
            eprintln!("internal error: emitted koc-ptrace JSON does not parse: {e}");
            return ExitCode::FAILURE;
        }
        json
    };
    emit(out, &text)
}

/// `koc-bench timeline`: run one (workload, engine) pair with the interval
/// time-series recorder and the top-down cycle-accounting observer attached.
/// Prints both tables, emits the `koc-timeline/1` JSON, and hard-checks the
/// accounting invariant (bucket sum == total cycles) before exiting.
fn run_timeline(args: &[String]) -> ExitCode {
    let mut workload: Option<String> = None;
    let mut engine_name = "cooo".to_string();
    let mut trace_len = harness::QUICK_TRACE_LEN;
    let mut interval = 256u64;
    let mut out: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workload" => {
                let Some(name) = args.get(i + 1) else {
                    eprintln!("--workload requires a name (see harness --list)");
                    return ExitCode::FAILURE;
                };
                workload = Some(name.clone());
                i += 2;
            }
            "--engine" => {
                let Some(name) = args.get(i + 1) else {
                    eprintln!("--engine requires 'baseline' or 'cooo'");
                    return ExitCode::FAILURE;
                };
                engine_name = name.clone();
                i += 2;
            }
            "--len" => {
                let Some(n) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                    eprintln!("--len requires an instruction count");
                    return ExitCode::FAILURE;
                };
                trace_len = n;
                i += 2;
            }
            "--interval" => {
                let Some(n) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                    eprintln!("--interval requires a cycle count");
                    return ExitCode::FAILURE;
                };
                interval = n;
                i += 2;
            }
            "--out" => {
                let Some(path) = args.get(i + 1) else {
                    eprintln!("--out requires a path");
                    return ExitCode::FAILURE;
                };
                out = Some(PathBuf::from(path));
                i += 2;
            }
            other => {
                eprintln!("unknown timeline option '{other}'");
                print_usage();
                return ExitCode::FAILURE;
            }
        }
    }
    let Some((spec, config)) = resolve_run(&workload, &engine_name, trace_len) else {
        return ExitCode::FAILURE;
    };
    let w = spec.materialize();
    let obs = (TimelineRecorder::new(interval), CycleAccounting::new());
    let (stats, (timeline, accounting)) =
        Processor::with_observer(config, &w.trace, obs).run_observed();
    let buckets = accounting.into_buckets();
    // The accounting invariant is hard: every cycle lands in exactly one
    // bucket, so the sum must equal the run's cycle count.
    if buckets.total() != stats.cycles {
        eprintln!(
            "internal error: cycle-accounting buckets sum to {} but the run took {} cycles",
            buckets.total(),
            stats.cycles
        );
        return ExitCode::FAILURE;
    }
    let title = format!("{} / {engine_name}", spec.name());
    println!(
        "{}",
        koc_bench::report::accounting_table(format!("Cycle accounting — {title}"), &buckets)
    );
    let records = timeline.into_records();
    println!(
        "{}",
        koc_bench::report::timeline_table(
            format!("Timeline — {title} (interval {interval})"),
            &records
        )
    );
    let json = timeline_json(interval, &records);
    // Self-validation: the emitted document must parse and carry the
    // interval structure it claims.
    match parse_json(&json) {
        Ok(doc) => {
            let records_len = match doc.get("records") {
                Some(Json::Arr(items)) => items.len(),
                _ => {
                    eprintln!("internal error: koc-timeline JSON has no records array");
                    return ExitCode::FAILURE;
                }
            };
            if records_len != records.len() {
                eprintln!("internal error: koc-timeline JSON dropped records");
                return ExitCode::FAILURE;
            }
        }
        Err(e) => {
            eprintln!("internal error: emitted koc-timeline JSON does not parse: {e}");
            return ExitCode::FAILURE;
        }
    }
    emit(out, &json)
}

fn run_compare(args: &[String]) -> ExitCode {
    let mut baseline: Option<PathBuf> = None;
    let mut current: Option<PathBuf> = None;
    let mut thresholds = CompareThresholds::default();
    let mut i = 0;
    while i < args.len() {
        let take_value = |i: usize| -> Option<&String> { args.get(i + 1) };
        match args[i].as_str() {
            "--baseline" => {
                let Some(v) = take_value(i) else {
                    eprintln!("--baseline requires a path");
                    return ExitCode::FAILURE;
                };
                baseline = Some(PathBuf::from(v));
                i += 2;
            }
            "--current" => {
                let Some(v) = take_value(i) else {
                    eprintln!("--current requires a path");
                    return ExitCode::FAILURE;
                };
                current = Some(PathBuf::from(v));
                i += 2;
            }
            "--cycle-tolerance" => {
                let Some(v) = take_value(i).and_then(|v| v.parse().ok()) else {
                    eprintln!("--cycle-tolerance requires a number");
                    return ExitCode::FAILURE;
                };
                thresholds.cycle_tolerance = v;
                i += 2;
            }
            "--max-slowdown" => {
                let Some(v) = take_value(i).and_then(|v| v.parse().ok()) else {
                    eprintln!("--max-slowdown requires a number");
                    return ExitCode::FAILURE;
                };
                thresholds.max_slowdown = Some(v);
                i += 2;
            }
            "--min-mcps" => {
                let parsed = take_value(i).and_then(|v| {
                    let (engine, floor) = v.split_once(':')?;
                    Some((engine.to_string(), floor.parse::<f64>().ok()?))
                });
                let Some((engine, floor)) = parsed else {
                    eprintln!("--min-mcps requires ENGINE:FLOOR (e.g. cooo:1.0)");
                    return ExitCode::FAILURE;
                };
                thresholds.min_mcps.push((engine, floor));
                i += 2;
            }
            other => {
                eprintln!("unknown compare option '{other}'");
                print_usage();
                return ExitCode::FAILURE;
            }
        }
    }
    let (Some(baseline), Some(current)) = (baseline, current) else {
        eprintln!("compare requires --baseline and --current");
        return ExitCode::FAILURE;
    };
    // compare_files owns the whole missing/truncated/corrupt-file surface:
    // every structural problem exits non-zero with the file path and the
    // reason, and threshold verdicts are only ever computed from two
    // well-formed reports.
    match harness::compare_files(&baseline, &current, &thresholds) {
        Ok(outcome) => {
            for note in &outcome.notes {
                println!("note: {note}");
            }
            if outcome.passed() {
                println!("compare: OK ({} entries checked)", outcome.notes.len());
                ExitCode::SUCCESS
            } else {
                for failure in &outcome.failures {
                    eprintln!("FAIL: {failure}");
                }
                eprintln!(
                    "compare: {} regression(s) vs {}",
                    outcome.failures.len(),
                    baseline.display()
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("compare: {e}");
            ExitCode::FAILURE
        }
    }
}
