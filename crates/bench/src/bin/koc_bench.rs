//! Command-line driver for the performance harness.
//!
//! ```text
//! koc-bench harness --quick                   # run, write BENCH_<n>.json
//! koc-bench harness --quick --out fresh.json  # explicit output path
//! koc-bench harness --full
//! koc-bench harness --list                    # canonical workload names
//! koc-bench harness --only gather             # one workload only
//! koc-bench harness --engine cooo             # one commit engine only
//! koc-bench harness --source streamed         # lazy O(window) ingestion
//! koc-bench compare --baseline bench/baseline.json --current fresh.json
//! koc-bench compare ... --max-slowdown 0.5    # also gate wall-clock speed
//! koc-bench compare ... --cycle-tolerance 0.001
//! koc-bench compare ... --min-mcps cooo:1.0   # host-throughput floor
//! ```
//!
//! `harness` prints the human-readable table and writes the JSON report;
//! `compare` exits non-zero on any threshold violation (CI's regression
//! gate: cycle drift is an accuracy bug, wall-clock drift a perf one).
//! Streamed and materialized harness runs must agree cycle for cycle, so
//! CI cross-compares one against the other.

use koc_bench::harness::{self, CompareThresholds, HarnessOptions};
use koc_sim::SourceMode;
use serde::Serialize;
use std::path::PathBuf;
use std::process::ExitCode;

fn print_usage() {
    eprintln!("usage: koc-bench harness [--quick|--full] [--out PATH] [--list]");
    eprintln!("                         [--only WORKLOAD] [--engine baseline|cooo]");
    eprintln!("                         [--source streamed|materialized]");
    eprintln!("       koc-bench stats [--workload NAME] [--engine baseline|cooo] [--full]");
    eprintln!("       koc-bench compare --baseline PATH --current PATH");
    eprintln!("                         [--cycle-tolerance F] [--max-slowdown F]");
    eprintln!("                         [--min-mcps ENGINE:F]...");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("harness") => run_harness(&args[1..]),
        Some("stats") => run_stats(&args[1..]),
        Some("compare") => run_compare(&args[1..]),
        Some("--help") | Some("-h") => {
            print_usage();
            ExitCode::SUCCESS
        }
        _ => {
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn run_harness(args: &[String]) -> ExitCode {
    let mut options = HarnessOptions {
        quick: true,
        ..HarnessOptions::default()
    };
    let mut out: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                options.quick = true;
                i += 1;
            }
            "--full" => {
                options.quick = false;
                i += 1;
            }
            "--list" => {
                for name in harness::workload_names() {
                    println!("{name}");
                }
                return ExitCode::SUCCESS;
            }
            "--only" => {
                let Some(name) = args.get(i + 1) else {
                    eprintln!("--only requires a workload name (see --list)");
                    return ExitCode::FAILURE;
                };
                options.only = Some(name.clone());
                i += 2;
            }
            "--engine" => {
                let Some(name) = args.get(i + 1) else {
                    eprintln!("--engine requires 'baseline' or 'cooo'");
                    return ExitCode::FAILURE;
                };
                options.engine = Some(name.clone());
                i += 2;
            }
            "--source" => {
                options.source = match args.get(i + 1).map(String::as_str) {
                    Some("streamed") => SourceMode::Streamed,
                    Some("materialized") => SourceMode::Materialized,
                    other => {
                        eprintln!("--source requires 'streamed' or 'materialized', got {other:?}");
                        return ExitCode::FAILURE;
                    }
                };
                i += 2;
            }
            "--out" => {
                let Some(path) = args.get(i + 1) else {
                    eprintln!("--out requires a path");
                    return ExitCode::FAILURE;
                };
                out = Some(PathBuf::from(path));
                i += 2;
            }
            other => {
                eprintln!("unknown harness option '{other}'");
                print_usage();
                return ExitCode::FAILURE;
            }
        }
    }
    let report = match harness::run_with(&options) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("harness: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", report.to_table());
    let path = out.unwrap_or_else(|| harness::next_bench_path(std::path::Path::new(".")));
    if let Err(e) = std::fs::write(&path, report.to_json()) {
        eprintln!("failed to write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", path.display());
    ExitCode::SUCCESS
}

/// `koc-bench stats`: run one (workload, engine) pair and print the full
/// per-run statistics table — every public `SimStats` counter, one row
/// each (see `report::stats_table`).
fn run_stats(args: &[String]) -> ExitCode {
    let mut workload: Option<String> = None;
    let mut engine_name = "cooo".to_string();
    let mut quick = true;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workload" => {
                let Some(name) = args.get(i + 1) else {
                    eprintln!("--workload requires a name (see harness --list)");
                    return ExitCode::FAILURE;
                };
                workload = Some(name.clone());
                i += 2;
            }
            "--engine" => {
                let Some(name) = args.get(i + 1) else {
                    eprintln!("--engine requires 'baseline' or 'cooo'");
                    return ExitCode::FAILURE;
                };
                engine_name = name.clone();
                i += 2;
            }
            "--quick" => {
                quick = true;
                i += 1;
            }
            "--full" => {
                quick = false;
                i += 1;
            }
            other => {
                eprintln!("unknown stats option '{other}'");
                print_usage();
                return ExitCode::FAILURE;
            }
        }
    }
    let trace_len = if quick {
        harness::QUICK_TRACE_LEN
    } else {
        harness::FULL_TRACE_LEN
    };
    let mut specs = harness::specs(trace_len);
    if let Some(only) = &workload {
        specs.retain(|s| s.name() == only);
    }
    let Some(spec) = specs.first() else {
        eprintln!(
            "unknown workload {:?} (available: {})",
            workload,
            harness::workload_names().join(", ")
        );
        return ExitCode::FAILURE;
    };
    let Some((engine, config)) = harness::engines()
        .into_iter()
        .find(|(n, _)| *n == engine_name)
    else {
        eprintln!("unknown engine '{engine_name}' (available: baseline, cooo)");
        return ExitCode::FAILURE;
    };
    let w = spec.materialize();
    let stats = koc_sim::Processor::new(config, &w.trace).run();
    let title = format!("Run statistics — {} / {engine}", spec.name());
    println!("{}", koc_bench::report::stats_table(title, &stats));
    ExitCode::SUCCESS
}

fn run_compare(args: &[String]) -> ExitCode {
    let mut baseline: Option<PathBuf> = None;
    let mut current: Option<PathBuf> = None;
    let mut thresholds = CompareThresholds::default();
    let mut i = 0;
    while i < args.len() {
        let take_value = |i: usize| -> Option<&String> { args.get(i + 1) };
        match args[i].as_str() {
            "--baseline" => {
                let Some(v) = take_value(i) else {
                    eprintln!("--baseline requires a path");
                    return ExitCode::FAILURE;
                };
                baseline = Some(PathBuf::from(v));
                i += 2;
            }
            "--current" => {
                let Some(v) = take_value(i) else {
                    eprintln!("--current requires a path");
                    return ExitCode::FAILURE;
                };
                current = Some(PathBuf::from(v));
                i += 2;
            }
            "--cycle-tolerance" => {
                let Some(v) = take_value(i).and_then(|v| v.parse().ok()) else {
                    eprintln!("--cycle-tolerance requires a number");
                    return ExitCode::FAILURE;
                };
                thresholds.cycle_tolerance = v;
                i += 2;
            }
            "--max-slowdown" => {
                let Some(v) = take_value(i).and_then(|v| v.parse().ok()) else {
                    eprintln!("--max-slowdown requires a number");
                    return ExitCode::FAILURE;
                };
                thresholds.max_slowdown = Some(v);
                i += 2;
            }
            "--min-mcps" => {
                let parsed = take_value(i).and_then(|v| {
                    let (engine, floor) = v.split_once(':')?;
                    Some((engine.to_string(), floor.parse::<f64>().ok()?))
                });
                let Some((engine, floor)) = parsed else {
                    eprintln!("--min-mcps requires ENGINE:FLOOR (e.g. cooo:1.0)");
                    return ExitCode::FAILURE;
                };
                thresholds.min_mcps.push((engine, floor));
                i += 2;
            }
            other => {
                eprintln!("unknown compare option '{other}'");
                print_usage();
                return ExitCode::FAILURE;
            }
        }
    }
    let (Some(baseline), Some(current)) = (baseline, current) else {
        eprintln!("compare requires --baseline and --current");
        return ExitCode::FAILURE;
    };
    let read = |path: &PathBuf| -> Result<String, ExitCode> {
        std::fs::read_to_string(path).map_err(|e| {
            eprintln!("failed to read {}: {e}", path.display());
            ExitCode::FAILURE
        })
    };
    let baseline_text = match read(&baseline) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let current_text = match read(&current) {
        Ok(t) => t,
        Err(code) => return code,
    };
    match harness::compare(&baseline_text, &current_text, &thresholds) {
        Ok(outcome) => {
            for note in &outcome.notes {
                println!("note: {note}");
            }
            if outcome.passed() {
                println!("compare: OK ({} entries checked)", outcome.notes.len());
                ExitCode::SUCCESS
            } else {
                for failure in &outcome.failures {
                    eprintln!("FAIL: {failure}");
                }
                eprintln!(
                    "compare: {} regression(s) vs {}",
                    outcome.failures.len(),
                    baseline.display()
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("compare: {e}");
            ExitCode::FAILURE
        }
    }
}
