//! Command-line driver that regenerates the paper's tables and figures.
//!
//! ```text
//! koc-experiments all              # every experiment at the default length
//! koc-experiments fig9 --len 30000 # one experiment, longer traces
//! koc-experiments table1
//! ```

use koc_bench::{experiments, DEFAULT_TRACE_LEN};
use std::process::ExitCode;

fn print_usage() {
    eprintln!("usage: koc-experiments <experiment|all> [--len N]");
    eprintln!("experiments: {}", experiments::ALL.join(", "));
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage();
        return ExitCode::FAILURE;
    }
    let mut trace_len = DEFAULT_TRACE_LEN;
    let mut names: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--len" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("--len requires a value");
                    return ExitCode::FAILURE;
                };
                match v.parse() {
                    Ok(n) => trace_len = n,
                    Err(_) => {
                        eprintln!("invalid --len value '{v}'");
                        return ExitCode::FAILURE;
                    }
                }
                i += 2;
            }
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            name => {
                names.push(name.to_string());
                i += 1;
            }
        }
    }
    if names.iter().any(|n| n == "all") {
        names = experiments::ALL.iter().map(|s| s.to_string()).collect();
    }
    if names.is_empty() {
        print_usage();
        return ExitCode::FAILURE;
    }
    for name in &names {
        match experiments::run_by_name(name, trace_len) {
            Ok(report) => {
                println!("{report}");
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
