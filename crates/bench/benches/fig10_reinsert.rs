//! Criterion benchmark for the Figure 10 experiment (re-insertion delay
//! sensitivity). Prints the reduced-trace report once, then times the two
//! extreme delays.

use criterion::{criterion_group, criterion_main, Criterion};
use koc_bench::{experiments::fig10_reinsert, BENCH_TRACE_LEN};
use koc_sim::{Processor, ProcessorConfig};
use koc_workloads::{kernels, Workload};

fn bench_fig10(c: &mut Criterion) {
    let report = fig10_reinsert::run(BENCH_TRACE_LEN);
    eprintln!("{report}");

    let w = Workload::generate("stream_add", kernels::stream_add(), BENCH_TRACE_LEN);
    let mut group = c.benchmark_group("fig10_reinsert");
    group.sample_size(10);
    for delay in [1u32, 12] {
        group.bench_function(format!("cooo_64_1024_delay{delay}"), |b| {
            b.iter(|| {
                Processor::new(
                    ProcessorConfig::cooo(64, 1024, 1000).with_reinsert_delay(delay),
                    &w.trace,
                )
                .run()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
