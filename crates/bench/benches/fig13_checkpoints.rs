//! Criterion benchmark for the Figure 13 experiment (checkpoint-count
//! sensitivity). Prints the reduced-trace report once, then times the
//! 4- and 32-checkpoint configurations.

use criterion::{criterion_group, criterion_main, Criterion};
use koc_bench::{experiments::fig13_checkpoints, BENCH_TRACE_LEN};
use koc_sim::{Processor, ProcessorConfig};
use koc_workloads::{kernels, Workload};

fn bench_fig13(c: &mut Criterion) {
    let report = fig13_checkpoints::run(BENCH_TRACE_LEN);
    eprintln!("{report}");

    let w = Workload::generate("stream_add", kernels::stream_add(), BENCH_TRACE_LEN);
    let mut group = c.benchmark_group("fig13_checkpoints");
    group.sample_size(10);
    for checkpoints in [4usize, 32] {
        group.bench_function(format!("cooo_2048iq_{checkpoints}ckpt"), |b| {
            b.iter(|| {
                Processor::new(
                    ProcessorConfig::cooo(2048, 2048, 1000).with_checkpoints(checkpoints),
                    &w.trace,
                )
                .run()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig13);
criterion_main!(benches);
