//! Criterion benchmark for the Figure 7 experiment (live-instruction
//! distribution). Prints the reduced-trace report once, then times the
//! instrumented 2048-entry baseline run.

use criterion::{criterion_group, criterion_main, Criterion};
use koc_bench::{experiments::fig07_live, BENCH_TRACE_LEN};
use koc_sim::{Processor, ProcessorConfig};
use koc_workloads::{kernels, Workload};

fn bench_fig07(c: &mut Criterion) {
    let report = fig07_live::run(BENCH_TRACE_LEN);
    eprintln!("{report}");

    let w = Workload::generate("stencil27", kernels::stencil27(), BENCH_TRACE_LEN);
    let mut group = c.benchmark_group("fig07_live");
    group.sample_size(10);
    group.bench_function("baseline_2048_lat500", |b| {
        b.iter(|| Processor::new(ProcessorConfig::baseline(2048, 500), &w.trace).run())
    });
    group.finish();
}

criterion_group!(benches, bench_fig07);
criterion_main!(benches);
