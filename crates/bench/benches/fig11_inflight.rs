//! Criterion benchmark for the Figure 11 experiment (average in-flight
//! instructions). Prints the reduced-trace report once, then times the
//! largest checkpointed configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use koc_bench::{experiments::fig11_inflight, BENCH_TRACE_LEN};
use koc_sim::{Processor, ProcessorConfig};
use koc_workloads::{kernels, Workload};

fn bench_fig11(c: &mut Criterion) {
    let report = fig11_inflight::run(BENCH_TRACE_LEN);
    eprintln!("{report}");

    let w = Workload::generate("gather", kernels::gather(), BENCH_TRACE_LEN);
    let mut group = c.benchmark_group("fig11_inflight");
    group.sample_size(10);
    group.bench_function("cooo_128_2048_gather", |b| {
        b.iter(|| Processor::new(ProcessorConfig::cooo(128, 2048, 1000), &w.trace).run())
    });
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
