//! Micro-benchmarks of the O(activity) hot-path structures at
//! kilo-instruction occupancy: SLIQ insert/wake/step and instruction-queue
//! wakeup/select with 128 / 1k / 4k instructions in flight. These are the
//! structures the checkpointed engine touches every cycle; the benches pin
//! their cost at exactly the occupancies where the old scan-based
//! implementations collapsed (per-cycle cost growing with window size
//! rather than with activity).

use criterion::{criterion_group, criterion_main, Criterion};
use koc_core::{InstructionQueue, IqEntry, SliqBuffer, SliqConfig};
use koc_isa::{FuClass, InstId, PhysReg};

const OCCUPANCIES: &[usize] = &[128, 1_024, 4_096];

fn entry(inst: InstId, src: u32, fu: FuClass) -> IqEntry {
    IqEntry {
        inst,
        dest: Some(PhysReg(8_192 + inst as u32)),
        srcs: [PhysReg(src)].into_iter().collect(),
        fu,
        ckpt: 0,
    }
}

/// Fill a SLIQ to `n` entries spread over 64 triggers, then wake every
/// trigger and walk the buffer dry at the paper's 4-per-cycle width. The
/// per-iteration cost is O(n) total — i.e. O(1) per woken instruction —
/// regardless of occupancy.
fn bench_sliq_insert_wake_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("structures/sliq");
    for &n in OCCUPANCIES {
        group.bench_function(format!("insert_wake_step_{n}"), |b| {
            b.iter(|| {
                let mut sliq = SliqBuffer::new(SliqConfig::paper(n));
                for i in 0..n {
                    let fu = if i % 2 == 0 {
                        FuClass::Fp
                    } else {
                        FuClass::IntAlu
                    };
                    sliq.insert(entry(i, 7, fu), PhysReg((i % 64) as u32));
                }
                for t in 0..64u32 {
                    sliq.on_trigger_ready(PhysReg(t), 0);
                }
                let mut woken = Vec::new();
                let mut cycle = 4u64; // past the re-insertion delay
                while !sliq.is_empty() {
                    sliq.step_into(cycle, usize::MAX, usize::MAX, &mut woken);
                    cycle += 1;
                }
                woken.len()
            })
        });
    }
    group.finish();
}

/// Squash the youngest half of a full SLIQ: O(squashed), not O(entries).
fn bench_sliq_squash(c: &mut Criterion) {
    let mut group = c.benchmark_group("structures/sliq");
    for &n in OCCUPANCIES {
        group.bench_function(format!("squash_half_{n}"), |b| {
            b.iter(|| {
                let mut sliq = SliqBuffer::new(SliqConfig::paper(n));
                for i in 0..n {
                    sliq.insert(entry(i, 7, FuClass::Fp), PhysReg((i % 64) as u32));
                }
                sliq.squash_from(n / 2)
            })
        });
    }
    group.finish();
}

/// Steady-state wake-up/select churn at high occupancy: the queue sits at
/// `n` entries while waves of 64 producers complete and the issue logic
/// drains what became ready. Models the cycle loop's per-cycle IQ touch
/// with a mostly full, mostly-not-ready queue.
fn bench_iq_wakeup_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("structures/iq");
    for &n in OCCUPANCIES {
        group.bench_function(format!("wakeup_select_{n}"), |b| {
            b.iter(|| {
                let mut iq = InstructionQueue::new(n);
                for i in 0..n {
                    let fu = if i % 4 == 0 {
                        FuClass::Mem
                    } else {
                        FuClass::IntAlu
                    };
                    iq.insert(entry(i, (i % 64) as u32, fu), |_| false).unwrap();
                }
                let mut issued = 0usize;
                let mut picked = Vec::new();
                for r in 0..64u32 {
                    iq.wakeup(PhysReg(r));
                    // A 4-wide machine with Table 1's unit mix.
                    let mut fus = [4, 2, 4, 2];
                    picked.clear();
                    iq.select_ready_into(&mut fus, 4, &mut picked);
                    issued += picked.len();
                }
                issued
            })
        });
    }
    group.finish();
}

/// Selection with two memory ports and every entry a ready load — the
/// pathological case for an age-ordered scan (almost every ready entry is
/// starved of its unit every cycle); the per-class ready heaps keep each
/// cycle O(picked).
fn bench_iq_fu_starved_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("structures/iq");
    for &n in OCCUPANCIES {
        group.bench_function(format!("starved_select_{n}"), |b| {
            b.iter(|| {
                let mut iq = InstructionQueue::new(n);
                for i in 0..n {
                    iq.insert(entry(i, 7, FuClass::Mem), |_| true).unwrap();
                }
                let mut issued = 0usize;
                let mut picked = Vec::new();
                while !iq.is_empty() {
                    let mut fus = [4, 2, 4, 2]; // 2 memory ports
                    picked.clear();
                    iq.select_ready_into(&mut fus, 4, &mut picked);
                    issued += picked.len();
                }
                issued
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sliq_insert_wake_step,
    bench_sliq_squash,
    bench_iq_wakeup_select,
    bench_iq_fu_starved_select
);
criterion_main!(benches);
