//! Criterion benchmark for the Figure 14 experiment (out-of-order commit +
//! SLIQ + virtual registers). Prints the reduced-trace report once, then
//! times one virtual-register configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use koc_bench::{experiments::fig14_combined, BENCH_TRACE_LEN};
use koc_sim::{Processor, ProcessorConfig, RegisterModel};
use koc_workloads::{kernels, Workload};

fn bench_fig14(c: &mut Criterion) {
    let report = fig14_combined::run(BENCH_TRACE_LEN);
    eprintln!("{report}");

    let w = Workload::generate("stream_add", kernels::stream_add(), BENCH_TRACE_LEN);
    let mut group = c.benchmark_group("fig14_combined");
    group.sample_size(10);
    group.bench_function("cooo_virtual_1024tags_256regs", |b| {
        b.iter(|| {
            Processor::new(
                ProcessorConfig::cooo(128, 2048, 1000).with_registers(RegisterModel::Virtual {
                    virtual_tags: 1024,
                    phys_regs: 256,
                }),
                &w.trace,
            )
            .run()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig14);
criterion_main!(benches);
