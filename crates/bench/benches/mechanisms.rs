//! Micro-benchmarks of the individual mechanisms from `koc-core`: the CAM
//! rename map with future-free bits, the checkpoint table, the SLIQ wake-up
//! walker and the instruction queue. These quantify the simulator-side cost
//! of each structure (they are not claims about hardware latency).

use criterion::{criterion_group, criterion_main, Criterion};
use koc_core::{
    CamRenameMap, CheckpointTable, InstructionQueue, IqEntry, PhysRegFile, SliqBuffer, SliqConfig,
};
use koc_isa::{ArchReg, FuClass, PhysReg};

fn bench_rename(c: &mut Criterion) {
    let mut group = c.benchmark_group("mechanisms/rename");
    group.bench_function("rename_and_checkpoint_64_defs", |b| {
        b.iter(|| {
            let mut map = CamRenameMap::new(512);
            let mut regs = PhysRegFile::new(512);
            for i in 0..64u8 {
                map.rename_dest(ArchReg::int(i % 32), &mut regs).unwrap();
            }
            let (snapshot, freed) = map.take_checkpoint(&regs);
            (snapshot.valid.len(), freed.len())
        })
    });
    group.finish();
}

fn bench_checkpoint_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("mechanisms/checkpoint_table");
    group.bench_function("take_dispatch_commit_cycle", |b| {
        b.iter(|| {
            let mut table = CheckpointTable::new(8);
            let snap = koc_core::RenameCheckpoint {
                valid: vec![false; 256],
                future_free: vec![false; 256],
                free_list: vec![true; 256],
            };
            for ckpt in 0..32usize {
                let id = table
                    .take(ckpt * 64, snap.clone(), vec![])
                    .unwrap_or_else(|| {
                        let c = table.commit_oldest();
                        let _ = c;
                        table.take(ckpt * 64, snap.clone(), vec![]).unwrap()
                    });
                for _ in 0..64 {
                    table.on_dispatch(false);
                }
                for _ in 0..64 {
                    table.on_complete(id);
                }
            }
            table.len()
        })
    });
    group.finish();
}

fn bench_sliq(c: &mut Criterion) {
    let mut group = c.benchmark_group("mechanisms/sliq");
    group.bench_function("fill_and_drain_1024", |b| {
        b.iter(|| {
            let mut sliq = SliqBuffer::new(SliqConfig::paper(1024));
            for i in 0..1024usize {
                let entry = IqEntry {
                    inst: i,
                    dest: Some(PhysReg(64 + i as u32)),
                    srcs: [PhysReg(7)].into_iter().collect(),
                    fu: FuClass::Fp,
                    ckpt: 0,
                };
                sliq.insert(entry, PhysReg(7));
            }
            sliq.on_trigger_ready(PhysReg(7), 0);
            let mut woken = 0usize;
            let mut cycle = 0u64;
            while !sliq.is_empty() {
                woken += sliq.step(cycle, 4, 4).len();
                cycle += 1;
            }
            woken
        })
    });
    group.finish();
}

fn bench_iq(c: &mut Criterion) {
    let mut group = c.benchmark_group("mechanisms/instruction_queue");
    group.bench_function("insert_wakeup_select_128", |b| {
        b.iter(|| {
            let mut iq = InstructionQueue::new(128);
            for i in 0..128usize {
                let entry = IqEntry {
                    inst: i,
                    dest: Some(PhysReg(200 + i as u32)),
                    srcs: [PhysReg((i % 8) as u32)].into_iter().collect(),
                    fu: FuClass::Fp,
                    ckpt: 0,
                };
                iq.insert(entry, |_| false).unwrap();
            }
            for r in 0..8u32 {
                iq.wakeup(PhysReg(r));
            }
            let mut issued = 0usize;
            while iq.ready_count() > 0 {
                issued += iq.select_ready(&mut [4, 2, 4, 2], 4).len();
            }
            issued
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_rename,
    bench_checkpoint_table,
    bench_sliq,
    bench_iq
);
criterion_main!(benches);
