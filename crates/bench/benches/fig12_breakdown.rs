//! Criterion benchmark for the Figure 12 experiment (pseudo-ROB retirement
//! breakdown). Prints the reduced-trace report once, then times one
//! configuration per SLIQ size.

use criterion::{criterion_group, criterion_main, Criterion};
use koc_bench::{experiments::fig12_breakdown, BENCH_TRACE_LEN};
use koc_sim::{Processor, ProcessorConfig};
use koc_workloads::{kernels, Workload};

fn bench_fig12(c: &mut Criterion) {
    let report = fig12_breakdown::run(BENCH_TRACE_LEN);
    eprintln!("{report}");

    let w = Workload::generate("stencil27", kernels::stencil27(), BENCH_TRACE_LEN);
    let mut group = c.benchmark_group("fig12_breakdown");
    group.sample_size(10);
    for sliq in [512usize, 2048] {
        group.bench_function(format!("cooo_64_{sliq}"), |b| {
            b.iter(|| Processor::new(ProcessorConfig::cooo(64, sliq, 1000), &w.trace).run())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
