//! Criterion benchmark for the Figure 1 experiment (IPC vs in-flight
//! instructions vs memory latency). Prints the reduced-trace report once,
//! then times one representative point of the sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use koc_bench::{experiments::fig01_inflight, BENCH_TRACE_LEN};
use koc_sim::{Processor, ProcessorConfig};
use koc_workloads::{kernels, Workload};

fn bench_fig01(c: &mut Criterion) {
    let report = fig01_inflight::run(BENCH_TRACE_LEN);
    eprintln!("{report}");

    let w = Workload::generate("stream_add", kernels::stream_add(), BENCH_TRACE_LEN);
    let mut group = c.benchmark_group("fig01_inflight");
    group.sample_size(10);
    group.bench_function("baseline_2048_lat1000", |b| {
        b.iter(|| Processor::new(ProcessorConfig::baseline(2048, 1000), &w.trace).run())
    });
    group.bench_function("baseline_128_lat1000", |b| {
        b.iter(|| Processor::new(ProcessorConfig::baseline(128, 1000), &w.trace).run())
    });
    group.finish();
}

criterion_group!(benches, bench_fig01);
criterion_main!(benches);
