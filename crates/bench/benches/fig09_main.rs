//! Criterion benchmark for the Figure 9 experiment (main performance
//! results). Prints the reduced-trace report once, then times the paper's
//! headline configuration and the two reference baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use koc_bench::{experiments::fig09_main, BENCH_TRACE_LEN};
use koc_sim::{Processor, ProcessorConfig};
use koc_workloads::{kernels, Workload};

fn bench_fig09(c: &mut Criterion) {
    let report = fig09_main::run(BENCH_TRACE_LEN);
    eprintln!("{report}");

    let w = Workload::generate("stream_add", kernels::stream_add(), BENCH_TRACE_LEN);
    let mut group = c.benchmark_group("fig09_main");
    group.sample_size(10);
    group.bench_function("cooo_128_2048", |b| {
        b.iter(|| Processor::new(ProcessorConfig::cooo(128, 2048, 1000), &w.trace).run())
    });
    group.bench_function("baseline_128", |b| {
        b.iter(|| Processor::new(ProcessorConfig::baseline(128, 1000), &w.trace).run())
    });
    group.bench_function("baseline_4096", |b| {
        b.iter(|| Processor::new(ProcessorConfig::baseline(4096, 1000), &w.trace).run())
    });
    group.finish();
}

criterion_group!(benches, bench_fig09);
criterion_main!(benches);
