//! Criterion benchmark for the MLP-sensitivity experiment (memory-backend
//! sweep). Prints the reduced-trace report once, then times the
//! checkpointed engine on the streaming workload at the two MSHR extremes.

use criterion::{criterion_group, criterion_main, Criterion};
use koc_bench::{experiments::mlp_sensitivity, BENCH_TRACE_LEN};
use koc_sim::{Processor, ProcessorConfig};
use koc_workloads::{kernels, Workload};

fn bench_mlp(c: &mut Criterion) {
    let report = mlp_sensitivity::run(BENCH_TRACE_LEN);
    eprintln!("{report}");

    let w = Workload::generate("stream_mlp", kernels::stream_mlp(), BENCH_TRACE_LEN);
    let mut group = c.benchmark_group("mlp_sensitivity");
    group.sample_size(10);
    for mshrs in [1usize, 32] {
        group.bench_function(format!("cooo_dram_{mshrs}mshr"), |b| {
            b.iter(|| {
                let mut config = ProcessorConfig::cooo(128, 2048, 1000);
                config.memory = config.memory.with_dram(mlp_sensitivity::dram(mshrs));
                Processor::new(config, &w.trace).run()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mlp);
criterion_main!(benches);
