//! Property tests for the streaming ingestion path.
//!
//! The simulator's recovery correctness rests on one contract: fetching
//! through a [`ReplayWindow`] over a *streamed* kernel source behaves
//! exactly like a [`TraceCursor`] over the *materialized* trace — same
//! instructions, same ids, same replays — under any interleaving of
//! fetch, checkpoint-style rewind and commit-style release. These tests
//! drive both against random kernels and random rewind schedules.

use koc_isa::{InstructionSource, ReplayWindow};
use koc_workloads::{generate_kernel, kernels, KernelConfig, KernelSource};
use proptest::prelude::*;

/// The canonical kernel family, indexable by a proptest strategy.
fn kernel_menu() -> Vec<(&'static str, KernelConfig)> {
    let mut all = kernels::all();
    all.extend(kernels::mlp_contrast());
    all
}

proptest! {
    /// Random schedules of fetch / rollback-rewind / commit-release over a
    /// streamed kernel must replay bit-identically to the materialized
    /// trace cursor.
    #[test]
    fn streamed_window_replays_like_the_trace_cursor(
        kernel_idx in 0usize..7,
        target_len in 150usize..500,
        ops in proptest::collection::vec((0u8..8, 1usize..48), 1..32),
    ) {
        let (name, config) = kernel_menu()[kernel_idx];
        let config = config.with_target_len(target_len);
        let trace = generate_kernel(name, &config);
        let mut window = ReplayWindow::new(KernelSource::new(name, config));
        let mut cursor = trace.cursor();
        // The release frontier: the oldest point a rollback may still
        // target (in the simulator, the oldest live checkpoint).
        let mut frontier = 0usize;
        for (op, amount) in ops {
            prop_assert_eq!(window.position(), cursor.position());
            match op {
                // Checkpoint rollback: rewind both to the same point, at or
                // after the frontier.
                0 | 1 => {
                    let hi = cursor.position();
                    if hi >= frontier {
                        let target = frontier + amount % (hi - frontier + 1);
                        window.rewind_to(target);
                        cursor.rewind_to(target);
                    }
                }
                // Commit: advance the frontier and let the window forget.
                2 => {
                    let hi = cursor.position();
                    if hi > frontier {
                        frontier += amount % (hi - frontier + 1);
                        window.release_to(frontier);
                    }
                }
                // Fetch a burst of instructions from both.
                _ => {
                    for _ in 0..amount {
                        let streamed = window.next_inst();
                        let materialized = cursor.next_inst().map(|(id, i)| (id, *i));
                        let ended = streamed.is_none();
                        prop_assert_eq!(streamed, materialized);
                        if ended {
                            break;
                        }
                    }
                }
            }
        }
        // Drain both to the end: the tails must agree, and the streamed
        // side must have produced exactly the materialized length.
        loop {
            let streamed = window.next_inst();
            let materialized = cursor.next_inst().map(|(id, i)| (id, *i));
            let ended = streamed.is_none();
            prop_assert_eq!(streamed, materialized);
            if ended {
                break;
            }
        }
        prop_assert_eq!(window.fetched(), trace.len());
        prop_assert!(window.at_end());
    }

    /// The window never retains more than the release lag: occupancy is
    /// O(frontier..fetch-head), not O(stream).
    #[test]
    fn window_occupancy_tracks_the_release_lag(
        target_len in 300usize..800,
        lag in 1usize..64,
    ) {
        let config = kernels::stream_add().with_target_len(target_len);
        let mut window = ReplayWindow::new(KernelSource::new("stream_add", config));
        let mut fetched = 0usize;
        while window.next_inst().is_some() {
            fetched += 1;
            window.release_to(fetched.saturating_sub(lag));
            prop_assert!(window.occupancy() <= lag + 1);
        }
        prop_assert!(window.peak_occupancy() <= lag + 1);
        prop_assert!(window.fetched() >= target_len);
    }

    /// A kernel source is a pure function of its config: two instances
    /// drained in lockstep agree instruction for instruction.
    #[test]
    fn kernel_sources_are_deterministic(kernel_idx in 0usize..7, target_len in 100usize..400) {
        let (name, config) = kernel_menu()[kernel_idx];
        let config = config.with_target_len(target_len);
        let mut a = KernelSource::new(name, config);
        let mut b = KernelSource::new(name, config);
        loop {
            let (ia, ib) = (a.next_inst(), b.next_inst());
            prop_assert_eq!(&ia, &ib);
            if ia.is_none() {
                break;
            }
        }
    }
}
