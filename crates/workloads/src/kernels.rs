//! The five SPEC2000fp-like kernels that form the evaluation suite.
//!
//! Each constructor returns a [`KernelConfig`] tuned to mimic the memory and
//! dependence behaviour of a family of SPEC2000fp benchmarks. The mapping is
//! documented per kernel; `DESIGN.md` records the substitution rationale.

use crate::config::{DependencePattern, KernelConfig, MemoryPattern};

/// `stream_add` — swim/mgrid-like unit-stride streaming.
///
/// `c[i] = a[i] + k * b[i]` over arrays far larger than L2. Iterations are
/// fully independent: performance is bound purely by memory latency and the
/// number of loop iterations the window can hold (the paper's motivating
/// case, Figure 1).
pub fn stream_add() -> KernelConfig {
    KernelConfig {
        iterations: 500,
        unroll: 16,
        loads_per_unit: 2,
        fp_per_load: 2,
        stores_per_unit: 1,
        memory: MemoryPattern::Streaming { stride_bytes: 8 },
        dependence: DependencePattern::Independent,
        irregular_branch_prob: 0.0,
        seed: 0xA11CE,
    }
}

/// `stencil27` — applu/mgrid-like stencil sweep.
///
/// Multiple loads per point with longer strides (planes of a 3-D grid), a
/// short intra-iteration FP chain and one store. Strided accesses defeat the
/// 32-byte L1 line, so most loads miss in L2.
pub fn stencil27() -> KernelConfig {
    KernelConfig {
        iterations: 350,
        unroll: 8,
        loads_per_unit: 4,
        fp_per_load: 2,
        stores_per_unit: 1,
        memory: MemoryPattern::Streaming { stride_bytes: 136 },
        dependence: DependencePattern::IntraIterationChain,
        irregular_branch_prob: 0.0,
        seed: 0x57E4C,
    }
}

/// `dense_blocked` — galgel-like cache-resident dense linear algebra.
///
/// Works on a 64 KB tile that lives in L2, with abundant independent FP work;
/// this is the suite's high-IPC member and keeps the average honest (not
/// every FP code is memory bound).
pub fn dense_blocked() -> KernelConfig {
    KernelConfig {
        iterations: 400,
        unroll: 24,
        loads_per_unit: 2,
        fp_per_load: 3,
        stores_per_unit: 1,
        memory: MemoryPattern::Blocked {
            tile_bytes: 64 * 1024,
        },
        dependence: DependencePattern::Independent,
        irregular_branch_prob: 0.0,
        seed: 0xDE45E,
    }
}

/// `reduction` — equake/lucas-like loop-carried reduction.
///
/// `s += a[i] * b[i]`: the accumulator chain serialises part of the FP work,
/// so extra in-flight instructions help less than in the streaming kernels —
/// the suite's low-ILP member.
pub fn reduction() -> KernelConfig {
    KernelConfig {
        iterations: 500,
        unroll: 12,
        loads_per_unit: 2,
        fp_per_load: 1,
        stores_per_unit: 0,
        memory: MemoryPattern::Streaming { stride_bytes: 8 },
        dependence: DependencePattern::LoopCarried,
        irregular_branch_prob: 0.0,
        seed: 0x4ED0C,
    }
}

/// `gather` — art-like irregular table lookups.
///
/// Pseudo-random gathers over a 64 MB table: essentially every access is an
/// L2 miss with no spatial locality, plus a sprinkle of data-dependent
/// branches. The hardest case for the memory system.
pub fn gather() -> KernelConfig {
    KernelConfig {
        iterations: 400,
        unroll: 10,
        loads_per_unit: 3,
        fp_per_load: 1,
        stores_per_unit: 1,
        memory: MemoryPattern::Gather {
            table_bytes: 64 * 1024 * 1024,
        },
        dependence: DependencePattern::Independent,
        irregular_branch_prob: 0.05,
        seed: 0x6A74E4,
    }
}

/// `pointer_chase` — linked-list traversal with MLP = 1.
///
/// Every load's address comes from the previous load's value, over a 64 MB
/// table: exactly one miss can be outstanding at a time, so neither a
/// kilo-instruction window nor extra MSHRs help. The control case for
/// memory-level-parallelism experiments (`mlp_sensitivity`).
pub fn pointer_chase() -> KernelConfig {
    KernelConfig {
        iterations: 400,
        unroll: 16,
        loads_per_unit: 1,
        fp_per_load: 0,
        stores_per_unit: 0,
        memory: MemoryPattern::Gather {
            table_bytes: 64 * 1024 * 1024,
        },
        dependence: DependencePattern::AddressChain,
        irregular_branch_prob: 0.0,
        seed: 0xC8A5E,
    }
}

/// `stream_mlp` — line-stride streaming with maximal MLP.
///
/// Independent loads striding one L2 line (64 bytes) per element: every
/// load is a fresh long-latency miss with no dependences between them, so
/// achievable MLP is bounded only by the window and the memory system
/// (MSHRs, banks). The contrast case to [`pointer_chase`].
pub fn stream_mlp() -> KernelConfig {
    KernelConfig {
        iterations: 400,
        unroll: 16,
        loads_per_unit: 2,
        fp_per_load: 1,
        stores_per_unit: 0,
        memory: MemoryPattern::Streaming { stride_bytes: 64 },
        dependence: DependencePattern::Independent,
        irregular_branch_prob: 0.0,
        seed: 0x51EA3,
    }
}

/// All kernel constructors with their suite names.
pub fn all() -> Vec<(&'static str, KernelConfig)> {
    vec![
        ("stream_add", stream_add()),
        ("stencil27", stencil27()),
        ("dense_blocked", dense_blocked()),
        ("reduction", reduction()),
        ("gather", gather()),
    ]
}

/// The MLP-contrast pair: a dependent pointer chase (MLP = 1) against an
/// independent streaming kernel (MLP bounded only by the machine).
pub fn mlp_contrast() -> Vec<(&'static str, KernelConfig)> {
    vec![
        ("pointer_chase", pointer_chase()),
        ("stream_mlp", stream_mlp()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::generate_kernel;
    use koc_isa::OpKind;

    #[test]
    fn every_kernel_config_is_valid() {
        for (name, c) in all().into_iter().chain(mlp_contrast()) {
            assert!(c.validate().is_ok(), "{name} invalid");
        }
    }

    #[test]
    fn kernels_have_distinct_seeds_and_patterns() {
        let kernels: Vec<_> = all().into_iter().chain(mlp_contrast()).collect();
        for (i, (_, a)) in kernels.iter().enumerate() {
            for (_, b) in &kernels[i + 1..] {
                assert_ne!(a.seed, b.seed);
            }
        }
    }

    #[test]
    fn pointer_chase_loads_form_an_address_chain() {
        let t = generate_kernel("pointer_chase", &pointer_chase().with_target_len(2_000));
        let loads: Vec<_> = t.iter().filter(|i| i.kind == OpKind::Load).collect();
        assert!(loads.len() > 10);
        for pair in loads.windows(2) {
            let prev_dest = pair[0].dest.expect("loads write a register");
            assert!(
                pair[1].sources().any(|s| s == prev_dest),
                "each load's address must come from the previous load"
            );
        }
    }

    #[test]
    fn stream_mlp_loads_are_independent_line_misses() {
        let t = generate_kernel("stream_mlp", &stream_mlp().with_target_len(2_000));
        let loads: Vec<_> = t.iter().filter(|i| i.kind == OpKind::Load).collect();
        // No load reads another load's destination: fully independent.
        let load_dests: Vec<_> = loads.iter().filter_map(|l| l.dest).collect();
        for l in &loads {
            for s in l.sources() {
                assert!(
                    !load_dests.contains(&s),
                    "streaming loads must not depend on loaded values"
                );
            }
        }
        // Each array's stream touches a fresh 64-byte line every element.
        let mut per_stream: std::collections::HashMap<u64, Vec<u64>> =
            std::collections::HashMap::new();
        for l in &loads {
            let addr = l.mem.unwrap().addr;
            per_stream.entry(addr >> 30).or_default().push(addr);
        }
        for addrs in per_stream.values() {
            for w in addrs.windows(2) {
                assert_eq!(w[1] - w[0], 64, "one L2 line per element");
            }
        }
    }

    #[test]
    fn streaming_kernels_have_long_basic_blocks() {
        // The checkpoint policy ("first branch after 64 instructions") relies
        // on FP basic blocks being long; verify the suite provides them.
        for (name, c) in [
            ("stream_add", stream_add()),
            ("dense_blocked", dense_blocked()),
        ] {
            let t = generate_kernel(name, &c.with_target_len(5_000));
            let branches = t.iter().filter(|i| i.is_branch()).count();
            let avg_block = t.len() / branches.max(1);
            assert!(avg_block >= 64, "{name}: average basic block {avg_block}");
        }
    }

    #[test]
    fn gather_kernel_is_branch_light_but_not_branch_free() {
        let t = generate_kernel("gather", &gather().with_target_len(20_000));
        let frac = t.mix().branch_fraction();
        assert!(frac > 0.0 && frac < 0.1, "branch fraction {frac}");
    }

    #[test]
    fn reduction_kernel_has_no_stores() {
        let t = generate_kernel("reduction", &reduction().with_target_len(5_000));
        assert_eq!(t.iter().filter(|i| i.kind == OpKind::Store).count(), 0);
    }

    #[test]
    fn dense_blocked_footprint_fits_in_l2() {
        let c = dense_blocked();
        match c.memory {
            MemoryPattern::Blocked { tile_bytes } => assert!(tile_bytes <= 512 * 1024),
            _ => panic!("dense_blocked must be blocked"),
        }
    }
}
