//! # koc-workloads
//!
//! Synthetic SPEC2000fp-like workloads for the *Out-of-Order Commit
//! Processors* reproduction.
//!
//! The paper evaluates on SPEC2000fp, averaged over the suite, with 300M
//! representative instructions per benchmark. We cannot redistribute SPEC, so
//! this crate generates seeded synthetic dynamic instruction traces whose
//! *statistical properties* match what the paper's argument depends on:
//!
//! * loop-dominated floating-point code with long basic blocks (tens to a few
//!   hundred instructions between branches),
//! * highly predictable branches (loop back-edges),
//! * large streaming working sets that miss in L2, so performance is bound by
//!   main-memory latency and by how many independent loop iterations fit in
//!   the instruction window,
//! * a minority of kernels with long dependence chains or cache-resident
//!   blocking, providing the diversity that makes the suite average
//!   meaningful.
//!
//! The five kernels and the [`suite`] module are the "SPEC2000fp-like suite"
//! referred to throughout `DESIGN.md` and `EXPERIMENTS.md`.
//!
//! ```
//! use koc_workloads::{KernelConfig, suite::spec2000fp_like_suite};
//!
//! let workloads = spec2000fp_like_suite(10_000);
//! assert_eq!(workloads.len(), 5);
//! for w in &workloads {
//!     assert!(w.trace.len() >= 10_000);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod kernels;
pub mod suite;
pub mod synth;

pub use config::{DependencePattern, KernelConfig, MemoryPattern};
pub use suite::{spec2000fp_like_suite, Suite, Workload, WorkloadSpec};
pub use synth::{generate_kernel, KernelSource};
