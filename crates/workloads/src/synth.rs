//! The generic loop-nest trace generator.
//!
//! Every kernel in [`crate::kernels`] is an instance of the same template: a
//! loop whose body is an unrolled sequence of *units* (loads, dependent FP
//! operations, stores), terminated by a highly-predictable back-edge branch.
//! The [`KernelConfig`] controls the memory pattern, dependence structure and
//! basic-block length; this module turns a config into a [`Trace`].

use crate::config::{DependencePattern, KernelConfig, MemoryPattern};
use koc_isa::{ArchReg, Trace, TraceBuilder};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Register-allocation conventions used by the generator.
///
/// * `R1` — induction variable / primary address base (loop-carried chain of
///   1-cycle adds, as in real compiled loops),
/// * `R2`–`R5` — secondary address bases, rewritten every iteration,
/// * `F0`–`F27` — rotating pool for loaded values and FP temporaries,
/// * `F28`–`F31` — accumulators for loop-carried reductions.
struct RegPool {
    next_fp: u8,
}

impl RegPool {
    fn new() -> Self {
        RegPool { next_fp: 0 }
    }

    /// Next temporary FP register from the rotating pool (F0–F27).
    fn next(&mut self) -> ArchReg {
        let r = ArchReg::fp(self.next_fp);
        self.next_fp = (self.next_fp + 1) % 28;
        r
    }
}

/// Generates the dynamic trace of a kernel described by `config`.
///
/// The generator is deterministic for a given `config` (including its
/// `seed`), which keeps every experiment in the repository reproducible.
///
/// # Panics
/// Panics if `config.validate()` fails; experiment code constructs configs
/// from the vetted constructors in [`crate::kernels`].
pub fn generate_kernel(name: &str, config: &KernelConfig) -> Trace {
    if let Err(e) = config.validate() {
        panic!("invalid kernel configuration: {e}");
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = TraceBuilder::named(name);

    let induction = ArchReg::int(1);
    let addr_base = ArchReg::int(2);
    let cond = ArchReg::int(3);
    let accumulators = [
        ArchReg::fp(28),
        ArchReg::fp(29),
        ArchReg::fp(30),
        ArchReg::fp(31),
    ];

    let mut pool = RegPool::new();
    // Element cursor per array stream, advanced across the whole run.
    let mut element: u64 = 0;
    // For AddressChain kernels: the register holding the pointer loaded by
    // the previous link (the next load's address base).
    let mut chain_ptr: Option<ArchReg> = None;

    for iter in 0..config.iterations {
        let last_iteration = iter + 1 == config.iterations;
        // Induction-variable update: a short loop-carried integer chain.
        b.int_alu(induction, &[induction]);
        b.int_alu(addr_base, &[induction]);

        for _unit in 0..config.unroll {
            let mut loaded: Vec<ArchReg> = Vec::with_capacity(config.loads_per_unit);
            for l in 0..config.loads_per_unit {
                let addr = unit_address(config, &mut rng, l as u64, element);
                let dest = pool.next();
                let base = match config.dependence {
                    // Each link's address comes from the previous load.
                    DependencePattern::AddressChain => chain_ptr.unwrap_or(addr_base),
                    _ => addr_base,
                };
                b.load(dest, base, addr);
                chain_ptr = Some(dest);
                loaded.push(dest);
            }

            // FP work consuming the loaded values.
            let mut chain_prev: Option<ArchReg> = None;
            let mut last_result = loaded[0];
            for f in 0..(config.fp_per_load * config.loads_per_unit) {
                let dest = pool.next();
                let src_a = loaded[f % loaded.len()];
                let src_b = match config.dependence {
                    DependencePattern::Independent | DependencePattern::AddressChain => {
                        loaded[(f + 1) % loaded.len()]
                    }
                    DependencePattern::IntraIterationChain => chain_prev.unwrap_or(src_a),
                    DependencePattern::LoopCarried => accumulators[f % accumulators.len()],
                };
                match config.dependence {
                    DependencePattern::LoopCarried => {
                        // acc = acc + loaded: the destination *is* the accumulator,
                        // creating a cross-iteration chain.
                        let acc = accumulators[f % accumulators.len()];
                        b.fp_alu(acc, &[src_a, acc]);
                        last_result = acc;
                    }
                    _ => {
                        b.fp_alu(dest, &[src_a, src_b]);
                        chain_prev = Some(dest);
                        last_result = dest;
                    }
                }
            }

            for s in 0..config.stores_per_unit {
                let addr = unit_address(
                    config,
                    &mut rng,
                    (config.loads_per_unit + s) as u64,
                    element,
                );
                b.store(last_result, addr_base, addr);
            }
            element += 1;
        }

        // Occasional poorly-predictable branch inside the body (rare in FP codes).
        if config.irregular_branch_prob > 0.0 && rng.random_bool(config.irregular_branch_prob) {
            let taken = rng.random_bool(0.5);
            let target = b.pc() + 32;
            b.branch_to(cond, taken, target);
        }

        // Back-edge: taken on every iteration but the last.
        b.int_alu(cond, &[induction]);
        b.backward_branch(cond, !last_iteration);
    }

    b.finish()
}

/// Computes the byte address of the `slot`-th memory stream for the current
/// `element`, according to the kernel's memory pattern.
fn unit_address(config: &KernelConfig, rng: &mut StdRng, slot: u64, element: u64) -> u64 {
    const ARRAY_SPACING: u64 = 1 << 30;
    let base = 0x1000_0000 + slot * ARRAY_SPACING;
    match config.memory {
        MemoryPattern::Streaming { stride_bytes } => base + element * stride_bytes,
        MemoryPattern::Blocked { tile_bytes } => {
            // Walk within a resident tile; wrap around so the footprint stays bounded.
            base + (element * 8) % tile_bytes.max(8)
        }
        MemoryPattern::Gather { table_bytes } => {
            let idx = rng.random_range(0..table_bytes.max(8) / 8);
            base + idx * 8
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koc_isa::OpKind;

    fn small(config: KernelConfig) -> Trace {
        generate_kernel("test", &config)
    }

    #[test]
    fn generated_length_matches_estimate() {
        let c = KernelConfig::default();
        let t = small(c);
        let est = c.approx_len();
        let err = (t.len() as f64 - est as f64).abs() / est as f64;
        assert!(err < 0.25, "len {} vs estimate {}", t.len(), est);
    }

    #[test]
    fn generation_is_deterministic() {
        let c = KernelConfig {
            iterations: 20,
            ..Default::default()
        };
        assert_eq!(small(c), small(c));
    }

    #[test]
    fn different_seeds_differ_for_gather_kernels() {
        let base = KernelConfig {
            iterations: 20,
            memory: MemoryPattern::Gather {
                table_bytes: 1 << 24,
            },
            ..Default::default()
        };
        let a = small(KernelConfig { seed: 1, ..base });
        let b = small(KernelConfig { seed: 2, ..base });
        assert_ne!(a, b);
    }

    #[test]
    fn back_edges_are_taken_except_the_last() {
        let c = KernelConfig {
            iterations: 5,
            unroll: 2,
            irregular_branch_prob: 0.0,
            ..Default::default()
        };
        let t = small(c);
        let branches: Vec<_> = t.iter().filter(|i| i.is_branch()).collect();
        assert_eq!(branches.len(), 5);
        for b in &branches[..4] {
            assert!(b.branch.unwrap().taken);
        }
        assert!(!branches[4].branch.unwrap().taken);
    }

    #[test]
    fn streaming_addresses_advance_by_stride() {
        let c = KernelConfig {
            iterations: 2,
            unroll: 4,
            loads_per_unit: 1,
            stores_per_unit: 0,
            memory: MemoryPattern::Streaming { stride_bytes: 64 },
            ..Default::default()
        };
        let t = small(c);
        let addrs: Vec<u64> = t
            .iter()
            .filter(|i| i.kind == OpKind::Load)
            .map(|i| i.mem.unwrap().addr)
            .collect();
        for w in addrs.windows(2) {
            assert_eq!(w[1] - w[0], 64);
        }
    }

    #[test]
    fn blocked_addresses_stay_within_the_tile() {
        let tile = 4096;
        let c = KernelConfig {
            iterations: 50,
            memory: MemoryPattern::Blocked { tile_bytes: tile },
            ..Default::default()
        };
        let t = small(c);
        for i in t.iter().filter(|i| i.kind.is_memory()) {
            let a = i.mem.unwrap().addr;
            let offset = (a - 0x1000_0000) % (1 << 30);
            assert!(offset < tile, "address {a:#x} outside tile");
        }
    }

    #[test]
    fn loop_carried_kernels_write_accumulators() {
        let c = KernelConfig {
            iterations: 4,
            dependence: DependencePattern::LoopCarried,
            ..Default::default()
        };
        let t = small(c);
        let acc_writes = t
            .iter()
            .filter(|i| {
                i.kind == OpKind::FpAlu
                    && i.dest
                        .map(|d| d.number() >= 28 && d.class() == koc_isa::RegClass::Fp)
                        .unwrap_or(false)
            })
            .count();
        assert!(acc_writes > 0);
    }

    #[test]
    #[should_panic(expected = "invalid kernel configuration")]
    fn invalid_config_panics() {
        let c = KernelConfig {
            iterations: 0,
            ..Default::default()
        };
        let _ = small(c);
    }

    #[test]
    fn mix_is_fp_dominated() {
        let t = small(KernelConfig::default());
        let mix = t.mix();
        assert!(mix.fp_ops > mix.int_ops, "{mix:?}");
        assert!(mix.load_fraction() > 0.1, "{mix:?}");
        assert!(mix.branch_fraction() < 0.1, "{mix:?}");
    }
}
