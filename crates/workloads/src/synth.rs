//! The generic loop-nest workload generator.
//!
//! Every kernel in [`crate::kernels`] is an instance of the same template: a
//! loop whose body is an unrolled sequence of *units* (loads, dependent FP
//! operations, stores), terminated by a highly-predictable back-edge branch.
//! The [`KernelConfig`] controls the memory pattern, dependence structure and
//! basic-block length.
//!
//! Generation is **streaming**: [`KernelSource`] implements
//! [`InstructionSource`] and emits the dynamic instruction stream one loop
//! body at a time, so a billion-instruction workload costs O(loop body)
//! memory. [`generate_kernel`] materializes the same stream into a [`Trace`]
//! for callers that want one — the two are identical instruction for
//! instruction, because they *are* the same generator.

use crate::config::{DependencePattern, KernelConfig, MemoryPattern};
use koc_isa::{ArchReg, Instruction, InstructionSource, Trace};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;

/// Register-allocation conventions used by the generator.
///
/// * `R1` — induction variable / primary address base (loop-carried chain of
///   1-cycle adds, as in real compiled loops),
/// * `R2`–`R5` — secondary address bases, rewritten every iteration,
/// * `F0`–`F27` — rotating pool for loaded values and FP temporaries,
/// * `F28`–`F31` — accumulators for loop-carried reductions.
#[derive(Debug, Clone)]
struct RegPool {
    next_fp: u8,
}

impl RegPool {
    fn new() -> Self {
        RegPool { next_fp: 0 }
    }

    /// Next temporary FP register from the rotating pool (F0–F27).
    fn next(&mut self) -> ArchReg {
        let r = ArchReg::fp(self.next_fp);
        self.next_fp = (self.next_fp + 1) % 28;
        r
    }
}

/// A streaming kernel generator: the dynamic instruction stream described by
/// a [`KernelConfig`], produced lazily one loop iteration at a time.
///
/// Deterministic for a given configuration (including its `seed`), which
/// keeps every experiment reproducible — and bit-identical to what
/// [`generate_kernel`] materializes, since both run this generator.
#[derive(Debug, Clone)]
pub struct KernelSource {
    name: String,
    config: KernelConfig,
    rng: StdRng,
    pool: RegPool,
    /// Program counter of the next emitted instruction (advances by 4).
    pc: u64,
    /// Element cursor per array stream, advanced across the whole run.
    element: u64,
    /// For AddressChain kernels: the register holding the pointer loaded by
    /// the previous link (the next load's address base).
    chain_ptr: Option<ArchReg>,
    /// Outer-loop iterations already emitted into `buf`.
    iter: usize,
    /// Instructions of the current loop body not yet delivered.
    buf: VecDeque<Instruction>,
    /// Scratch: destinations of the current unroll unit's loads, reused
    /// across bodies (body emission runs inside the fetch stage).
    loaded: Vec<ArchReg>,
}

impl KernelSource {
    /// A streaming source for the kernel described by `config`.
    ///
    /// # Panics
    /// Panics if `config.validate()` fails; experiment code constructs
    /// configs from the vetted constructors in [`crate::kernels`].
    pub fn new(name: impl Into<String>, config: KernelConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid kernel configuration: {e}"); // koc-lint: allow(panic, "invalid kernel configuration is a caller bug; validate() names the field")
        }
        KernelSource {
            name: name.into(),
            rng: StdRng::seed_from_u64(config.seed),
            config,
            pool: RegPool::new(),
            pc: 0,
            element: 0,
            chain_ptr: None,
            iter: 0,
            buf: VecDeque::new(),
            loaded: Vec::new(),
        }
    }

    /// The kernel configuration this source generates from.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// Emits one whole loop body (the next outer iteration) into `buf`.
    fn emit_body(&mut self) {
        let config = &self.config;
        let last_iteration = self.iter + 1 == config.iterations;

        let induction = ArchReg::int(1);
        let addr_base = ArchReg::int(2);
        let cond = ArchReg::int(3);
        let accumulators = [
            ArchReg::fp(28),
            ArchReg::fp(29),
            ArchReg::fp(30),
            ArchReg::fp(31),
        ];

        let raw = |pc: &mut u64, buf: &mut VecDeque<Instruction>, mut inst: Instruction| {
            inst.pc = *pc;
            *pc += 4;
            buf.push_back(inst);
        };
        let pc = &mut self.pc;
        let buf = &mut self.buf;
        let loaded = &mut self.loaded;

        // Induction-variable update: a short loop-carried integer chain.
        raw(
            pc,
            buf,
            Instruction::op(0, koc_isa::OpKind::IntAlu, Some(induction), &[induction]),
        );
        raw(
            pc,
            buf,
            Instruction::op(0, koc_isa::OpKind::IntAlu, Some(addr_base), &[induction]),
        );

        for _unit in 0..config.unroll {
            loaded.clear();
            for l in 0..config.loads_per_unit {
                let addr = unit_address(config, &mut self.rng, l as u64, self.element);
                let dest = self.pool.next();
                let base = match config.dependence {
                    // Each link's address comes from the previous load.
                    DependencePattern::AddressChain => self.chain_ptr.unwrap_or(addr_base),
                    _ => addr_base,
                };
                raw(pc, buf, Instruction::load(0, dest, base, addr));
                self.chain_ptr = Some(dest);
                loaded.push(dest);
            }

            // FP work consuming the loaded values.
            let mut chain_prev: Option<ArchReg> = None;
            let mut last_result = loaded[0];
            for f in 0..(config.fp_per_load * config.loads_per_unit) {
                let dest = self.pool.next();
                let src_a = loaded[f % loaded.len()];
                let src_b = match config.dependence {
                    DependencePattern::Independent | DependencePattern::AddressChain => {
                        loaded[(f + 1) % loaded.len()]
                    }
                    DependencePattern::IntraIterationChain => chain_prev.unwrap_or(src_a),
                    DependencePattern::LoopCarried => accumulators[f % accumulators.len()],
                };
                match config.dependence {
                    DependencePattern::LoopCarried => {
                        // acc = acc + loaded: the destination *is* the accumulator,
                        // creating a cross-iteration chain.
                        let acc = accumulators[f % accumulators.len()];
                        raw(
                            pc,
                            buf,
                            Instruction::op(0, koc_isa::OpKind::FpAlu, Some(acc), &[src_a, acc]),
                        );
                        last_result = acc;
                    }
                    _ => {
                        raw(
                            pc,
                            buf,
                            Instruction::op(0, koc_isa::OpKind::FpAlu, Some(dest), &[src_a, src_b]),
                        );
                        chain_prev = Some(dest);
                        last_result = dest;
                    }
                }
            }

            for s in 0..config.stores_per_unit {
                let addr = unit_address(
                    config,
                    &mut self.rng,
                    (config.loads_per_unit + s) as u64,
                    self.element,
                );
                raw(pc, buf, Instruction::store(0, last_result, addr_base, addr));
            }
            self.element += 1;
        }

        // Occasional poorly-predictable branch inside the body (rare in FP codes).
        if config.irregular_branch_prob > 0.0 && self.rng.random_bool(config.irregular_branch_prob)
        {
            let taken = self.rng.random_bool(0.5);
            let target = *pc + 32;
            raw(pc, buf, Instruction::branch(0, cond, taken, target));
        }

        // Back-edge: taken on every iteration but the last.
        raw(
            pc,
            buf,
            Instruction::op(0, koc_isa::OpKind::IntAlu, Some(cond), &[induction]),
        );
        let target = pc.saturating_sub(64);
        raw(
            pc,
            buf,
            Instruction::branch(0, cond, !last_iteration, target),
        );

        self.iter += 1;
    }
}

impl InstructionSource for KernelSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_inst(&mut self) -> Option<Instruction> {
        while self.buf.is_empty() {
            if self.iter >= self.config.iterations {
                return None;
            }
            self.emit_body();
        }
        self.buf.pop_front()
    }

    fn len_hint(&self) -> Option<usize> {
        // `approx_len` counts exactly what `emit_body` emits; it is only
        // "approximate" when randomly-placed irregular branches perturb the
        // per-body count, in which case no hint is given.
        if self.config.irregular_branch_prob > 0.0 {
            return None;
        }
        Some(self.config.approx_len())
    }
}

/// Generates the full dynamic trace of a kernel described by `config` —
/// [`KernelSource`] run to completion and materialized.
///
/// # Panics
/// Panics if `config.validate()` fails.
pub fn generate_kernel(name: &str, config: &KernelConfig) -> Trace {
    let mut source = KernelSource::new(name, *config);
    let mut trace = Trace::new(name);
    while let Some(inst) = source.next_inst() {
        trace.push(inst);
    }
    trace
}

/// Computes the byte address of the `slot`-th memory stream for the current
/// `element`, according to the kernel's memory pattern.
fn unit_address(config: &KernelConfig, rng: &mut StdRng, slot: u64, element: u64) -> u64 {
    const ARRAY_SPACING: u64 = 1 << 30;
    let base = 0x1000_0000 + slot * ARRAY_SPACING;
    match config.memory {
        MemoryPattern::Streaming { stride_bytes } => base + element * stride_bytes,
        MemoryPattern::Blocked { tile_bytes } => {
            // Walk within a resident tile; wrap around so the footprint stays bounded.
            base + (element * 8) % tile_bytes.max(8)
        }
        MemoryPattern::Gather { table_bytes } => {
            let idx = rng.random_range(0..table_bytes.max(8) / 8);
            base + idx * 8
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koc_isa::OpKind;

    fn small(config: KernelConfig) -> Trace {
        generate_kernel("test", &config)
    }

    #[test]
    fn generated_length_matches_estimate() {
        let c = KernelConfig::default();
        let t = small(c);
        let est = c.approx_len();
        let err = (t.len() as f64 - est as f64).abs() / est as f64;
        assert!(err < 0.25, "len {} vs estimate {}", t.len(), est);
    }

    #[test]
    fn generation_is_deterministic() {
        let c = KernelConfig {
            iterations: 20,
            ..Default::default()
        };
        assert_eq!(small(c), small(c));
    }

    #[test]
    fn streaming_source_matches_the_materialized_trace() {
        for config in [
            KernelConfig {
                iterations: 30,
                ..Default::default()
            },
            crate::kernels::gather().with_target_len(3_000),
            crate::kernels::pointer_chase().with_target_len(2_000),
            crate::kernels::reduction().with_target_len(2_000),
        ] {
            let trace = generate_kernel("k", &config);
            let mut source = KernelSource::new("k", config);
            if let Some(hint) = source.len_hint() {
                assert_eq!(hint, trace.len(), "len_hint must be exact when given");
            }
            for id in 0..trace.len() {
                assert_eq!(source.next_inst().as_ref(), Some(&trace[id]), "inst {id}");
            }
            assert_eq!(source.next_inst(), None, "same end of stream");
        }
    }

    #[test]
    fn streaming_source_buffers_at_most_one_body() {
        let c = KernelConfig {
            iterations: 1_000,
            ..Default::default()
        };
        let per_body = c.approx_len() / c.iterations;
        let mut s = KernelSource::new("k", c);
        let mut emitted = 0usize;
        while s.next_inst().is_some() {
            emitted += 1;
            assert!(
                s.buf.len() < per_body * 2,
                "buffer holds bodies, not the stream: {} at {emitted}",
                s.buf.len()
            );
        }
        assert!(emitted >= c.approx_len() * 3 / 4);
    }

    #[test]
    fn different_seeds_differ_for_gather_kernels() {
        let base = KernelConfig {
            iterations: 20,
            memory: MemoryPattern::Gather {
                table_bytes: 1 << 24,
            },
            ..Default::default()
        };
        let a = small(KernelConfig { seed: 1, ..base });
        let b = small(KernelConfig { seed: 2, ..base });
        assert_ne!(a, b);
    }

    #[test]
    fn back_edges_are_taken_except_the_last() {
        let c = KernelConfig {
            iterations: 5,
            unroll: 2,
            irregular_branch_prob: 0.0,
            ..Default::default()
        };
        let t = small(c);
        let branches: Vec<_> = t.iter().filter(|i| i.is_branch()).collect();
        assert_eq!(branches.len(), 5);
        for b in &branches[..4] {
            assert!(b.branch.unwrap().taken);
        }
        assert!(!branches[4].branch.unwrap().taken);
    }

    #[test]
    fn streaming_addresses_advance_by_stride() {
        let c = KernelConfig {
            iterations: 2,
            unroll: 4,
            loads_per_unit: 1,
            stores_per_unit: 0,
            memory: MemoryPattern::Streaming { stride_bytes: 64 },
            ..Default::default()
        };
        let t = small(c);
        let addrs: Vec<u64> = t
            .iter()
            .filter(|i| i.kind == OpKind::Load)
            .map(|i| i.mem.unwrap().addr)
            .collect();
        for w in addrs.windows(2) {
            assert_eq!(w[1] - w[0], 64);
        }
    }

    #[test]
    fn blocked_addresses_stay_within_the_tile() {
        let tile = 4096;
        let c = KernelConfig {
            iterations: 50,
            memory: MemoryPattern::Blocked { tile_bytes: tile },
            ..Default::default()
        };
        let t = small(c);
        for i in t.iter().filter(|i| i.kind.is_memory()) {
            let a = i.mem.unwrap().addr;
            let offset = (a - 0x1000_0000) % (1 << 30);
            assert!(offset < tile, "address {a:#x} outside tile");
        }
    }

    #[test]
    fn loop_carried_kernels_write_accumulators() {
        let c = KernelConfig {
            iterations: 4,
            dependence: DependencePattern::LoopCarried,
            ..Default::default()
        };
        let t = small(c);
        let acc_writes = t
            .iter()
            .filter(|i| {
                i.kind == OpKind::FpAlu
                    && i.dest
                        .map(|d| d.number() >= 28 && d.class() == koc_isa::RegClass::Fp)
                        .unwrap_or(false)
            })
            .count();
        assert!(acc_writes > 0);
    }

    #[test]
    #[should_panic(expected = "invalid kernel configuration")]
    fn invalid_config_panics() {
        let c = KernelConfig {
            iterations: 0,
            ..Default::default()
        };
        let _ = small(c);
    }

    #[test]
    fn mix_is_fp_dominated() {
        let t = small(KernelConfig::default());
        let mix = t.mix();
        assert!(mix.fp_ops > mix.int_ops, "{mix:?}");
        assert!(mix.load_fraction() > 0.1, "{mix:?}");
        assert!(mix.branch_fraction() < 0.1, "{mix:?}");
    }
}
