//! Parameters describing a synthetic loop-nest kernel.

use serde::{Deserialize, Serialize};

/// The memory-access pattern of a kernel's loop body.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MemoryPattern {
    /// Unit-stride streaming over arrays much larger than L2 (swim/mgrid
    /// style). Spatial locality within a cache line, no temporal reuse.
    Streaming {
        /// Distance in bytes between consecutive elements (8 = dense doubles).
        stride_bytes: u64,
    },
    /// Blocked access that fits in the L1/L2 (galgel-style dense linear
    /// algebra working on cache-resident tiles).
    Blocked {
        /// Size of the resident tile in bytes.
        tile_bytes: u64,
    },
    /// Pseudo-random gathers over a large table (art/equake-style irregular
    /// accesses). Essentially every access misses in L2.
    Gather {
        /// Size of the table being gathered from, in bytes.
        table_bytes: u64,
    },
}

/// The dependence structure between the floating-point operations of one
/// loop iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DependencePattern {
    /// Each FP operation depends only on loaded values: iterations are fully
    /// independent and ILP is bounded by the window, not by dependences.
    Independent,
    /// FP operations form a chain within the iteration (depth = `fp_per_load`)
    /// but iterations are independent of each other.
    IntraIterationChain,
    /// A loop-carried reduction: every iteration depends on the previous one
    /// through an accumulator register.
    LoopCarried,
    /// A pointer chase: every load's *address* depends on the previous
    /// load's value, so at most one memory access is outstanding at a time
    /// (MLP = 1) no matter how large the instruction window is.
    AddressChain,
}

/// Full description of a synthetic kernel.
///
/// A kernel is a two-level loop nest: `iterations` executions of a body that
/// contains `unroll` copies of a basic unit; each unit performs
/// `loads_per_unit` loads, `fp_per_load * loads_per_unit` floating-point
/// operations and `stores_per_unit` stores. One conditional back-edge branch
/// terminates the body, and optionally a small number of data-dependent
/// inner branches model the (rare) unpredictable control flow of FP codes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelConfig {
    /// Number of outer-loop iterations (bodies) to emit.
    pub iterations: usize,
    /// Unroll factor: copies of the basic unit per body (controls basic-block
    /// length, and therefore checkpoint spacing under the paper's policy).
    pub unroll: usize,
    /// Loads per unrolled unit.
    pub loads_per_unit: usize,
    /// FP operations per load.
    pub fp_per_load: usize,
    /// Stores per unrolled unit.
    pub stores_per_unit: usize,
    /// Memory-access pattern.
    pub memory: MemoryPattern,
    /// Dependence structure.
    pub dependence: DependencePattern,
    /// Probability that a body contains an extra, poorly-predictable
    /// conditional branch (0.0 for pure loop code).
    pub irregular_branch_prob: f64,
    /// RNG seed for address jitter and irregular branches.
    pub seed: u64,
}

impl KernelConfig {
    /// Approximate number of dynamic instructions this configuration emits.
    pub fn approx_len(&self) -> usize {
        let per_unit = self.loads_per_unit * (1 + self.fp_per_load) + self.stores_per_unit;
        self.iterations * (self.unroll * per_unit + 4)
    }

    /// Scales `iterations` so the kernel emits at least `target` dynamic
    /// instructions.
    pub fn with_target_len(mut self, target: usize) -> Self {
        let per_iter = self.approx_len() / self.iterations.max(1);
        self.iterations = target.div_ceil(per_iter.max(1)).max(1);
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.iterations == 0 {
            return Err("iterations must be non-zero".to_string());
        }
        if self.unroll == 0 {
            return Err("unroll must be non-zero".to_string());
        }
        if self.loads_per_unit == 0 {
            return Err("loads_per_unit must be non-zero".to_string());
        }
        if !(0.0..=1.0).contains(&self.irregular_branch_prob) {
            return Err(format!(
                "irregular_branch_prob must be a probability, got {}",
                self.irregular_branch_prob
            ));
        }
        Ok(())
    }
}

impl Default for KernelConfig {
    /// A swim-like streaming kernel of roughly 50k instructions.
    fn default() -> Self {
        KernelConfig {
            iterations: 400,
            unroll: 16,
            loads_per_unit: 2,
            fp_per_load: 2,
            stores_per_unit: 1,
            memory: MemoryPattern::Streaming { stride_bytes: 8 },
            dependence: DependencePattern::Independent,
            irregular_branch_prob: 0.0,
            seed: 0x5eed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(KernelConfig::default().validate().is_ok());
    }

    #[test]
    fn zero_iterations_is_rejected() {
        let c = KernelConfig {
            iterations: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn bad_probability_is_rejected() {
        let c = KernelConfig {
            irregular_branch_prob: 1.5,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn with_target_len_reaches_the_target() {
        let c = KernelConfig::default().with_target_len(200_000);
        assert!(c.approx_len() >= 200_000);
        let small = KernelConfig::default().with_target_len(100);
        assert!(small.iterations >= 1);
    }

    #[test]
    fn approx_len_counts_body_instructions() {
        let c = KernelConfig {
            iterations: 10,
            unroll: 2,
            loads_per_unit: 2,
            fp_per_load: 1,
            stores_per_unit: 1,
            ..Default::default()
        };
        // per unit: 2 loads + 2 fp + 1 store = 5; body = 10 + 4 loop overhead
        assert_eq!(c.approx_len(), 10 * (2 * 5 + 4));
    }
}
