//! The SPEC2000fp-like suite: named workloads and suite-average helpers.

use crate::config::KernelConfig;
use crate::kernels;
use crate::synth::generate_kernel;
use koc_isa::Trace;

/// A named workload: a kernel configuration and its generated trace.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Suite name of the workload (e.g. `"stream_add"`).
    pub name: String,
    /// The kernel configuration the trace was generated from.
    pub config: KernelConfig,
    /// The generated dynamic instruction trace.
    pub trace: Trace,
}

impl Workload {
    /// Generates a workload from a named kernel configuration with the given
    /// minimum dynamic length.
    pub fn generate(name: &str, config: KernelConfig, target_len: usize) -> Self {
        let config = config.with_target_len(target_len);
        let trace = generate_kernel(name, &config);
        Workload {
            name: name.to_string(),
            config,
            trace,
        }
    }
}

/// Generates the five-kernel SPEC2000fp-like suite, each workload at least
/// `target_len` dynamic instructions long.
///
/// The paper simulates 300M representative instructions per benchmark; the
/// experiments in this repository default to much shorter traces (tens of
/// thousands of instructions) which are sufficient because the synthetic
/// kernels are statistically stationary — every window of the trace looks
/// like every other window.
pub fn spec2000fp_like_suite(target_len: usize) -> Vec<Workload> {
    kernels::all()
        .into_iter()
        .map(|(name, config)| Workload::generate(name, config, target_len))
        .collect()
}

/// A declarative description of which workloads a simulation session runs.
///
/// A `Suite` is a *specification*: it is materialized into concrete
/// [`Workload`]s (at a given dynamic trace length) by [`Suite::generate`],
/// which the `koc-sim` session builder calls for you.
#[derive(Debug, Clone)]
pub enum Suite {
    /// The five-kernel SPEC2000fp-like suite the paper's figures average
    /// over.
    Paper,
    /// The MLP-contrast pair: `pointer_chase` (a dependent chain, MLP = 1)
    /// and `stream_mlp` (independent line-stride misses, maximal MLP).
    /// Designed for the memory-backend experiments.
    MlpContrast,
    /// A single named kernel.
    Kernel {
        /// Workload name (used in reports).
        name: String,
        /// The kernel configuration to generate from.
        config: KernelConfig,
    },
    /// Pre-generated workloads, used as-is (their length is fixed).
    Custom(Vec<Workload>),
}

impl Suite {
    /// The paper's suite: all five SPEC2000fp-like kernels.
    pub fn paper() -> Self {
        Suite::Paper
    }

    /// The MLP-contrast pair ([`kernels::pointer_chase`] and
    /// [`kernels::stream_mlp`]).
    pub fn mlp_contrast() -> Self {
        Suite::MlpContrast
    }

    /// A single kernel by configuration (e.g. `Suite::kernel("stream_add",
    /// kernels::stream_add())`).
    pub fn kernel(name: impl Into<String>, config: KernelConfig) -> Self {
        Suite::Kernel {
            name: name.into(),
            config,
        }
    }

    /// Pre-generated workloads used exactly as given.
    pub fn custom(workloads: Vec<Workload>) -> Self {
        Suite::Custom(workloads)
    }

    /// Materializes the suite at the given minimum dynamic trace length.
    /// `Custom` workloads are returned as-is.
    pub fn generate(&self, target_len: usize) -> Vec<Workload> {
        match self {
            Suite::Paper => spec2000fp_like_suite(target_len),
            Suite::MlpContrast => kernels::mlp_contrast()
                .into_iter()
                .map(|(name, config)| Workload::generate(name, config, target_len))
                .collect(),
            Suite::Kernel { name, config } => vec![Workload::generate(name, *config, target_len)],
            Suite::Custom(workloads) => workloads.clone(),
        }
    }
}

/// Arithmetic mean over per-workload values, the paper's "average over
/// SPEC2000fp" reduction.
pub fn suite_average(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_five_named_workloads() {
        let suite = spec2000fp_like_suite(2_000);
        assert_eq!(suite.len(), 5);
        let names: Vec<_> = suite.iter().map(|w| w.name.as_str()).collect();
        assert!(names.contains(&"stream_add"));
        assert!(names.contains(&"gather"));
    }

    #[test]
    fn workloads_meet_the_target_length() {
        for w in spec2000fp_like_suite(3_000) {
            assert!(
                w.trace.len() >= 3_000,
                "{} too short: {}",
                w.name,
                w.trace.len()
            );
        }
    }

    #[test]
    fn traces_carry_their_suite_name() {
        for w in spec2000fp_like_suite(1_000) {
            assert_eq!(w.trace.name(), w.name);
        }
    }

    #[test]
    fn suite_average_is_the_arithmetic_mean() {
        assert_eq!(suite_average(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(suite_average(&[]), 0.0);
    }

    #[test]
    fn mlp_contrast_suite_generates_the_pair() {
        let workloads = Suite::mlp_contrast().generate(2_000);
        let names: Vec<_> = workloads.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(names, vec!["pointer_chase", "stream_mlp"]);
        for w in &workloads {
            assert!(w.trace.len() >= 2_000, "{} too short", w.name);
        }
    }
}
