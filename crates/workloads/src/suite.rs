//! The SPEC2000fp-like suite: named workloads and suite-average helpers.

use crate::config::KernelConfig;
use crate::kernels;
use crate::synth::{generate_kernel, KernelSource};
use koc_isa::{InstructionSource, LaneSource, MaterializedTrace, StreamFork, Trace};

/// A named workload: a kernel configuration and its generated trace.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Suite name of the workload (e.g. `"stream_add"`).
    pub name: String,
    /// The kernel configuration the trace was generated from.
    pub config: KernelConfig,
    /// The generated dynamic instruction trace.
    pub trace: Trace,
}

impl Workload {
    /// Generates a workload from a named kernel configuration with the given
    /// minimum dynamic length.
    pub fn generate(name: &str, config: KernelConfig, target_len: usize) -> Self {
        let config = config.with_target_len(target_len);
        let trace = generate_kernel(name, &config);
        Workload {
            name: name.to_string(),
            config,
            trace,
        }
    }

    /// An [`InstructionSource`] replaying this workload's materialized
    /// trace (borrowing it — nothing is copied).
    pub fn source(&self) -> MaterializedTrace<'_> {
        MaterializedTrace::new(&self.trace)
    }
}

/// A workload that has not (necessarily) been materialized: either a kernel
/// configuration to generate from — lazily, via [`WorkloadSpec::source`] —
/// or a pre-built trace used as-is.
///
/// This is what streamed simulation sessions run: each run pulls its own
/// [`KernelSource`] and never holds the full dynamic stream in memory.
#[derive(Debug, Clone)]
pub enum WorkloadSpec {
    /// A kernel to generate on demand.
    Kernel {
        /// Suite name of the workload.
        name: String,
        /// The (already length-scaled) kernel configuration.
        config: KernelConfig,
    },
    /// A pre-generated workload, streamed from its materialized trace.
    Fixed(Workload),
}

impl WorkloadSpec {
    /// The workload's suite name.
    pub fn name(&self) -> &str {
        match self {
            WorkloadSpec::Kernel { name, .. } => name,
            WorkloadSpec::Fixed(w) => &w.name,
        }
    }

    /// A fresh source producing the workload's dynamic instruction stream
    /// from the beginning.
    pub fn source(&self) -> Box<dyn InstructionSource + Send + '_> {
        match self {
            WorkloadSpec::Kernel { name, config } => Box::new(KernelSource::new(name, *config)),
            WorkloadSpec::Fixed(w) => Box::new(w.source()),
        }
    }

    /// Instantiates the spec **once** and forks the stream into `lanes`
    /// identical readers — the shared-spec seam of lockstep sweeps. Each
    /// lane delivers the exact sequence [`source`](Self::source) would,
    /// but kernel generation (or trace replay) happens a single time for
    /// all lanes; the shared buffer only holds the span between the
    /// slowest and fastest reader.
    pub fn fork(&self, lanes: usize) -> Vec<LaneSource<'_>> {
        StreamFork::split(self.source(), lanes)
    }

    /// Materializes the spec into a full [`Workload`] (generating the trace
    /// for kernel specs; pre-built workloads are cloned as-is).
    pub fn materialize(&self) -> Workload {
        match self {
            WorkloadSpec::Kernel { name, config } => Workload {
                name: name.clone(),
                config: *config,
                trace: generate_kernel(name, config),
            },
            WorkloadSpec::Fixed(w) => w.clone(),
        }
    }
}

/// Generates the five-kernel SPEC2000fp-like suite, each workload at least
/// `target_len` dynamic instructions long.
///
/// The paper simulates 300M representative instructions per benchmark; the
/// experiments in this repository default to much shorter traces (tens of
/// thousands of instructions) which are sufficient because the synthetic
/// kernels are statistically stationary — every window of the trace looks
/// like every other window.
pub fn spec2000fp_like_suite(target_len: usize) -> Vec<Workload> {
    kernels::all()
        .into_iter()
        .map(|(name, config)| Workload::generate(name, config, target_len))
        .collect()
}

/// A declarative description of which workloads a simulation session runs.
///
/// A `Suite` is a *specification*: it is materialized into concrete
/// [`Workload`]s (at a given dynamic trace length) by [`Suite::generate`],
/// which the `koc-sim` session builder calls for you.
#[derive(Debug, Clone)]
pub enum Suite {
    /// The five-kernel SPEC2000fp-like suite the paper's figures average
    /// over.
    Paper,
    /// The MLP-contrast pair: `pointer_chase` (a dependent chain, MLP = 1)
    /// and `stream_mlp` (independent line-stride misses, maximal MLP).
    /// Designed for the memory-backend experiments.
    MlpContrast,
    /// A single named kernel.
    Kernel {
        /// Workload name (used in reports).
        name: String,
        /// The kernel configuration to generate from.
        config: KernelConfig,
    },
    /// Pre-generated workloads, used as-is (their length is fixed).
    Custom(Vec<Workload>),
}

impl Suite {
    /// The paper's suite: all five SPEC2000fp-like kernels.
    pub fn paper() -> Self {
        Suite::Paper
    }

    /// The MLP-contrast pair ([`kernels::pointer_chase`] and
    /// [`kernels::stream_mlp`]).
    pub fn mlp_contrast() -> Self {
        Suite::MlpContrast
    }

    /// A single kernel by configuration (e.g. `Suite::kernel("stream_add",
    /// kernels::stream_add())`).
    pub fn kernel(name: impl Into<String>, config: KernelConfig) -> Self {
        Suite::Kernel {
            name: name.into(),
            config,
        }
    }

    /// Pre-generated workloads used exactly as given.
    pub fn custom(workloads: Vec<Workload>) -> Self {
        Suite::Custom(workloads)
    }

    /// Materializes the suite at the given minimum dynamic trace length.
    /// `Custom` workloads are returned as-is.
    pub fn generate(&self, target_len: usize) -> Vec<Workload> {
        self.specs(target_len)
            .iter()
            .map(|s| s.materialize())
            .collect()
    }

    /// The suite as lazy [`WorkloadSpec`]s at the given minimum dynamic
    /// length — the streamed counterpart of [`Suite::generate`]: nothing is
    /// materialized, each spec produces its stream on demand. `Custom`
    /// workloads keep their pre-built traces (their length is fixed).
    pub fn specs(&self, target_len: usize) -> Vec<WorkloadSpec> {
        let kernel = |name: &str, config: KernelConfig| WorkloadSpec::Kernel {
            name: name.to_string(),
            config: config.with_target_len(target_len),
        };
        match self {
            Suite::Paper => kernels::all()
                .into_iter()
                .map(|(name, config)| kernel(name, config))
                .collect(),
            Suite::MlpContrast => kernels::mlp_contrast()
                .into_iter()
                .map(|(name, config)| kernel(name, config))
                .collect(),
            Suite::Kernel { name, config } => vec![kernel(name, *config)],
            Suite::Custom(workloads) => {
                workloads.iter().cloned().map(WorkloadSpec::Fixed).collect()
            }
        }
    }
}

/// Arithmetic mean over per-workload values, the paper's "average over
/// SPEC2000fp" reduction.
pub fn suite_average(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_five_named_workloads() {
        let suite = spec2000fp_like_suite(2_000);
        assert_eq!(suite.len(), 5);
        let names: Vec<_> = suite.iter().map(|w| w.name.as_str()).collect();
        assert!(names.contains(&"stream_add"));
        assert!(names.contains(&"gather"));
    }

    #[test]
    fn workloads_meet_the_target_length() {
        for w in spec2000fp_like_suite(3_000) {
            assert!(
                w.trace.len() >= 3_000,
                "{} too short: {}",
                w.name,
                w.trace.len()
            );
        }
    }

    #[test]
    fn traces_carry_their_suite_name() {
        for w in spec2000fp_like_suite(1_000) {
            assert_eq!(w.trace.name(), w.name);
        }
    }

    #[test]
    fn suite_average_is_the_arithmetic_mean() {
        assert_eq!(suite_average(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(suite_average(&[]), 0.0);
    }

    #[test]
    fn specs_stream_what_generate_materializes() {
        for suite in [
            Suite::paper(),
            Suite::mlp_contrast(),
            Suite::kernel("stream_add", crate::kernels::stream_add()),
        ] {
            let specs = suite.specs(1_000);
            let workloads = suite.generate(1_000);
            assert_eq!(specs.len(), workloads.len());
            for (spec, w) in specs.iter().zip(&workloads) {
                assert_eq!(spec.name(), w.name);
                let mut source = spec.source();
                for id in 0..w.trace.len() {
                    assert_eq!(source.next_inst().as_ref(), Some(&w.trace[id]));
                }
                assert_eq!(source.next_inst(), None);
            }
        }
    }

    #[test]
    fn custom_specs_reuse_the_fixed_trace() {
        let w = Workload::generate("stream_add", crate::kernels::stream_add(), 500);
        let suite = Suite::custom(vec![w.clone()]);
        let specs = suite.specs(99_999); // target length must be ignored
        assert_eq!(specs.len(), 1);
        let materialized = specs[0].materialize();
        assert_eq!(materialized.trace, w.trace);
        let mut s = specs[0].source();
        assert_eq!(s.len_hint(), Some(w.trace.len()));
        assert_eq!(s.next_inst().as_ref(), Some(&w.trace[0]));
    }

    #[test]
    fn forked_spec_lanes_match_the_solo_source() {
        let spec = Suite::paper().specs(600).remove(0);
        let mut solo = spec.source();
        let mut lanes = spec.fork(2);
        let mut b = lanes.pop().unwrap();
        let mut a = lanes.pop().unwrap();
        assert_eq!(a.len_hint(), solo.len_hint());
        loop {
            let want = solo.next_inst();
            assert_eq!(a.next_inst(), want, "lane 0 must replay the spec");
            assert_eq!(b.next_inst(), want, "lane 1 must replay the spec");
            if want.is_none() {
                break;
            }
        }
    }

    #[test]
    fn mlp_contrast_suite_generates_the_pair() {
        let workloads = Suite::mlp_contrast().generate(2_000);
        let names: Vec<_> = workloads.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(names, vec!["pointer_chase", "stream_mlp"]);
        for w in &workloads {
            assert!(w.trace.len() >= 2_000, "{} too short", w.name);
        }
    }
}
