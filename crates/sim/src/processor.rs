//! The cycle-level pipeline: fetch/rename/dispatch, issue, execute,
//! write-back and commit, with either the conventional in-order ROB commit
//! engine or the paper's checkpointed out-of-order commit engine.
//!
//! The simulator is trace driven. Branch mispredictions use a
//! squash-and-refetch model: fetch continues past an unresolved mispredicted
//! branch (the fetched instructions stand in for wrong-path work and occupy
//! machine resources); when the branch resolves, younger instructions are
//! squashed and fetch restarts after the branch — or, if the branch has
//! already left the pseudo-ROB, the machine rolls back to the owning
//! checkpoint and re-executes from there, which is exactly the recovery cost
//! the paper attributes to coarse-grain checkpointing.

use crate::config::{BranchPredictorKind, CommitConfig, ProcessorConfig, RegisterModel};
use crate::inflight::{InFlight, InstState};
use crate::stats::SimStats;
use koc_core::{
    CamRenameMap, CheckpointId, CheckpointPolicy, CheckpointTable, DependenceTracker, InstructionQueue,
    IqEntry, LoadStoreQueue, LsqEntry, PhysRegFile, PseudoRob, PseudoRobEntry, ReorderBuffer, RetireClass,
    RobEntry, SliqBuffer, VirtualRegisterFile,
};
use koc_frontend::{BranchPredictor, GsharePredictor, PerfectPredictor};
use koc_isa::{FuClass, InstId, Instruction, OpKind, PhysReg, Trace, TraceCursor};
use koc_mem::{MemLevel, MemoryHierarchy};
use std::collections::{BTreeMap, HashSet};

/// Interval (in cycles) at which the expensive live-instruction breakdown
/// (Figure 7) is sampled.
const LIVE_SAMPLE_INTERVAL: u64 = 32;

/// Why dispatch stopped this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StallReason {
    IqFull,
    RobFull,
    LsqFull,
    RegsFull,
    CheckpointFull,
}

enum PredictorImpl {
    Gshare(Box<GsharePredictor>),
    Perfect(PerfectPredictor),
}

impl PredictorImpl {
    fn predict_and_train(&mut self, pc: u64, taken: bool, stats: &mut koc_frontend::BranchStats) -> bool {
        match self {
            PredictorImpl::Gshare(p) => p.predict_and_train(pc, taken, stats),
            PredictorImpl::Perfect(p) => p.predict_and_train(pc, taken, stats),
        }
    }
}

/// The commit engine: the only part of the pipeline that differs between the
/// baseline and the proposed machine.
enum CommitEngine {
    Rob(ReorderBuffer),
    Cooo {
        table: CheckpointTable,
        policy: CheckpointPolicy,
        pseudo_rob: PseudoRob,
        sliq: SliqBuffer,
        dep: DependenceTracker,
        sliq_triggers: HashSet<PhysReg>,
    },
}

/// The processor: all microarchitectural state for one simulation run.
pub struct Processor<'a> {
    config: ProcessorConfig,
    trace: &'a Trace,
    cursor: TraceCursor<'a>,
    cycle: u64,

    rename: CamRenameMap,
    regs: PhysRegFile,
    vregs: Option<VirtualRegisterFile>,
    int_iq: InstructionQueue,
    fp_iq: InstructionQueue,
    lsq: LoadStoreQueue,
    mem: MemoryHierarchy,
    predictor: PredictorImpl,
    engine: CommitEngine,

    inflight: BTreeMap<InstId, InFlight>,
    next_seq: u64,
    /// Completion events: cycle -> [(inst, seq)].
    events: BTreeMap<u64, Vec<(InstId, u64)>>,
    /// Fetch is stalled (misprediction redirect) until this cycle.
    fetch_stall_until: u64,
    /// Number of dispatched-but-not-issued instructions (incremental).
    live_count: usize,
    /// Exceptions already delivered (so re-execution does not re-raise).
    handled_exceptions: HashSet<InstId>,
    /// Take a checkpoint exactly before this instruction (precise exception
    /// re-execution).
    force_checkpoint_at: Option<InstId>,

    stats: SimStats,
}

impl<'a> Processor<'a> {
    /// Builds a processor for one run over `trace`.
    ///
    /// # Panics
    /// Panics if the configuration fails [`ProcessorConfig::validate`].
    pub fn new(config: ProcessorConfig, trace: &'a Trace) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid processor configuration: {e}");
        }
        let rename_pool = config.registers.rename_pool_size();
        let vregs = match config.registers {
            RegisterModel::Conventional { .. } => None,
            RegisterModel::Virtual { virtual_tags, phys_regs } => {
                Some(VirtualRegisterFile::new(virtual_tags, phys_regs))
            }
        };
        let predictor = match config.predictor {
            BranchPredictorKind::Gshare16k => PredictorImpl::Gshare(Box::new(GsharePredictor::table1())),
            BranchPredictorKind::Perfect => PredictorImpl::Perfect(PerfectPredictor::new()),
        };
        let engine = match config.commit {
            CommitConfig::InOrderRob { rob_size } => CommitEngine::Rob(ReorderBuffer::new(rob_size)),
            CommitConfig::Checkpointed { checkpoint_entries, pseudo_rob_size, sliq, policy } => {
                CommitEngine::Cooo {
                    table: CheckpointTable::new(checkpoint_entries),
                    policy,
                    pseudo_rob: PseudoRob::new(pseudo_rob_size),
                    sliq: SliqBuffer::new(sliq),
                    dep: DependenceTracker::new(),
                    sliq_triggers: HashSet::new(),
                }
            }
        };
        Processor {
            cursor: trace.cursor(),
            trace,
            cycle: 0,
            rename: CamRenameMap::new(rename_pool),
            regs: PhysRegFile::new(rename_pool),
            vregs,
            int_iq: InstructionQueue::new(config.iq_size),
            fp_iq: InstructionQueue::new(config.iq_size),
            lsq: LoadStoreQueue::new(config.lsq_size),
            mem: MemoryHierarchy::new(config.memory),
            predictor,
            engine,
            inflight: BTreeMap::new(),
            next_seq: 0,
            events: BTreeMap::new(),
            fetch_stall_until: 0,
            live_count: 0,
            handled_exceptions: HashSet::new(),
            force_checkpoint_at: None,
            stats: SimStats::default(),
            config,
        }
    }

    /// The configuration this processor was built with.
    pub fn config(&self) -> &ProcessorConfig {
        &self.config
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Whether the run is complete: the whole trace has been fetched,
    /// executed and committed.
    pub fn is_done(&self) -> bool {
        let engine_empty = match &self.engine {
            CommitEngine::Rob(rob) => rob.is_empty(),
            CommitEngine::Cooo { table, .. } => table.is_empty(),
        };
        self.cursor.at_end() && self.inflight.is_empty() && engine_empty
    }

    /// Runs until completion and returns the statistics.
    ///
    /// # Panics
    /// Panics if the simulation exceeds a generous cycle bound (indicating a
    /// pipeline deadlock, which is a bug).
    pub fn run(mut self) -> SimStats {
        let bound = self.cycle_bound();
        while !self.is_done() {
            self.step();
            assert!(
                self.cycle < bound,
                "simulation exceeded {bound} cycles: likely pipeline deadlock ({} of {} committed)",
                self.stats.committed_instructions,
                self.trace.len()
            );
        }
        self.finalize();
        self.stats
    }

    fn cycle_bound(&self) -> u64 {
        let worst_inst = self.config.memory.worst_case_latency() as u64 + 64;
        1_000_000 + self.trace.len() as u64 * worst_inst
    }

    fn finalize(&mut self) {
        self.stats.memory = *self.mem.stats();
        if let CommitEngine::Cooo { sliq, .. } = &self.engine {
            self.stats.sliq_moved = sliq.total_moved();
            self.stats.sliq_high_water = sliq.high_water();
        }
        debug_assert_eq!(
            self.stats.committed_instructions as usize,
            self.trace.len(),
            "every trace instruction must commit exactly once"
        );
    }

    /// Advances the machine by one cycle.
    pub fn step(&mut self) {
        self.cycle += 1;
        self.stats.cycles = self.cycle;
        self.writeback_stage();
        self.commit_stage();
        self.sliq_stage();
        self.issue_stage();
        self.frontend_stage();
        self.sample_stats();
    }

    // ------------------------------------------------------------------
    // Write-back
    // ------------------------------------------------------------------

    fn writeback_stage(&mut self) {
        let Some(finished) = self.events.remove(&self.cycle) else { return };
        for (inst, seq) in finished {
            let Some(fl) = self.inflight.get(&inst) else { continue };
            if fl.seq != seq || fl.is_done() {
                continue;
            }
            // Exceptions are delivered at completion.
            if fl.raises_exception && !self.handled_exceptions.contains(&inst) {
                let squashed = self.handle_exception(inst);
                if squashed {
                    continue;
                }
            }
            // Ephemeral/virtual registers: a physical register is allocated
            // late, at write-back, and the register holding the superseded
            // value of the same logical register is recycled early, at the
            // same moment (the ephemeral-registers scheme of [19]/[9]). If no
            // physical register is free the write-back retries next cycle.
            if let Some(f) = self.inflight.get(&inst) {
                if f.dest_phys.is_some() {
                    let has_prev = f.prev_phys.is_some();
                    if let Some(v) = &mut self.vregs {
                        if has_prev {
                            v.try_release_physical();
                        }
                        if !v.acquire_physical() {
                            self.events.entry(self.cycle + 1).or_default().push((inst, seq));
                            continue;
                        }
                    }
                }
            }
            let Some(fl) = self.inflight.get_mut(&inst) else { continue };
            fl.state = InstState::Done;
            let dest_phys = fl.dest_phys;
            let dest_arch = fl.dest_arch;
            let ckpt = fl.ckpt;
            let kind = fl.kind;
            let mispredicted = fl.mispredicted;
            if let Some(p) = dest_phys {
                self.regs.set_ready(p);
                self.int_iq.wakeup(p);
                self.fp_iq.wakeup(p);
            }
            match &mut self.engine {
                CommitEngine::Rob(rob) => rob.mark_finished(inst),
                CommitEngine::Cooo { table, sliq, sliq_triggers, dep, .. } => {
                    table.on_complete(ckpt);
                    if let Some(p) = dest_phys {
                        if sliq_triggers.remove(&p) {
                            sliq.on_trigger_ready(p, self.cycle);
                        }
                        if kind == OpKind::Load {
                            if let Some(a) = dest_arch {
                                dep.clear_if_trigger(a, p);
                            }
                        }
                    }
                }
            }
            if kind == OpKind::Branch && mispredicted {
                self.recover_mispredicted_branch(inst);
            }
        }
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    fn commit_stage(&mut self) {
        match &mut self.engine {
            CommitEngine::Rob(_) => self.commit_rob(),
            CommitEngine::Cooo { .. } => self.commit_checkpoint(),
        }
    }

    fn commit_rob(&mut self) {
        let CommitEngine::Rob(rob) = &mut self.engine else { unreachable!() };
        let committed = rob.commit(self.config.commit_width);
        if committed.is_empty() {
            return;
        }
        let mut frontier = 0;
        for e in &committed {
            if let Some((_, _, Some(prev))) = e.rename {
                self.regs.free(prev);
            }
            self.inflight.remove(&e.inst);
            frontier = e.inst + 1;
        }
        self.stats.committed_instructions += committed.len() as u64;
        self.drain_stores(frontier);
    }

    fn commit_checkpoint(&mut self) {
        let trace_done = self.cursor.at_end();
        let CommitEngine::Cooo { table, .. } = &mut self.engine else { unreachable!() };
        if !table.can_commit_oldest(trace_done) {
            return;
        }
        let committed = table.commit_oldest();
        let frontier = table.oldest().map(|c| c.trace_index).unwrap_or_else(|| self.cursor.position());
        self.stats.checkpoints_committed += 1;
        self.stats.committed_instructions += committed.total_insts as u64;
        for p in &committed.free_on_commit {
            self.regs.free(*p);
        }
        let id = committed.id;
        self.inflight.retain(|_, fl| fl.ckpt != id);
        self.drain_stores(frontier);
    }

    fn drain_stores(&mut self, frontier: InstId) {
        let drained = self.lsq.release_older_than(frontier);
        for s in drained {
            self.mem.access_data(s.addr, true);
        }
    }

    // ------------------------------------------------------------------
    // SLIQ wake-up
    // ------------------------------------------------------------------

    fn sliq_stage(&mut self) {
        let CommitEngine::Cooo { sliq, .. } = &mut self.engine else { return };
        // Wake-ups are never blocked by queue occupancy: a re-inserted
        // instruction may transiently push a queue above its capacity
        // (bounded by the wake width). Blocking here can create a circular
        // wait — the queue would only drain once instructions still parked in
        // the SLIQ execute — so the overshoot is the documented modelling
        // choice (DESIGN.md).
        let woken = sliq.step(self.cycle, usize::MAX, usize::MAX);
        for entry in woken {
            let inst = entry.inst;
            let queue = if entry.fu == FuClass::Fp { &mut self.fp_iq } else { &mut self.int_iq };
            let regs = &self.regs;
            queue.insert_unbounded(entry, |p| regs.is_ready(p));
            if let Some(fl) = self.inflight.get_mut(&inst) {
                fl.state = InstState::Waiting;
            }
        }
    }

    // ------------------------------------------------------------------
    // Issue / execute
    // ------------------------------------------------------------------

    fn issue_stage(&mut self) {
        let mut fu = [
            self.config.int_alu_units,
            self.config.int_mul_units,
            self.config.fp_units,
            self.config.mem_ports,
        ];
        let budget = self.config.issue_width;
        // Alternate which queue gets first pick to avoid starving either.
        let int_first = self.cycle % 2 == 0;
        let mut picked = Vec::with_capacity(budget);
        if int_first {
            picked.extend(self.int_iq.select_ready(&mut fu, budget));
            let left = budget - picked.len();
            picked.extend(self.fp_iq.select_ready(&mut fu, left));
        } else {
            picked.extend(self.fp_iq.select_ready(&mut fu, budget));
            let left = budget - picked.len();
            picked.extend(self.int_iq.select_ready(&mut fu, left));
        }
        for entry in picked {
            self.begin_execution(entry.inst);
        }
    }

    fn begin_execution(&mut self, inst: InstId) {
        let trace_inst = &self.trace[inst];
        let (latency, level) = match trace_inst.kind {
            OpKind::Load => {
                let access = self.mem.access_data(trace_inst.mem.expect("load has address").addr, false);
                (access.latency, Some(access.level))
            }
            OpKind::Store => (1, None),
            kind => (kind.latency().latency, None),
        };
        let fl = self.inflight.get_mut(&inst).expect("issued instruction is in flight");
        debug_assert!(fl.is_live(), "issuing an instruction that is not waiting");
        let done = self.cycle + latency as u64;
        fl.state = InstState::Executing { done_cycle: done };
        fl.mem_level = level;
        self.live_count = self.live_count.saturating_sub(1);
        self.events.entry(done).or_default().push((inst, fl.seq));
    }

    // ------------------------------------------------------------------
    // Frontend: pseudo-ROB retirement, rename/dispatch, fetch
    // ------------------------------------------------------------------

    fn frontend_stage(&mut self) {
        // Drain the pseudo-ROB when fetch has finished so classification and
        // SLIQ moves keep happening for the tail of the trace.
        if self.cursor.at_end() {
            self.retire_from_pseudo_rob(self.config.fetch_width);
        }
        if self.cycle < self.fetch_stall_until {
            self.stats.stalls.redirect += 1;
            return;
        }
        let mut dispatched = 0;
        while dispatched < self.config.fetch_width {
            let Some((id, inst)) = self.cursor.peek() else { break };
            match self.try_dispatch(id, inst) {
                Ok(()) => {
                    self.cursor.next_inst();
                    dispatched += 1;
                    // A taken branch ends the fetch group.
                    if inst.is_branch() && inst.branch.map(|b| b.taken).unwrap_or(false) {
                        break;
                    }
                }
                Err(reason) => {
                    self.record_stall(reason);
                    if reason == StallReason::IqFull {
                        // Make forward progress by classifying (and possibly
                        // moving to the SLIQ) the oldest pseudo-ROB entries.
                        self.retire_from_pseudo_rob(self.config.fetch_width);
                    }
                    break;
                }
            }
        }
    }

    fn record_stall(&mut self, reason: StallReason) {
        match reason {
            StallReason::IqFull => self.stats.stalls.iq_full += 1,
            StallReason::RobFull => self.stats.stalls.rob_full += 1,
            StallReason::LsqFull => self.stats.stalls.lsq_full += 1,
            StallReason::RegsFull => self.stats.stalls.regs_full += 1,
            StallReason::CheckpointFull => self.stats.stalls.checkpoint_full += 1,
        }
    }

    fn target_queue_is(&self, inst: &Instruction) -> bool {
        // true => FP queue, false => integer queue (loads/stores/branches and
        // integer arithmetic use the integer queue).
        inst.kind.is_fp()
    }

    fn try_dispatch(&mut self, id: InstId, inst: &Instruction) -> Result<(), StallReason> {
        // --- Resource checks (no allocation yet) -------------------------
        let needs_fp_queue = self.target_queue_is(inst);
        let queue_has_space =
            if needs_fp_queue { self.fp_iq.has_space() } else { self.int_iq.has_space() };
        if !queue_has_space {
            return Err(StallReason::IqFull);
        }
        if inst.kind.is_memory() && !self.lsq.has_space() {
            return Err(StallReason::LsqFull);
        }
        if inst.dest.is_some() && self.regs.free_count() == 0 {
            return Err(StallReason::RegsFull);
        }
        match &self.engine {
            CommitEngine::Rob(rob) => {
                if !rob.has_space() {
                    return Err(StallReason::RobFull);
                }
            }
            CommitEngine::Cooo { .. } => {}
        }

        // --- Checkpoint policy (checkpointed engine only) -----------------
        let mut take_checkpoint = false;
        if let CommitEngine::Cooo { table, policy, .. } = &self.engine {
            let forced_here = self.force_checkpoint_at == Some(id);
            let wants_checkpoint = table.is_empty()
                || forced_here
                || table
                    .newest()
                    .map(|n| policy.should_take(n.total_insts, n.stores, inst.is_branch()))
                    .unwrap_or(true);
            if wants_checkpoint {
                if !table.is_full() {
                    take_checkpoint = true;
                } else {
                    // Keep extending the youngest window, unless the store
                    // bound would risk exhausting the LSQ.
                    let stores = table.newest().map(|n| n.stores).unwrap_or(0);
                    if stores >= policy.force_after_stores.saturating_mul(2) {
                        return Err(StallReason::CheckpointFull);
                    }
                }
            }
        }
        if take_checkpoint {
            let (snapshot, freed) = self.rename.take_checkpoint(&self.regs);
            let CommitEngine::Cooo { table, .. } = &mut self.engine else { unreachable!() };
            table.take(id, snapshot, freed).expect("table was not full");
            self.stats.checkpoints_taken += 1;
            if self.force_checkpoint_at == Some(id) {
                self.force_checkpoint_at = None;
            }
        }

        // --- Rename -------------------------------------------------------
        let src_phys: Vec<PhysReg> = inst.sources().filter_map(|s| self.rename.lookup(s)).collect();
        let renamed = match inst.dest {
            Some(dest) => {
                Some(self.rename.rename_dest(dest, &mut self.regs).expect("free register was checked"))
            }
            None => None,
        };
        let dest_phys = renamed.map(|r| r.new_phys);
        let prev_phys = renamed.and_then(|r| r.prev_phys);

        // --- Branch prediction ---------------------------------------------
        let (predicted, mispredicted) = if let Some(b) = inst.branch {
            if b.unconditional {
                (Some(true), false)
            } else {
                let correct = self.predictor.predict_and_train(inst.pc, b.taken, &mut self.stats.branches);
                (Some(if correct { b.taken } else { !b.taken }), !correct)
            }
        } else {
            (None, false)
        };

        // --- Structure allocation ------------------------------------------
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(mem) = inst.mem {
            self.lsq
                .allocate(LsqEntry { inst: id, is_store: inst.is_store(), addr: mem.addr })
                .expect("LSQ space was checked");
        }
        let ckpt: CheckpointId = match &mut self.engine {
            CommitEngine::Rob(rob) => {
                rob.push(RobEntry {
                    inst: id,
                    finished: false,
                    rename: inst.dest.map(|d| (d, dest_phys.expect("dest renamed"), prev_phys)),
                    is_store: inst.is_store(),
                    is_branch: inst.is_branch(),
                    ckpt: 0,
                })
                .expect("ROB space was checked");
                0
            }
            CommitEngine::Cooo { table, .. } => table.on_dispatch(inst.is_store()),
        };
        let iq_entry = IqEntry {
            inst: id,
            dest: dest_phys,
            srcs: src_phys.clone(),
            fu: inst.kind.fu_class(),
            ckpt,
        };
        {
            let regs = &self.regs;
            let queue = if needs_fp_queue { &mut self.fp_iq } else { &mut self.int_iq };
            queue.insert(iq_entry, |p| regs.is_ready(p)).expect("queue space was checked");
        }
        let retired = match &mut self.engine {
            CommitEngine::Cooo { pseudo_rob, .. } => pseudo_rob.push(PseudoRobEntry {
                inst: id,
                ckpt,
                rename: inst.dest.map(|d| (d, dest_phys.expect("dest renamed"), prev_phys)),
                is_store: inst.is_store(),
                is_branch: inst.is_branch(),
            }),
            CommitEngine::Rob(_) => None,
        };
        if let Some(entry) = retired {
            self.classify_retired(entry);
        }
        self.inflight.insert(
            id,
            InFlight {
                inst: id,
                seq,
                kind: inst.kind,
                dest_arch: inst.dest,
                dest_phys,
                prev_phys,
                src_phys,
                ckpt,
                state: InstState::Waiting,
                dispatch_cycle: self.cycle,
                mem_level: None,
                predicted_taken: predicted,
                mispredicted,
                raises_exception: inst.raises_exception && !self.handled_exceptions.contains(&id),
            },
        );
        self.live_count += 1;
        self.stats.dispatched_instructions += 1;
        Ok(())
    }

    /// Extracts up to `budget` oldest entries from the pseudo-ROB and
    /// classifies them (Figure 12 / SLIQ move decision). Used when dispatch
    /// is stalled on a full instruction queue and when draining at the end of
    /// the trace; the common path extracts through [`PseudoRob::push`].
    fn retire_from_pseudo_rob(&mut self, budget: usize) {
        for _ in 0..budget {
            let CommitEngine::Cooo { pseudo_rob, .. } = &mut self.engine else { return };
            let Some(entry) = pseudo_rob.pop_oldest() else { return };
            self.classify_retired(entry);
        }
    }

    fn classify_retired(&mut self, entry: PseudoRobEntry) {
        let trace_inst = &self.trace[entry.inst];
        let CommitEngine::Cooo { dep, sliq, sliq_triggers, .. } = &mut self.engine else { return };
        // Update the dependence mask with this instruction regardless of its
        // class: independent redefinitions kill dependences.
        let trigger = dep.classify(trace_inst);
        let fl = self.inflight.get(&entry.inst);
        let class = if entry.is_store {
            RetireClass::Store
        } else if trace_inst.kind == OpKind::Load {
            match fl {
                Some(fl) if fl.is_done() => RetireClass::FinishedLoad,
                Some(fl) if fl.is_issued() && fl.mem_level != Some(MemLevel::Memory) => {
                    RetireClass::FinishedLoad
                }
                None => RetireClass::FinishedLoad,
                Some(fl) => {
                    // Still outstanding: the paper treats it as long latency.
                    if let (Some(dest), Some(phys)) = (trace_inst.dest, fl.dest_phys) {
                        dep.add_long_latency_load(dest, phys);
                        sliq_triggers.insert(phys);
                    }
                    RetireClass::LongLatLoad
                }
            }
        } else {
            match fl {
                Some(fl) if fl.is_done() => RetireClass::Finished,
                None => RetireClass::Finished,
                Some(fl) => {
                    if trigger.is_some() && !fl.is_issued() {
                        RetireClass::ShortLat // provisional; upgraded to Moved below
                    } else {
                        RetireClass::ShortLat
                    }
                }
            }
        };
        // Move still-waiting dependent instructions (of any kind except the
        // triggering loads themselves) from the IQ into the SLIQ. If the
        // triggering register has already been produced, the instruction will
        // issue shortly, so it stays in the queue (and moving it would leave
        // it stranded: its wake-up event has already fired).
        let mut final_class = class;
        if class != RetireClass::LongLatLoad {
            if let (Some(trigger), Some(fl)) = (trigger, self.inflight.get_mut(&entry.inst)) {
                if fl.state == InstState::Waiting && !self.regs.is_ready(trigger) && sliq.has_space() {
                    let queue =
                        if trace_inst.kind.is_fp() { &mut self.fp_iq } else { &mut self.int_iq };
                    if let Some(iq_entry) = queue.remove(entry.inst) {
                        if sliq.insert(iq_entry, trigger) {
                            fl.state = InstState::InSliq;
                            sliq_triggers.insert(trigger);
                            if !entry.is_store && trace_inst.kind != OpKind::Load {
                                final_class = RetireClass::Moved;
                            }
                        } else {
                            unreachable!("space was checked");
                        }
                    }
                }
            }
        }
        self.stats.retire_breakdown.record(final_class);
    }

    // ------------------------------------------------------------------
    // Recovery
    // ------------------------------------------------------------------

    fn recover_mispredicted_branch(&mut self, branch: InstId) {
        match &self.engine {
            CommitEngine::Rob(_) => {
                self.stats.recoveries.near_recoveries += 1;
                self.squash_younger_walkback(branch);
            }
            CommitEngine::Cooo { pseudo_rob, .. } => {
                if pseudo_rob.contains(branch) {
                    self.stats.recoveries.near_recoveries += 1;
                    self.squash_younger_walkback(branch);
                } else {
                    self.stats.recoveries.checkpoint_rollbacks += 1;
                    let ckpt = self.inflight[&branch].ckpt;
                    self.rollback_to_checkpoint(ckpt);
                }
            }
        }
        self.fetch_stall_until = self.cycle + self.config.mispredict_penalty as u64;
    }

    /// Delivers an exception raised by `inst`. Returns `true` if the
    /// excepting instruction itself was squashed (checkpointed engine, which
    /// re-executes it from the checkpoint) and `false` if it survives and
    /// should complete normally (baseline, which squashes only younger work).
    fn handle_exception(&mut self, inst: InstId) -> bool {
        self.handled_exceptions.insert(inst);
        self.stats.recoveries.exceptions += 1;
        self.fetch_stall_until = self.cycle + self.config.mispredict_penalty as u64;
        match &self.engine {
            CommitEngine::Rob(_) => {
                // The baseline delivers the exception precisely by squashing
                // everything younger; the excepting instruction completes.
                self.squash_younger_walkback(inst);
                false
            }
            CommitEngine::Cooo { .. } => {
                // Roll back to the owning checkpoint and re-execute in
                // "strict" mode: a checkpoint is forced right at the
                // excepting instruction so the architectural state there is
                // precise.
                let ckpt = self.inflight[&inst].ckpt;
                self.force_checkpoint_at = Some(inst);
                self.rollback_to_checkpoint(ckpt);
                true
            }
        }
    }

    /// Squashes everything younger than `boundary` (exclusive) by walking the
    /// rename undo records (baseline ROB or pseudo-ROB), and rewinds fetch to
    /// just after `boundary`.
    fn squash_younger_walkback(&mut self, boundary: InstId) {
        // Collect undo records, youngest first.
        let undo: Vec<(InstId, Option<(koc_isa::ArchReg, PhysReg, Option<PhysReg>)>)> = match &mut self.engine
        {
            CommitEngine::Rob(rob) => {
                rob.squash_younger_than(boundary).into_iter().map(|e| (e.inst, e.rename)).collect()
            }
            CommitEngine::Cooo { pseudo_rob, .. } => pseudo_rob
                .squash_younger_than(boundary)
                .into_iter()
                .map(|e| (e.inst, e.rename))
                .collect(),
        };
        for (inst, rename) in &undo {
            if let Some((arch, newp, prevp)) = rename {
                self.rename.undo_rename(*arch, *newp, *prevp, &mut self.regs);
            }
            self.forget_inflight(*inst);
        }
        // Any instruction younger than `boundary` that was dispatched while
        // the boundary instruction had already left the pseudo-ROB cannot
        // exist (FIFO order), so the undo set is complete.
        self.int_iq.squash_from(boundary + 1);
        self.fp_iq.squash_from(boundary + 1);
        self.lsq.squash_from(boundary + 1);
        if let CommitEngine::Cooo { sliq, table, .. } = &mut self.engine {
            sliq.squash_from(boundary + 1);
            table.drop_taken_at_or_after(boundary + 1);
        }
        // Registers that became valid mappings again must not be freed by an
        // older checkpoint's commit.
        if let CommitEngine::Cooo { table, .. } = &mut self.engine {
            let rename = &self.rename;
            table.retain_free_on_commit(|p| !rename.is_valid(p));
        }
        self.stats.recoveries.squashed_instructions += undo.len() as u64;
        self.requeue_after_squash(boundary + 1);
    }

    /// Rolls back to checkpoint `ckpt`: restores the rename snapshot, drops
    /// younger checkpoints, squashes every instruction from the checkpoint's
    /// trace position onwards and rewinds fetch there.
    fn rollback_to_checkpoint(&mut self, ckpt: CheckpointId) {
        let CommitEngine::Cooo { table, pseudo_rob, sliq, dep, .. } = &mut self.engine else {
            unreachable!("checkpoint rollback requires the checkpointed engine")
        };
        let (snapshot, trace_index) = table.rollback_to(ckpt);
        self.rename.restore(&snapshot, &mut self.regs);
        pseudo_rob.squash_from(trace_index);
        sliq.squash_from(trace_index);
        dep.reset();
        self.int_iq.squash_from(trace_index);
        self.fp_iq.squash_from(trace_index);
        self.lsq.squash_from(trace_index);
        // Remove squashed in-flight instances. Their registers come back via
        // the restored free list, not via explicit frees.
        let doomed: Vec<InstId> = self.inflight.range(trace_index..).map(|(&k, _)| k).collect();
        let mut squashed = 0u64;
        for inst in doomed {
            if let Some(fl) = self.inflight.remove(&inst) {
                if fl.is_live() {
                    self.live_count = self.live_count.saturating_sub(1);
                }
                squashed += 1;
            }
        }
        self.stats.recoveries.squashed_instructions += squashed;
        self.stats.recoveries.reexecuted_instructions +=
            self.cursor.position().saturating_sub(trace_index) as u64;
        self.cursor.rewind_to(trace_index);
    }

    /// Removes a squashed instruction's in-flight record and releases its
    /// bookkeeping (pending counters, live count).
    fn forget_inflight(&mut self, inst: InstId) {
        if let Some(fl) = self.inflight.remove(&inst) {
            if fl.is_live() {
                self.live_count = self.live_count.saturating_sub(1);
            }
            if let CommitEngine::Cooo { table, .. } = &mut self.engine {
                table.on_squash(fl.ckpt, !fl.is_done());
            }
        }
    }

    /// Rewinds the trace cursor so fetch restarts at `target`.
    fn requeue_after_squash(&mut self, target: InstId) {
        if target < self.cursor.position() {
            self.cursor.rewind_to(target);
        }
    }

    // ------------------------------------------------------------------
    // Statistics sampling
    // ------------------------------------------------------------------

    fn sample_stats(&mut self) {
        self.stats.inflight.record(self.inflight.len());
        self.stats.live.record(self.live_count);
        if self.cycle % LIVE_SAMPLE_INTERVAL == 0 {
            self.sample_live_breakdown();
        }
    }

    /// Splits the live (not yet issued) instructions into blocked-long and
    /// blocked-short, following Figure 7's definition: blocked-long means the
    /// instruction is a load that missed in L2 or (transitively) depends on
    /// one.
    fn sample_live_breakdown(&mut self) {
        let mut long_regs: HashSet<PhysReg> = HashSet::new();
        for fl in self.inflight.values() {
            if fl.is_long_latency_load() && !fl.is_done() {
                if let Some(p) = fl.dest_phys {
                    long_regs.insert(p);
                }
            }
        }
        let mut long = 0usize;
        let mut short = 0usize;
        for fl in self.inflight.values() {
            if !fl.is_live() {
                continue;
            }
            let blocked_long = fl.src_phys.iter().any(|p| long_regs.contains(p));
            if blocked_long {
                long += 1;
                if let Some(p) = fl.dest_phys {
                    long_regs.insert(p);
                }
            } else {
                short += 1;
            }
        }
        self.stats.live_long.record(long);
        self.stats.live_short.record(short);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProcessorConfig;
    use koc_isa::{ArchReg, TraceBuilder};

    fn tiny_independent_trace(n: usize) -> Trace {
        let mut b = TraceBuilder::named("tiny");
        for i in 0..n {
            b.int_alu(ArchReg::int((i % 8) as u8 + 1), &[]);
        }
        b.finish()
    }

    #[test]
    fn baseline_commits_every_instruction() {
        let trace = tiny_independent_trace(100);
        let stats = Processor::new(ProcessorConfig::baseline(128, 100), &trace).run();
        assert_eq!(stats.committed_instructions, 100);
        assert!(stats.cycles > 0);
        assert!(stats.ipc() > 0.5);
    }

    #[test]
    fn cooo_commits_every_instruction() {
        let trace = tiny_independent_trace(100);
        let stats = Processor::new(ProcessorConfig::cooo(32, 512, 100), &trace).run();
        assert_eq!(stats.committed_instructions, 100);
        assert!(stats.checkpoints_taken >= 1);
        assert_eq!(stats.checkpoints_taken, stats.checkpoints_committed);
    }

    #[test]
    fn independent_alu_instructions_approach_the_issue_width() {
        let trace = tiny_independent_trace(2000);
        let stats = Processor::new(ProcessorConfig::baseline(256, 100), &trace).run();
        // 4-wide machine, 4 integer ALUs, no memory: IPC should be close to 4.
        assert!(stats.ipc() > 2.5, "ipc = {}", stats.ipc());
    }

    #[test]
    fn a_dependent_chain_is_serialized() {
        let mut b = TraceBuilder::named("chain");
        let r = ArchReg::fp(1);
        b.fp_alu(r, &[]);
        for _ in 0..499 {
            b.fp_alu(r, &[r]);
        }
        let trace = b.finish();
        let stats = Processor::new(ProcessorConfig::baseline(128, 100), &trace).run();
        // FP latency 2, fully serial: at least ~2 cycles per instruction.
        assert!(stats.ipc() < 0.7, "ipc = {}", stats.ipc());
    }

    #[test]
    fn loads_that_miss_stall_a_small_window_machine() {
        let mut b = TraceBuilder::named("misses");
        let base = ArchReg::int(1);
        for i in 0..200u64 {
            b.load(ArchReg::fp((i % 24) as u8), base, 0x100_0000 + i * 4096);
            b.fp_alu(ArchReg::fp(((i % 24) + 1) as u8 % 28), &[ArchReg::fp((i % 24) as u8)]);
        }
        let trace = b.finish();
        let small = Processor::new(ProcessorConfig::baseline(32, 500), &trace).run();
        let big = Processor::new(ProcessorConfig::baseline(1024, 500), &trace).run();
        assert!(
            big.ipc() > small.ipc() * 1.5,
            "large window should overlap misses: small={} big={}",
            small.ipc(),
            big.ipc()
        );
    }

    #[test]
    fn stats_invariants_hold() {
        let trace = tiny_independent_trace(300);
        let stats = Processor::new(ProcessorConfig::cooo(32, 512, 100), &trace).run();
        assert_eq!(stats.committed_instructions, 300);
        assert!(stats.dispatched_instructions >= stats.committed_instructions);
        assert!(stats.inflight.count() as u64 == stats.cycles);
    }
}
