//! The fluent simulation API: [`SimBuilder`] configures a machine and a
//! workload suite, [`Session`] runs it, and [`Sweep`] runs a whole grid of
//! configurations in parallel.
//!
//! ```no_run
//! use koc_sim::{SimBuilder, Suite};
//!
//! // The paper's headline machine over the paper's suite:
//! let session = SimBuilder::cooo()
//!     .pseudo_rob(128)
//!     .sliq(2048)
//!     .workloads(Suite::paper())
//!     .trace_len(30_000)
//!     .build();
//! let result = session.run();
//! println!("COoO 128/2048: {:.2} IPC", result.mean_ipc());
//! ```

use crate::config::{BranchPredictorKind, CommitConfig, ProcessorConfig, RegisterModel};
use crate::lockstep::run_lockstep;
use crate::pipeline::Processor;
use crate::stats::SimStats;
use koc_core::CheckpointPolicy;
use koc_isa::{InstructionSource, IntoInstructionSource};
use koc_mem::{BackendKind, DramConfig, PrefetchConfig};
use koc_obs::Observer;
use koc_workloads::{suite::suite_average, Suite, Workload, WorkloadSpec};
use rayon::prelude::*;

/// Default minimum dynamic trace length per workload when none is given.
pub const DEFAULT_TRACE_LEN: usize = 10_000;

/// How a [`Sweep`] executes its (configuration × workload) grid.
///
/// Execution mode is a scheduling decision only: per-config cycle counts
/// are **bit-identical** across modes (gated by `tests/lockstep.rs` at
/// zero tolerance).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// Decode once, simulate many: each workload's instruction stream is
    /// fetched a single time and forked across all configurations, which
    /// advance in lockstep under a shared fetch frontier
    /// (see [`crate::lockstep`]). The default whenever the configurations
    /// share a workload spec — which every grid built through [`Sweep`]
    /// does; single-configuration sweeps fall back to the per-config path
    /// (with one lane, there is nothing to share).
    #[default]
    Lockstep,
    /// The classic fan-out: every (configuration × workload) pair runs as
    /// an independent job across rayon workers, each re-instantiating its
    /// own source.
    PerConfig,
}

/// A workload a [`Sweep`] grid can run: something with a name that can
/// mint a fresh instruction stream per run (or per lockstep group). The
/// single abstraction [`Sweep::run_grid`] — the one execution seam both
/// [`ExecMode`]s implement — is generic over.
pub trait GridWorkload: Sync {
    /// The workload's report name.
    fn name(&self) -> &str;
    /// A fresh source producing this workload's instruction stream from
    /// the beginning.
    fn source(&self) -> Box<dyn InstructionSource + Send + '_>;
}

impl GridWorkload for Workload {
    fn name(&self) -> &str {
        &self.name
    }
    fn source(&self) -> Box<dyn InstructionSource + Send + '_> {
        Box::new(Workload::source(self))
    }
}

impl GridWorkload for WorkloadSpec {
    fn name(&self) -> &str {
        WorkloadSpec::name(self)
    }
    fn source(&self) -> Box<dyn InstructionSource + Send + '_> {
        WorkloadSpec::source(self)
    }
}

/// How a session's workloads are fed to the pipeline.
///
/// Cycle counts are **bit-identical** between the two modes (both fetch
/// through the same replay window); only the memory profile differs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SourceMode {
    /// Generate every workload's full trace up front and share it across
    /// runs. Fastest for sweeps that reuse workloads many times; memory is
    /// O(trace length).
    #[default]
    Materialized,
    /// Generate each run's instruction stream on demand: every (config ×
    /// workload) run pulls a fresh streaming source and peak memory is
    /// O(in-flight window) — the mode for runs of unbounded length.
    Streamed,
}

/// The result of running one configuration over one workload.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// The workload's suite name.
    pub workload: String,
    /// Full statistics for the run.
    pub stats: SimStats,
}

/// The result of running one configuration over a whole suite.
#[derive(Debug, Clone)]
pub struct SuiteResult {
    /// The configuration that produced the result.
    pub config: ProcessorConfig,
    /// Per-workload results, in suite order.
    pub per_workload: Vec<WorkloadResult>,
}

impl SuiteResult {
    /// The suite-average IPC — the reduction every figure of the paper
    /// reports.
    pub fn mean_ipc(&self) -> f64 {
        suite_average(
            &self
                .per_workload
                .iter()
                .map(|r| r.stats.ipc())
                .collect::<Vec<_>>(),
        )
    }

    /// The suite-average number of in-flight instructions (Figure 11).
    pub fn mean_inflight(&self) -> f64 {
        suite_average(
            &self
                .per_workload
                .iter()
                .map(|r| r.stats.avg_inflight())
                .collect::<Vec<_>>(),
        )
    }

    /// Per-workload IPC values, in suite order.
    pub fn ipcs(&self) -> Vec<f64> {
        self.per_workload.iter().map(|r| r.stats.ipc()).collect()
    }
}

/// Fluent builder for a simulation [`Session`].
///
/// Starts from one of the named machines ([`SimBuilder::baseline`],
/// [`SimBuilder::cooo`], [`SimBuilder::table1`]) or an explicit
/// configuration, applies overrides, picks a workload [`Suite`], and
/// [`build`](SimBuilder::build)s a runnable session.
#[derive(Debug, Clone)]
pub struct SimBuilder {
    config: ProcessorConfig,
    suite: Suite,
    trace_len: usize,
    cycle_budget: Option<u64>,
    source_mode: SourceMode,
}

impl SimBuilder {
    /// Starts from an explicit configuration.
    pub fn from_config(config: ProcessorConfig) -> Self {
        SimBuilder {
            config,
            suite: Suite::paper(),
            trace_len: DEFAULT_TRACE_LEN,
            cycle_budget: None,
            source_mode: SourceMode::default(),
        }
    }

    /// The Table 1 conventional baseline with `window`-entry ROB and
    /// instruction queues and 1000-cycle memory.
    pub fn baseline(window: usize) -> Self {
        Self::from_config(ProcessorConfig::baseline(window, 1000))
    }

    /// The paper's proposed machine at its headline configuration:
    /// 8 checkpoints, 128-entry pseudo-ROB and instruction queues,
    /// 2048-entry SLIQ, 1000-cycle memory. Refine with
    /// [`pseudo_rob`](Self::pseudo_rob), [`sliq`](Self::sliq),
    /// [`checkpoints`](Self::checkpoints) and the other overrides.
    pub fn cooo() -> Self {
        Self::from_config(ProcessorConfig::cooo(128, 2048, 1000))
    }

    /// The Table 1 parameters exactly as printed (4096-entry everything).
    pub fn table1() -> Self {
        Self::from_config(ProcessorConfig::table1())
    }

    /// Sets the pseudo-ROB size, sizing the instruction queues to match (the
    /// paper always sizes them equally).
    ///
    /// # Panics
    /// Panics if the commit engine is not checkpointed.
    pub fn pseudo_rob(mut self, entries: usize) -> Self {
        match &mut self.config.commit {
            CommitConfig::Checkpointed {
                pseudo_rob_size, ..
            } => *pseudo_rob_size = entries,
            CommitConfig::InOrderRob { .. } => {
                panic!("pseudo-ROB size applies to the checkpointed engine") // koc-lint: allow(panic, "setter contract: applies only to the checkpointed engine")
            }
        }
        self.config.iq_size = entries;
        self
    }

    /// Sets the SLIQ capacity.
    ///
    /// # Panics
    /// Panics if the commit engine is not checkpointed.
    pub fn sliq(mut self, entries: usize) -> Self {
        match &mut self.config.commit {
            CommitConfig::Checkpointed { sliq, .. } => sliq.capacity = entries,
            CommitConfig::InOrderRob { .. } => {
                panic!("SLIQ capacity applies to the checkpointed engine") // koc-lint: allow(panic, "setter contract: applies only to the checkpointed engine")
            }
        }
        self
    }

    /// Sets the number of checkpoint-table entries (Figure 13).
    ///
    /// # Panics
    /// Panics if the commit engine is not checkpointed.
    pub fn checkpoints(mut self, entries: usize) -> Self {
        self.config = self.config.with_checkpoints(entries);
        self
    }

    /// Sets the checkpoint-placement policy.
    ///
    /// # Panics
    /// Panics if the commit engine is not checkpointed.
    pub fn checkpoint_policy(mut self, policy: CheckpointPolicy) -> Self {
        match &mut self.config.commit {
            CommitConfig::Checkpointed { policy: p, .. } => *p = policy,
            CommitConfig::InOrderRob { .. } => {
                panic!("checkpoint policy applies to the checkpointed engine") // koc-lint: allow(panic, "setter contract: applies only to the checkpointed engine")
            }
        }
        self
    }

    /// Sets the SLIQ → instruction-queue re-insertion delay (Figure 10).
    ///
    /// # Panics
    /// Panics if the commit engine is not checkpointed.
    pub fn reinsert_delay(mut self, cycles: u32) -> Self {
        self.config = self.config.with_reinsert_delay(cycles);
        self
    }

    /// Sets the in-flight window: the instruction-queue size plus — for the
    /// baseline — the ROB size, or — for the checkpointed machine — the
    /// pseudo-ROB size (the structures the paper scales together).
    pub fn window(mut self, entries: usize) -> Self {
        self.config.iq_size = entries;
        match &mut self.config.commit {
            CommitConfig::InOrderRob { rob_size } => *rob_size = entries,
            CommitConfig::Checkpointed {
                pseudo_rob_size, ..
            } => *pseudo_rob_size = entries,
        }
        self
    }

    /// Sets the register model (Figures 13 and 14).
    pub fn registers(mut self, registers: RegisterModel) -> Self {
        self.config.registers = registers;
        self
    }

    /// Sets the branch predictor.
    pub fn predictor(mut self, predictor: BranchPredictorKind) -> Self {
        self.config.predictor = predictor;
        self
    }

    /// Sets the main-memory latency, keeping the rest of the hierarchy.
    pub fn memory_latency(mut self, cycles: u32) -> Self {
        self.config = self.config.with_memory_latency(cycles);
        self
    }

    /// Selects the timed memory backend wholesale
    /// ([`BackendKind::Flat`] is the default and reproduces the paper).
    pub fn memory_backend(mut self, backend: BackendKind) -> Self {
        self.config.memory = self.config.memory.with_backend(backend);
        self
    }

    /// Switches main memory to the banked DRAM backend with the given
    /// geometry and timing.
    pub fn dram(mut self, dram: DramConfig) -> Self {
        self.config.memory = self.config.memory.with_dram(dram);
        self
    }

    /// Sets the MSHR count — the maximum outstanding misses. Upgrades a
    /// flat backend to the default DRAM part first.
    pub fn mshr_entries(mut self, entries: usize) -> Self {
        self.config.memory = self.config.memory.with_mshr_entries(entries);
        self
    }

    /// Sets the DRAM bank count. Upgrades a flat backend to the default
    /// DRAM part first.
    pub fn dram_banks(mut self, banks: usize) -> Self {
        self.config.memory = self.config.memory.with_dram_banks(banks);
        self
    }

    /// Sets the per-bank row-buffer size in bytes. Upgrades a flat backend
    /// to the default DRAM part first.
    pub fn row_buffer(mut self, bytes: u64) -> Self {
        self.config.memory = self.config.memory.with_row_buffer(bytes);
        self
    }

    /// Configures prefetching into the L2 miss stream.
    pub fn prefetch(mut self, prefetch: PrefetchConfig) -> Self {
        self.config.memory = self.config.memory.with_prefetch(prefetch);
        self
    }

    /// Replaces the commit configuration wholesale.
    pub fn commit(mut self, commit: CommitConfig) -> Self {
        self.config.commit = commit;
        self
    }

    /// Selects the workload suite the session runs.
    pub fn workloads(mut self, suite: Suite) -> Self {
        self.suite = suite;
        self
    }

    /// Sets the minimum dynamic trace length per generated workload.
    pub fn trace_len(mut self, len: usize) -> Self {
        self.trace_len = len;
        self
    }

    /// Enables or disables the event-driven fast-forward (on by default):
    /// when every pipeline stage is stalled on the memory backend, the
    /// simulator jumps to the next scheduled event instead of ticking
    /// through the dead cycles. Bit-identical results either way.
    pub fn fast_forward(mut self, enabled: bool) -> Self {
        self.config = self.config.with_fast_forward(enabled);
        self
    }

    /// Caps every run of this session at `cycles` simulated cycles. A run
    /// that hits the cap stops early and reports partial statistics with
    /// [`SimStats::budget_exhausted`](crate::SimStats) set — the cheap way
    /// to bound exploratory sweeps over huge grids.
    pub fn cycle_budget(mut self, cycles: u64) -> Self {
        self.cycle_budget = Some(cycles);
        self
    }

    /// Selects how workloads are fed to the pipeline:
    /// [`SourceMode::Materialized`] (default — full traces generated up
    /// front and shared) or [`SourceMode::Streamed`] (each run pulls its
    /// stream on demand, O(window) memory). Cycle counts are bit-identical
    /// either way.
    pub fn source_mode(mut self, mode: SourceMode) -> Self {
        self.source_mode = mode;
        self
    }

    /// Shorthand for [`source_mode`](Self::source_mode)`(SourceMode::Streamed)`.
    pub fn streamed(self) -> Self {
        self.source_mode(SourceMode::Streamed)
    }

    /// The configuration as currently built.
    pub fn config(&self) -> &ProcessorConfig {
        &self.config
    }

    /// Validates the configuration and returns a runnable [`Session`].
    /// Workloads are materialized lazily, when the session first needs them.
    ///
    /// # Panics
    /// Panics if the configuration fails [`ProcessorConfig::validate`].
    pub fn build(self) -> Session {
        if let Err(e) = self.config.validate() {
            panic!("invalid processor configuration: {e}"); // koc-lint: allow(panic, "invalid configuration is a caller bug; validate() names the field")
        }
        Session {
            config: self.config,
            suite: self.suite,
            trace_len: self.trace_len,
            cycle_budget: self.cycle_budget,
            source_mode: self.source_mode,
        }
    }
}

/// A runnable simulation: one machine configuration over a workload suite.
#[derive(Debug, Clone)]
pub struct Session {
    config: ProcessorConfig,
    suite: Suite,
    trace_len: usize,
    cycle_budget: Option<u64>,
    source_mode: SourceMode,
}

impl Session {
    /// The session's machine configuration.
    pub fn config(&self) -> &ProcessorConfig {
        &self.config
    }

    /// Materializes the session's workloads, in suite order.
    pub fn workloads(&self) -> Vec<Workload> {
        self.suite.generate(self.trace_len)
    }

    /// Runs every workload of the suite (in parallel) and returns the suite
    /// result. In [`SourceMode::Materialized`] the workload traces are
    /// generated up front; in [`SourceMode::Streamed`] each run pulls its
    /// instruction stream lazily and nothing is materialized.
    pub fn run(&self) -> SuiteResult {
        let mut sweep = Sweep::over([self.config])
            .workloads(self.suite.clone())
            .trace_len(self.trace_len)
            .source_mode(self.source_mode);
        if let Some(budget) = self.cycle_budget {
            sweep = sweep.cycle_budget(budget);
        }
        sweep
            .run()
            .pop()
            .expect("a sweep returns one result per configuration") // koc-lint: allow(panic, "a sweep returns one result per configuration")
    }

    /// Runs the session's configuration over pre-generated workloads (in
    /// parallel), ignoring the session's own suite. The workloads stream
    /// through the replay window from their materialized traces.
    pub fn run_on(&self, workloads: &[Workload]) -> SuiteResult {
        let mut sweep = Sweep::over([self.config]);
        if let Some(budget) = self.cycle_budget {
            sweep = sweep.cycle_budget(budget);
        }
        sweep
            .run_on(workloads)
            .pop()
            .expect("a sweep returns one result per configuration") // koc-lint: allow(panic, "a sweep returns one result per configuration")
    }

    /// Runs the session's configuration over one externally supplied
    /// instruction stream — the single one-off entry point, generic over
    /// both the ingestion side ([`IntoInstructionSource`]: a `&Trace`, a
    /// streaming generator, a combinator pipeline…) and the observation
    /// side ([`Observer`]: pass [`koc_obs::NullObserver`] for an unobserved
    /// run, or any recording observer to get it back filled in). Replaces
    /// the former `run_trace` / `run_trace_observed` / `run_source` /
    /// `run_source_observed` quartet, which has been removed.
    ///
    /// Attaching an observer never changes simulated timing, and memory
    /// stays O(in-flight window) regardless of how many instructions the
    /// source produces.
    pub fn run_one<'s, O: Observer>(
        &self,
        source: impl IntoInstructionSource<'s>,
        obs: O,
    ) -> (SimStats, O) {
        Processor::with_observer(self.config, source, obs).run_capped_observed(self.cycle_budget)
    }

    /// A fresh processor over `source`, for callers that want to drive the
    /// pipeline cycle by cycle (or inspect state mid-run).
    pub fn processor<'t>(&self, source: impl IntoInstructionSource<'t>) -> Processor<'t> {
        Processor::new(self.config, source)
    }
}

/// A parallel sweep: a grid of configurations, each run over the same
/// workloads. Results come back in the same order as the input
/// configurations — one [`SuiteResult`] per configuration.
///
/// ```no_run
/// use koc_sim::{ProcessorConfig, Sweep};
///
/// // Figure 9's nine proposal configurations, fanned out over all cores:
/// let configs = [512usize, 1024, 2048].iter().flat_map(|&sliq| {
///     [32usize, 64, 128].iter().map(move |&iq| ProcessorConfig::cooo(iq, sliq, 1000))
/// });
/// let results = Sweep::over(configs).trace_len(30_000).run();
/// for r in &results {
///     println!("{:.2}", r.mean_ipc());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Sweep {
    configs: Vec<ProcessorConfig>,
    suite: Suite,
    trace_len: usize,
    cycle_budget: Option<u64>,
    source_mode: SourceMode,
    exec_mode: ExecMode,
}

impl Sweep {
    /// A sweep over the given configurations (run order = input order).
    pub fn over(configs: impl IntoIterator<Item = ProcessorConfig>) -> Self {
        Sweep {
            configs: configs.into_iter().collect(),
            suite: Suite::paper(),
            trace_len: DEFAULT_TRACE_LEN,
            cycle_budget: None,
            source_mode: SourceMode::default(),
            exec_mode: ExecMode::default(),
        }
    }

    /// Selects the workload suite every configuration runs.
    pub fn workloads(mut self, suite: Suite) -> Self {
        self.suite = suite;
        self
    }

    /// Sets the minimum dynamic trace length per generated workload.
    pub fn trace_len(mut self, len: usize) -> Self {
        self.trace_len = len;
        self
    }

    /// Caps every (configuration x workload) run at `cycles` simulated
    /// cycles (see [`SimBuilder::cycle_budget`]).
    pub fn cycle_budget(mut self, cycles: u64) -> Self {
        self.cycle_budget = Some(cycles);
        self
    }

    /// Selects how workloads are fed to the pipeline (see
    /// [`SimBuilder::source_mode`]). Streamed sweeps regenerate each run's
    /// stream on demand instead of sharing materialized traces: more
    /// generator work, O(window) memory per run.
    pub fn source_mode(mut self, mode: SourceMode) -> Self {
        self.source_mode = mode;
        self
    }

    /// Selects how the grid executes (see [`ExecMode`]); the default is
    /// [`ExecMode::Lockstep`]. Cycle counts are bit-identical either way —
    /// this knob trades scheduling shape (decode-once lanes vs independent
    /// rayon jobs), never results.
    pub fn exec_mode(mut self, mode: ExecMode) -> Self {
        self.exec_mode = mode;
        self
    }

    /// The configurations in the sweep, in run order.
    pub fn configs(&self) -> &[ProcessorConfig] {
        &self.configs
    }

    /// Runs the whole grid. In [`SourceMode::Materialized`] the suite is
    /// generated once and shared; in [`SourceMode::Streamed`] nothing is
    /// materialized and streams are pulled on demand. Returns one result
    /// per configuration, in input order.
    pub fn run(&self) -> Vec<SuiteResult> {
        match self.source_mode {
            SourceMode::Materialized => {
                let workloads = self.suite.generate(self.trace_len);
                self.run_grid(&workloads)
            }
            SourceMode::Streamed => {
                let specs = self.suite.specs(self.trace_len);
                self.run_grid(&specs)
            }
        }
    }

    /// Runs the grid over pre-generated workloads (shared by reference, so
    /// nothing is cloned per configuration). Returns one result per
    /// configuration, in input order.
    pub fn run_on(&self, workloads: &[Workload]) -> Vec<SuiteResult> {
        self.run_grid(workloads)
    }

    /// The single execution seam: runs the (configuration × `workloads`)
    /// grid under the sweep's [`ExecMode`] and returns one result per
    /// configuration, in input order.
    ///
    /// * [`ExecMode::Lockstep`] instantiates each workload's source
    ///   **once**, forks it across all configurations and advances the
    ///   lanes under a shared fetch frontier (see [`crate::lockstep`]);
    ///   workload groups fan out over rayon workers.
    /// * [`ExecMode::PerConfig`] flattens to (configuration × workload)
    ///   pairs and fans every pair out as an independent job, each minting
    ///   its own source.
    ///
    /// Both modes produce bit-identical per-configuration statistics.
    pub fn run_grid<W: GridWorkload>(&self, workloads: &[W]) -> Vec<SuiteResult> {
        if workloads.is_empty() {
            return self
                .configs
                .iter()
                .map(|config| SuiteResult {
                    config: *config,
                    per_workload: Vec::new(),
                })
                .collect();
        }
        // A single-configuration "grid" has nothing to share; the pair
        // fan-out keeps its parallelism across workloads without paying
        // for the fork.
        if self.exec_mode == ExecMode::Lockstep && self.configs.len() > 1 {
            self.run_grid_lockstep(workloads)
        } else {
            self.run_grid_per_config(workloads)
        }
    }

    /// [`ExecMode::Lockstep`]: one decode pass and one lane per
    /// configuration for each workload, workloads in parallel.
    fn run_grid_lockstep<W: GridWorkload>(&self, workloads: &[W]) -> Vec<SuiteResult> {
        let budget = self.cycle_budget;
        // Per-workload lane results: lanes[w][c] is workload w under
        // configuration c.
        let lanes: Vec<Vec<SimStats>> = workloads
            .par_iter()
            .map(|w| run_lockstep(&self.configs, w.source(), budget))
            .collect();
        self.configs
            .iter()
            .enumerate()
            .map(|(ci, config)| SuiteResult {
                config: *config,
                per_workload: workloads
                    .iter()
                    .zip(&lanes)
                    .map(|(w, per_config)| WorkloadResult {
                        workload: w.name().to_string(),
                        stats: per_config[ci].clone(),
                    })
                    .collect(),
            })
            .collect()
    }

    /// [`ExecMode::PerConfig`]: flattens to (configuration × workload)
    /// pairs so parallelism covers the whole grid, not just the
    /// configuration axis.
    fn run_grid_per_config<W: GridWorkload>(&self, workloads: &[W]) -> Vec<SuiteResult> {
        let budget = self.cycle_budget;
        let pairs: Vec<(&ProcessorConfig, &W)> = self
            .configs
            .iter()
            .flat_map(|c| workloads.iter().map(move |w| (c, w)))
            .collect();
        let runs: Vec<WorkloadResult> = pairs
            .par_iter()
            .map(|(config, w)| WorkloadResult {
                workload: w.name().to_string(),
                stats: Processor::new(**config, w.source()).run_capped(budget),
            })
            .collect();
        self.configs
            .iter()
            .zip(runs.chunks(workloads.len()))
            .map(|(config, chunk)| SuiteResult {
                config: *config,
                per_workload: chunk.to_vec(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use koc_workloads::kernels;

    #[test]
    fn builder_produces_the_issue_example_configuration() {
        let session = SimBuilder::cooo()
            .pseudo_rob(128)
            .sliq(2048)
            .workloads(Suite::paper())
            .trace_len(1_000)
            .build();
        let c = session.config();
        assert_eq!(c.iq_size, 128);
        match c.commit {
            CommitConfig::Checkpointed {
                pseudo_rob_size,
                sliq,
                checkpoint_entries,
                ..
            } => {
                assert_eq!(pseudo_rob_size, 128);
                assert_eq!(sliq.capacity, 2048);
                assert_eq!(checkpoint_entries, 8);
            }
            _ => panic!("expected the checkpointed engine"),
        }
        assert_eq!(session.workloads().len(), 5);
    }

    #[test]
    fn session_runs_a_single_kernel_suite() {
        let result = SimBuilder::baseline(128)
            .memory_latency(100)
            .workloads(Suite::kernel("stream_add", kernels::stream_add()))
            .trace_len(2_000)
            .build()
            .run();
        assert_eq!(result.per_workload.len(), 1);
        assert!(result.mean_ipc() > 0.0);
        assert_eq!(result.per_workload[0].workload, "stream_add");
    }

    #[test]
    fn window_scales_rob_and_queues_together() {
        let b = SimBuilder::baseline(128).window(512);
        assert_eq!(b.config().iq_size, 512);
        assert_eq!(
            b.config().commit,
            CommitConfig::InOrderRob { rob_size: 512 }
        );
    }

    #[test]
    #[should_panic(expected = "checkpointed engine")]
    fn sliq_override_on_the_baseline_panics() {
        let _ = SimBuilder::baseline(128).sliq(1024);
    }

    #[test]
    fn sweep_returns_results_in_input_order() {
        let windows = [32usize, 64, 128];
        let sweep = Sweep::over(windows.iter().map(|&w| ProcessorConfig::baseline(w, 100)))
            .workloads(Suite::kernel("stream_add", kernels::stream_add()))
            .trace_len(1_500);
        let results = sweep.run();
        assert_eq!(results.len(), windows.len());
        for (r, &w) in results.iter().zip(windows.iter()) {
            assert_eq!(r.config.iq_size, w, "results must follow input order");
            assert_eq!(r.per_workload.len(), 1);
        }
    }

    #[test]
    fn empty_workloads_still_yield_one_result_per_config() {
        let results = Sweep::over([
            ProcessorConfig::baseline(64, 100),
            ProcessorConfig::cooo(32, 512, 100),
        ])
        .run_on(&[]);
        assert_eq!(results.len(), 2, "one (empty) result per configuration");
        assert!(results.iter().all(|r| r.per_workload.is_empty()));
        assert_eq!(results[1].config.iq_size, 32, "input order holds");

        let session = SimBuilder::baseline(64)
            .workloads(Suite::custom(Vec::new()))
            .build();
        let r = session.run();
        assert!(r.per_workload.is_empty());
        assert_eq!(
            r.mean_ipc(),
            0.0,
            "suite average of nothing is zero, not a panic"
        );
    }

    #[test]
    fn sweep_run_on_shares_pregenerated_workloads() {
        let workloads = Suite::paper().generate(800);
        let results = Sweep::over([
            ProcessorConfig::baseline(64, 100),
            ProcessorConfig::cooo(32, 512, 100),
        ])
        .run_on(&workloads);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert_eq!(r.per_workload.len(), workloads.len());
            for (wr, w) in r.per_workload.iter().zip(workloads.iter()) {
                assert_eq!(wr.workload, w.name);
                assert_eq!(wr.stats.committed_instructions as usize, w.trace.len());
            }
        }
    }
}
