//! Bookkeeping for instructions between dispatch and commit.

use koc_core::CheckpointId;
use koc_isa::{ArchReg, InstId, OpKind, PhysReg};
use koc_mem::MemLevel;
use serde::{Deserialize, Serialize};

/// The execution state of an in-flight instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstState {
    /// Dispatched; waiting in an instruction queue.
    Waiting,
    /// Moved into the SLIQ, waiting for its triggering load.
    InSliq,
    /// Issued to a functional unit; completes at the recorded cycle.
    Executing {
        /// Cycle at which the result is produced. `u64::MAX` for loads
        /// waiting on the timed memory backend, whose completion cycle is
        /// announced by the backend when the data returns.
        done_cycle: u64,
    },
    /// Execution finished; waiting for commit.
    Done,
}

/// One in-flight dynamic instruction instance.
///
/// Rollback re-execution can create a new instance of the same trace
/// position, so each instance carries a unique `seq` number; stale
/// completion events are matched against it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InFlight {
    /// Trace position of the instruction.
    pub inst: InstId,
    /// Unique instance number (monotonic across the whole run).
    pub seq: u64,
    /// Operation kind.
    pub kind: OpKind,
    /// Architectural destination, if any.
    pub dest_arch: Option<ArchReg>,
    /// Renamed destination, if any.
    pub dest_phys: Option<PhysReg>,
    /// Previously mapped physical register for the destination, if any.
    pub prev_phys: Option<PhysReg>,
    /// Renamed sources.
    pub src_phys: Vec<PhysReg>,
    /// Owning checkpoint (checkpointed engine) — 0 for the baseline.
    pub ckpt: CheckpointId,
    /// Current state.
    pub state: InstState,
    /// Cycle at which the instruction was dispatched.
    pub dispatch_cycle: u64,
    /// For loads: which level served the access (known once issued).
    pub mem_level: Option<MemLevel>,
    /// For branches: the predicted direction.
    pub predicted_taken: Option<bool>,
    /// Whether the branch was mispredicted (resolved against the trace).
    pub mispredicted: bool,
    /// Whether this instance raises an exception at execution.
    pub raises_exception: bool,
}

impl InFlight {
    /// Whether the instruction has finished executing.
    pub fn is_done(&self) -> bool {
        self.state == InstState::Done
    }

    /// Whether the instruction has been issued (is executing or done).
    pub fn is_issued(&self) -> bool {
        matches!(self.state, InstState::Executing { .. } | InstState::Done)
    }

    /// Whether the instruction still waits to issue (in an IQ or the SLIQ).
    pub fn is_live(&self) -> bool {
        matches!(self.state, InstState::Waiting | InstState::InSliq)
    }

    /// Whether the instruction is a load that (so far) went to main memory.
    pub fn is_long_latency_load(&self) -> bool {
        self.kind == OpKind::Load && self.mem_level == Some(MemLevel::Memory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inflight(state: InstState) -> InFlight {
        InFlight {
            inst: 0,
            seq: 1,
            kind: OpKind::Load,
            dest_arch: Some(ArchReg::fp(0)),
            dest_phys: Some(PhysReg(5)),
            prev_phys: None,
            src_phys: vec![],
            ckpt: 0,
            state,
            dispatch_cycle: 0,
            mem_level: None,
            predicted_taken: None,
            mispredicted: false,
            raises_exception: false,
        }
    }

    #[test]
    fn state_predicates_are_consistent() {
        assert!(inflight(InstState::Waiting).is_live());
        assert!(inflight(InstState::InSliq).is_live());
        assert!(!inflight(InstState::Done).is_live());
        assert!(inflight(InstState::Executing { done_cycle: 5 }).is_issued());
        assert!(inflight(InstState::Done).is_done());
        assert!(!inflight(InstState::Waiting).is_issued());
    }

    #[test]
    fn long_latency_requires_memory_level() {
        let mut i = inflight(InstState::Executing { done_cycle: 100 });
        assert!(!i.is_long_latency_load());
        i.mem_level = Some(MemLevel::Memory);
        assert!(i.is_long_latency_load());
        i.mem_level = Some(MemLevel::L2);
        assert!(!i.is_long_latency_load());
    }
}
