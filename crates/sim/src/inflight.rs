//! Bookkeeping for instructions between dispatch and commit.
//!
//! The in-flight window is the hottest data structure in the simulator: it
//! is touched at dispatch, issue, write-back, commit and recovery, and
//! sampled every cycle. [`InFlightTable`] therefore stores records in a
//! dense slab indexed by trace position instead of a tree map — the window
//! is a contiguous band of trace positions (dispatch is in program order and
//! commit/squash trim it from both ends), so slot `id - base` gives O(1)
//! access with cache-friendly linear iteration and no per-operation
//! rebalancing or allocation.

use koc_core::CheckpointId;
use koc_isa::{ArchReg, InstId, OpKind, PhysReg, RegList};
use koc_mem::MemLevel;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The execution state of an in-flight instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstState {
    /// Dispatched; waiting in an instruction queue.
    Waiting,
    /// Moved into the SLIQ, waiting for its triggering load.
    InSliq,
    /// Issued to a functional unit; completes at the recorded cycle.
    Executing {
        /// Cycle at which the result is produced. `u64::MAX` for loads
        /// waiting on the timed memory backend, whose completion cycle is
        /// announced by the backend when the data returns.
        done_cycle: u64,
    },
    /// Execution finished; waiting for commit.
    Done,
}

/// One in-flight dynamic instruction instance.
///
/// Rollback re-execution can create a new instance of the same trace
/// position, so each instance carries a unique `seq` number; stale
/// completion events are matched against it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InFlight {
    /// Trace position of the instruction.
    pub inst: InstId,
    /// Unique instance number (monotonic across the whole run).
    pub seq: u64,
    /// Operation kind.
    pub kind: OpKind,
    /// Architectural destination, if any.
    pub dest_arch: Option<ArchReg>,
    /// Renamed destination, if any.
    pub dest_phys: Option<PhysReg>,
    /// Previously mapped physical register for the destination, if any.
    pub prev_phys: Option<PhysReg>,
    /// Renamed sources (inline; never heap-allocated).
    pub src_phys: RegList,
    /// Owning checkpoint (checkpointed engine) — 0 for the baseline.
    pub ckpt: CheckpointId,
    /// Current state.
    pub state: InstState,
    /// Cycle at which the instruction was dispatched.
    pub dispatch_cycle: u64,
    /// For loads: which level served the access (known once issued).
    pub mem_level: Option<MemLevel>,
    /// For branches: the predicted direction.
    pub predicted_taken: Option<bool>,
    /// Whether the branch was mispredicted (resolved against the trace).
    pub mispredicted: bool,
    /// Whether this instance raises an exception at execution.
    pub raises_exception: bool,
}

impl InFlight {
    /// Whether the instruction has finished executing.
    pub fn is_done(&self) -> bool {
        self.state == InstState::Done
    }

    /// Whether the instruction has been issued (is executing or done).
    pub fn is_issued(&self) -> bool {
        matches!(self.state, InstState::Executing { .. } | InstState::Done)
    }

    /// Whether the instruction still waits to issue (in an IQ or the SLIQ).
    pub fn is_live(&self) -> bool {
        matches!(self.state, InstState::Waiting | InstState::InSliq)
    }

    /// Whether the instruction is a load that (so far) went to main memory.
    pub fn is_long_latency_load(&self) -> bool {
        self.kind == OpKind::Load && self.mem_level == Some(MemLevel::Memory)
    }
}

/// Compact per-slot mirror of exactly the fields the Figure-7 breakdown
/// reads, so the every-32-cycles sample walks 10 bytes per window slot
/// instead of the full ~100-byte record (the full-record walk was the
/// largest remaining per-cycle cost that scaled with window occupancy).
#[derive(Debug, Clone, Copy, Default)]
struct SampleRec {
    flags: u8,
    nsrcs: u8,
    /// Register ids packed to 16 bits — [`crate::ProcessorConfig::validate`]
    /// bounds the rename pool at 65,536, so the whole record is 10 bytes
    /// and a full-window sampling walk stays cache-resident.
    dest: u16,
    srcs: [u16; koc_isa::MAX_SRCS],
}

impl SampleRec {
    const OCCUPIED: u8 = 1;
    /// Dispatched but not yet issued (waiting in an IQ or the SLIQ).
    const LIVE: u8 = 2;
    /// An outstanding (not yet done) load serviced by main memory.
    const LONG: u8 = 4;
    const NO_DEST: u16 = u16::MAX;

    fn of(fl: &InFlight) -> SampleRec {
        let mut flags = SampleRec::OCCUPIED;
        if fl.is_live() {
            flags |= SampleRec::LIVE;
        }
        if fl.is_long_latency_load() && !fl.is_done() {
            flags |= SampleRec::LONG;
        }
        let mut srcs = [0u16; koc_isa::MAX_SRCS];
        for (i, p) in fl.src_phys.iter().enumerate() {
            debug_assert!(p.0 < u16::MAX as u32, "register pool exceeds u16");
            srcs[i] = p.0 as u16;
        }
        SampleRec {
            flags,
            nsrcs: fl.src_phys.len() as u8,
            dest: fl.dest_phys.map_or(SampleRec::NO_DEST, |p| p.0 as u16),
            srcs,
        }
    }
}

/// The in-flight window: a dense slab of [`InFlight`] records keyed by trace
/// position.
///
/// Slot `i` holds the record for instruction `base + i`; the deque trims
/// empty slots off both ends as the window advances, so occupancy stays
/// proportional to the configured window, not to the trace. All point
/// operations are O(1); ordered iteration is a linear scan of the band.
#[derive(Debug, Clone, Default)]
pub struct InFlightTable {
    /// Trace position of slot 0.
    base: InstId,
    slots: VecDeque<Option<InFlight>>,
    /// Parallel compact mirror of `slots` for the sampling walk.
    sample: VecDeque<SampleRec>,
    /// Number of occupied slots.
    len: usize,
}

impl InFlightTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of in-flight instructions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn slot_index(&self, inst: InstId) -> Option<usize> {
        if self.slots.is_empty() || inst < self.base {
            return None;
        }
        let i = inst - self.base;
        (i < self.slots.len()).then_some(i)
    }

    /// Inserts the record for `inst`.
    ///
    /// # Panics
    /// Panics if `inst` is already in flight (a trace position has at most
    /// one live instance).
    pub fn insert(&mut self, inst: InstId, fl: InFlight) {
        let rec = SampleRec::of(&fl);
        if self.slots.is_empty() {
            self.base = inst;
            self.slots.push_back(Some(fl));
            self.sample.push_back(rec);
            self.len = 1;
            return;
        }
        if inst < self.base {
            // Re-dispatch below the current band (rollback past the oldest
            // live instruction): grow the front.
            for _ in 0..(self.base - inst - 1) {
                self.slots.push_front(None);
                self.sample.push_front(SampleRec::default());
            }
            self.slots.push_front(Some(fl));
            self.sample.push_front(rec);
            self.base = inst;
            self.len += 1;
            return;
        }
        let i = inst - self.base;
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
            self.sample.resize(i + 1, SampleRec::default());
        }
        let slot = &mut self.slots[i];
        assert!(slot.is_none(), "instruction {inst} is already in flight");
        *slot = Some(fl);
        self.sample[i] = rec;
        self.len += 1;
    }

    /// The record for `inst`, if in flight.
    pub fn get(&self, inst: InstId) -> Option<&InFlight> {
        let i = self.slot_index(inst)?;
        self.slots[i].as_ref()
    }

    /// Mutable access to the record for `inst`, if in flight.
    pub fn get_mut(&mut self, inst: InstId) -> Option<&mut InFlight> {
        let i = self.slot_index(inst)?;
        self.slots[i].as_mut()
    }

    /// Removes and returns the record for `inst`.
    pub fn remove(&mut self, inst: InstId) -> Option<InFlight> {
        let i = self.slot_index(inst)?;
        let fl = self.slots[i].take()?;
        self.sample[i] = SampleRec::default();
        self.len -= 1;
        self.trim();
        Some(fl)
    }

    /// Records that `inst` left the issue queues for a functional unit.
    /// `long` flags a load serviced by main memory (Figure 7's blocked-long
    /// dependence source while it is outstanding).
    pub fn mark_issued(&mut self, inst: InstId, long: bool) {
        if let Some(i) = self.slot_index(inst) {
            let rec = &mut self.sample[i];
            rec.flags &= !SampleRec::LIVE;
            if long {
                rec.flags |= SampleRec::LONG;
            }
        }
    }

    /// Records that `inst` finished execution (its result no longer poisons
    /// the blocked-long sample).
    pub fn mark_done(&mut self, inst: InstId) {
        if let Some(i) = self.slot_index(inst) {
            self.sample[i].flags &= !(SampleRec::LIVE | SampleRec::LONG);
        }
    }

    /// Splits the live (not yet issued) instructions into blocked-long and
    /// blocked-short, following Figure 7's definition: blocked-long means
    /// the instruction is a load that missed in L2 or (transitively)
    /// depends on one. One pass over the compact mirror in trace order
    /// suffices — a producer always precedes its consumers — with
    /// epoch-stamped register marks so nothing is cleared between samples.
    pub fn sample_breakdown(&self, marks: &mut Vec<u64>, epoch: u64) -> (usize, usize) {
        let mark = |marks: &mut Vec<u64>, r: u16| {
            let i = r as usize;
            if i >= marks.len() {
                marks.resize(i + 1, 0);
            }
            marks[i] = epoch;
        };
        let mut long = 0usize;
        let mut short = 0usize;
        for rec in &self.sample {
            if rec.flags & SampleRec::LONG != 0 {
                if rec.dest != SampleRec::NO_DEST {
                    mark(marks, rec.dest);
                }
                continue;
            }
            if rec.flags & SampleRec::LIVE == 0 {
                continue;
            }
            let blocked_long = rec.srcs[..rec.nsrcs as usize]
                .iter()
                .any(|&r| marks.get(r as usize) == Some(&epoch));
            if blocked_long {
                long += 1;
                if rec.dest != SampleRec::NO_DEST {
                    mark(marks, rec.dest);
                }
            } else {
                short += 1;
            }
        }
        #[cfg(debug_assertions)]
        assert_eq!(
            (long, short),
            self.reference_breakdown(),
            "compact sample mirror out of sync with the in-flight records"
        );
        (long, short)
    }

    /// The breakdown recomputed from the full records (debug verifier for
    /// the compact mirror).
    #[cfg(debug_assertions)]
    fn reference_breakdown(&self) -> (usize, usize) {
        // A set in spirit (`FlatMap<()>` keyed by physical-register index):
        // point membership only — even this debug-only verifier stays off
        // `std::collections::HashSet` so the no-hash-iteration invariant
        // holds tree-wide.
        let mut marked = koc_core::FlatMap::default();
        let mut long = 0usize;
        let mut short = 0usize;
        for fl in self.values() {
            if fl.is_long_latency_load() && !fl.is_done() {
                if let Some(p) = fl.dest_phys {
                    marked.insert(p.index(), ());
                }
                continue;
            }
            if !fl.is_live() {
                continue;
            }
            if fl.src_phys.iter().any(|p| marked.contains_key(p.index())) {
                long += 1;
                if let Some(p) = fl.dest_phys {
                    marked.insert(p.index(), ());
                }
            } else {
                short += 1;
            }
        }
        (long, short)
    }

    /// Drops empty slots from both ends of the band so occupancy tracks the
    /// live window.
    fn trim(&mut self) {
        while matches!(self.slots.front(), Some(None)) {
            self.slots.pop_front();
            self.sample.pop_front();
            self.base += 1;
        }
        while matches!(self.slots.back(), Some(None)) {
            self.slots.pop_back();
            self.sample.pop_back();
        }
    }

    /// Iterates over in-flight records in trace order.
    pub fn values(&self) -> impl Iterator<Item = &InFlight> {
        self.slots.iter().flatten()
    }

    /// The trace positions of every in-flight instruction at or after
    /// `from`, in trace order (collected so the caller can mutate while
    /// walking — the squash paths remove as they go).
    pub fn ids_at_or_after(&self, from: InstId) -> Vec<InstId> {
        let start = from.saturating_sub(self.base).min(self.slots.len());
        self.slots
            .iter()
            .enumerate()
            .skip(start)
            .filter_map(|(i, s)| s.as_ref().map(|_| self.base + i))
            .collect() // koc-lint: allow(hot-path-alloc, "recovery path; collects the squash set, not per cycle")
    }

    /// Removes every record with trace position below `frontier` and returns
    /// how many were removed. This is the commit path of the checkpointed
    /// engine — a committed checkpoint's instructions are exactly the band
    /// below the next checkpoint's first position — so the cost is
    /// O(removed), not O(window).
    pub fn drain_below(&mut self, frontier: InstId) -> usize {
        let mut removed = 0;
        while self.base < frontier {
            match self.slots.pop_front() {
                Some(Some(_)) => {
                    self.sample.pop_front();
                    removed += 1;
                    self.len -= 1;
                    self.base += 1;
                }
                Some(None) => {
                    self.sample.pop_front();
                    self.base += 1;
                }
                None => break,
            }
        }
        self.trim();
        removed
    }

    /// Keeps only the records for which `keep` returns true (the
    /// checkpointed engine drops a whole committed checkpoint this way).
    pub fn retain(&mut self, mut keep: impl FnMut(&InFlight) -> bool) {
        for (slot, rec) in self.slots.iter_mut().zip(self.sample.iter_mut()) {
            if let Some(fl) = slot {
                if !keep(fl) {
                    *slot = None;
                    *rec = SampleRec::default();
                    self.len -= 1;
                }
            }
        }
        self.trim();
    }
}

impl std::ops::Index<InstId> for InFlightTable {
    type Output = InFlight;

    fn index(&self, inst: InstId) -> &InFlight {
        self.get(inst).expect("instruction is in flight") // koc-lint: allow(panic, "Index contract: untracked ids panic like slice indexing")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inflight(state: InstState) -> InFlight {
        InFlight {
            inst: 0,
            seq: 1,
            kind: OpKind::Load,
            dest_arch: Some(ArchReg::fp(0)),
            dest_phys: Some(PhysReg(5)),
            prev_phys: None,
            src_phys: RegList::new(),
            ckpt: 0,
            state,
            dispatch_cycle: 0,
            mem_level: None,
            predicted_taken: None,
            mispredicted: false,
            raises_exception: false,
        }
    }

    fn record(inst: InstId) -> InFlight {
        InFlight {
            inst,
            ..inflight(InstState::Waiting)
        }
    }

    #[test]
    fn state_predicates_are_consistent() {
        assert!(inflight(InstState::Waiting).is_live());
        assert!(inflight(InstState::InSliq).is_live());
        assert!(!inflight(InstState::Done).is_live());
        assert!(inflight(InstState::Executing { done_cycle: 5 }).is_issued());
        assert!(inflight(InstState::Done).is_done());
        assert!(!inflight(InstState::Waiting).is_issued());
    }

    #[test]
    fn long_latency_requires_memory_level() {
        let mut i = inflight(InstState::Executing { done_cycle: 100 });
        assert!(!i.is_long_latency_load());
        i.mem_level = Some(MemLevel::Memory);
        assert!(i.is_long_latency_load());
        i.mem_level = Some(MemLevel::L2);
        assert!(!i.is_long_latency_load());
    }

    #[test]
    fn table_point_operations_round_trip() {
        let mut t = InFlightTable::new();
        assert!(t.is_empty());
        for id in [10, 11, 13, 14] {
            t.insert(id, record(id));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.get(13).map(|f| f.inst), Some(13));
        assert!(t.get(12).is_none(), "gaps are not occupied");
        assert!(t.get(9).is_none());
        assert!(t.get(15).is_none());
        t.get_mut(11).unwrap().state = InstState::Done;
        assert!(t[11].is_done());
        assert_eq!(t.remove(10).map(|f| f.inst), Some(10));
        assert!(t.remove(10).is_none(), "double remove is None");
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn table_iterates_in_trace_order() {
        let mut t = InFlightTable::new();
        for id in [7, 5, 6, 9] {
            t.insert(id, record(id));
        }
        let order: Vec<InstId> = t.values().map(|f| f.inst).collect();
        assert_eq!(order, vec![5, 6, 7, 9]);
        assert_eq!(t.ids_at_or_after(6), vec![6, 7, 9]);
        assert_eq!(t.ids_at_or_after(0), vec![5, 6, 7, 9]);
        assert_eq!(t.ids_at_or_after(10), Vec::<InstId>::new());
    }

    #[test]
    fn table_trims_and_reuses_the_band() {
        let mut t = InFlightTable::new();
        for id in 0..100 {
            t.insert(id, record(id));
        }
        // Commit a prefix, then dispatch past the old end: the band slides.
        for id in 0..90 {
            t.remove(id);
        }
        for id in 100..110 {
            t.insert(id, record(id));
        }
        assert_eq!(t.len(), 20);
        assert_eq!(t.values().count(), 20);
        // A squash re-dispatch below the current base works too.
        t.retain(|f| f.inst >= 95);
        t.insert(93, record(93));
        assert_eq!(t.values().map(|f| f.inst).min(), Some(93));
    }

    #[test]
    fn retain_drops_matching_records() {
        let mut t = InFlightTable::new();
        for id in 0..10 {
            let mut r = record(id);
            r.ckpt = id as u64 % 2;
            t.insert(id, r);
        }
        t.retain(|f| f.ckpt != 0);
        assert_eq!(t.len(), 5);
        assert!(t.values().all(|f| f.ckpt == 1));
    }
}
