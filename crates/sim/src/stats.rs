//! Simulation statistics: everything the paper's figures report.

use koc_core::RetireClass;
use koc_frontend::BranchStats;
use koc_mem::MemoryStats;
use serde::{Deserialize, Serialize};

/// A streaming distribution of per-cycle samples with percentile queries
/// (used for Figure 7's live-instruction distribution and Figure 11's
/// in-flight counts).
///
/// Stored as a histogram indexed by sample value — occupancy samples are
/// small integers bounded by the window size — so memory is O(max value)
/// instead of O(simulated cycles), recording is branch-light, and the
/// fast-forward path can record a run of identical cycles in O(1) via
/// [`record_n`](Distribution::record_n).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Distribution {
    /// `counts[v]` = number of samples with value `v`.
    counts: Vec<u64>,
    total: u64,
    sum: u64,
}

impl Distribution {
    /// Creates an empty distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one per-cycle sample.
    pub fn record(&mut self, value: usize) {
        self.record_n(value, 1);
    }

    /// Records `n` consecutive samples of the same value (the fast-forward
    /// path records one per skipped cycle).
    pub fn record_n(&mut self, value: usize, n: u64) {
        if n == 0 {
            return;
        }
        if value >= self.counts.len() {
            self.counts.resize(value + 1, 0);
        }
        self.counts[value] += n;
        self.total += n;
        self.sum += value as u64 * n;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.total as usize
    }

    /// Arithmetic mean of the samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The maximum sample (0 if empty).
    pub fn max(&self) -> usize {
        self.counts.iter().rposition(|&c| c > 0).unwrap_or(0)
    }

    /// The `p`-th percentile (0.0–1.0) of the samples, 0 if empty.
    ///
    /// Defined as element `round((count - 1) * p)` of the sorted sample
    /// list, read off the histogram's cumulative counts.
    pub fn percentile(&self, p: f64) -> usize {
        if self.total == 0 {
            return 0;
        }
        let rank = ((self.total - 1) as f64 * p.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (value, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                return value;
            }
        }
        self.max()
    }

    /// The percentiles reported by Figure 7: 10 / 25 / 50 / 75 / 90.
    pub fn figure7_percentiles(&self) -> [usize; 5] {
        [
            self.percentile(0.10),
            self.percentile(0.25),
            self.percentile(0.50),
            self.percentile(0.75),
            self.percentile(0.90),
        ]
    }
}

/// Counters for the pseudo-ROB retirement breakdown (Figure 12).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetireBreakdown {
    counts: [u64; RetireClass::COUNT],
}

impl RetireBreakdown {
    /// Records one retirement of the given class.
    pub fn record(&mut self, class: RetireClass) {
        self.counts[class.index()] += 1;
    }

    /// Count for a class.
    pub fn count(&self, class: RetireClass) -> u64 {
        self.counts[class.index()]
    }

    /// Total retirements recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of retirements in the given class (0 if none recorded).
    pub fn fraction(&self, class: RetireClass) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(class) as f64 / total as f64
        }
    }
}

/// Recovery-event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Mispredicted branches recovered inside the pseudo-ROB (or via the ROB
    /// in the baseline): selective squash.
    pub near_recoveries: u64,
    /// Mispredicted branches recovered by rolling back to a checkpoint.
    pub checkpoint_rollbacks: u64,
    /// Exceptions taken (tests exercise these).
    pub exceptions: u64,
    /// Instructions squashed by all recovery events.
    pub squashed_instructions: u64,
    /// Instructions re-executed because of checkpoint rollbacks.
    pub reexecuted_instructions: u64,
}

/// Everything measured during one simulation run.
///
/// `SimStats` is `PartialEq` so determinism tests can assert bit-identical
/// results, and `Serialize` (the workspace serde stub emits real JSON) so
/// harnesses dump it without hand-formatting fields.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions committed (equals the trace length at the end of a run).
    pub committed_instructions: u64,
    /// Instructions dispatched (includes re-executions after rollbacks).
    pub dispatched_instructions: u64,
    /// Checkpoints taken (checkpointed engine only).
    pub checkpoints_taken: u64,
    /// Checkpoints committed.
    pub checkpoints_committed: u64,
    /// Checkpoints squashed by recovery (branch walkback that dropped a
    /// freshly taken checkpoint, or rollback past younger checkpoints).
    /// Invariant: `checkpoints_taken == checkpoints_committed +
    /// checkpoints_squashed` at the end of a run.
    pub checkpoints_squashed: u64,
    /// Instructions moved to the SLIQ.
    pub sliq_moved: u64,
    /// Peak SLIQ occupancy.
    pub sliq_high_water: usize,
    /// Per-cycle number of in-flight (dispatched, not committed) instructions.
    pub inflight: Distribution,
    /// Per-cycle number of live (dispatched, not yet issued) instructions.
    pub live: Distribution,
    /// Per-cycle live instructions blocked on long-latency loads.
    pub live_long: Distribution,
    /// Per-cycle live instructions waiting on short-latency work.
    pub live_short: Distribution,
    /// Pseudo-ROB retirement breakdown (Figure 12).
    pub retire_breakdown: RetireBreakdown,
    /// Branch-prediction statistics.
    pub branches: BranchStats,
    /// Recovery statistics.
    pub recoveries: RecoveryStats,
    /// Memory-hierarchy statistics.
    pub memory: MemoryStats,
    /// Dispatch stall cycles broken down by cause.
    pub stalls: StallStats,
    /// Peak occupancy of the fetch replay window: the most instructions the
    /// streaming ingestion path ever had to retain for possible rollback
    /// replay. Bounded by the in-flight window (checkpoint depth plus fetch
    /// lookahead), not by the stream length — the memory guarantee of the
    /// [`InstructionSource`](koc_isa::InstructionSource) API.
    pub replay_window_peak: usize,
    /// Whether the run stopped early because it hit a cycle budget
    /// ([`crate::Session`]'s `cycle_budget`) before the trace finished.
    pub budget_exhausted: bool,
}

/// Dispatch-stall cycle counters by cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallStats {
    /// Stalled because the target instruction queue was full.
    pub iq_full: u64,
    /// Stalled because the ROB was full (baseline only).
    pub rob_full: u64,
    /// Stalled because the load/store queue was full.
    pub lsq_full: u64,
    /// Stalled because no physical register / virtual tag was available.
    pub regs_full: u64,
    /// Stalled waiting out a branch-misprediction redirect.
    pub redirect: u64,
    /// Stalled because the checkpoint store bound was hit with a full table.
    pub checkpoint_full: u64,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_instructions as f64 / self.cycles as f64
        }
    }

    /// Average number of in-flight instructions (Figure 11).
    pub fn avg_inflight(&self) -> f64 {
        self.inflight.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_mean_and_percentiles() {
        let mut d = Distribution::new();
        for v in 1..=100 {
            d.record(v);
        }
        assert_eq!(d.count(), 100);
        assert!((d.mean() - 50.5).abs() < 1e-9);
        assert_eq!(d.percentile(0.0), 1);
        assert_eq!(d.percentile(1.0), 100);
        assert_eq!(d.percentile(0.5), 51);
        assert_eq!(d.max(), 100);
        let p = d.figure7_percentiles();
        assert!(p[0] < p[2] && p[2] < p[4]);
    }

    #[test]
    fn empty_distribution_is_zero() {
        let d = Distribution::new();
        assert_eq!(d.mean(), 0.0);
        assert_eq!(d.percentile(0.5), 0);
        assert_eq!(d.max(), 0);
    }

    #[test]
    fn record_n_equals_repeated_record() {
        let mut bulk = Distribution::new();
        let mut single = Distribution::new();
        bulk.record_n(7, 120);
        bulk.record_n(3, 5);
        for _ in 0..120 {
            single.record(7);
        }
        for _ in 0..5 {
            single.record(3);
        }
        assert_eq!(bulk, single);
        assert_eq!(bulk.count(), 125);
        assert_eq!(bulk.max(), 7);
        assert_eq!(bulk.percentile(0.0), 3);
        assert_eq!(bulk.percentile(1.0), 7);
    }

    #[test]
    fn stats_serialize_to_json_via_the_derive() {
        let stats = SimStats {
            cycles: 200,
            committed_instructions: 500,
            ..Default::default()
        };
        let json = serde::Serialize::to_json(&stats);
        assert!(json.starts_with('{'), "{json}");
        assert!(json.contains("\"cycles\":200"), "{json}");
        assert!(json.contains("\"committed_instructions\":500"), "{json}");
        assert!(json.contains("\"memory\":{"), "{json}");
    }

    #[test]
    fn retire_breakdown_fractions_sum_to_one() {
        let mut b = RetireBreakdown::default();
        b.record(RetireClass::Moved);
        b.record(RetireClass::Moved);
        b.record(RetireClass::Finished);
        b.record(RetireClass::Store);
        assert_eq!(b.total(), 4);
        assert!((b.fraction(RetireClass::Moved) - 0.5).abs() < 1e-12);
        let sum: f64 = RetireClass::all().iter().map(|&c| b.fraction(c)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ipc_divides_committed_by_cycles() {
        let stats = SimStats {
            cycles: 200,
            committed_instructions: 500,
            ..Default::default()
        };
        assert!((stats.ipc() - 2.5).abs() < 1e-12);
        assert_eq!(SimStats::default().ipc(), 0.0);
    }
}
