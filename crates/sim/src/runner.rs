//! Deprecated free-function entry points, kept as thin shims over the
//! [`crate::session`] API for callers that predate [`crate::SimBuilder`] /
//! [`crate::Sweep`].

use crate::config::ProcessorConfig;
use crate::pipeline::Processor;
use crate::stats::SimStats;
use koc_isa::Trace;
use koc_workloads::{Suite, Workload};

pub use crate::session::{SuiteResult, WorkloadResult};

/// Runs `config` over `trace` to completion and returns the statistics.
#[deprecated(
    since = "0.1.0",
    note = "use `SimBuilder::from_config(config).build().run_trace(trace)` or `Processor::new`"
)]
pub fn run_trace(config: ProcessorConfig, trace: &Trace) -> SimStats {
    Processor::new(config, trace).run()
}

/// Runs `config` over an already-generated set of workloads.
#[deprecated(
    since = "0.1.0",
    note = "use `Sweep::over([config]).run_on(workloads)` or \
            `SimBuilder::from_config(config).workloads(Suite::custom(..)).build().run()`"
)]
pub fn run_workloads(config: ProcessorConfig, workloads: &[Workload]) -> SuiteResult {
    crate::Sweep::over([config])
        .run_on(workloads)
        .pop()
        .expect("one configuration yields one result")
}

/// Generates the SPEC2000fp-like suite at the given trace length and runs
/// `config` over it.
#[deprecated(
    since = "0.1.0",
    note = "use `SimBuilder::from_config(config).workloads(Suite::paper()).trace_len(n).build().run()`"
)]
pub fn run_suite(config: ProcessorConfig, trace_len: usize) -> SuiteResult {
    crate::SimBuilder::from_config(config)
        .workloads(Suite::paper())
        .trace_len(trace_len)
        .build()
        .run()
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::config::ProcessorConfig;
    use koc_workloads::kernels;

    #[test]
    fn run_trace_completes_a_small_kernel() {
        let w = Workload::generate("stream_add", kernels::stream_add(), 2_000);
        let stats = run_trace(ProcessorConfig::baseline(128, 100), &w.trace);
        assert_eq!(stats.committed_instructions as usize, w.trace.len());
        assert!(stats.ipc() > 0.0);
    }

    #[test]
    fn suite_result_averages_per_workload_ipc() {
        let workloads = vec![
            Workload::generate("stream_add", kernels::stream_add(), 1_000),
            Workload::generate("dense_blocked", kernels::dense_blocked(), 1_000),
        ];
        let result = run_workloads(ProcessorConfig::baseline(256, 100), &workloads);
        assert_eq!(result.per_workload.len(), 2);
        let mean = result.mean_ipc();
        let ipcs = result.ipcs();
        assert!(mean > 0.0);
        assert!((mean - (ipcs[0] + ipcs[1]) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn deprecated_shims_agree_with_the_session_api() {
        let config = ProcessorConfig::cooo(32, 512, 100);
        let workloads = vec![Workload::generate("gather", kernels::gather(), 1_000)];
        let old = run_workloads(config, &workloads);
        let new = crate::Sweep::over([config]).run_on(&workloads);
        assert_eq!(
            old.per_workload[0].stats.cycles,
            new[0].per_workload[0].stats.cycles
        );
    }
}
