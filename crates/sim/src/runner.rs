//! Convenience entry points: run one configuration over one workload or over
//! the whole SPEC2000fp-like suite, as the paper's experiments do.

use crate::config::ProcessorConfig;
use crate::processor::Processor;
use crate::stats::SimStats;
use koc_isa::Trace;
use koc_workloads::{spec2000fp_like_suite, suite::suite_average, Workload};

/// Runs `config` over `trace` to completion and returns the statistics.
pub fn run_trace(config: ProcessorConfig, trace: &Trace) -> SimStats {
    Processor::new(config, trace).run()
}

/// The result of running one configuration over one workload.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// The workload's suite name.
    pub workload: String,
    /// Full statistics for the run.
    pub stats: SimStats,
}

/// The result of running one configuration over the whole suite.
#[derive(Debug, Clone)]
pub struct SuiteResult {
    /// Per-workload results, in suite order.
    pub per_workload: Vec<WorkloadResult>,
}

impl SuiteResult {
    /// The suite-average IPC — the reduction every figure of the paper
    /// reports.
    pub fn mean_ipc(&self) -> f64 {
        suite_average(&self.per_workload.iter().map(|r| r.stats.ipc()).collect::<Vec<_>>())
    }

    /// The suite-average number of in-flight instructions (Figure 11).
    pub fn mean_inflight(&self) -> f64 {
        suite_average(&self.per_workload.iter().map(|r| r.stats.avg_inflight()).collect::<Vec<_>>())
    }

    /// Per-workload IPC values, in suite order.
    pub fn ipcs(&self) -> Vec<f64> {
        self.per_workload.iter().map(|r| r.stats.ipc()).collect()
    }
}

/// Runs `config` over an already-generated set of workloads.
pub fn run_workloads(config: ProcessorConfig, workloads: &[Workload]) -> SuiteResult {
    let per_workload = workloads
        .iter()
        .map(|w| WorkloadResult { workload: w.name.clone(), stats: run_trace(config, &w.trace) })
        .collect();
    SuiteResult { per_workload }
}

/// Generates the SPEC2000fp-like suite at the given trace length and runs
/// `config` over it.
pub fn run_suite(config: ProcessorConfig, trace_len: usize) -> SuiteResult {
    let workloads = spec2000fp_like_suite(trace_len);
    run_workloads(config, &workloads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProcessorConfig;
    use koc_workloads::kernels;

    #[test]
    fn run_trace_completes_a_small_kernel() {
        let w = Workload::generate("stream_add", kernels::stream_add(), 2_000);
        let stats = run_trace(ProcessorConfig::baseline(128, 100), &w.trace);
        assert_eq!(stats.committed_instructions as usize, w.trace.len());
        assert!(stats.ipc() > 0.0);
    }

    #[test]
    fn suite_result_averages_per_workload_ipc() {
        let workloads = vec![
            Workload::generate("stream_add", kernels::stream_add(), 1_000),
            Workload::generate("dense_blocked", kernels::dense_blocked(), 1_000),
        ];
        let result = run_workloads(ProcessorConfig::baseline(256, 100), &workloads);
        assert_eq!(result.per_workload.len(), 2);
        let mean = result.mean_ipc();
        let ipcs = result.ipcs();
        assert!(mean > 0.0);
        assert!((mean - (ipcs[0] + ipcs[1]) / 2.0).abs() < 1e-12);
    }
}
