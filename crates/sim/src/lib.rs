//! # koc-sim
//!
//! A cycle-level, trace-driven superscalar out-of-order processor simulator
//! with two commit engines:
//!
//! * the conventional **in-order ROB commit** baseline (Table 1 of the
//!   paper), and
//! * the paper's **checkpointed out-of-order commit** machine, built from the
//!   mechanisms in [`koc-core`]: CAM renaming with future-free bits, a small
//!   checkpoint table, a pseudo-ROB, and Slow Lane Instruction Queuing.
//!
//! ```no_run
//! use koc_sim::{run_suite, ProcessorConfig};
//!
//! // The paper's headline comparison (Figure 9, rightmost group):
//! let proposal = run_suite(ProcessorConfig::cooo(128, 2048, 1000), 30_000);
//! let baseline4096 = run_suite(ProcessorConfig::baseline(4096, 1000), 30_000);
//! let baseline128 = run_suite(ProcessorConfig::baseline(128, 1000), 30_000);
//! println!(
//!     "COoO 128/2048: {:.2} IPC vs baseline-4096 {:.2} and baseline-128 {:.2}",
//!     proposal.mean_ipc(),
//!     baseline4096.mean_ipc(),
//!     baseline128.mean_ipc()
//! );
//! ```
//!
//! [`koc-core`]: https://example.org

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod inflight;
pub mod processor;
pub mod runner;
pub mod stats;

pub use config::{BranchPredictorKind, CommitConfig, ProcessorConfig, RegisterModel};
pub use processor::Processor;
pub use runner::{run_suite, run_trace, run_workloads, SuiteResult, WorkloadResult};
pub use stats::{Distribution, RecoveryStats, RetireBreakdown, SimStats, StallStats};
