//! # koc-sim
//!
//! A cycle-level, trace-driven superscalar out-of-order processor simulator
//! with pluggable commit engines behind the [`CommitEngine`] trait:
//!
//! * [`engine::InOrderEngine`] — the conventional **in-order ROB commit**
//!   baseline (Table 1 of the paper), and
//! * [`engine::CheckpointedEngine`] — the paper's **checkpointed
//!   out-of-order commit** machine, built from the mechanisms in
//!   [`koc_core`]: CAM renaming with future-free bits, a small checkpoint
//!   table, a pseudo-ROB, and Slow Lane Instruction Queuing.
//!
//! Simulations are configured and run through the fluent [`SimBuilder`] /
//! [`Session`] API; grids of configurations run in parallel through
//! [`Sweep`]:
//!
//! ```no_run
//! use koc_sim::{ProcessorConfig, SimBuilder, Suite, Sweep};
//!
//! // The paper's headline comparison (Figure 9, rightmost group):
//! let proposal = SimBuilder::cooo()
//!     .pseudo_rob(128)
//!     .sliq(2048)
//!     .workloads(Suite::paper())
//!     .trace_len(30_000)
//!     .build()
//!     .run();
//! let baselines = Sweep::over([
//!     ProcessorConfig::baseline(4096, 1000),
//!     ProcessorConfig::baseline(128, 1000),
//! ])
//! .trace_len(30_000)
//! .run();
//! println!(
//!     "COoO 128/2048: {:.2} IPC vs baseline-4096 {:.2} and baseline-128 {:.2}",
//!     proposal.mean_ipc(),
//!     baselines[0].mean_ipc(),
//!     baselines[1].mean_ipc()
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod inflight;
pub mod lockstep;
pub mod pipeline;
pub mod session;
pub mod stats;

pub use config::{BranchPredictorKind, CommitConfig, ProcessorConfig, RegisterModel};
pub use engine::{CommitEngine, DispatchStall, Dispatched, EngineCtx, Writeback};
pub use inflight::{InFlight, InFlightTable, InstState};
pub use lockstep::{run_lockstep, LockstepSweep};
pub use pipeline::{Processor, SliceOutcome};
pub use session::{
    ExecMode, GridWorkload, Session, SimBuilder, SourceMode, SuiteResult, Sweep, WorkloadResult,
};
pub use stats::{Distribution, RecoveryStats, RetireBreakdown, SimStats, StallStats};

// Re-exported so sessions can be configured without importing
// `koc_workloads` directly.
pub use koc_workloads::Suite;

// Re-exported so streaming runs (`Session::run_one`, `Processor::new`
// over a generator) can be written without importing `koc_isa` directly.
pub use koc_isa::{InstructionSource, IntoInstructionSource, ReplayWindow, SourceExt};

// Re-exported so observers — the fourth seam, next to the configuration,
// the instruction source and the commit engine — can be attached without
// importing `koc_obs` directly.
pub use koc_obs::{
    CycleAccounting, CycleBucket, CycleBuckets, CycleSample, Event, IntervalRecord, NullObserver,
    Observer, PipelineTracer, TimelineRecorder,
};

// Re-exported so the memory-backend knobs (`SimBuilder::dram`,
// `mshr_entries`, `prefetch`, …) can be used without importing `koc_mem`.
pub use koc_mem::{BackendKind, DramConfig, MemoryConfig, PrefetchConfig};
