//! The cycle-level pipeline shell: fetch/rename/dispatch, issue, execute,
//! write-back and statistics. Retirement, recovery and register reclaim are
//! delegated to a pluggable [`CommitEngine`] — the conventional in-order ROB
//! baseline or the paper's checkpointed out-of-order commit engine (or any
//! third-party implementation of the trait).
//!
//! The simulator is trace driven. Branch mispredictions use a
//! squash-and-refetch model: fetch continues past an unresolved mispredicted
//! branch (the fetched instructions stand in for wrong-path work and occupy
//! machine resources); when the branch resolves, the engine recovers —
//! selectively for nearby branches, by rolling back to a checkpoint for
//! branches that already left the pseudo-ROB, which is exactly the recovery
//! cost the paper attributes to coarse-grain checkpointing.
//!
//! # Throughput
//!
//! The hot loop is engineered for the paper's kilo-instruction windows:
//! in-flight state lives in a dense slab ([`InFlightTable`]), completion
//! events in a pooled calendar queue (no per-cycle allocation), and when
//! every stage is provably stalled on the memory backend the shell
//! *fast-forwards* — it jumps straight to the next scheduled event
//! ([`koc_mem::MemoryBackend::next_event`], the engine's
//! [`CommitEngine::next_wake`], or a fetch redirect expiring) while
//! accounting per-cycle statistics exactly as if it had ticked through the
//! dead time. Results are bit-identical with
//! [`ProcessorConfig::fast_forward`] off; only wall-clock changes.

use crate::config::{BranchPredictorKind, ProcessorConfig, RegisterModel};
use crate::engine::{self, CommitEngine, DispatchStall, Dispatched, EngineCtx, Writeback};
use crate::inflight::{InFlight, InFlightTable, InstState};
use crate::stats::SimStats;
use koc_core::{
    CamRenameMap, CheckpointId, InstructionQueue, IqEntry, LoadStoreQueue, LsqEntry, PhysRegFile,
    VirtualRegisterFile,
};
use koc_frontend::{BranchPredictor, GsharePredictor, PerfectPredictor};
use koc_isa::{
    ArchReg, InstId, Instruction, IntoInstructionSource, OpKind, PhysReg, RegList, ReplayWindow,
};
use koc_mem::{MemLevel, MemoryHierarchy, TimedAccess};
use koc_obs::{CycleBucket, CycleSample, Event, NullObserver, Observer};
use std::collections::BTreeMap;

/// Interval (in cycles) at which the expensive live-instruction breakdown
/// (Figure 7) is sampled.
const LIVE_SAMPLE_INTERVAL: u64 = 32;

/// Why dispatch stopped this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StallReason {
    IqFull,
    LsqFull,
    RegsFull,
    Engine(DispatchStall),
}

/// What a fully stalled cycle recorded in the stall counters — replayed
/// per skipped cycle by the fast-forward path so statistics stay
/// bit-identical with per-cycle stepping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SkipStall {
    /// Waiting out a branch-misprediction redirect.
    Redirect,
    /// Dispatch blocked on a structural resource.
    Dispatch(StallReason),
}

/// Where a bounded slice stopped (see [`Processor::advance_slice`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceOutcome {
    /// The run is over: the source drained and the machine emptied. Collect
    /// results via [`Processor::into_stats`].
    Complete,
    /// The `max_cycles` budget ran out; the statistics carry
    /// `budget_exhausted` and the run counts as over.
    BudgetExhausted,
    /// The replay window pulled `fetch_target` instructions; the lane is
    /// resumable (the lockstep scheduler's stop condition).
    FetchTarget,
    /// The simulated clock reached `until_cycle`; the run is resumable
    /// (the deadline/cancellation/progress stop condition).
    CycleTarget,
}

/// What one [`Processor::step`] did, as far as the fast-forward logic is
/// concerned.
struct CycleActivity {
    /// Whether any externally visible state changed this cycle (an event
    /// completed, an instruction moved, a stage made progress). A `false`
    /// cycle will repeat identically until the next scheduled event.
    progressed: bool,
    /// The stall counter this (quiescent) cycle bumped, if any.
    stall: Option<SkipStall>,
}

/// Completion events in a calendar wheel: every schedulable delay is
/// bounded by the memory hierarchy's worst-case latency, so slot
/// `cycle & mask` is unambiguous within the horizon and push/take are O(1)
/// array operations instead of tree-map node churn. Per-slot `Vec`s are
/// recycled through a pool (the steady state allocates nothing), a
/// two-level occupancy bitmap answers `next_cycle` for the fast-forward
/// path in a handful of word scans, and anything past the horizon (never
/// hit by the built-in backends) falls back to an ordered map.
struct EventQueue {
    wheel: Vec<Vec<(InstId, u64)>>,
    mask: u64,
    /// Bit per wheel slot; set iff the slot holds events.
    occ: Vec<u64>,
    pool: Vec<Vec<(InstId, u64)>>,
    overflow: BTreeMap<u64, Vec<(InstId, u64)>>,
    /// The cycle of the last `take` — events are never scheduled below it.
    cur: u64,
}

impl EventQueue {
    /// A wheel able to schedule at least `max_delay` cycles ahead.
    fn with_horizon(max_delay: u64) -> Self {
        let slots = (max_delay + 66).next_power_of_two() as usize;
        EventQueue {
            wheel: (0..slots).map(|_| Vec::new()).collect(),
            mask: slots as u64 - 1,
            occ: vec![0; slots.div_ceil(64)],
            pool: Vec::new(),
            overflow: BTreeMap::new(),
            cur: 0,
        }
    }

    fn push(&mut self, cycle: u64, event: (InstId, u64)) {
        debug_assert!(cycle >= self.cur, "event scheduled in the past");
        if cycle - self.cur > self.mask {
            self.overflow.entry(cycle).or_default().push(event);
            return;
        }
        let slot = (cycle & self.mask) as usize;
        if self.wheel[slot].is_empty() {
            if let Some(pooled) = self.pool.pop() {
                self.wheel[slot] = pooled;
            }
            self.occ[slot / 64] |= 1u64 << (slot % 64);
        }
        self.wheel[slot].push(event);
    }

    /// Removes and returns the batch due at `cycle`; return it with
    /// [`recycle`](Self::recycle) after draining. `cycle` must advance
    /// monotonically (the shell takes once per simulated cycle and
    /// fast-forward only skips provably event-free cycles).
    fn take(&mut self, cycle: u64) -> Option<Vec<(InstId, u64)>> {
        self.cur = cycle;
        let mut due = None;
        let slot = (cycle & self.mask) as usize;
        if self.occ[slot / 64] & (1u64 << (slot % 64)) != 0 {
            self.occ[slot / 64] &= !(1u64 << (slot % 64));
            due = Some(std::mem::take(&mut self.wheel[slot]));
        }
        if self
            .overflow
            .first_key_value()
            .is_some_and(|(&c, _)| c == cycle)
        {
            let mut extra = self.overflow.remove(&cycle).expect("checked key"); // koc-lint: allow(panic, "key was just matched by first_key_value")
            match &mut due {
                Some(batch) => batch.append(&mut extra),
                None => due = Some(extra),
            }
        }
        due
    }

    fn recycle(&mut self, mut batch: Vec<(InstId, u64)>) {
        batch.clear();
        self.pool.push(batch);
    }

    /// The earliest cycle after `cur` with a scheduled event.
    fn next_cycle(&self) -> Option<u64> {
        let start_slot = (self.cur + 1) & self.mask;
        let words = self.occ.len();
        let mut next = None;
        // Scan the occupancy bitmap cyclically from `start_slot`'s word; the
        // first set bit in cyclic order is the soonest wheel event (every
        // scheduled event lies within one horizon of `cur`, so the cyclic
        // slot distance is exactly the cycle distance).
        for step in 0..=words {
            let wi = (start_slot as usize / 64 + step) % words;
            let mut word = self.occ[wi];
            if step == 0 {
                // Bits below the start position belong to the wrapped end of
                // the window; the final revisit of this word picks them up.
                word &= !0u64 << (start_slot % 64);
            } else if step == words {
                word &= !(!0u64 << (start_slot % 64));
            }
            if word != 0 {
                let slot = (wi * 64 + word.trailing_zeros() as usize) as u64;
                let delta = slot.wrapping_sub(start_slot) & self.mask;
                next = Some(self.cur + 1 + delta);
                break;
            }
        }
        match (next, self.overflow.first_key_value()) {
            (Some(w), Some((&o, _))) => Some(w.min(o)),
            (Some(w), None) => Some(w),
            (None, Some((&o, _))) => Some(o),
            (None, None) => None,
        }
    }
}

enum PredictorImpl {
    Gshare(Box<GsharePredictor>),
    Perfect(PerfectPredictor),
}

impl PredictorImpl {
    fn predict_and_train(
        &mut self,
        pc: u64,
        taken: bool,
        stats: &mut koc_frontend::BranchStats,
    ) -> bool {
        match self {
            PredictorImpl::Gshare(p) => p.predict_and_train(pc, taken, stats),
            PredictorImpl::Perfect(p) => p.predict_and_train(pc, taken, stats),
        }
    }
}

/// Builds an [`EngineCtx`] from the shell's fields (everything except the
/// engine itself), so engine hook calls can split the borrow.
macro_rules! engine_ctx {
    ($self:ident) => {
        EngineCtx {
            config: &$self.config,
            cycle: $self.cycle,
            fetch: &mut $self.fetch,
            rename: &mut $self.rename,
            regs: &mut $self.regs,
            int_iq: &mut $self.int_iq,
            fp_iq: &mut $self.fp_iq,
            lsq: &mut $self.lsq,
            mem: &mut $self.mem,
            inflight: &mut $self.inflight,
            live_count: &mut $self.live_count,
            stats: &mut $self.stats,
            obs: &mut $self.obs,
        }
    };
}

/// The processor: the pipeline shell plus all shared microarchitectural
/// state for one simulation run. The commit engine plugs in behind the
/// [`CommitEngine`] trait.
pub struct Processor<'a, O: Observer = NullObserver> {
    config: ProcessorConfig,
    /// The fetch stream: a replay window over the run's instruction source.
    fetch: ReplayWindow<'a>,
    cycle: u64,

    rename: CamRenameMap,
    regs: PhysRegFile,
    vregs: Option<VirtualRegisterFile>,
    int_iq: InstructionQueue,
    fp_iq: InstructionQueue,
    lsq: LoadStoreQueue,
    mem: MemoryHierarchy,
    predictor: PredictorImpl,
    engine: Box<dyn CommitEngine<O>>,
    /// The run's observer — [`NullObserver`] by default, in which case every
    /// hook monomorphizes to nothing (`O::ENABLED` is `false`).
    obs: O,

    inflight: InFlightTable,
    next_seq: u64,
    /// Completion events: cycle -> [(inst, seq)].
    events: EventQueue,
    /// Loads waiting on the timed memory backend, by request token (the
    /// instance's `seq`). Completions surface from the hierarchy's tick.
    mem_waiters: koc_core::FlatMap<InstId>,
    /// Scratch buffer for completed memory tokens.
    mem_completed: Vec<u64>,
    /// Scratch buffer for issue selection.
    issue_picked: Vec<IqEntry>,
    /// Fetch is stalled (misprediction redirect) until this cycle.
    fetch_stall_until: u64,
    /// Number of dispatched-but-not-issued instructions (incremental).
    live_count: usize,
    /// Exceptions already delivered (so re-execution does not re-raise).
    /// A set in spirit (`FlatMap<()>` keyed by [`InstId`]): point
    /// membership tests only, never iterated (hash order must not reach
    /// simulated timing).
    handled_exceptions: koc_core::FlatMap<()>,
    /// Scratch for the Figure-7 breakdown: `long_marks[p] == long_epoch`
    /// means physical register `p` carries a long-latency dependence in the
    /// current sample (epoch stamping avoids clearing between samples).
    long_marks: Vec<u64>,
    long_epoch: u64,

    stats: SimStats,
}

impl<'a> Processor<'a> {
    /// Builds a processor for one run over `source` — a `&Trace`, a
    /// streaming generator, or any other
    /// [`InstructionSource`](koc_isa::InstructionSource) — with the commit
    /// engine the configuration describes. The stream is pulled on demand
    /// and replayed out of an O(window) buffer, so run length is unbounded
    /// by host memory.
    ///
    /// # Panics
    /// Panics if the configuration fails [`ProcessorConfig::validate`].
    pub fn new(config: ProcessorConfig, source: impl IntoInstructionSource<'a>) -> Self {
        let engine = engine::from_config(&config.commit);
        Self::with_engine(config, source, engine)
    }

    /// Builds a processor driving a caller-supplied commit engine — the
    /// extension point for commit schemes the built-in [`crate::CommitConfig`]
    /// variants do not cover.
    ///
    /// # Panics
    /// Panics if the configuration fails [`ProcessorConfig::validate`].
    pub fn with_engine(
        config: ProcessorConfig,
        source: impl IntoInstructionSource<'a>,
        engine: Box<dyn CommitEngine>,
    ) -> Self {
        Self::with_parts(config, source, engine, NullObserver)
    }
}

impl<'a, O: Observer> Processor<'a, O> {
    /// Builds a processor that reports pipeline activity to `obs` — the
    /// observability seam. The observer's hooks are monomorphized into the
    /// hot loop, so a [`NullObserver`] build is bit- and cycle-identical to
    /// (and as fast as) an unobserved one.
    ///
    /// # Panics
    /// Panics if the configuration fails [`ProcessorConfig::validate`].
    pub fn with_observer(
        config: ProcessorConfig,
        source: impl IntoInstructionSource<'a>,
        obs: O,
    ) -> Self {
        let engine = engine::from_config(&config.commit);
        Self::with_parts(config, source, engine, obs)
    }

    /// Builds a processor from all four seams: configuration, instruction
    /// source, commit engine and observer.
    ///
    /// # Panics
    /// Panics if the configuration fails [`ProcessorConfig::validate`].
    pub fn with_parts(
        config: ProcessorConfig,
        source: impl IntoInstructionSource<'a>,
        engine: Box<dyn CommitEngine<O>>,
        obs: O,
    ) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid processor configuration: {e}"); // koc-lint: allow(panic, "invalid configuration is a caller bug; validate() names the field")
        }
        let rename_pool = config.registers.rename_pool_size();
        let vregs = match config.registers {
            RegisterModel::Conventional { .. } => None,
            RegisterModel::Virtual {
                virtual_tags,
                phys_regs,
            } => Some(VirtualRegisterFile::new(virtual_tags, phys_regs)),
        };
        let predictor = match config.predictor {
            BranchPredictorKind::Gshare16k => {
                PredictorImpl::Gshare(Box::new(GsharePredictor::table1()))
            }
            BranchPredictorKind::Perfect => PredictorImpl::Perfect(PerfectPredictor::new()),
        };
        Processor {
            fetch: ReplayWindow::new(source),
            cycle: 0,
            rename: CamRenameMap::new(rename_pool),
            regs: PhysRegFile::new(rename_pool),
            vregs,
            int_iq: InstructionQueue::new(config.iq_size),
            fp_iq: InstructionQueue::new(config.iq_size),
            lsq: LoadStoreQueue::new(config.lsq_size),
            mem: MemoryHierarchy::new(config.memory),
            predictor,
            engine,
            inflight: InFlightTable::new(),
            next_seq: 0,
            events: EventQueue::with_horizon(config.memory.worst_case_latency() as u64),
            mem_waiters: koc_core::FlatMap::default(),
            mem_completed: Vec::new(),
            issue_picked: Vec::new(),
            fetch_stall_until: 0,
            live_count: 0,
            handled_exceptions: koc_core::FlatMap::default(),
            long_marks: vec![0; rename_pool],
            long_epoch: 0,
            stats: SimStats::default(),
            config,
            obs,
        }
    }

    /// The configuration this processor was built with.
    pub fn config(&self) -> &ProcessorConfig {
        &self.config
    }

    /// The commit engine's name (for diagnostics).
    pub fn engine_name(&self) -> &'static str {
        self.engine.name()
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The current architectural-to-physical mapping, one entry per
    /// architectural register in flat-index order. After a complete run the
    /// *shape* of this mapping (which architectural registers are mapped) is
    /// engine-independent — the conformance invariant for out-of-order
    /// commit.
    pub fn arch_mapping(&self) -> Vec<Option<PhysReg>> {
        ArchReg::all().map(|r| self.rename.lookup(r)).collect()
    }

    /// Whether the run is complete: the whole stream has been fetched,
    /// executed and committed. Takes `&mut self` because deciding the
    /// stream's end may pull one instruction of lookahead from the source.
    pub fn is_done(&mut self) -> bool {
        self.fetch.at_end() && self.inflight.is_empty() && self.engine.is_empty()
    }

    /// Runs until completion and returns the statistics.
    ///
    /// # Panics
    /// Panics if the simulation exceeds a generous cycle bound (indicating a
    /// pipeline deadlock, which is a bug).
    pub fn run(self) -> SimStats {
        self.run_capped(None)
    }

    /// Runs until completion and returns the statistics together with the
    /// observer, which now holds whatever it recorded.
    ///
    /// # Panics
    /// Panics if the simulation exceeds a generous cycle bound (indicating a
    /// pipeline deadlock, which is a bug).
    pub fn run_observed(self) -> (SimStats, O) {
        self.run_capped_observed(None)
    }

    /// [`run_capped`](Self::run_capped), returning the observer as well.
    ///
    /// # Panics
    /// Panics if the simulation exceeds a generous cycle bound (indicating a
    /// pipeline deadlock, which is a bug).
    pub fn run_capped_observed(mut self, max_cycles: Option<u64>) -> (SimStats, O) {
        let stats = self.run_to_end(max_cycles);
        (stats, self.obs)
    }

    /// Runs until completion or until the simulated cycle count reaches
    /// `max_cycles`, whichever comes first. A capped run that stops early
    /// returns partial statistics with
    /// [`SimStats::budget_exhausted`](crate::SimStats) set — the cheap
    /// cycle budget [`crate::Session`] and [`crate::Sweep`] thread through.
    ///
    /// # Panics
    /// Panics if the simulation exceeds a generous cycle bound (indicating a
    /// pipeline deadlock, which is a bug).
    pub fn run_capped(mut self, max_cycles: Option<u64>) -> SimStats {
        self.run_to_end(max_cycles)
    }

    fn run_to_end(&mut self, max_cycles: Option<u64>) -> SimStats {
        self.advance_until(usize::MAX, max_cycles);
        self.finalize();
        std::mem::take(&mut self.stats)
    }

    /// Advances the machine until its replay window has pulled at least
    /// `fetch_target` instructions from the source, the run completes, or
    /// the cycle budget is exhausted — the resumable slice the lockstep
    /// executor drives lanes with (`fetch_target == usize::MAX` runs to
    /// completion). Returns `true` when the run is over (complete or budget
    /// exhausted) and the caller should collect the statistics via
    /// [`into_stats`](Self::into_stats); `false` means the fetch target was
    /// reached and the lane can be resumed later.
    ///
    /// Slicing is invisible to the simulated machine: state evolves exactly
    /// as in an unsliced run, so statistics are bit-identical regardless of
    /// how callers interleave `advance_until` across processors.
    ///
    /// # Panics
    /// Panics if the simulation exceeds a generous cycle bound (indicating a
    /// pipeline deadlock, which is a bug).
    pub fn advance_until(&mut self, fetch_target: usize, max_cycles: Option<u64>) -> bool {
        !matches!(
            self.advance_slice(fetch_target, u64::MAX, max_cycles),
            SliceOutcome::FetchTarget
        )
    }

    /// The generalized resumable slice underneath
    /// [`advance_until`](Self::advance_until): advances until the run
    /// completes, the cycle budget is exhausted, the replay window has
    /// pulled `fetch_target` instructions, or the simulated clock reaches
    /// `until_cycle` — whichever comes first. The cycle target is the seam
    /// external drivers (deadlines, cooperative cancellation, progress
    /// streaming in `koc-serve`) hook between slices without perturbing the
    /// simulation: like fetch-slicing, cycle-slicing is invisible to the
    /// machine and statistics stay bit-identical. The cycle target is a
    /// lower bound, not an exact stop: fast-forward may overshoot it to the
    /// next event.
    ///
    /// # Panics
    /// Panics if the simulation exceeds a generous cycle bound (indicating a
    /// pipeline deadlock, which is a bug).
    pub fn advance_slice(
        &mut self,
        fetch_target: usize,
        until_cycle: u64,
        max_cycles: Option<u64>,
    ) -> SliceOutcome {
        let cap = max_cycles.unwrap_or(u64::MAX);
        while !self.is_done() {
            if self.cycle >= cap {
                self.stats.budget_exhausted = true;
                return SliceOutcome::BudgetExhausted;
            }
            if self.fetch.fetched() >= fetch_target {
                return SliceOutcome::FetchTarget;
            }
            if self.cycle >= until_cycle {
                return SliceOutcome::CycleTarget;
            }
            let activity = self.step_cycle();
            // The deadlock bound scales with the stream as it is fetched
            // (the full length may not be known up front).
            let bound = self.cycle_bound();
            assert!(
                self.cycle < bound,
                "simulation exceeded {bound} cycles: likely pipeline deadlock ({} of {} fetched committed)",
                self.stats.committed_instructions,
                self.fetch.fetched()
            );
            if self.config.fast_forward && !activity.progressed {
                self.fast_forward(activity.stall, cap);
            }
        }
        SliceOutcome::Complete
    }

    /// Finalizes a run driven through [`advance_until`](Self::advance_until)
    /// and returns the statistics (the counterpart of
    /// [`run_capped`](Self::run_capped) for externally sliced runs).
    pub fn into_stats(mut self) -> SimStats {
        self.finalize();
        std::mem::take(&mut self.stats)
    }

    fn cycle_bound(&self) -> u64 {
        let worst_inst = self.config.memory.worst_case_latency() as u64 + 64;
        // A finite MSHR file can serialise misses behind one another, and
        // prefetch traffic competes for bank bandwidth: scale the deadlock
        // bound (it remains a bound, not an estimate).
        let backpressure = match self.config.memory.backend {
            koc_mem::BackendKind::Flat => 1,
            koc_mem::BackendKind::Dram(_) => 2 + self.config.memory.prefetch.degree() as u64,
        };
        1_000_000 + self.fetch.fetched() as u64 * worst_inst * backpressure
    }

    fn finalize(&mut self) {
        self.stats.memory = *self.mem.stats();
        self.stats.replay_window_peak = self.fetch.peak_occupancy();
        self.engine.finalize(&mut self.stats);
        if !self.stats.budget_exhausted {
            debug_assert_eq!(
                self.stats.committed_instructions as usize,
                self.fetch.fetched(),
                "every fetched instruction must commit exactly once"
            );
        }
    }

    /// Advances the machine by one cycle.
    pub fn step(&mut self) {
        self.step_cycle();
    }

    fn step_cycle(&mut self) -> CycleActivity {
        self.cycle += 1;
        self.stats.cycles = self.cycle;
        let mut progressed = false;
        self.memory_stage();
        progressed |= self.writeback_stage();
        let committed_before = self.stats.committed_instructions;
        self.engine.commit(&mut engine_ctx!(self));
        progressed |= self.stats.committed_instructions != committed_before;
        progressed |= self.engine.wake(&mut engine_ctx!(self)) > 0;
        progressed |= self.issue_stage();
        let (front_progress, stall) = self.frontend_stage();
        progressed |= front_progress;
        self.sample_stats();
        if O::ENABLED {
            let committed_delta = self.stats.committed_instructions - committed_before;
            let sample = self.cycle_sample(self.cycle, committed_delta, stall);
            self.obs.sample(&sample);
        }
        CycleActivity { progressed, stall }
    }

    /// Builds the per-cycle observer sample, attributing the cycle to
    /// exactly one [`CycleBucket`]. Only called when an observer is attached
    /// (`O::ENABLED`); a quiescent cycle classifies identically whether it is
    /// stepped or replayed by fast-forward, because every input below is
    /// frozen while the machine is quiescent.
    fn cycle_sample(
        &mut self,
        cycle: u64,
        committed_delta: u64,
        stall: Option<SkipStall>,
    ) -> CycleSample {
        let bucket = if committed_delta > 0 {
            CycleBucket::Committing
        } else {
            match stall {
                Some(SkipStall::Dispatch(StallReason::Engine(DispatchStall::RobFull))) => {
                    CycleBucket::WindowFull
                }
                Some(SkipStall::Dispatch(StallReason::Engine(DispatchStall::CheckpointFull))) => {
                    CycleBucket::CheckpointTableFull
                }
                Some(SkipStall::Dispatch(StallReason::IqFull))
                | Some(SkipStall::Dispatch(StallReason::LsqFull)) => CycleBucket::IqFull,
                Some(SkipStall::Dispatch(StallReason::RegsFull)) => CycleBucket::RegfileExhausted,
                Some(SkipStall::Redirect) => CycleBucket::FetchStarved,
                None => {
                    if self.mem.pending_demand_misses() > 0 {
                        CycleBucket::MshrFull
                    } else if self.mem.backend_in_flight() > 0 {
                        CycleBucket::MemoryWait
                    } else if self.fetch.at_end() {
                        CycleBucket::FetchStarved
                    } else {
                        CycleBucket::ExecuteWait
                    }
                }
            }
        };
        CycleSample {
            cycle,
            committed: self.stats.committed_instructions,
            dispatched: self.stats.dispatched_instructions,
            inflight: self.inflight.len(),
            live: self.live_count,
            live_checkpoints: self.engine.live_checkpoints(),
            mshr_inflight: self.mem.backend_in_flight(),
            pending_misses: self.mem.pending_demand_misses(),
            replay_window: self.fetch.occupancy(),
            bucket,
        }
    }

    // ------------------------------------------------------------------
    // Event-driven fast-forward
    // ------------------------------------------------------------------

    /// Called after a cycle in which nothing progressed: every stage will
    /// repeat identically until the next scheduled event, so jump to the
    /// cycle *before* it (the next [`step_cycle`](Self::step_cycle) then
    /// lands exactly on the event) and replay the per-cycle bookkeeping for
    /// the skipped quiescent cycles.
    fn fast_forward(&mut self, stall: Option<SkipStall>, cap: u64) {
        let mut next = u64::MAX;
        if let Some(c) = self.events.next_cycle() {
            next = next.min(c);
        }
        if let Some(c) = self.mem.next_event() {
            next = next.min(c);
        }
        if let Some(c) = self.engine.next_wake() {
            next = next.min(c);
        }
        if self.cycle < self.fetch_stall_until {
            // Fetch resumes at `fetch_stall_until`; never skip past it.
            next = next.min(self.fetch_stall_until);
        }
        if next == u64::MAX {
            // No pending events at all: a genuine deadlock. Keep stepping so
            // the cycle bound trips with its diagnostic.
            return;
        }
        // Stop one short of the event and honour the cycle budget.
        let target = (next.saturating_sub(1)).min(cap);
        if target <= self.cycle {
            return;
        }
        let skipped = target - self.cycle;
        // Replay what `skipped` identical quiescent cycles would have
        // recorded: the idle memory ticks, the stall counter, and the
        // per-cycle occupancy samples.
        self.mem.account_idle_ticks(skipped);
        match stall {
            Some(SkipStall::Redirect) => self.stats.stalls.redirect += skipped,
            Some(SkipStall::Dispatch(reason)) => self.record_stall_n(reason, skipped),
            None => {}
        }
        self.stats.inflight.record_n(self.inflight.len(), skipped);
        self.stats.live.record_n(self.live_count, skipped);
        let samples = target / LIVE_SAMPLE_INTERVAL - self.cycle / LIVE_SAMPLE_INTERVAL;
        if samples > 0 {
            // The window is frozen, so every skipped sample point sees the
            // same breakdown.
            let (long, short) = self.live_breakdown();
            self.stats.live_long.record_n(long, samples);
            self.stats.live_short.record_n(short, samples);
        }
        if O::ENABLED {
            // The machine is frozen across the gap, so one sample describes
            // every skipped cycle; observers replay it `skipped` times.
            let sample = self.cycle_sample(self.cycle + 1, 0, stall);
            self.obs.skip(&sample, skipped);
        }
        self.cycle = target;
        self.stats.cycles = target;
    }

    // ------------------------------------------------------------------
    // Memory: advance the timed backend, turn completions into events
    // ------------------------------------------------------------------

    fn memory_stage(&mut self) {
        let mut completed = std::mem::take(&mut self.mem_completed);
        completed.clear();
        self.mem.tick_obs(self.cycle, &mut completed, &mut self.obs);
        for token in completed.drain(..) {
            // The token is the load instance's `seq`; stale tokens (the
            // instance was squashed) simply no longer map to a waiter, and
            // the write-back stage re-checks `seq` anyway.
            if let Some(inst) = self.mem_waiters.remove(token as usize) {
                self.events.push(self.cycle, (inst, token));
            }
        }
        self.mem_completed = completed;
    }

    // ------------------------------------------------------------------
    // Write-back
    // ------------------------------------------------------------------

    /// Returns whether any instruction actually completed (stale events for
    /// squashed instances do not count as progress).
    fn writeback_stage(&mut self) -> bool {
        let Some(finished) = self.events.take(self.cycle) else {
            return false;
        };
        let mut progressed = false;
        for &(inst, seq) in &finished {
            let Some(fl) = self.inflight.get(inst) else {
                continue;
            };
            if fl.seq != seq || fl.is_done() {
                continue;
            }
            // Exceptions are delivered at completion.
            if fl.raises_exception && !self.handled_exceptions.contains_key(inst) {
                progressed = true;
                let squashed = self.handle_exception(inst);
                if squashed {
                    continue;
                }
            }
            // Ephemeral/virtual registers: a physical register is allocated
            // late, at write-back, and the register holding the superseded
            // value of the same logical register is recycled early, at the
            // same moment (the ephemeral-registers scheme of [19]/[9]). If no
            // physical register is free the write-back retries next cycle.
            if let Some(f) = self.inflight.get(inst) {
                if f.dest_phys.is_some() {
                    let has_prev = f.prev_phys.is_some();
                    if let Some(v) = &mut self.vregs {
                        if has_prev {
                            v.try_release_physical();
                        }
                        if !v.acquire_physical() {
                            self.events.push(self.cycle + 1, (inst, seq));
                            continue;
                        }
                    }
                }
            }
            let Some(fl) = self.inflight.get_mut(inst) else {
                continue;
            };
            progressed = true;
            fl.state = InstState::Done;
            if O::ENABLED {
                self.obs.event(self.cycle, Event::Complete { inst });
            }
            let wb = Writeback {
                inst,
                ckpt: fl.ckpt,
                kind: fl.kind,
                dest_arch: fl.dest_arch,
                dest_phys: fl.dest_phys,
            };
            let mispredicted = fl.mispredicted;
            self.inflight.mark_done(inst);
            if let Some(p) = wb.dest_phys {
                self.regs.set_ready(p);
                self.int_iq.wakeup(p);
                self.fp_iq.wakeup(p);
            }
            self.engine.completed(&wb, &mut engine_ctx!(self));
            if wb.kind == OpKind::Branch && mispredicted {
                self.engine.recover_branch(inst, &mut engine_ctx!(self));
                self.fetch_stall_until = self.cycle + self.config.mispredict_penalty as u64;
            }
        }
        self.events.recycle(finished);
        progressed
    }

    /// Delivers an exception raised by `inst`. Returns `true` if the
    /// excepting instruction itself was squashed (engine re-executes it from
    /// a recovery point) and `false` if it survives and should complete
    /// normally.
    fn handle_exception(&mut self, inst: InstId) -> bool {
        self.handled_exceptions.insert(inst, ());
        self.stats.recoveries.exceptions += 1;
        self.fetch_stall_until = self.cycle + self.config.mispredict_penalty as u64;
        self.engine.recover_exception(inst, &mut engine_ctx!(self))
    }

    // ------------------------------------------------------------------
    // Issue / execute
    // ------------------------------------------------------------------

    /// Returns whether anything issued.
    fn issue_stage(&mut self) -> bool {
        if self.int_iq.ready_count() == 0 && self.fp_iq.ready_count() == 0 {
            return false;
        }
        let mut fu = [
            self.config.int_alu_units,
            self.config.int_mul_units,
            self.config.fp_units,
            self.config.mem_ports,
        ];
        let budget = self.config.issue_width;
        // Alternate which queue gets first pick to avoid starving either.
        let int_first = self.cycle.is_multiple_of(2);
        let mut picked = std::mem::take(&mut self.issue_picked);
        picked.clear();
        if int_first {
            self.int_iq.select_ready_into(&mut fu, budget, &mut picked);
            let left = budget - picked.len();
            self.fp_iq.select_ready_into(&mut fu, left, &mut picked);
        } else {
            self.fp_iq.select_ready_into(&mut fu, budget, &mut picked);
            let left = budget - picked.len();
            self.int_iq.select_ready_into(&mut fu, left, &mut picked);
        }
        let progressed = !picked.is_empty();
        for entry in &picked {
            self.begin_execution(entry.inst);
        }
        self.issue_picked = picked;
        progressed
    }

    fn begin_execution(&mut self, inst: InstId) {
        // Issued instructions are in flight, which pins them inside the
        // replay window (release never overtakes the oldest recovery point).
        let trace_inst = *self.fetch.get(inst);
        let seq = self
            .inflight
            .get(inst)
            .expect("issued instruction is in flight") // koc-lint: allow(panic, "issue operates on in-flight instructions")
            .seq;
        // `completion` is the known finish latency, or None when the load
        // went to the timed backend and will complete via `memory_stage`.
        let (completion, level) = match trace_inst.kind {
            OpKind::Load => {
                let addr = trace_inst.mem.expect("load has address").addr; // koc-lint: allow(panic, "loads always carry a memory operand")
                match self
                    .mem
                    .access_data_timed_obs(addr, seq, self.cycle, &mut self.obs)
                {
                    TimedAccess::Ready { level, latency } => (Some(latency), Some(level)),
                    TimedAccess::InFlight => {
                        self.mem_waiters.insert(seq as usize, inst);
                        (None, Some(MemLevel::Memory))
                    }
                }
            }
            OpKind::Store => (Some(1), None),
            kind => (Some(kind.latency().latency), None),
        };
        let fl = self
            .inflight
            .get_mut(inst)
            .expect("issued instruction is in flight"); // koc-lint: allow(panic, "issue operates on in-flight instructions")
        debug_assert!(fl.is_live(), "issuing an instruction that is not waiting");
        let done = match completion {
            Some(latency) => self.cycle + latency as u64,
            // The backend announces the completion cycle when it arrives.
            None => u64::MAX,
        };
        fl.state = InstState::Executing { done_cycle: done };
        fl.mem_level = level;
        if O::ENABLED {
            self.obs.event(self.cycle, Event::Issue { inst });
        }
        let long = trace_inst.kind == OpKind::Load && level == Some(MemLevel::Memory);
        self.inflight.mark_issued(inst, long);
        self.live_count = self.live_count.saturating_sub(1);
        if completion.is_some() {
            self.events.push(done, (inst, seq));
        }
    }

    // ------------------------------------------------------------------
    // Frontend: rename/dispatch, fetch (engine drains its pseudo-ROB)
    // ------------------------------------------------------------------

    /// Returns whether the frontend made progress (dispatched or drained
    /// anything) and, if it only stalled, which counter it bumped.
    fn frontend_stage(&mut self) -> (bool, Option<SkipStall>) {
        let mut progressed = false;
        // Drain the engine's frontend-side structures when fetch has
        // finished, so classification and SLIQ moves keep happening for the
        // tail of the stream.
        if self.fetch.at_end() {
            let budget = self.config.fetch_width;
            progressed |= self.engine.frontend_drain(budget, &mut engine_ctx!(self)) > 0;
        }
        if self.cycle < self.fetch_stall_until {
            self.stats.stalls.redirect += 1;
            return (progressed, Some(SkipStall::Redirect));
        }
        let mut dispatched = 0;
        let mut stall = None;
        while dispatched < self.config.fetch_width {
            let Some((id, inst)) = self.fetch.peek().map(|(id, inst)| (id, *inst)) else {
                break;
            };
            match self.try_dispatch(id, &inst) {
                Ok(()) => {
                    self.fetch.next_inst();
                    dispatched += 1;
                    // A taken branch ends the fetch group.
                    if inst.is_branch() && inst.branch.map(|b| b.taken).unwrap_or(false) {
                        break;
                    }
                }
                Err(reason) => {
                    self.record_stall_n(reason, 1);
                    stall = Some(SkipStall::Dispatch(reason));
                    if reason == StallReason::IqFull {
                        // Make forward progress by letting the engine
                        // classify (and possibly move to the SLIQ) its
                        // oldest pseudo-ROB entries.
                        let budget = self.config.fetch_width;
                        progressed |=
                            self.engine.frontend_drain(budget, &mut engine_ctx!(self)) > 0;
                    }
                    break;
                }
            }
        }
        (progressed || dispatched > 0, stall)
    }

    fn record_stall_n(&mut self, reason: StallReason, n: u64) {
        match reason {
            StallReason::IqFull => self.stats.stalls.iq_full += n,
            StallReason::LsqFull => self.stats.stalls.lsq_full += n,
            StallReason::RegsFull => self.stats.stalls.regs_full += n,
            StallReason::Engine(DispatchStall::RobFull) => self.stats.stalls.rob_full += n,
            StallReason::Engine(DispatchStall::CheckpointFull) => {
                self.stats.stalls.checkpoint_full += n
            }
        }
    }

    fn target_queue_is_fp(&self, inst: &Instruction) -> bool {
        // true => FP queue, false => integer queue (loads/stores/branches and
        // integer arithmetic use the integer queue).
        inst.kind.is_fp()
    }

    fn try_dispatch(&mut self, id: InstId, inst: &Instruction) -> Result<(), StallReason> {
        // --- Resource checks (no allocation yet) -------------------------
        let needs_fp_queue = self.target_queue_is_fp(inst);
        let queue_has_space = if needs_fp_queue {
            self.fp_iq.has_space()
        } else {
            self.int_iq.has_space()
        };
        if !queue_has_space {
            return Err(StallReason::IqFull);
        }
        if inst.kind.is_memory() && !self.lsq.has_space() {
            return Err(StallReason::LsqFull);
        }
        if inst.dest.is_some() && self.regs.free_count() == 0 {
            return Err(StallReason::RegsFull);
        }

        // --- Engine admission (may take a checkpoint) ---------------------
        self.engine
            .reserve(id, inst, &mut engine_ctx!(self))
            .map_err(StallReason::Engine)?;

        // --- Rename -------------------------------------------------------
        let src_phys: RegList = inst
            .sources()
            .filter_map(|s| self.rename.lookup(s))
            .collect(); // koc-lint: allow(hot-path-alloc, "RegList is a fixed inline array; this collect does not heap-allocate")
        let renamed = match inst.dest {
            Some(dest) => Some(
                self.rename
                    .rename_dest(dest, &mut self.regs)
                    .expect("free register was checked"), // koc-lint: allow(panic, "dispatch checked a free register above")
            ),
            None => None,
        };
        let dest_phys = renamed.map(|r| r.new_phys);
        let prev_phys = renamed.and_then(|r| r.prev_phys);

        // --- Branch prediction ---------------------------------------------
        let (predicted, mispredicted) = if let Some(b) = inst.branch {
            if b.unconditional {
                (Some(true), false)
            } else {
                let correct =
                    self.predictor
                        .predict_and_train(inst.pc, b.taken, &mut self.stats.branches);
                (Some(if correct { b.taken } else { !b.taken }), !correct)
            }
        } else {
            (None, false)
        };

        // --- Structure allocation ------------------------------------------
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(mem) = inst.mem {
            self.lsq
                .allocate(LsqEntry {
                    inst: id,
                    is_store: inst.is_store(),
                    addr: mem.addr,
                })
                .expect("LSQ space was checked"); // koc-lint: allow(panic, "dispatch checked LSQ space above")
        }
        let d = Dispatched {
            id,
            kind: inst.kind,
            rename: inst
                .dest
                .map(|a| (a, dest_phys.expect("dest renamed"), prev_phys)), // koc-lint: allow(panic, "a dest implies rename_dest succeeded above")
            is_store: inst.is_store(),
            is_branch: inst.is_branch(),
        };
        let ckpt: CheckpointId = self.engine.allocate(&d);
        let iq_entry = IqEntry {
            inst: id,
            dest: dest_phys,
            srcs: src_phys,
            fu: inst.kind.fu_class(),
            ckpt,
        };
        {
            let regs = &self.regs;
            let queue = if needs_fp_queue {
                &mut self.fp_iq
            } else {
                &mut self.int_iq
            };
            queue
                .insert(iq_entry, |p| regs.is_ready(p))
                .expect("queue space was checked"); // koc-lint: allow(panic, "dispatch checked queue space above")
        }
        self.engine.dispatched(&d, ckpt, &mut engine_ctx!(self));
        self.inflight.insert(
            id,
            InFlight {
                inst: id,
                seq,
                kind: inst.kind,
                dest_arch: inst.dest,
                dest_phys,
                prev_phys,
                src_phys,
                ckpt,
                state: InstState::Waiting,
                dispatch_cycle: self.cycle,
                mem_level: None,
                predicted_taken: predicted,
                mispredicted,
                raises_exception: inst.raises_exception
                    && !self.handled_exceptions.contains_key(id),
            },
        );
        self.live_count += 1;
        self.stats.dispatched_instructions += 1;
        if O::ENABLED {
            self.obs.event(
                self.cycle,
                Event::Fetch {
                    inst: id,
                    kind: inst.kind,
                },
            );
            if renamed.is_some() {
                self.obs.event(self.cycle, Event::Rename { inst: id });
            }
            self.obs
                .event(self.cycle, Event::Dispatch { inst: id, ckpt });
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Statistics sampling
    // ------------------------------------------------------------------

    fn sample_stats(&mut self) {
        self.stats.inflight.record(self.inflight.len());
        self.stats.live.record(self.live_count);
        if self.cycle.is_multiple_of(LIVE_SAMPLE_INTERVAL) {
            let (long, short) = self.live_breakdown();
            self.stats.live_long.record(long);
            self.stats.live_short.record(short);
        }
    }

    /// Splits the live (not yet issued) instructions into blocked-long and
    /// blocked-short, following Figure 7's definition: blocked-long means the
    /// instruction is a load that missed in L2 or (transitively) depends on
    /// one. Delegates to the in-flight table's compact sample mirror with
    /// the epoch-stamped scratch marks, so sampling allocates nothing and
    /// touches ~20 bytes per window slot.
    fn live_breakdown(&mut self) -> (usize, usize) {
        self.long_epoch += 1;
        self.inflight
            .sample_breakdown(&mut self.long_marks, self.long_epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProcessorConfig;
    use koc_isa::{ArchReg, Trace, TraceBuilder};

    fn tiny_independent_trace(n: usize) -> Trace {
        let mut b = TraceBuilder::named("tiny");
        for i in 0..n {
            b.int_alu(ArchReg::int((i % 8) as u8 + 1), &[]);
        }
        b.finish()
    }

    #[test]
    fn baseline_commits_every_instruction() {
        let trace = tiny_independent_trace(100);
        let stats = Processor::new(ProcessorConfig::baseline(128, 100), &trace).run();
        assert_eq!(stats.committed_instructions, 100);
        assert!(stats.cycles > 0);
        assert!(stats.ipc() > 0.5);
    }

    #[test]
    fn cooo_commits_every_instruction() {
        let trace = tiny_independent_trace(100);
        let stats = Processor::new(ProcessorConfig::cooo(32, 512, 100), &trace).run();
        assert_eq!(stats.committed_instructions, 100);
        assert!(stats.checkpoints_taken >= 1);
        assert_eq!(
            stats.checkpoints_taken,
            stats.checkpoints_committed + stats.checkpoints_squashed
        );
    }

    #[test]
    fn engine_names_reflect_the_commit_config() {
        let trace = tiny_independent_trace(10);
        let baseline = Processor::new(ProcessorConfig::baseline(64, 100), &trace);
        assert_eq!(baseline.engine_name(), "in-order-rob");
        let cooo = Processor::new(ProcessorConfig::cooo(32, 512, 100), &trace);
        assert_eq!(cooo.engine_name(), "checkpointed-out-of-order");
    }

    #[test]
    fn independent_alu_instructions_approach_the_issue_width() {
        let trace = tiny_independent_trace(2000);
        let stats = Processor::new(ProcessorConfig::baseline(256, 100), &trace).run();
        // 4-wide machine, 4 integer ALUs, no memory: IPC should be close to 4.
        assert!(stats.ipc() > 2.5, "ipc = {}", stats.ipc());
    }

    #[test]
    fn a_dependent_chain_is_serialized() {
        let mut b = TraceBuilder::named("chain");
        let r = ArchReg::fp(1);
        b.fp_alu(r, &[]);
        for _ in 0..499 {
            b.fp_alu(r, &[r]);
        }
        let trace = b.finish();
        let stats = Processor::new(ProcessorConfig::baseline(128, 100), &trace).run();
        // FP latency 2, fully serial: at least ~2 cycles per instruction.
        assert!(stats.ipc() < 0.7, "ipc = {}", stats.ipc());
    }

    #[test]
    fn loads_that_miss_stall_a_small_window_machine() {
        let mut b = TraceBuilder::named("misses");
        let base = ArchReg::int(1);
        for i in 0..200u64 {
            b.load(ArchReg::fp((i % 24) as u8), base, 0x100_0000 + i * 4096);
            b.fp_alu(
                ArchReg::fp(((i % 24) + 1) as u8 % 28),
                &[ArchReg::fp((i % 24) as u8)],
            );
        }
        let trace = b.finish();
        let small = Processor::new(ProcessorConfig::baseline(32, 500), &trace).run();
        let big = Processor::new(ProcessorConfig::baseline(1024, 500), &trace).run();
        assert!(
            big.ipc() > small.ipc() * 1.5,
            "large window should overlap misses: small={} big={}",
            small.ipc(),
            big.ipc()
        );
    }

    #[test]
    fn stats_invariants_hold() {
        let trace = tiny_independent_trace(300);
        let stats = Processor::new(ProcessorConfig::cooo(32, 512, 100), &trace).run();
        assert_eq!(stats.committed_instructions, 300);
        assert!(stats.dispatched_instructions >= stats.committed_instructions);
        assert!(stats.inflight.count() as u64 == stats.cycles);
    }

    #[test]
    fn fast_forward_does_not_change_cycle_counts() {
        let mut b = TraceBuilder::named("memory-bound");
        let base = ArchReg::int(1);
        for i in 0..150u64 {
            b.load(ArchReg::fp((i % 8) as u8), base, 0x200_0000 + i * 8192);
            b.fp_alu(ArchReg::fp(8), &[ArchReg::fp((i % 8) as u8)]);
        }
        let trace = b.finish();
        for config in [
            ProcessorConfig::baseline(64, 800),
            ProcessorConfig::cooo(32, 512, 800),
        ] {
            let fast = Processor::new(config, &trace).run();
            let slow = Processor::new(config.with_fast_forward(false), &trace).run();
            assert_eq!(fast, slow, "fast-forward must be invisible in the stats");
        }
    }

    #[test]
    fn capped_run_stops_at_the_budget() {
        let trace = tiny_independent_trace(5_000);
        let stats =
            Processor::new(ProcessorConfig::baseline(64, 100), &trace).run_capped(Some(100));
        assert!(stats.budget_exhausted);
        assert_eq!(stats.cycles, 100);
        assert!(stats.committed_instructions < 5_000);
        let full = Processor::new(ProcessorConfig::baseline(64, 100), &trace).run_capped(None);
        assert!(!full.budget_exhausted);
        assert_eq!(full.committed_instructions, 5_000);
    }
}
