//! The paper's commit engine: checkpointed out-of-order commit with a
//! pseudo-ROB for classification/near recovery and Slow Lane Instruction
//! Queuing for long-latency dependence chains.

use super::{CommitEngine, DispatchStall, Dispatched, EngineCtx, Writeback};
use crate::inflight::InstState;
use crate::stats::SimStats;
use koc_core::{
    CheckpointId, CheckpointPolicy, CheckpointTable, DependenceTracker, PseudoRob, PseudoRobEntry,
    RetireClass, SliqBuffer, SliqConfig,
};
use koc_isa::{FuClass, InstId, Instruction, OpKind, PhysReg};
use koc_obs::{Event, Observer};

/// Membership marks for the physical registers currently armed as SLIQ
/// wake-up triggers: a dense flag vector keyed by [`PhysReg::index`], so
/// the per-completion membership test is an array load instead of a hash.
#[derive(Debug, Default)]
struct TriggerMarks {
    marks: Vec<bool>,
}

impl TriggerMarks {
    fn insert(&mut self, p: PhysReg) {
        let i = p.index();
        if i >= self.marks.len() {
            self.marks.resize(i + 1, false);
        }
        self.marks[i] = true;
    }

    /// Clears the mark for `p`, returning whether it was set.
    fn remove(&mut self, p: PhysReg) -> bool {
        match self.marks.get_mut(p.index()) {
            Some(m) => std::mem::replace(m, false),
            None => false,
        }
    }
}

/// Checkpointed out-of-order commit: retirement happens a whole checkpoint
/// at a time, as soon as every instruction in the checkpoint's window has
/// completed — regardless of younger work.
pub struct CheckpointedEngine {
    table: CheckpointTable,
    policy: CheckpointPolicy,
    pseudo_rob: PseudoRob,
    sliq: SliqBuffer,
    dep: DependenceTracker,
    sliq_triggers: TriggerMarks,
    /// Reused by [`wake`](CommitEngine::wake) so the per-cycle SLIQ walk
    /// allocates nothing.
    wake_scratch: Vec<koc_core::IqEntry>,
    /// Take a checkpoint exactly before this instruction (precise exception
    /// re-execution).
    force_checkpoint_at: Option<InstId>,
}

impl CheckpointedEngine {
    /// An engine with the given checkpoint-table size, pseudo-ROB size, SLIQ
    /// configuration and checkpoint-placement policy.
    pub fn new(
        checkpoint_entries: usize,
        pseudo_rob_size: usize,
        sliq: SliqConfig,
        policy: CheckpointPolicy,
    ) -> Self {
        CheckpointedEngine {
            table: CheckpointTable::new(checkpoint_entries),
            policy,
            pseudo_rob: PseudoRob::new(pseudo_rob_size),
            sliq: SliqBuffer::new(sliq),
            dep: DependenceTracker::new(),
            sliq_triggers: TriggerMarks::default(),
            wake_scratch: Vec::new(),
            force_checkpoint_at: None,
        }
    }

    /// Classifies an instruction retiring from the pseudo-ROB (Figure 12)
    /// and moves still-waiting long-latency dependents into the SLIQ.
    fn classify_retired<O: Observer>(
        &mut self,
        entry: PseudoRobEntry,
        ctx: &mut EngineCtx<'_, '_, O>,
    ) {
        // Pseudo-ROB entries bound the replay-window release frontier (see
        // `commit`), so the instruction is still resident; copy it out to
        // keep the context borrow free.
        let trace_inst = *ctx.fetch.get(entry.inst);
        // Update the dependence mask with this instruction regardless of its
        // class: independent redefinitions kill dependences.
        let trigger = self.dep.classify(&trace_inst);
        let fl = ctx.inflight.get(entry.inst);
        let class = if entry.is_store {
            RetireClass::Store
        } else if trace_inst.kind == OpKind::Load {
            match fl {
                Some(fl) if fl.is_done() => RetireClass::FinishedLoad,
                Some(fl) if fl.is_issued() && fl.mem_level != Some(koc_mem::MemLevel::Memory) => {
                    RetireClass::FinishedLoad
                }
                None => RetireClass::FinishedLoad,
                Some(fl) => {
                    // Still outstanding: the paper treats it as long latency.
                    if let (Some(dest), Some(phys)) = (trace_inst.dest, fl.dest_phys) {
                        self.dep.add_long_latency_load(dest, phys);
                        self.sliq_triggers.insert(phys);
                    }
                    RetireClass::LongLatLoad
                }
            }
        } else {
            match fl {
                Some(fl) if fl.is_done() => RetireClass::Finished,
                None => RetireClass::Finished,
                Some(_) => RetireClass::ShortLat,
            }
        };
        // Move still-waiting dependent instructions (of any kind except the
        // triggering loads themselves) from the IQ into the SLIQ. If the
        // triggering register has already been produced, the instruction will
        // issue shortly, so it stays in the queue (and moving it would leave
        // it stranded: its wake-up event has already fired).
        let mut final_class = class;
        if class != RetireClass::LongLatLoad {
            if let (Some(trigger), Some(fl)) = (trigger, ctx.inflight.get_mut(entry.inst)) {
                if fl.state == InstState::Waiting
                    && !ctx.regs.is_ready(trigger)
                    && self.sliq.has_space()
                {
                    let queue = if trace_inst.kind.is_fp() {
                        &mut *ctx.fp_iq
                    } else {
                        &mut *ctx.int_iq
                    };
                    if let Some(iq_entry) = queue.remove(entry.inst) {
                        if self.sliq.insert(iq_entry, trigger) {
                            fl.state = InstState::InSliq;
                            if O::ENABLED {
                                ctx.obs
                                    .event(ctx.cycle, Event::SliqMove { inst: entry.inst });
                            }
                            self.sliq_triggers.insert(trigger);
                            if !entry.is_store && trace_inst.kind != OpKind::Load {
                                final_class = RetireClass::Moved;
                            }
                        } else {
                            unreachable!("space was checked");
                        }
                    }
                }
            }
        }
        ctx.stats.retire_breakdown.record(final_class);
    }

    /// Squashes everything younger than `boundary` (exclusive) by walking
    /// the pseudo-ROB's rename undo records, and rewinds fetch after
    /// `boundary`.
    fn squash_younger<O: Observer>(&mut self, boundary: InstId, ctx: &mut EngineCtx<'_, '_, O>) {
        let undo: Vec<_> = self
            .pseudo_rob
            .squash_younger_than(boundary)
            .into_iter()
            .map(|e| (e.inst, e.rename))
            .collect(); // koc-lint: allow(hot-path-alloc, "checkpoint rollback, not per cycle")
        let squashed = ctx.undo_renames(&undo);
        for fl in &squashed {
            self.table.on_squash(fl.ckpt, !fl.is_done());
        }
        // Any instruction younger than `boundary` that was dispatched while
        // the boundary instruction had already left the pseudo-ROB cannot
        // exist (FIFO order), so the undo set is complete.
        ctx.squash_queues_from(boundary + 1);
        self.sliq.squash_from(boundary + 1);
        let dropped = self.table.drop_taken_at_or_after(boundary + 1);
        ctx.stats.checkpoints_squashed += dropped as u64;
        if O::ENABLED && dropped > 0 {
            ctx.obs.event(
                ctx.cycle,
                Event::CheckpointSquash {
                    count: dropped as u64,
                },
            );
        }
        // Registers that became valid mappings again must not be freed by an
        // older checkpoint's commit.
        let rename = &*ctx.rename;
        self.table.retain_free_on_commit(|p| !rename.is_valid(p));
        ctx.stats.recoveries.squashed_instructions += undo.len() as u64;
        ctx.rewind_fetch_to(boundary + 1);
    }

    /// Rolls back to checkpoint `ckpt`: restores the rename snapshot, drops
    /// younger checkpoints, squashes every instruction from the checkpoint's
    /// trace position onwards and rewinds fetch there.
    fn rollback<O: Observer>(&mut self, ckpt: CheckpointId, ctx: &mut EngineCtx<'_, '_, O>) {
        let before = self.table.len();
        let (snapshot, trace_index) = self.table.rollback_to(ckpt);
        let dropped = (before - self.table.len()) as u64;
        ctx.stats.checkpoints_squashed += dropped;
        if O::ENABLED && dropped > 0 {
            ctx.obs
                .event(ctx.cycle, Event::CheckpointSquash { count: dropped });
        }
        ctx.rename.restore(&snapshot, ctx.regs);
        self.pseudo_rob.squash_from(trace_index);
        self.sliq.squash_from(trace_index);
        self.dep.reset();
        ctx.squash_queues_from(trace_index);
        // Remove squashed in-flight instances. Their registers come back via
        // the restored free list, not via explicit frees.
        let doomed = ctx.inflight.ids_at_or_after(trace_index);
        let mut squashed = 0u64;
        for inst in doomed {
            if ctx.forget_inflight(inst).is_some() {
                if O::ENABLED {
                    ctx.obs.event(ctx.cycle, Event::Squash { inst });
                }
                squashed += 1;
            }
        }
        ctx.stats.recoveries.squashed_instructions += squashed;
        ctx.stats.recoveries.reexecuted_instructions +=
            ctx.fetch.position().saturating_sub(trace_index) as u64;
        ctx.fetch.rewind_to(trace_index);
    }
}

impl<O: Observer> CommitEngine<O> for CheckpointedEngine {
    fn name(&self) -> &'static str {
        "checkpointed-out-of-order"
    }

    fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    fn live_checkpoints(&self) -> usize {
        self.table.len()
    }

    fn reserve(
        &mut self,
        id: InstId,
        inst: &Instruction,
        ctx: &mut EngineCtx<'_, '_, O>,
    ) -> Result<(), DispatchStall> {
        let forced_here = self.force_checkpoint_at == Some(id);
        let wants_checkpoint = self.table.is_empty()
            || forced_here
            || self
                .table
                .newest()
                .map(|n| {
                    self.policy
                        .should_take(n.total_insts, n.stores, inst.is_branch())
                })
                .unwrap_or(true);
        let mut take_checkpoint = false;
        if wants_checkpoint {
            if !self.table.is_full() {
                take_checkpoint = true;
            } else {
                // Keep extending the youngest window, unless the store bound
                // would risk exhausting the LSQ.
                let stores = self.table.newest().map(|n| n.stores).unwrap_or(0);
                if stores >= self.policy.force_after_stores.saturating_mul(2) {
                    return Err(DispatchStall::CheckpointFull);
                }
            }
        }
        if take_checkpoint {
            let (snapshot, freed) = ctx.rename.take_checkpoint(ctx.regs);
            self.table
                .take(id, snapshot, freed)
                .expect("table was not full"); // koc-lint: allow(panic, "take follows the capacity check above")
            ctx.stats.checkpoints_taken += 1;
            if O::ENABLED {
                if let Some(n) = self.table.newest() {
                    ctx.obs
                        .event(ctx.cycle, Event::CheckpointTake { id: n.id, at: id });
                }
            }
            if forced_here {
                self.force_checkpoint_at = None;
            }
        }
        Ok(())
    }

    fn allocate(&mut self, d: &Dispatched) -> CheckpointId {
        self.table.on_dispatch(d.is_store)
    }

    fn dispatched(&mut self, d: &Dispatched, ckpt: CheckpointId, ctx: &mut EngineCtx<'_, '_, O>) {
        let retired = self.pseudo_rob.push(PseudoRobEntry {
            inst: d.id,
            ckpt,
            rename: d.rename,
            is_store: d.is_store,
            is_branch: d.is_branch,
        });
        if let Some(entry) = retired {
            self.classify_retired(entry, ctx);
        }
    }

    fn frontend_drain(&mut self, budget: usize, ctx: &mut EngineCtx<'_, '_, O>) -> usize {
        for drained in 0..budget {
            let Some(entry) = self.pseudo_rob.pop_oldest() else {
                return drained;
            };
            self.classify_retired(entry, ctx);
        }
        budget
    }

    fn wake(&mut self, ctx: &mut EngineCtx<'_, '_, O>) -> usize {
        // Wake-ups are never blocked by queue occupancy: a re-inserted
        // instruction may transiently push a queue above its capacity
        // (bounded by the wake width). Blocking here can create a circular
        // wait — the queue would only drain once instructions still parked in
        // the SLIQ execute — so the overshoot is the documented modelling
        // choice (DESIGN.md).
        if self
            .sliq
            .next_pending_ready_at()
            .is_none_or(|ready_at| ready_at > ctx.cycle)
        {
            return 0;
        }
        let mut woken = std::mem::take(&mut self.wake_scratch);
        woken.clear();
        self.sliq
            .step_into(ctx.cycle, usize::MAX, usize::MAX, &mut woken);
        let n = woken.len();
        for entry in woken.drain(..) {
            let inst = entry.inst;
            let queue = if entry.fu == FuClass::Fp {
                &mut *ctx.fp_iq
            } else {
                &mut *ctx.int_iq
            };
            let regs = &*ctx.regs;
            queue.insert_unbounded(entry, |p| regs.is_ready(p));
            if let Some(fl) = ctx.inflight.get_mut(inst) {
                fl.state = InstState::Waiting;
            }
        }
        self.wake_scratch = woken;
        n
    }

    fn next_wake(&self) -> Option<u64> {
        // The SLIQ walker FIFO is the engine's only self-scheduled work; its
        // front (minimum, by monotonicity) `ready_at` is exact, so the
        // shell's fast-forward can jump a stalled window straight to the
        // next re-insertion burst under `cooo` just as it jumps to the next
        // memory completion under the baseline.
        self.sliq.next_pending_ready_at()
    }

    fn completed(&mut self, wb: &Writeback, ctx: &mut EngineCtx<'_, '_, O>) {
        self.table.on_complete(wb.ckpt);
        if let Some(p) = wb.dest_phys {
            if self.sliq_triggers.remove(p) {
                self.sliq.on_trigger_ready(p, ctx.cycle);
            }
            if wb.kind == OpKind::Load {
                if let Some(a) = wb.dest_arch {
                    self.dep.clear_if_trigger(a, p);
                }
            }
        }
    }

    fn commit(&mut self, ctx: &mut EngineCtx<'_, '_, O>) {
        let trace_done = ctx.fetch.at_end();
        if !self.table.can_commit_oldest(trace_done) {
            return;
        }
        let committed = self.table.commit_oldest();
        let frontier = self
            .table
            .oldest()
            .map(|c| c.trace_index)
            .unwrap_or_else(|| ctx.fetch.position());
        ctx.stats.checkpoints_committed += 1;
        ctx.stats.committed_instructions += committed.total_insts as u64;
        for p in &committed.free_on_commit {
            ctx.regs.free(*p);
        }
        // The committed checkpoint's instructions are exactly the in-flight
        // band below the surviving frontier: older checkpoints are gone, and
        // everything at or past the frontier belongs to a younger one.
        debug_assert!(ctx
            .inflight
            .values()
            .all(|fl| (fl.inst < frontier) == (fl.ckpt == committed.id)));
        if O::ENABLED {
            for fl in ctx.inflight.values() {
                if fl.inst < frontier {
                    ctx.obs.event(ctx.cycle, Event::Commit { inst: fl.inst });
                }
            }
            ctx.obs.event(
                ctx.cycle,
                Event::CheckpointCommit {
                    id: committed.id,
                    insts: committed.total_insts as u64,
                },
            );
        }
        ctx.inflight.drain_below(frontier);
        ctx.drain_stores(frontier);
        // No rollback can target anything older than the oldest live
        // checkpoint, but instructions of the committed checkpoint may still
        // sit in the pseudo-ROB awaiting classification — hold the replay
        // window until they have passed through.
        let release = self
            .pseudo_rob
            .oldest_inst()
            .map_or(frontier, |oldest| oldest.min(frontier));
        ctx.release_fetch_to(release);
    }

    fn recover_branch(&mut self, branch: InstId, ctx: &mut EngineCtx<'_, '_, O>) {
        if self.pseudo_rob.contains(branch) {
            ctx.stats.recoveries.near_recoveries += 1;
            self.squash_younger(branch, ctx);
        } else {
            ctx.stats.recoveries.checkpoint_rollbacks += 1;
            let ckpt = ctx.inflight[branch].ckpt;
            self.rollback(ckpt, ctx);
        }
    }

    fn recover_exception(&mut self, inst: InstId, ctx: &mut EngineCtx<'_, '_, O>) -> bool {
        // Roll back to the owning checkpoint and re-execute in "strict"
        // mode: a checkpoint is forced right at the excepting instruction so
        // the architectural state there is precise.
        let ckpt = ctx.inflight[inst].ckpt;
        self.force_checkpoint_at = Some(inst);
        self.rollback(ckpt, ctx);
        true
    }

    fn finalize(&mut self, stats: &mut SimStats) {
        stats.sliq_moved = self.sliq.total_moved();
        stats.sliq_high_water = self.sliq.high_water();
        // The documented checkpoint-lifecycle invariant, asserted at
        // teardown: every checkpoint ever taken either committed, was
        // squashed, or (only when a cycle budget cut the run short) is
        // still live in the table.
        debug_assert_eq!(
            stats.checkpoints_taken,
            stats.checkpoints_committed + stats.checkpoints_squashed + self.table.len() as u64,
            "checkpoint lifecycle must balance at end of run"
        );
    }
}
